//! # General Stream Slicing
//!
//! A from-scratch Rust implementation of **general stream slicing** for
//! efficient streaming window aggregation, reproducing Traub et al.,
//! *Efficient Window Aggregation with General Stream Slicing* (EDBT 2019)
//! — the technique behind the Scotty window processor.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] — slices, the merge/split/update operations, lazy/eager
//!   aggregate stores, and the [`core::WindowOperator`] combining stream
//!   slicer, slice manager, and window manager;
//! * [`aggregates`] — lift/combine/lower/invert aggregate functions (sum,
//!   avg, min/max families, stddevs, M4, median, percentiles, ...);
//! * [`windows`] — tumbling, sliding, session, count-based, punctuation,
//!   and multi-measure window types;
//! * [`baselines`] — the techniques the paper compares against (tuple
//!   buffer, FlatFAT aggregate tree, buckets, Pairs, Cutty);
//! * [`stream`] — a tuple-at-a-time dataflow runtime with key-partitioned
//!   parallelism;
//! * [`data`] — deterministic workload generators modeled after the DEBS
//!   2012/2013 datasets.
//!
//! ## Quickstart
//!
//! ```
//! use general_stream_slicing::prelude::*;
//!
//! // One operator, three concurrent queries sharing slices.
//! let mut op = WindowOperator::new(Sum, OperatorConfig::in_order());
//! op.add_query(Box::new(TumblingWindow::new(1_000))).unwrap();
//! op.add_query(Box::new(SlidingWindow::new(5_000, 1_000))).unwrap();
//! op.add_query(Box::new(SessionWindow::new(400))).unwrap();
//!
//! let mut out = Vec::new();
//! for ts in (0..10_000).step_by(10) {
//!     op.process_tuple(ts, 1, &mut out);
//! }
//! assert!(out.iter().any(|w| w.range.len() == 1_000 && w.value == 100));
//! assert!(out.iter().any(|w| w.range.len() == 5_000 && w.value == 500));
//! ```

pub use gss_aggregates as aggregates;
pub use gss_baselines as baselines;
pub use gss_core as core;
pub use gss_data as data;
pub use gss_query as query;
pub use gss_stream as stream;
pub use gss_windows as windows;

/// Everything a typical application needs, in one import.
pub mod prelude {
    pub use gss_aggregates::{
        ArgMax, ArgMin, Avg, CountAgg, First, GeometricMean, Last, Max, MaxCount, Median,
        MedianNoRle, Min, MinCount, Percentile, PopulationStdDev, SampleStdDev, Sum, SumNoInvert,
        M4,
    };
    pub use gss_baselines::{
        AggregateTree, BucketMode, Buckets, Cutty, FifoAggregator, MonotonicDeque, Pairs, Panes,
        SlickDequeSliding, TupleBuffer, TwoStacksSliding,
    };
    pub use gss_core::{
        AggregateFunction, ContextClass, ContextEdges, FunctionKind, FunctionProperties, HeapSize,
        KeyedConfig, KeyedStats, KeyedWindowOperator, Measure, NaiveKeyedOperator, OperatorConfig,
        PerKey, Query, QueryId, Range, StorePolicy, StreamElement, StreamOrder, Time,
        WindowAggregator, WindowFunction, WindowOperator, WindowResult,
    };
    pub use gss_data::{
        make_out_of_order, with_watermarks, FootballConfig, FootballGenerator, MachineConfig,
        MachineGenerator, OooConfig,
    };
    pub use gss_query::{translate, AggKind, AnyAggregate, QueryDsl, Value, WindowDsl};
    pub use gss_stream::{
        parallel_eligible, run_keyed, run_parallel, run_per_key, run_sharded_keyed, shard_of,
        BatchSizeHistogram, Batching, BoundedOutOfOrderness, ChunkBuilder, IteratorSource,
        LatencyHistogram, PipelineConfig, PipelineReport, RecordChunk,
    };
    pub use gss_windows::{
        CountSlidingWindow, CountTumblingWindow, MultiMeasureWindow, PunctuationWindow,
        SessionWindow, SlidingWindow, TumblingWindow,
    };
}
