//! The paper's motivating application (Section 6.4): a live-visualization
//! dashboard over football sensor data using the M4 aggregation — min,
//! max, first, and last value per window — at many zoom levels at once.
//!
//! Twenty concurrent tumbling queries with lengths from 1 s to 20 s share
//! one slice store; the M4 output of each window is exactly what a chart
//! renderer needs to draw that zoom level without distortion.
//!
//! Run with: `cargo run --release --example dashboard`

use general_stream_slicing::prelude::*;
use gss_data::{FootballConfig, FootballGenerator};
use std::time::Instant;

fn main() {
    // ~2000 Hz ball telemetry with 5 session gaps per minute, one minute.
    let mut gen = FootballGenerator::new(FootballConfig::default());
    let tuples = gen.take(120_000);

    // M4 needs (timestamp, value) inputs so "first"/"last" are defined.
    let mut op = WindowOperator::new(M4, OperatorConfig::in_order());
    for seconds in 1..=20i64 {
        op.add_query(Box::new(TumblingWindow::new(seconds * 1_000))).unwrap();
    }

    let started = Instant::now();
    let mut out = Vec::new();
    for &(ts, v) in &tuples {
        op.process_tuple(ts, (ts, v), &mut out);
    }
    let elapsed = started.elapsed();

    println!(
        "processed {} tuples through 20 concurrent zoom levels in {:?} ({:.2} M tuples/s)",
        tuples.len(),
        elapsed,
        tuples.len() as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!("emitted {} chart segments\n", out.len());

    // Show the 5-second zoom level like a dashboard would render it.
    println!("zoom level: 5 s windows (query 4)");
    println!("{:>8} {:>8} {:>8} {:>8} {:>8} {:>8}", "start", "end", "min", "max", "first", "last");
    for w in out.iter().filter(|w| w.query == 4).take(10) {
        println!(
            "{:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            w.range.start, w.range.end, w.value.min, w.value.max, w.value.first, w.value.last
        );
    }

    println!("\nslices live in store: {} (shared across all 20 queries)", op.slice_count());
}
