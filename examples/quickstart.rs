//! Quickstart: one general-slicing operator, several concurrent queries.
//!
//! Run with: `cargo run --release --example quickstart`

use general_stream_slicing::prelude::*;

fn main() {
    // The operator adapts to its workload: an in-order stream with
    // context-free windows stores no tuples at all, only slice partials.
    let mut op = WindowOperator::new(Avg, OperatorConfig::in_order());

    // Three queries share one slice store: a tumbling window per second, a
    // sliding 5 s window advancing every second, and 300 ms sessions.
    let tumbling = op.add_query(Box::new(TumblingWindow::new(1_000))).unwrap();
    let sliding = op.add_query(Box::new(SlidingWindow::new(5_000, 1_000))).unwrap();
    let sessions = op.add_query(Box::new(SessionWindow::new(300))).unwrap();

    // Feed a synthetic sensor stream: one reading every 10 ms, with a
    // burst pause after every 200 readings so sessions split.
    let mut out: Vec<WindowResult<f64>> = Vec::new();
    let mut ts: Time = 0;
    for i in 0..5_000i64 {
        op.process_tuple(ts, i % 100, &mut out);
        ts += if i % 200 == 199 { 400 } else { 10 };
    }

    let name = |q: QueryId| {
        if q == tumbling {
            "tumbling 1s"
        } else if q == sliding {
            "sliding 5s/1s"
        } else if q == sessions {
            "session 300ms"
        } else {
            "?"
        }
    };

    println!("emitted {} window aggregates\n", out.len());
    println!("{:<14} {:>10} {:>10} {:>10}", "query", "start", "end", "avg");
    for w in out.iter().take(8).chain(out.iter().rev().take(4).rev()) {
        println!(
            "{:<14} {:>10} {:>10} {:>10.2}",
            name(w.query),
            w.range.start,
            w.range.end,
            w.value
        );
    }

    let stats = op.stats();
    println!(
        "\noperator stats: {} tuples, {} slices created, {} windows emitted",
        stats.tuples, stats.slices_created, stats.windows_emitted
    );
    println!(
        "tuples stored in slices: {} (context-free in-order workloads keep none)",
        op.store().keeps_tuples()
    );
}
