//! User-defined window types (paper Section 5.4.2): implement
//! [`WindowFunction`] and plug it into the slicing core without touching
//! the merge/split/update machinery.
//!
//! This example defines **business-hours windows**: one window per day
//! covering 09:00–17:00 only. They are context free (all edges are known a
//! priori) yet not expressible as tumbling or sliding windows.
//!
//! Run with: `cargo run --release --example custom_window`

use general_stream_slicing::prelude::*;

const HOUR: Time = 3_600_000;
const DAY: Time = 24 * HOUR;
const OPEN: Time = 9 * HOUR;
const CLOSE: Time = 17 * HOUR;

/// `[day*24h + 9h, day*24h + 17h)` for every day.
#[derive(Clone, Copy)]
struct BusinessHours;

impl BusinessHours {
    fn day_of(ts: Time) -> Time {
        ts.div_euclid(DAY)
    }
}

impl WindowFunction for BusinessHours {
    fn measure(&self) -> Measure {
        Measure::Time
    }

    fn context(&self) -> ContextClass {
        ContextClass::ContextFree
    }

    fn next_edge(&self, ts: Time) -> Option<Time> {
        let day = Self::day_of(ts);
        let within = ts - day * DAY;
        Some(if within < OPEN {
            day * DAY + OPEN
        } else if within < CLOSE {
            day * DAY + CLOSE
        } else {
            (day + 1) * DAY + OPEN
        })
    }

    fn next_window_end(&self, ts: Time) -> Option<Time> {
        let day = Self::day_of(ts);
        let within = ts - day * DAY;
        Some(if within < CLOSE { day * DAY + CLOSE } else { (day + 1) * DAY + CLOSE })
    }

    fn requires_edge_at(&self, e: Time) -> bool {
        let within = e.rem_euclid(DAY);
        within == OPEN || within == CLOSE
    }

    fn trigger_windows(&mut self, prev: Time, cur: Time, out: &mut dyn FnMut(Range)) {
        let mut day = Self::day_of(prev);
        loop {
            let end = day * DAY + CLOSE;
            if end > cur {
                break;
            }
            if end > prev {
                out(Range::new(day * DAY + OPEN, end));
            }
            day += 1;
        }
    }

    fn windows_containing(&self, ts: Time, out: &mut dyn FnMut(Range)) {
        let day = Self::day_of(ts);
        let within = ts - day * DAY;
        if (OPEN..CLOSE).contains(&within) {
            out(Range::new(day * DAY + OPEN, day * DAY + CLOSE));
        }
    }

    fn max_extent(&self) -> i64 {
        CLOSE - OPEN
    }

    fn clone_box(&self) -> Box<dyn WindowFunction> {
        Box::new(*self)
    }
}

fn main() {
    let mut op = WindowOperator::new(Sum, OperatorConfig::in_order());
    op.add_query(Box::new(BusinessHours)).unwrap();

    // One sale of value 1 every minute, around the clock, for three days.
    let mut out = Vec::new();
    for minute in 0..(3 * 24 * 60) {
        op.process_tuple(minute * 60_000, 1, &mut out);
    }

    println!("business-hours revenue (only 09:00-17:00 tuples count):\n");
    for w in &out {
        let day = w.range.start.div_euclid(DAY);
        println!("day {day}: window {} -> {} sales", w.range, w.value);
        // 8 business hours x 60 sales/hour:
        assert_eq!(w.value, 8 * 60);
    }
    println!(
        "\nno changes to the slicing core were needed — the window type is \
         ~80 lines implementing WindowFunction"
    );
}
