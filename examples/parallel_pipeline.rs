//! Key-partitioned parallel execution (paper Sections 5.3 and 6.4): the
//! window operator is a drop-in replacement, so scaling out is plain key
//! partitioning — one operator instance per partition, watermarks
//! broadcast.
//!
//! Run with: `cargo run --release --example parallel_pipeline`

use general_stream_slicing::prelude::*;
use gss_core::operator::WindowOperator as Op;

fn make_elements(n: i64, keys: u64) -> Vec<StreamElement<(u64, i64)>> {
    let mut v = Vec::with_capacity(n as usize + n as usize / 1000 + 1);
    for i in 0..n {
        v.push(StreamElement::Record { ts: i, value: (i as u64 % keys, 1) });
        if i % 1000 == 999 {
            v.push(StreamElement::Watermark(i - 100));
        }
    }
    v.push(StreamElement::Watermark(i64::MAX - 1));
    v
}

fn factory(_partition: usize) -> Box<dyn WindowAggregator<Sum>> {
    let mut op = Op::new(Sum, OperatorConfig::out_of_order(1_000));
    op.add_query(Box::new(SlidingWindow::new(10_000, 1_000))).unwrap();
    Box::new(op)
}

fn main() {
    let n: i64 = 2_000_000;
    println!("sliding 10s/1s sum over {n} records, 64 keys\n");
    println!(
        "{:>12} {:>16} {:>12} {:>10} {:>14}",
        "parallelism", "throughput", "windows", "cpu", "fold kernel"
    );
    let mut last_batch_sizes = None;
    for p in [1, 2, 4, 8] {
        let report = run_keyed(
            make_elements(n, 64),
            PipelineConfig::with_parallelism(p).throughput_only(),
            factory,
        );
        let cpu = report
            .cpu_utilization()
            .map_or_else(|| "n/a".to_string(), |u| format!("{:.0}%", u * 100.0));
        println!(
            "{:>12} {:>13.2} M/s {:>12} {:>10} {:>7}h {:>4}m",
            p,
            report.throughput() / 1e6,
            report.result_count,
            cpu,
            report.fold_hits,
            report.fold_misses
        );
        last_batch_sizes = Some(report.batch_sizes.clone());
    }
    if let Some(sizes) = last_batch_sizes {
        println!("\nachieved batch sizes (adaptive, p=8): {}", sizes.summary());
    }
    println!("\nfold kernel h/m: bulk-folded runs that hit a hand-written fold_slice");
    println!("kernel vs. the default lift/combine fallback");
    println!("\neach key's windows are complete and correct within its partition;");
    println!("global aggregates would combine per-key results downstream");
}
