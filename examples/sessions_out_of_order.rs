//! Session windows over an out-of-order stream — the paper's hardest
//! general case handled without recomputation (Section 5.1: sessions are
//! context aware but never require recomputing aggregates).
//!
//! Models taxi trips: location pings form sessions separated by idle gaps;
//! pings arrive late over the network; watermarks bound the disorder and
//! late pings inside the allowed lateness revise already-emitted trips.
//!
//! Run with: `cargo run --release --example sessions_out_of_order`

use general_stream_slicing::prelude::*;
use gss_data::{make_out_of_order, with_watermarks, OooConfig};

fn main() {
    // Three "trips" of pings (value = meters driven since last ping).
    let mut trips: Vec<(Time, i64)> = Vec::new();
    for trip in 0..3i64 {
        let base = trip * 100_000;
        for p in 0..200 {
            trips.push((base + p * 150, 40 + (p % 7) * 3));
        }
    }

    // 20 % of pings are delayed by up to 2 s; watermarks trail by 2 s.
    let arrivals = make_out_of_order(
        &trips,
        OooConfig { fraction_percent: 20, max_delay: 2_000, ..Default::default() },
    );
    let elements = with_watermarks(&arrivals, 500, 2_000);

    // Trip = session with a 10 s inactivity gap; total meters per trip.
    let mut op = WindowOperator::new(Sum, OperatorConfig::out_of_order(5_000));
    op.add_query(Box::new(SessionWindow::new(10_000).with_retention(1_000_000))).unwrap();

    let mut out = Vec::new();
    for e in elements {
        match e {
            StreamElement::Record { ts, value } => op.process_tuple(ts, value, &mut out),
            StreamElement::Watermark(wm) => op.process_watermark(wm, &mut out),
            StreamElement::Punctuation(_) => {}
        }
    }

    println!("trip summaries (updates revise earlier emissions):\n");
    println!("{:>10} {:>10} {:>12} {:>8}", "start", "end", "meters", "update");
    for w in &out {
        println!(
            "{:>10} {:>10} {:>12} {:>8}",
            w.range.start,
            w.range.end,
            w.value,
            if w.is_update { "yes" } else { "" }
        );
    }

    let stats = op.stats();
    println!(
        "\n{} tuples ({} out-of-order, {} dropped as too late), \
         {} slice merges from session bridging",
        stats.tuples, stats.ooo_tuples, stats.dropped_late, stats.merges
    );
    println!(
        "tuples stored: {} — sessions alone never force tuple storage",
        op.store().keeps_tuples()
    );
}
