//! The query translator of paper Figure 3: textual queries in, configured
//! slicing operators out. Queries with the same aggregation share one
//! slice store.
//!
//! Run with: `cargo run --release -p general-stream-slicing --example query_dsl`

use general_stream_slicing::prelude::*;
use gss_query::translate;

fn main() {
    let queries: Vec<QueryDsl> = [
        "SUM OVER TUMBLE 1s",
        "SUM OVER SLIDE 10s 1s",
        "AVG OVER TUMBLE 5s",
        "P95 OVER TUMBLE 5s",
        "MAX OVER SESSION 2s",
    ]
    .iter()
    .map(|q| QueryDsl::parse(q).expect("valid query"))
    .collect();

    println!("registered queries:");
    for q in &queries {
        println!("  {q}");
    }

    let mut t = translate(&queries, StreamOrder::InOrder, 0, StorePolicy::Lazy)
        .expect("compatible query set");
    println!(
        "\n{} queries -> {} operators (same-aggregation queries share slices)\n",
        queries.len(),
        t.operator_count()
    );

    // A bursty synthetic sensor: value ramps within 1-second bursts,
    // 2.5-second pauses after every burst so sessions close.
    let mut out = Vec::new();
    let mut ts: Time = 0;
    for burst in 0..12i64 {
        for i in 0..100i64 {
            t.process_tuple(ts, burst * 10 + i % 17, &mut out);
            ts += 10;
        }
        ts += 2_500;
    }

    println!("{:<6} {:>12} {:>12} {:>14}", "agg", "start", "end", "value");
    for (kind, r) in out.iter().take(6).chain(out.iter().rev().take(6).rev()) {
        let v = match r.value {
            Value::Int(i) => format!("{i}"),
            Value::Float(f) => format!("{f:.2}"),
        };
        println!("{:<6} {:>12} {:>12} {:>14}", kind.name(), r.range.start, r.range.end, v);
    }
    println!("... {} window results total", out.len());
}
