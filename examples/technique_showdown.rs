//! Every aggregation technique on one out-of-order workload: identical
//! results, very different costs — the paper's Figure 9 at example scale.
//!
//! Run with: `cargo run --release -p general-stream-slicing --example technique_showdown`

use general_stream_slicing::prelude::*;
use gss_core::operator::WindowOperator as Op;
use std::collections::BTreeMap;
use std::time::Instant;

fn main() {
    // 20 concurrent tumbling windows + a session window, 20% disorder.
    let tuples = FootballGenerator::new(FootballConfig::default()).take(200_000);
    let arrivals = make_out_of_order(
        &tuples,
        OooConfig { fraction_percent: 20, max_delay: 2_000, ..Default::default() },
    );
    let elements = with_watermarks(&arrivals, 500, 2_000);

    let add_queries = |add: &mut dyn FnMut(Box<dyn WindowFunction>)| {
        for i in 0..20i64 {
            add(Box::new(TumblingWindow::new((i % 20 + 1) * 1_000)));
        }
        add(Box::new(SessionWindow::new(1_000)));
    };

    let mut baselines: Vec<(Box<dyn WindowAggregator<Sum>>, usize)> = Vec::new();
    let lateness = 2_000;
    {
        let mut op = Op::new(Sum, OperatorConfig::out_of_order(lateness));
        add_queries(&mut |w| {
            op.add_query(w).unwrap();
        });
        baselines.push((Box::new(op), usize::MAX));
    }
    {
        let mut op =
            Op::new(Sum, OperatorConfig::out_of_order(lateness).with_policy(StorePolicy::Eager));
        add_queries(&mut |w| {
            op.add_query(w).unwrap();
        });
        baselines.push((Box::new(op), usize::MAX));
    }
    {
        let mut b = Buckets::new(Sum, BucketMode::Aggregate, StreamOrder::OutOfOrder, lateness);
        add_queries(&mut |w| {
            b.add_query(w);
        });
        baselines.push((Box::new(b), 100_000));
    }
    {
        let mut t = TupleBuffer::new(Sum, StreamOrder::OutOfOrder, lateness);
        add_queries(&mut |w| {
            t.add_query(w);
        });
        baselines.push((Box::new(t), 50_000));
    }
    {
        let mut t = AggregateTree::new(Sum, StreamOrder::OutOfOrder, lateness);
        add_queries(&mut |w| {
            t.add_query(w);
        });
        baselines.push((Box::new(t), 10_000));
    }

    println!(
        "{:<16} {:>12} {:>14} {:>12} {:>10}",
        "technique", "tuples", "tuples/sec", "windows", "memory"
    );
    let mut reference: Option<BTreeMap<(u32, i64, i64), i64>> = None;
    for (mut agg, cap) in baselines {
        let mut out = Vec::new();
        let mut finals: BTreeMap<(u32, i64, i64), i64> = BTreeMap::new();
        let mut n = 0u64;
        let start = Instant::now();
        for e in &elements {
            match e {
                StreamElement::Record { ts, value } => {
                    if n as usize >= cap {
                        break;
                    }
                    n += 1;
                    agg.process(*ts, *value, &mut out);
                }
                StreamElement::Watermark(wm) => agg.on_watermark(*wm, &mut out),
                _ => {}
            }
            for r in out.drain(..) {
                finals.insert((r.query, r.range.start, r.range.end), r.value);
            }
        }
        let secs = start.elapsed().as_secs_f64();
        println!(
            "{:<16} {:>12} {:>14.0} {:>12} {:>9}K",
            agg.name(),
            n,
            n as f64 / secs,
            finals.len(),
            agg.memory_bytes() / 1024
        );
        // Techniques processing the full stream must agree exactly.
        if cap == usize::MAX {
            match &reference {
                None => reference = Some(finals),
                Some(r) => assert_eq!(r, &finals, "{} diverged", agg.name()),
            }
        }
    }
    println!("\n(slower baselines are capped to keep the example quick;");
    println!(" uncapped techniques are asserted to produce identical windows)");
}
