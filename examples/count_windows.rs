//! Count-measure windows on an out-of-order stream — the Figure-6 shift in
//! action: a late tuple changes the count of every succeeding tuple, so
//! the last tuple of each slice moves one slice further. Invertible
//! aggregations (sum) pay one ⊖ per shift; non-invertible ones recompute.
//!
//! Run with: `cargo run --release --example count_windows`

use general_stream_slicing::prelude::*;
use gss_data::{make_out_of_order, with_watermarks, OooConfig};

fn run<A: AggregateFunction<Input = i64>>(
    f: A,
    label: &str,
    elements: &[StreamElement<i64>],
) -> (usize, u64, std::time::Duration)
where
    A::Output: std::fmt::Debug,
{
    let mut op = WindowOperator::new(f, OperatorConfig::out_of_order(5_000));
    op.add_query(Box::new(CountTumblingWindow::new(100))).unwrap();
    let started = std::time::Instant::now();
    let mut out = Vec::new();
    for e in elements {
        match e {
            StreamElement::Record { ts, value } => op.process_tuple(*ts, *value, &mut out),
            StreamElement::Watermark(wm) => op.process_watermark(*wm, &mut out),
            StreamElement::Punctuation(_) => {}
        }
    }
    let elapsed = started.elapsed();
    println!(
        "{label:<16} {:>7} windows, {:>8} shifts, {:?}",
        out.iter().filter(|w| !w.is_update).count(),
        op.stats().shifts,
        elapsed
    );
    (out.len(), op.stats().shifts, elapsed)
}

fn main() {
    let tuples: Vec<(Time, i64)> = (0..200_000).map(|i| (i, i % 97)).collect();
    let arrivals = make_out_of_order(
        &tuples,
        OooConfig { fraction_percent: 20, max_delay: 2_000, ..Default::default() },
    );
    let elements = with_watermarks(&arrivals, 1_000, 2_000);

    println!("tumbling window of 100 tuples, 20% out-of-order, delays up to 2 s\n");
    let (_, shifts_inv, t_inv) = run(Sum, "sum (invertible)", &elements);
    let (_, shifts_no, t_no) = run(SumNoInvert, "sum w/o invert", &elements);

    assert_eq!(shifts_inv, shifts_no, "same workload, same shift count");
    println!(
        "\ninvertibility exploited: identical shifts, but removals are one ⊖ \
         instead of a slice recomputation ({:.1}x faster here)",
        t_no.as_secs_f64() / t_inv.as_secs_f64()
    );
}
