//! Finger B-tree aggregate index (FiBA-style, after Tangwongsan, Hirzel
//! and Schneider: *Out-of-Order Sliding-Window Aggregation with Efficient
//! Bulk Evictions and Insertions*, arXiv 2307.11210).
//!
//! A drop-in alternative to [`crate::flatfat::FlatFat`] for the eager
//! side of the slice store, tuned for disorder and eviction instead of a
//! fixed dense leaf array:
//!
//! * **Position-indexed B-tree.** Leaves hold per-slice partial
//!   aggregates in slice order; every node caches its subtree count and
//!   subtree aggregate, so a range query combines O(log n) cached
//!   partials (left to right, preserving slice order for
//!   non-commutative ⊕).
//! * **Fingers.** Direct handles to the first and the last leaf make the
//!   two hot access patterns cheap: an in-order run commit touches the
//!   last leaf in O(1) + one path recompute, and an out-of-order write a
//!   distance `d` behind the stream head climbs the spine from the
//!   nearer finger in O(log d) instead of O(log n).
//! * **Structural inserts/removals are local.** `FlatFat` rebuilds its
//!   whole dense array on `insert`/`remove`/`remove_prefix` (O(n) per
//!   gap slice or eviction); here an insert splits at most one path and
//!   a watermark eviction of `k` leading slices releases whole subtrees
//!   along the left spine — O(k + log n) total, amortized O(1) per
//!   evicted slice.
//! * **Deferred repair.** Same contract as `FlatFat`: `update_deferred`
//!   marks the leaf-to-root path dirty and `repair_dirty` recomputes
//!   exactly the dirty subtrees, so a batch of k late writes near the
//!   stream head repairs their shared path once instead of k times.
//!
//! The dirty discipline keeps one invariant at all times: **a dirty
//! node's ancestors are dirty** (so `repair_dirty` finds every stale
//! aggregate by descending from the root into dirty children only).
//! Eager path recomputes preserve it by leaving a node dirty when any of
//! its children still is. Subtree counts are *always* maintained — even
//! under deferred writes — so position lookups never require a repair.

use crate::cast::idx32;
use crate::function::AggregateFunction;
use crate::mem::HeapSize;

/// Maximum leaf items / internal children per node. Nodes split at
/// `MAX_FANOUT + 1`. Small arity keeps split/recompute paths short and
/// one node within a cache line or two; the FiBA paper reports arity
/// 2–8 as the sweet spot for its min-arity variants.
pub const MAX_FANOUT: usize = 8;

/// Sentinel node id ("no node" / "no parent").
const NIL: u32 = u32::MAX;

/// Node payload: per-slice partials at the leaves, child ids above.
#[derive(Clone, Debug)]
enum Entries<P> {
    Leaf(Vec<Option<P>>),
    Internal(Vec<u32>),
}

#[derive(Clone, Debug)]
struct Node<P> {
    parent: u32,
    /// Leaf positions covered by this subtree. Maintained eagerly even
    /// for deferred writes (lookups go by position).
    count: usize,
    /// Cached aggregate is stale; ancestors are dirty too.
    dirty: bool,
    /// Cached subtree aggregate; `None` is the neutral element (all
    /// covered slices empty). Trustworthy iff `!dirty`.
    agg: Option<P>,
    entries: Entries<P>,
}

/// Finger B-tree over per-slice partial aggregates.
#[derive(Clone)]
pub struct FingerTree<A: AggregateFunction> {
    f: A,
    /// Arena; node ids index into it, freed slots are recycled.
    nodes: Vec<Node<A::Partial>>,
    free: Vec<u32>,
    root: u32,
    /// Left finger: the leftmost leaf (eviction / oldest slices).
    first_leaf: u32,
    /// Right finger: the rightmost leaf (the open slice).
    last_leaf: u32,
    /// Total leaf positions.
    len: usize,
    /// Number of dirty nodes (leaves and internals).
    dirty_count: usize,
}

impl<A: AggregateFunction> FingerTree<A> {
    pub fn new(f: A) -> Self {
        FingerTree {
            f,
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            first_leaf: NIL,
            last_leaf: NIL,
            len: 0,
            dirty_count: 0,
        }
    }

    /// Number of leaf positions (slices indexed).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether deferred writes are pending repair.
    pub fn has_dirty(&self) -> bool {
        self.dirty_count > 0
    }

    /// Aggregate over all leaves. The tree must be clean.
    pub fn total(&self) -> Option<&A::Partial> {
        debug_assert!(self.dirty_count == 0, "total() on a dirty tree; call repair_dirty() first");
        if self.root == NIL {
            None
        } else {
            self.nodes[idx32(self.root)].agg.as_ref()
        }
    }

    /// The leaf partial at position `i`.
    pub fn leaf(&self, i: usize) -> Option<&A::Partial> {
        assert!(i < self.len, "leaf index {i} out of bounds (len {})", self.len);
        let (leaf, off) = self.locate(i);
        match &self.nodes[idx32(leaf)].entries {
            Entries::Leaf(items) => items[off].as_ref(),
            Entries::Internal(_) => {
                debug_assert!(false, "locate() returned an internal node");
                None
            }
        }
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    /// Appends a leaf and recomputes the path to the root.
    pub fn push(&mut self, p: Option<A::Partial>) {
        let leaf = self.push_raw(p);
        self.refresh_up(leaf);
    }

    /// Appends a leaf, deferring aggregate maintenance: the path is
    /// marked dirty (counts are still kept exact) for `repair_dirty`.
    pub fn push_deferred(&mut self, p: Option<A::Partial>) {
        let leaf = self.push_raw(p);
        self.defer_refresh_up(leaf);
    }

    /// Replaces the partial at `i` and recomputes the path to the root.
    /// O(1) at the fingers plus an O(log d) path recompute.
    pub fn update(&mut self, i: usize, p: Option<A::Partial>) {
        assert!(i < self.len, "leaf index {i} out of bounds (len {})", self.len);
        let (leaf, off) = self.locate(i);
        if let Entries::Leaf(items) = &mut self.nodes[idx32(leaf)].entries {
            items[off] = p;
        }
        self.refresh_up(leaf);
    }

    /// Replaces the partial at `i`, deferring ancestor recomputation to
    /// `repair_dirty` — k writes near the stream head share one path
    /// repair instead of paying k.
    pub fn update_deferred(&mut self, i: usize, p: Option<A::Partial>) {
        assert!(i < self.len, "leaf index {i} out of bounds (len {})", self.len);
        let (leaf, off) = self.locate(i);
        if let Entries::Leaf(items) = &mut self.nodes[idx32(leaf)].entries {
            items[off] = p;
        }
        self.mark_dirty_up(leaf);
    }

    /// Marks position `i`'s path dirty without changing the leaf.
    pub fn mark_dirty(&mut self, i: usize) {
        assert!(i < self.len, "leaf index {i} out of bounds (len {})", self.len);
        let (leaf, _) = self.locate(i);
        self.mark_dirty_up(leaf);
    }

    /// Recomputes every stale aggregate, descending from the root into
    /// dirty subtrees only. Cost is proportional to the dirty region,
    /// not the tree.
    pub fn repair_dirty(&mut self) {
        if self.root != NIL && self.nodes[idx32(self.root)].dirty {
            self.repair_node(self.root);
        }
        debug_assert!(self.dirty_count == 0, "repair_dirty left dirty nodes behind");
    }

    /// Inserts a new leaf at position `i` (existing leaves at and after
    /// `i` shift right). O(log n): one leaf touched plus at most one
    /// split path — no dense rebuild.
    pub fn insert(&mut self, i: usize, p: Option<A::Partial>) {
        assert!(i <= self.len, "insert index {i} out of bounds (len {})", self.len);
        if self.root == NIL || i == self.len {
            self.push(p);
            return;
        }
        let (leaf, off) = self.locate(i);
        let li = idx32(leaf);
        let (new_len, overflow) = match &mut self.nodes[li].entries {
            Entries::Leaf(items) => {
                items.insert(off, p);
                (items.len(), items.len() > MAX_FANOUT)
            }
            Entries::Internal(_) => {
                debug_assert!(false, "locate() returned an internal node");
                (0, false)
            }
        };
        self.nodes[li].count = new_len;
        self.len += 1;
        if overflow {
            self.split_leaf(leaf);
        }
        self.refresh_up(leaf);
        self.refresh_fingers();
    }

    /// Removes the leaf at position `i`, returning its partial. Empty
    /// nodes are unlinked without rebalancing (relaxed deletion: leaf
    /// depths stay uniform, node occupancy may drop — eviction pressure
    /// deletes from the left spine, where whole-subtree release keeps
    /// the structure compact).
    pub fn remove(&mut self, i: usize) -> Option<A::Partial> {
        assert!(i < self.len, "leaf index {i} out of bounds (len {})", self.len);
        let (leaf, off) = self.locate(i);
        let li = idx32(leaf);
        let (removed, now_empty) = match &mut self.nodes[li].entries {
            Entries::Leaf(items) => {
                let r = items.remove(off);
                (r, items.is_empty())
            }
            Entries::Internal(_) => {
                debug_assert!(false, "locate() returned an internal node");
                (None, false)
            }
        };
        self.len -= 1;
        if now_empty {
            self.unlink(leaf);
        } else {
            self.refresh_up(leaf);
        }
        self.collapse_root();
        self.refresh_fingers();
        removed
    }

    /// Removes the first `k` leaf positions — the bulk-eviction path.
    /// Whole expired subtrees along the left spine are released without
    /// visiting their leaves: O(k) node frees + one O(log n) spine
    /// recompute, amortized O(1) per evicted slice.
    pub fn remove_prefix(&mut self, k: usize) {
        assert!(k <= self.len, "prefix {k} out of bounds (len {})", self.len);
        if k == 0 {
            return;
        }
        if k == self.len {
            self.clear();
            return;
        }
        let mut rem = k;
        let mut n = self.root;
        while matches!(self.nodes[idx32(n)].entries, Entries::Internal(_)) {
            while let Entries::Internal(children) = &self.nodes[idx32(n)].entries {
                let c0 = children[0];
                let cnt = self.nodes[idx32(c0)].count;
                if rem < cnt {
                    break;
                }
                if let Entries::Internal(children) = &mut self.nodes[idx32(n)].entries {
                    children.remove(0);
                }
                self.release_subtree(c0);
                rem -= cnt;
            }
            if rem == 0 {
                break;
            }
            n = match &self.nodes[idx32(n)].entries {
                Entries::Internal(children) => children[0],
                Entries::Leaf(_) => n,
            };
        }
        if rem > 0 {
            // `n` is the boundary leaf: k < len guarantees it survives
            // with at least one item.
            if let Entries::Leaf(items) = &mut self.nodes[idx32(n)].entries {
                debug_assert!(rem < items.len(), "boundary leaf would be emptied");
                items.drain(..rem);
            }
        }
        self.len -= k;
        self.refresh_up(n);
        self.collapse_root();
        self.refresh_fingers();
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Aggregate over leaf positions `[l, r)`, combined left to right
    /// (slice order). The tree must be clean. O(log n) cached-partial
    /// combines.
    pub fn query(&self, l: usize, r: usize) -> Option<A::Partial> {
        assert!(l <= r && r <= self.len, "invalid query range [{l}, {r}) of len {}", self.len);
        debug_assert!(self.dirty_count == 0, "query() on a dirty tree; call repair_dirty() first");
        if l == r || self.root == NIL {
            return None;
        }
        self.query_node(self.root, l, r, None)
    }

    /// Combines `[l, r)` of the subtree at `n` onto `acc`. Caller
    /// guarantees the range is non-empty and within the subtree.
    fn query_node(
        &self,
        n: u32,
        l: usize,
        r: usize,
        acc: Option<A::Partial>,
    ) -> Option<A::Partial> {
        let node = &self.nodes[idx32(n)];
        if l == 0 && r >= node.count {
            return self.f.combine_opt(acc, node.agg.as_ref());
        }
        match &node.entries {
            Entries::Leaf(items) => {
                let mut acc = acc;
                for it in &items[l..r.min(items.len())] {
                    acc = self.f.combine_opt(acc, it.as_ref());
                }
                acc
            }
            Entries::Internal(children) => {
                let mut acc = acc;
                let mut start = 0usize;
                for &c in children {
                    let cnt = self.nodes[idx32(c)].count;
                    let end = start + cnt;
                    if end > l && start < r {
                        let cl = l.saturating_sub(start);
                        let cr = (r - start).min(cnt);
                        acc = self.query_node(c, cl, cr, acc);
                    }
                    if end >= r {
                        break;
                    }
                    start = end;
                }
                acc
            }
        }
    }

    // ------------------------------------------------------------------
    // Internal structure maintenance
    // ------------------------------------------------------------------

    /// Leaf id and in-leaf offset of position `i`. O(1) on a finger
    /// leaf; otherwise climbs the spine from the nearer finger until
    /// the subtree covers `i`, then descends — O(log d) for distance
    /// `d` from the nearer end.
    fn locate(&self, i: usize) -> (u32, usize) {
        debug_assert!(i < self.len, "locate({i}) out of bounds (len {})", self.len);
        let last = self.last_leaf;
        let last_count = self.nodes[idx32(last)].count;
        if i >= self.len - last_count {
            return (last, i - (self.len - last_count));
        }
        let first = self.first_leaf;
        let first_count = self.nodes[idx32(first)].count;
        if i < first_count {
            return (first, i);
        }
        if i <= self.len - 1 - i {
            // Left-spine ancestors of the first leaf cover prefixes
            // [0, count): climb until the prefix contains i.
            let mut n = first;
            while self.nodes[idx32(n)].count <= i {
                n = self.nodes[idx32(n)].parent;
                debug_assert!(n != NIL, "climb past root (counts corrupt)");
            }
            self.descend(n, i)
        } else {
            // Right-spine ancestors of the last leaf cover suffixes.
            let from_end = self.len - 1 - i;
            let mut n = last;
            while self.nodes[idx32(n)].count <= from_end {
                n = self.nodes[idx32(n)].parent;
                debug_assert!(n != NIL, "climb past root (counts corrupt)");
            }
            let start = self.len - self.nodes[idx32(n)].count;
            self.descend(n, i - start)
        }
    }

    /// Descends from `n` to the leaf containing subtree-relative
    /// position `i`.
    fn descend(&self, mut n: u32, mut i: usize) -> (u32, usize) {
        debug_assert!(i < self.nodes[idx32(n)].count);
        loop {
            match &self.nodes[idx32(n)].entries {
                Entries::Leaf(_) => return (n, i),
                Entries::Internal(children) => {
                    let mut next = children[children.len() - 1];
                    for &c in children {
                        let cnt = self.nodes[idx32(c)].count;
                        if i < cnt {
                            next = c;
                            break;
                        }
                        i -= cnt;
                    }
                    n = next;
                }
            }
        }
    }

    fn alloc(&mut self, node: Node<A::Partial>) -> u32 {
        match self.free.pop() {
            Some(id) => {
                self.nodes[idx32(id)] = node;
                id
            }
            None => {
                let id = u32::try_from(self.nodes.len()).unwrap_or(NIL);
                debug_assert!(id != NIL, "node arena overflow");
                self.nodes.push(node);
                id
            }
        }
    }

    /// Returns a node to the free list, dropping its payload and
    /// resolving its dirty flag so the global counter stays exact.
    fn free_node(&mut self, id: u32) {
        let ni = idx32(id);
        if self.nodes[ni].dirty {
            self.nodes[ni].dirty = false;
            self.dirty_count -= 1;
        }
        self.nodes[ni].agg = None;
        self.nodes[ni].parent = NIL;
        self.nodes[ni].count = 0;
        match &mut self.nodes[ni].entries {
            Entries::Leaf(items) => items.clear(),
            Entries::Internal(children) => children.clear(),
        }
        self.free.push(id);
    }

    /// Frees a whole subtree without visiting leaf positions one by one.
    fn release_subtree(&mut self, n: u32) {
        if let Entries::Internal(children) = &self.nodes[idx32(n)].entries {
            let mut kids = [NIL; MAX_FANOUT];
            let k = children.len().min(MAX_FANOUT);
            kids[..k].copy_from_slice(&children[..k]);
            for &c in &kids[..k] {
                self.release_subtree(c);
            }
        }
        self.free_node(n);
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.root = NIL;
        self.first_leaf = NIL;
        self.last_leaf = NIL;
        self.len = 0;
        self.dirty_count = 0;
    }

    /// Recomputes one node's count — and, unless a child is still
    /// dirty, its aggregate — from its direct children, resolving the
    /// node's dirty flag. A node above a dirty child stays dirty (its
    /// cached aggregate cannot be trusted until `repair_dirty`), which
    /// preserves the dirty-parent invariant across eager recomputes.
    fn refresh_node(&mut self, n: u32) {
        let ni = idx32(n);
        let (count, agg, stale) = match &self.nodes[ni].entries {
            Entries::Leaf(items) => {
                let mut agg: Option<A::Partial> = None;
                for it in items {
                    agg = self.f.combine_opt(agg, it.as_ref());
                }
                (items.len(), agg, false)
            }
            Entries::Internal(children) => {
                let mut count = 0usize;
                let mut child_dirty = false;
                for &c in children {
                    let child = &self.nodes[idx32(c)];
                    count += child.count;
                    child_dirty |= child.dirty;
                }
                if child_dirty {
                    (count, None, true)
                } else {
                    let mut agg: Option<A::Partial> = None;
                    for &c in children {
                        agg = self.f.combine_opt(agg, self.nodes[idx32(c)].agg.as_ref());
                    }
                    (count, agg, false)
                }
            }
        };
        let node = &mut self.nodes[ni];
        node.count = count;
        if stale {
            if !node.dirty {
                node.dirty = true;
                self.dirty_count += 1;
            }
        } else {
            node.agg = agg;
            if node.dirty {
                node.dirty = false;
                self.dirty_count -= 1;
            }
        }
    }

    /// Recomputes every node from `n` to the root.
    fn refresh_up(&mut self, mut n: u32) {
        while n != NIL {
            self.refresh_node(n);
            n = self.nodes[idx32(n)].parent;
        }
    }

    /// Marks `n` and its ancestors dirty without touching counts or
    /// aggregates. Stops at the first already-dirty node — the
    /// dirty-parent invariant guarantees everything above is marked.
    fn mark_dirty_up(&mut self, mut n: u32) {
        while n != NIL {
            let node = &mut self.nodes[idx32(n)];
            if node.dirty {
                break;
            }
            node.dirty = true;
            self.dirty_count += 1;
            n = node.parent;
        }
    }

    /// Upward pass for deferred structural writes: counts are
    /// recomputed (position lookups must stay exact) but aggregates are
    /// left stale and the whole path is marked dirty.
    fn defer_refresh_up(&mut self, mut n: u32) {
        while n != NIL {
            let ni = idx32(n);
            let count = match &self.nodes[ni].entries {
                Entries::Leaf(items) => items.len(),
                Entries::Internal(children) => {
                    children.iter().map(|&c| self.nodes[idx32(c)].count).sum()
                }
            };
            let node = &mut self.nodes[ni];
            node.count = count;
            if !node.dirty {
                node.dirty = true;
                self.dirty_count += 1;
            }
            n = node.parent;
        }
    }

    /// Recomputes a dirty subtree bottom-up, descending into dirty
    /// children only.
    fn repair_node(&mut self, n: u32) {
        let mut kids = [NIL; MAX_FANOUT];
        let mut k = 0usize;
        if let Entries::Internal(children) = &self.nodes[idx32(n)].entries {
            k = children.len().min(MAX_FANOUT);
            kids[..k].copy_from_slice(&children[..k]);
        }
        for &c in &kids[..k] {
            if self.nodes[idx32(c)].dirty {
                self.repair_node(c);
            }
        }
        self.refresh_node(n);
        debug_assert!(!self.nodes[idx32(n)].dirty, "repair left a node dirty");
    }

    /// Appends `p` to the last leaf (splitting on overflow, growing the
    /// root as needed) and returns the leaf holding the new item.
    /// Ancestor counts/aggregates are NOT updated — callers follow with
    /// `refresh_up` or `defer_refresh_up`.
    fn push_raw(&mut self, p: Option<A::Partial>) -> u32 {
        self.len += 1;
        if self.root == NIL {
            let leaf = self.alloc(Node {
                parent: NIL,
                count: 1,
                dirty: false,
                agg: None,
                entries: Entries::Leaf(vec![p]),
            });
            self.root = leaf;
            self.first_leaf = leaf;
            self.last_leaf = leaf;
            return leaf;
        }
        let leaf = self.last_leaf;
        let li = idx32(leaf);
        let (new_len, overflow) = match &mut self.nodes[li].entries {
            Entries::Leaf(items) => {
                items.push(p);
                (items.len(), items.len() > MAX_FANOUT)
            }
            Entries::Internal(_) => {
                debug_assert!(false, "last-leaf finger points at an internal node");
                (0, false)
            }
        };
        self.nodes[li].count = new_len;
        if overflow {
            self.split_leaf(leaf);
            self.refresh_fingers();
            return self.last_leaf;
        }
        leaf
    }

    /// Splits an overflowing leaf in half; the right half becomes a new
    /// sibling attached to the same parent (cascading splits upward).
    fn split_leaf(&mut self, leaf: u32) {
        let li = idx32(leaf);
        let right_items = match &mut self.nodes[li].entries {
            Entries::Leaf(items) => items.split_off(items.len() / 2),
            Entries::Internal(_) => {
                debug_assert!(false, "split_leaf on an internal node");
                return;
            }
        };
        let right = self.alloc(Node {
            parent: NIL,
            count: right_items.len(),
            dirty: false,
            agg: None,
            entries: Entries::Leaf(right_items),
        });
        self.refresh_node(leaf);
        self.refresh_node(right);
        self.insert_after(leaf, right);
    }

    /// Splits an overflowing internal node in half (children move to a
    /// new right sibling).
    fn split_internal(&mut self, node: u32) {
        let ni = idx32(node);
        let right_children = match &mut self.nodes[ni].entries {
            Entries::Internal(children) => children.split_off(children.len() / 2),
            Entries::Leaf(_) => {
                debug_assert!(false, "split_internal on a leaf");
                return;
            }
        };
        let mut moved = [NIL; MAX_FANOUT];
        let k = right_children.len().min(MAX_FANOUT);
        moved[..k].copy_from_slice(&right_children[..k]);
        let right = self.alloc(Node {
            parent: NIL,
            count: 0,
            dirty: false,
            agg: None,
            entries: Entries::Internal(right_children),
        });
        for &c in &moved[..k] {
            self.nodes[idx32(c)].parent = right;
        }
        self.refresh_node(node);
        self.refresh_node(right);
        self.insert_after(node, right);
    }

    /// Links `right` as the sibling immediately after `left`, growing a
    /// new root when `left` was the root.
    fn insert_after(&mut self, left: u32, right: u32) {
        let parent = self.nodes[idx32(left)].parent;
        if parent == NIL {
            let new_root = self.alloc(Node {
                parent: NIL,
                count: 0,
                dirty: false,
                agg: None,
                entries: Entries::Internal(vec![left, right]),
            });
            self.nodes[idx32(left)].parent = new_root;
            self.nodes[idx32(right)].parent = new_root;
            self.root = new_root;
            self.refresh_node(new_root);
            return;
        }
        self.nodes[idx32(right)].parent = parent;
        let pi = idx32(parent);
        let overflow = match &mut self.nodes[pi].entries {
            Entries::Internal(children) => {
                let pos = children.iter().position(|&c| c == left).unwrap_or(children.len() - 1);
                children.insert(pos + 1, right);
                children.len() > MAX_FANOUT
            }
            Entries::Leaf(_) => {
                debug_assert!(false, "leaf as a parent node");
                false
            }
        };
        if overflow {
            self.split_internal(parent);
        }
    }

    /// Unlinks an empty node from its parent chain (relaxed deletion —
    /// no rebalancing; leaf depths stay uniform).
    fn unlink(&mut self, n: u32) {
        let parent = self.nodes[idx32(n)].parent;
        self.free_node(n);
        if parent == NIL {
            self.root = NIL;
            self.first_leaf = NIL;
            self.last_leaf = NIL;
            return;
        }
        let pi = idx32(parent);
        let now_empty = match &mut self.nodes[pi].entries {
            Entries::Internal(children) => {
                if let Some(pos) = children.iter().position(|&c| c == n) {
                    children.remove(pos);
                }
                children.is_empty()
            }
            Entries::Leaf(_) => {
                debug_assert!(false, "leaf as a parent node");
                false
            }
        };
        if now_empty {
            self.unlink(parent);
        } else {
            self.refresh_up(parent);
        }
    }

    /// Shrinks the root while it is an internal node with one child.
    fn collapse_root(&mut self) {
        while self.root != NIL {
            let only = match &self.nodes[idx32(self.root)].entries {
                Entries::Internal(children) if children.len() == 1 => children[0],
                _ => break,
            };
            let old = self.root;
            self.nodes[idx32(only)].parent = NIL;
            self.root = only;
            self.free_node(old);
        }
    }

    /// Re-derives both fingers by walking the outer spines. O(height);
    /// called only after structural changes.
    fn refresh_fingers(&mut self) {
        if self.root == NIL {
            self.first_leaf = NIL;
            self.last_leaf = NIL;
            return;
        }
        let mut n = self.root;
        loop {
            match &self.nodes[idx32(n)].entries {
                Entries::Leaf(_) => break,
                Entries::Internal(children) => n = children[0],
            }
        }
        self.first_leaf = n;
        let mut n = self.root;
        loop {
            match &self.nodes[idx32(n)].entries {
                Entries::Leaf(_) => break,
                Entries::Internal(children) => n = children[children.len() - 1],
            }
        }
        self.last_leaf = n;
    }

    // ------------------------------------------------------------------
    // Audit
    // ------------------------------------------------------------------

    /// Full structural check: parent links, exact subtree counts,
    /// uniform leaf depth (the finger-height invariant), fanout bounds,
    /// the dirty-parent invariant, the dirty counter, aggregate
    /// presence-consistency on clean nodes, and finger correctness.
    /// Always compiled (integration tests outside this crate drive it);
    /// the audit build additionally runs it in the store's sweep.
    pub fn assert_invariants(&self) {
        if self.root == NIL {
            assert_eq!(self.len, 0, "empty tree with non-zero len");
            assert_eq!(self.dirty_count, 0, "empty tree with dirty nodes");
            assert!(self.first_leaf == NIL && self.last_leaf == NIL, "fingers on empty tree");
            return;
        }
        assert_eq!(self.nodes[idx32(self.root)].parent, NIL, "root has a parent");
        if let Entries::Internal(children) = &self.nodes[idx32(self.root)].entries {
            assert!(children.len() >= 2, "internal root with fewer than two children");
        }
        let mut dirty_seen = 0usize;
        let mut leaf_depth: Option<usize> = None;
        let mut leaves: Vec<u32> = Vec::new();
        let count = self.check_node(self.root, 0, &mut dirty_seen, &mut leaf_depth, &mut leaves);
        assert_eq!(count, self.len, "root subtree count != len");
        assert_eq!(dirty_seen, self.dirty_count, "dirty counter out of sync");
        assert_eq!(leaves.first().copied(), Some(self.first_leaf), "left finger stale");
        assert_eq!(leaves.last().copied(), Some(self.last_leaf), "right finger stale");
    }

    fn check_node(
        &self,
        n: u32,
        depth: usize,
        dirty_seen: &mut usize,
        leaf_depth: &mut Option<usize>,
        leaves: &mut Vec<u32>,
    ) -> usize {
        let node = &self.nodes[idx32(n)];
        if node.dirty {
            *dirty_seen += 1;
        }
        match &node.entries {
            Entries::Leaf(items) => {
                assert!(!items.is_empty(), "empty leaf left linked");
                assert!(items.len() <= MAX_FANOUT, "leaf over fanout");
                match leaf_depth {
                    Some(d) => assert_eq!(*d, depth, "leaf depth skew (finger heights broken)"),
                    None => *leaf_depth = Some(depth),
                }
                assert_eq!(node.count, items.len(), "leaf count mismatch");
                if !node.dirty {
                    let present = items.iter().any(|i| i.is_some());
                    assert_eq!(node.agg.is_some(), present, "leaf aggregate presence mismatch");
                }
                leaves.push(n);
                items.len()
            }
            Entries::Internal(children) => {
                assert!(!children.is_empty(), "empty internal node left linked");
                assert!(children.len() <= MAX_FANOUT, "internal node over fanout");
                let mut sum = 0usize;
                let mut child_dirty = false;
                let mut any_present = false;
                for &c in children {
                    assert_eq!(self.nodes[idx32(c)].parent, n, "child parent link broken");
                    child_dirty |= self.nodes[idx32(c)].dirty;
                    any_present |= self.nodes[idx32(c)].agg.is_some();
                    sum += self.check_node(c, depth + 1, dirty_seen, leaf_depth, leaves);
                }
                if child_dirty {
                    assert!(node.dirty, "dirty child under a clean parent");
                }
                if !node.dirty {
                    assert_eq!(
                        node.agg.is_some(),
                        any_present,
                        "internal aggregate presence mismatch"
                    );
                }
                assert_eq!(node.count, sum, "subtree count mismatch");
                sum
            }
        }
    }
}

impl<A: AggregateFunction> HeapSize for FingerTree<A> {
    fn heap_bytes(&self) -> usize {
        let mut bytes = self.nodes.capacity() * std::mem::size_of::<Node<A::Partial>>()
            + self.free.capacity() * std::mem::size_of::<u32>();
        for node in &self.nodes {
            bytes += node.agg.heap_bytes();
            bytes += match &node.entries {
                Entries::Leaf(items) => {
                    items.capacity() * std::mem::size_of::<Option<A::Partial>>()
                        + items.iter().map(HeapSize::heap_bytes).sum::<usize>()
                }
                Entries::Internal(children) => children.capacity() * std::mem::size_of::<u32>(),
            };
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::{Concat, SumI64};

    fn filled(n: usize) -> FingerTree<SumI64> {
        let mut t = FingerTree::new(SumI64);
        for i in 0..n {
            t.push(Some(i as i64 + 1));
        }
        t.assert_invariants();
        t
    }

    #[test]
    fn push_and_total() {
        let t = filled(100);
        assert_eq!(t.len(), 100);
        assert_eq!(t.total().copied(), Some((1..=100).sum()));
        for i in 0..100 {
            assert_eq!(t.leaf(i).copied(), Some(i as i64 + 1));
        }
    }

    #[test]
    fn empty_tree() {
        let t: FingerTree<SumI64> = FingerTree::new(SumI64);
        assert!(t.is_empty());
        assert_eq!(t.total(), None);
        assert_eq!(t.query(0, 0), None);
        t.assert_invariants();
    }

    #[test]
    fn query_ranges_match_scan() {
        let t = filled(73);
        for l in 0..=73 {
            for r in l..=73 {
                let expect: i64 = (l..r).map(|i| i as i64 + 1).sum();
                let got = t.query(l, r).unwrap_or(0);
                assert_eq!(got, expect, "range [{l}, {r})");
            }
        }
    }

    #[test]
    fn update_eager_and_deferred() {
        let mut t = filled(50);
        t.update(10, Some(1000));
        t.assert_invariants();
        assert!(!t.has_dirty());
        assert_eq!(t.leaf(10).copied(), Some(1000));
        let expect: i64 = (1..=50).sum::<i64>() - 11 + 1000;
        assert_eq!(t.total().copied(), Some(expect));

        t.update_deferred(3, Some(2000));
        assert!(t.has_dirty());
        t.assert_invariants();
        t.repair_dirty();
        assert!(!t.has_dirty());
        t.assert_invariants();
        assert_eq!(t.total().copied(), Some(expect - 4 + 2000));
    }

    #[test]
    fn eager_update_amid_deferred_writes_keeps_repairs_exact() {
        // An eager recompute must not wash out dirt below a shared
        // ancestor (the dirty-parent invariant).
        let mut t = filled(64);
        t.update_deferred(1, Some(-100));
        t.update(2, Some(-200));
        t.update_deferred(62, Some(-300));
        t.update(63, Some(-400));
        t.assert_invariants();
        t.repair_dirty();
        t.assert_invariants();
        let mut expect: i64 = (1..=64).sum();
        expect += -100 - 2 - 200 - 3 - 300 - 63 - 400 - 64;
        assert_eq!(t.total().copied(), Some(expect));
    }

    #[test]
    fn insert_shifts_positions() {
        let mut t = filled(20);
        t.insert(5, Some(-7));
        t.assert_invariants();
        assert_eq!(t.len(), 21);
        assert_eq!(t.leaf(5).copied(), Some(-7));
        assert_eq!(t.leaf(6).copied(), Some(6));
        assert_eq!(t.total().copied(), Some((1..=20).sum::<i64>() - 7));
        t.insert(0, None);
        t.insert(22, Some(9));
        t.assert_invariants();
        assert_eq!(t.leaf(0), None);
        assert_eq!(t.leaf(22).copied(), Some(9));
    }

    #[test]
    fn remove_shifts_positions() {
        let mut t = filled(30);
        assert_eq!(t.remove(4), Some(5));
        t.assert_invariants();
        assert_eq!(t.len(), 29);
        assert_eq!(t.leaf(4).copied(), Some(6));
        assert_eq!(t.total().copied(), Some((1..=30).sum::<i64>() - 5));
        // drain everything front-first
        for _ in 0..29 {
            t.remove(0);
            t.assert_invariants();
        }
        assert!(t.is_empty());
        assert_eq!(t.total(), None);
    }

    #[test]
    fn remove_prefix_bulk_evicts() {
        for n in [1usize, 7, 8, 9, 64, 100, 257] {
            for k in [0usize, 1, 3, 8, 17, 63] {
                if k > n {
                    continue;
                }
                let mut t = filled(n);
                t.remove_prefix(k);
                t.assert_invariants();
                assert_eq!(t.len(), n - k);
                let expect: i64 = (k..n).map(|i| i as i64 + 1).sum();
                assert_eq!(t.query(0, n - k).unwrap_or(0), expect, "n={n} k={k}");
            }
        }
        let mut t = filled(40);
        t.remove_prefix(40);
        assert!(t.is_empty());
        t.assert_invariants();
    }

    #[test]
    fn remove_prefix_with_pending_dirt_behind_keeps_repairs() {
        let mut t = filled(100);
        t.update_deferred(90, Some(0));
        t.remove_prefix(50);
        t.assert_invariants();
        assert!(t.has_dirty());
        t.repair_dirty();
        t.assert_invariants();
        let expect: i64 = (50..100).map(|i| i as i64 + 1).sum::<i64>() - 91;
        assert_eq!(t.total().copied(), Some(expect));
    }

    #[test]
    fn non_commutative_order_is_preserved() {
        let mut t = FingerTree::new(Concat);
        for i in 0..40i64 {
            t.push(Some(vec![i]));
        }
        let q = t.query(3, 27);
        let expect: Vec<i64> = (3..27).collect();
        assert_eq!(q, Some(expect));
        t.insert(10, Some(vec![200]));
        let q = t.query(8, 13);
        assert_eq!(q, Some(vec![8, 9, 200, 10, 11]));
    }

    #[test]
    fn deferred_push_keeps_counts_exact() {
        let mut t = filled(9);
        for i in 0..30 {
            t.push_deferred(Some(100 + i));
            // position lookups must work while dirty
            assert_eq!(t.leaf(9 + i as usize).copied(), Some(100 + i));
        }
        assert!(t.has_dirty());
        t.assert_invariants();
        t.repair_dirty();
        t.assert_invariants();
        let expect: i64 = (1..=9).sum::<i64>() + (100..130).sum::<i64>();
        assert_eq!(t.total().copied(), Some(expect));
    }

    #[test]
    fn mark_dirty_forces_path_recompute() {
        let mut t = filled(16);
        // Mutating a leaf through update_deferred then marking again is
        // idempotent on the dirty counter.
        t.mark_dirty(0);
        let d = t.dirty_count;
        t.mark_dirty(0);
        assert_eq!(t.dirty_count, d);
        t.repair_dirty();
        assert_eq!(t.total().copied(), Some((1..=16).sum()));
    }

    #[test]
    fn heap_bytes_tracks_arena() {
        let t = filled(1000);
        let bytes = t.heap_bytes();
        assert!(bytes >= 1000 * std::mem::size_of::<Option<i64>>());
        let empty: FingerTree<SumI64> = FingerTree::new(SumI64);
        assert_eq!(empty.heap_bytes(), 0);
    }
}
