//! The general stream slicing window operator (paper Section 5).
//!
//! Combines the three processing components of Figure 7 — the **Stream
//! Slicer** (creates slices on the fly for in-order tuples), the **Slice
//! Manager** (triggers merge/split/update operations), and the **Window
//! Manager** (computes final window aggregates) — around the shared
//! [`SliceStore`]. The operator adapts automatically to the workload
//! characteristics of its registered queries (Section 5.1): it stores
//! tuples only when required, uses ⊖ when the function is invertible, and
//! recomputes from source tuples only when unavoidable.

use crate::aggregator::WindowAggregator;
use crate::cast;
use crate::characteristics::WorkloadCharacteristics;
use crate::function::AggregateFunction;
use crate::mem::HeapSize;
use crate::result::WindowResult;
use crate::store::{SliceStore, StorePolicy};
use crate::time::{Count, Measure, Range, StreamOrder, Time, TIME_MAX, TIME_MIN};
use crate::window::{ContextEdges, Query, QueryId, WindowFunction};

/// Configuration of a [`WindowOperator`].
#[derive(Debug, Clone, Copy)]
pub struct OperatorConfig {
    /// Declared stream order (workload characteristic 1). In-order streams
    /// emit windows directly — every tuple acts as a watermark; out-of-order
    /// streams wait for explicit watermarks.
    pub order: StreamOrder,
    /// Lazy or eager final aggregation (Table 1 rows 5–8).
    pub policy: StorePolicy,
    /// How long after the watermark late tuples still update emitted
    /// windows (paper Section 2). Ignored for in-order streams.
    pub allowed_lateness: Time,
    /// Ablation switch: keep tuples in slices even when the Figure-4
    /// decision logic would drop them. Used to measure the value of the
    /// adaptive storage decision; never needed in production.
    pub force_tuple_storage: bool,
    /// Ablation switch: slice at window ends even on in-order streams
    /// (the paper's out-of-order edge set). Measures the value of
    /// start-only slicing; never needed in production.
    pub force_end_edges: bool,
    /// Ablation switch: disable the out-of-order batch path (slice-grouped
    /// late runs + deferred FlatFAT repair), so every late tuple takes the
    /// per-tuple path as in the original batched fast path. Used to
    /// measure the value of late-run grouping; never needed in production.
    pub disable_ooo_batching: bool,
}

impl Default for OperatorConfig {
    fn default() -> Self {
        OperatorConfig {
            order: StreamOrder::InOrder,
            policy: StorePolicy::Lazy,
            allowed_lateness: 0,
            force_tuple_storage: false,
            force_end_edges: false,
            disable_ooo_batching: false,
        }
    }
}

impl OperatorConfig {
    pub fn in_order() -> Self {
        Self::default()
    }

    pub fn out_of_order(allowed_lateness: Time) -> Self {
        OperatorConfig {
            order: StreamOrder::OutOfOrder,
            policy: StorePolicy::Lazy,
            allowed_lateness,
            ..Default::default()
        }
    }

    pub fn with_policy(mut self, policy: StorePolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// Why a query could not be registered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// Count-measure and time-measure queries cannot share one operator on
    /// an out-of-order stream: the Figure-6 count shift moves tuples across
    /// slice boundaries, which would corrupt time-window aggregates. (The
    /// paper evaluates the two measures separately; in-order streams may
    /// mix them freely.)
    MixedMeasuresOutOfOrder,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::MixedMeasuresOutOfOrder => write!(
                f,
                "count-measure and time-measure queries cannot be mixed on an \
                 out-of-order stream"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

/// Operational counters, useful for tests and the evaluation harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OperatorStats {
    pub tuples: u64,
    pub ooo_tuples: u64,
    pub dropped_late: u64,
    pub slices_created: u64,
    pub splits: u64,
    pub merges: u64,
    pub shifts: u64,
    pub windows_emitted: u64,
    pub updates_emitted: u64,
    /// Bulk runs folded through a hand-written
    /// [`AggregateFunction::fold_slice`] kernel.
    pub fold_kernel_hits: u64,
    /// Bulk runs folded through the default lift/combine loop (no kernel,
    /// or the run was too short to amortize a gather).
    pub fold_kernel_misses: u64,
}

/// One covering slice's worth of late tuples deferred during a batch:
/// their buffered values (folded in bulk at flush time), extreme
/// timestamps, plus the slice's bounds so membership tests need no store
/// lookup.
struct LateGroup<V> {
    idx: usize,
    start: Time,
    end: Time,
    /// Values in arrival order, contiguous so the flush can feed them
    /// straight into the bulk fold kernel. This path only runs for
    /// commutative functions without tuple storage, so arrival-order
    /// folding is unobservable.
    values: Vec<V>,
    /// Parallel per-value timestamps, collected **only** when the function
    /// declares a paired-column kernel (`has_pair_kernel`) — the flush then
    /// folds through `fold_slice_pairs` instead of `fold_slice`. Empty
    /// otherwise, so the plain late path pays nothing for the hook.
    times: Vec<Time>,
    t_first: Time,
    t_last: Time,
}

impl<V: Clone> Clone for LateGroup<V> {
    fn clone(&self) -> Self {
        LateGroup {
            idx: self.idx,
            start: self.start,
            end: self.end,
            values: self.values.clone(),
            times: self.times.clone(),
            t_first: self.t_first,
            t_last: self.t_last,
        }
    }
}

/// Rebuilds the batched late path's group-lookup ladder: the (at most
/// four) alive groups sorted by slice start, unused slots pushed out of
/// range (`TIME_MAX` start never matches the ladder, `TIME_MIN` end
/// fails the interval check). Returns `false` when more groups are alive
/// than the ladder holds; the caller then routes every tuple through the
/// scanning cold path instead.
fn build_group_table<V>(
    groups: &[LateGroup<V>],
    starts: &mut [Time; 4],
    ends: &mut [Time; 4],
    pos: &mut [usize; 4],
) -> bool {
    if groups.len() > 4 {
        return false;
    }
    *starts = [TIME_MAX; 4];
    *ends = [TIME_MIN; 4];
    *pos = [0; 4];
    let mut order = [0usize, 1, 2, 3];
    for k in 1..groups.len() {
        let mut m = k;
        while m > 0 && groups[order[m]].start < groups[order[m - 1]].start {
            order.swap(m, m - 1);
            m -= 1;
        }
    }
    for (slot, &gi) in order[..groups.len()].iter().enumerate() {
        starts[slot] = groups[gi].start;
        ends[slot] = groups[gi].end;
        pos[slot] = gi;
    }
    true
}

/// One worker-local pre-aggregated slice from the intra-query parallel
/// path: everything a worker folded into the static-edge span
/// `[start, end)`, plus the extreme timestamps and tuple count. Produced
/// by worker-side slicers, consumed by
/// [`WindowOperator::merge_parallel_partials`].
pub struct SlicePartial<A: AggregateFunction> {
    /// Slice span start (a static window edge).
    pub start: Time,
    /// Slice span end (the next static window edge after `start`).
    pub end: Time,
    /// ⊕-fold of the lifted values of every contributing tuple.
    pub partial: A::Partial,
    /// Earliest contributing timestamp (`start <= t_first`).
    pub t_first: Time,
    /// Latest contributing timestamp (`t_last < end`).
    pub t_last: Time,
    /// Number of contributing tuples.
    pub n: u64,
}

impl<A: AggregateFunction> Clone for SlicePartial<A> {
    fn clone(&self) -> Self {
        SlicePartial {
            start: self.start,
            end: self.end,
            partial: self.partial.clone(),
            t_first: self.t_first,
            t_last: self.t_last,
            n: self.n,
        }
    }
}

/// Read-only view over one ingestion batch, abstracting its memory
/// layout: array-of-structs (`&[(Time, V)]`, the classic `process_batch`
/// input) or struct-of-arrays (parallel `times` / `values` columns from
/// the stream layer's columnar chunks). Batch processing is generic over
/// the view, so both layouts share the run-detection and deferral logic
/// while the SoA layout feeds bulk fold kernels without re-materializing
/// tuple pairs.
trait BatchView<V> {
    fn len(&self) -> usize;
    fn ts(&self, i: usize) -> Time;
    fn value(&self, i: usize) -> &V;
    /// Bulk-appends `[from, to)` onto the run buffer's columns.
    fn extend_columns(&self, from: usize, to: usize, times: &mut Vec<Time>, values: &mut Vec<V>);
}

impl<V: Clone> BatchView<V> for &[(Time, V)] {
    fn len(&self) -> usize {
        (**self).len()
    }
    fn ts(&self, i: usize) -> Time {
        self[i].0
    }
    fn value(&self, i: usize) -> &V {
        &self[i].1
    }
    fn extend_columns(&self, from: usize, to: usize, times: &mut Vec<Time>, values: &mut Vec<V>) {
        times.extend(self[from..to].iter().map(|&(t, _)| t));
        values.extend(self[from..to].iter().map(|(_, v)| v.clone()));
    }
}

/// The struct-of-arrays batch view: parallel timestamp/value columns.
struct ColumnsView<'a, V> {
    times: &'a [Time],
    values: &'a [V],
}

impl<V: Clone> BatchView<V> for ColumnsView<'_, V> {
    fn len(&self) -> usize {
        self.times.len()
    }
    fn ts(&self, i: usize) -> Time {
        self.times[i]
    }
    fn value(&self, i: usize) -> &V {
        &self.values[i]
    }
    fn extend_columns(&self, from: usize, to: usize, times: &mut Vec<Time>, values: &mut Vec<V>) {
        times.extend_from_slice(&self.times[from..to]);
        values.extend_from_slice(&self.values[from..to]);
    }
}

/// The general stream slicing operator.
pub struct WindowOperator<A: AggregateFunction> {
    f: A,
    cfg: OperatorConfig,
    queries: Vec<Query>,
    next_query_id: QueryId,
    chars: WorkloadCharacteristics,
    store: SliceStore<A>,
    /// Cached next time-measure window edge (end of the open slice), the
    /// single comparison the hot path performs per tuple.
    next_time_edge: Option<Time>,
    /// Cached next count-measure window edge.
    next_count_edge: Option<Count>,
    /// Highest event time processed so far.
    max_ts: Time,
    /// Highest punctuation position seen (punctuations can mark window
    /// ends beyond the latest tuple).
    max_punct: Time,
    /// Last processed watermark.
    watermark: Time,
    /// Upper bound of the last trigger sweep, per measure.
    last_trigger_time: Time,
    last_trigger_count: Count,
    /// Longest time-measure window extent among registered queries.
    max_time_extent: i64,
    /// Longest count-measure window extent among registered queries.
    max_count_extent: i64,
    /// Earliest time at which a time-measure window can end next; lets the
    /// in-order hot path skip the trigger sweep (one comparison per tuple).
    next_trigger_time: Option<Time>,
    /// Earliest count at which a count-measure window can end next.
    next_trigger_count: Option<Count>,
    /// Sweep on every tuple (context-aware or unknown-end windows).
    sweep_always: bool,
    /// At least one trigger sweep has run (the first tuple always sweeps).
    swept_once: bool,
    stats: OperatorStats,
    /// Late tuples deferred within one `process_batch_tuples` call; sorted
    /// and applied slice-grouped by `flush_late_runs`. Only used when
    /// tuple storage or a non-commutative fold makes insertion order
    /// observable; otherwise late tuples fold straight into
    /// `late_groups`. Always empty between calls (the allocation is
    /// reused).
    late_buf: Vec<(Time, A::Input)>,
    /// Per-covering-slice value buffers of late tuples deferred within one
    /// `process_batch_tuples` call (commutative functions without tuple
    /// storage: fold order is unobservable, so no sort is needed). The
    /// few entries double as the slice-lookup cache — late tuples cluster
    /// in the slices just behind the stream head. Always empty between
    /// calls.
    late_groups: Vec<LateGroup<A::Input>>,
    /// Recycled column buffers (times, values) for `late_groups`, so
    /// steady-state batches allocate nothing when deferring late tuples.
    late_group_pool: Vec<(Vec<Time>, Vec<A::Input>)>,
    /// In-order tuples accumulated within one `process_batch_tuples` call
    /// but not yet applied, stored struct-of-arrays: deferring the store
    /// touch lets a run span deferred late singles (the batch's in-order
    /// partition), so disorder does not shorten runs, and the values
    /// column stays contiguous so the commit feeds the bulk fold kernel
    /// directly. Always empty between calls.
    run_times: Vec<Time>,
    run_values: Vec<A::Input>,
    /// Scratch index columns for the finger-store batch fast path's
    /// branchless partition (`process_batch_fast`): in-order positions
    /// from the front, late positions from the back in reverse arrival
    /// order. Contents are dead between calls; the allocation is reused.
    part_idx: Vec<u32>,
    /// Indices into `queries` of context-aware windows (precomputed so the
    /// per-tuple notify loop touches only those).
    context_aware: Vec<usize>,
    /// Reusable buffer for context notifications.
    edges: ContextEdges,
}

impl<A: AggregateFunction> WindowOperator<A> {
    /// Creates an operator with no queries. Add at least one query before
    /// feeding tuples — tuples processed with no registered query are
    /// absorbed into a single catch-all slice.
    pub fn new(f: A, cfg: OperatorConfig) -> Self {
        let chars = WorkloadCharacteristics::derive(&[], cfg.order, f.properties());
        let store = SliceStore::new(f.clone(), cfg.policy, chars.requires_tuple_storage());
        WindowOperator {
            f,
            cfg,
            queries: Vec::new(),
            next_query_id: 0,
            chars,
            store,
            next_time_edge: None,
            next_count_edge: None,
            max_ts: TIME_MIN,
            max_punct: TIME_MIN,
            watermark: TIME_MIN,
            last_trigger_time: TIME_MIN,
            last_trigger_count: 0,
            max_time_extent: 0,
            max_count_extent: 0,
            next_trigger_time: None,
            next_trigger_count: None,
            sweep_always: false,
            swept_once: false,
            stats: OperatorStats::default(),
            late_buf: Vec::new(),
            late_groups: Vec::new(),
            late_group_pool: Vec::new(),
            run_times: Vec::new(),
            run_values: Vec::new(),
            part_idx: Vec::new(),
            context_aware: Vec::new(),
            edges: ContextEdges::new(),
        }
    }

    /// Registers a window query. The operator re-derives its workload
    /// characteristics and adapts storage decisions (paper Section 5:
    /// "our aggregator adapts when one adds or removes queries").
    pub fn add_query(&mut self, window: Box<dyn WindowFunction>) -> Result<QueryId, QueryError> {
        if self.cfg.order == StreamOrder::OutOfOrder {
            let new_measure = window.measure();
            if self.queries.iter().any(|q| q.window.measure() != new_measure) {
                return Err(QueryError::MixedMeasuresOutOfOrder);
            }
        }
        let id = self.next_query_id;
        self.next_query_id += 1;
        self.queries.push(Query::new(id, window));
        self.rederive();
        Ok(id)
    }

    /// Removes a query; returns `true` if it existed.
    pub fn remove_query(&mut self, id: QueryId) -> bool {
        let before = self.queries.len();
        self.queries.retain(|q| q.id != id);
        let removed = self.queries.len() != before;
        if removed {
            self.rederive();
        }
        removed
    }

    /// Current workload characteristics (for inspection/tests).
    pub fn characteristics(&self) -> &WorkloadCharacteristics {
        &self.chars
    }

    /// Operational counters.
    pub fn stats(&self) -> &OperatorStats {
        &self.stats
    }

    /// Number of slices currently stored.
    pub fn slice_count(&self) -> usize {
        self.store.len()
    }

    /// Read access to the aggregate store (benchmarks measure its latency
    /// and memory directly).
    pub fn store(&self) -> &SliceStore<A> {
        &self.store
    }

    /// The last processed watermark.
    pub fn current_watermark(&self) -> Time {
        self.watermark
    }

    fn rederive(&mut self) {
        self.chars =
            WorkloadCharacteristics::derive(&self.queries, self.cfg.order, self.f.properties());
        self.store
            .set_keep_tuples(self.chars.requires_tuple_storage() || self.cfg.force_tuple_storage);
        self.max_time_extent = self
            .queries
            .iter()
            .filter(|q| q.window.measure() == Measure::Time)
            .map(|q| q.window.max_extent())
            .max()
            .unwrap_or(0);
        self.max_count_extent = self
            .queries
            .iter()
            .filter(|q| q.window.measure() == Measure::Count)
            .map(|q| q.window.max_extent())
            .max()
            .unwrap_or(0);
        // Re-derive edge caches: a new query may introduce earlier edges
        // than the cached ones. Slicing for the new query starts strictly
        // after the data already processed (`max_ts`) — windows of a new
        // query that overlap the registration instant see partial data,
        // like in the reference implementation.
        if let Some(open_start) = self.store.last_slice().map(|s| s.start()) {
            let from = open_start.max(self.max_ts);
            self.next_time_edge = self.compute_next_time_edge(from);
            self.store.set_last_end(self.next_time_edge.unwrap_or(TIME_MAX));
        }
        self.next_count_edge = self.compute_next_count_edge(self.store.total_count());
        self.context_aware = self
            .queries
            .iter()
            .enumerate()
            .filter(|(_, q)| q.window.context().is_context_aware())
            .map(|(i, _)| i)
            .collect();
        self.refresh_trigger_caches();
    }

    /// Recomputes the cached positions at which the next window can end.
    fn refresh_trigger_caches(&mut self) {
        let probe_t = if self.last_trigger_time == TIME_MIN {
            self.max_ts.max(0)
        } else {
            self.last_trigger_time
        };
        let probe_c = self.last_trigger_count as Time;
        let mut sweep = self.chars.has_context_aware;
        let mut next_t: Option<Time> = None;
        let mut next_c: Option<Count> = None;
        for q in &self.queries {
            match q.window.measure() {
                Measure::Time => match q.window.next_window_end(probe_t) {
                    Some(e) => next_t = Some(next_t.map_or(e, |x| x.min(e))),
                    None => sweep = true,
                },
                Measure::Count => match q.window.next_window_end(probe_c) {
                    Some(e) => next_c = Some(next_c.map_or(e as Count, |x| x.min(e as Count))),
                    None => sweep = true,
                },
            }
        }
        self.next_trigger_time = next_t;
        self.next_trigger_count = next_c;
        self.sweep_always = sweep;
    }

    /// Minimum next time edge over all time-measure queries, strictly
    /// after `ts`. In-order streams slice only at window starts.
    fn compute_next_time_edge(&self, ts: Time) -> Option<Time> {
        let starts_only = self.cfg.order.is_in_order() && !self.cfg.force_end_edges;
        self.queries
            .iter()
            .filter(|q| q.window.measure() == Measure::Time)
            .filter_map(|q| {
                if starts_only {
                    q.window.next_start_edge(ts)
                } else {
                    q.window.next_edge(ts)
                }
            })
            .min()
    }

    /// Minimum next count edge over all count-measure queries, strictly
    /// after count position `c`.
    fn compute_next_count_edge(&self, c: Count) -> Option<Count> {
        let starts_only = self.cfg.order.is_in_order();
        self.queries
            .iter()
            .filter(|q| q.window.measure() == Measure::Count)
            .filter_map(|q| {
                let edge = if starts_only {
                    q.window.next_start_edge(c as Time)
                } else {
                    q.window.next_edge(c as Time)
                };
                edge.map(|e| e as Count)
            })
            .min()
    }

    /// True when this operator runs in count-delimited mode (count-measure
    /// queries on an out-of-order stream): slice lookups go by tuple
    /// content and the Figure-6 shift keeps count alignment.
    fn count_mode(&self) -> bool {
        self.chars.has_count_measure && self.cfg.order == StreamOrder::OutOfOrder
    }

    // ------------------------------------------------------------------
    // Step 1: the Stream Slicer (in-order tuples only)
    // ------------------------------------------------------------------

    /// Appends slices for every cached edge at or before `ts`. The common
    /// case — no edge crossed — costs a single comparison.
    fn advance_time_edges(&mut self, ts: Time) {
        while let Some(edge) = self.next_time_edge {
            if ts < edge {
                break;
            }
            let next = self.compute_next_time_edge(edge);
            self.store.append_slice(Range::new(edge, next.unwrap_or(TIME_MAX)));
            self.stats.slices_created += 1;
            self.next_time_edge = next;
        }
    }

    /// Cuts the open slice when the tuple count reaches a count edge. The
    /// incoming tuple at `ts` will be the first of the next count slice.
    fn advance_count_edge_in_order(&mut self, ts: Time) {
        while let Some(edge) = self.next_count_edge {
            if self.store.total_count() < edge {
                break;
            }
            if self.store.last_end().is_some_and(|end| ts < end)
                && self.store.last_slice().is_some_and(|s| s.start() <= ts)
            {
                self.store.cut_last_at(ts);
                self.stats.slices_created += 1;
            }
            self.next_count_edge = self.compute_next_count_edge(edge);
        }
    }

    /// Closes the open slice whenever the total count has reached a count
    /// edge. The cut lands at `max_ts`: all current tuples stay in the
    /// closed slice (they precede the edge in count order) and later
    /// arrivals — including ties at `max_ts`, whose count positions come
    /// after — fall into the new open slice.
    fn advance_count_edge_after_insert(&mut self) {
        while let Some(edge) = self.next_count_edge {
            if self.store.total_count() < edge {
                break;
            }
            let cut_at = self.max_ts;
            if self.store.last_end().is_some_and(|end| cut_at < end)
                && self.store.last_slice().is_some_and(|sl| sl.start() <= cut_at)
            {
                self.store.cut_last_at(cut_at);
                self.stats.slices_created += 1;
            }
            self.next_count_edge = self.compute_next_count_edge(edge);
        }
    }

    /// Ensures the store has an open slice covering `ts` (first tuple).
    fn ensure_first_slice(&mut self, ts: Time) {
        if self.store.is_empty() {
            let next = self.compute_next_time_edge(ts);
            self.store.append_slice(Range::new(ts, next.unwrap_or(TIME_MAX)));
            self.stats.slices_created += 1;
            self.next_time_edge = next;
        }
    }

    // ------------------------------------------------------------------
    // Step 2: the Slice Manager
    // ------------------------------------------------------------------

    /// Lets every context-aware window observe `ts` and applies the edge
    /// changes it requests (splits for new edges, merges for removed ones).
    fn notify_context_aware(&mut self, ts: Time, out: &mut Vec<WindowResult<A::Output>>) {
        if !self.chars.has_context_aware {
            return;
        }
        let mut edges = std::mem::take(&mut self.edges);
        edges.clear();
        for &i in &self.context_aware {
            self.queries[i].window.notify_context(ts, &mut edges);
        }
        self.apply_edges(&edges, out);
        self.edges = edges;
    }

    /// Applies requested edge additions (slice splits) and removals (slice
    /// merges). An edge is only merged away if no other query still needs
    /// an edge at that position — slice edges must exactly match window
    /// edges to keep the slice count minimal (paper Section 5.3, Step 2).
    fn apply_edges(&mut self, edges: &ContextEdges, _out: &mut Vec<WindowResult<A::Output>>) {
        for &e in edges.added() {
            if self.store.split_at(e) {
                self.stats.splits += 1;
            }
        }
        for &e in edges.removed() {
            if self.edge_required_by_any_query(e) {
                continue;
            }
            if self.store.merge_at(e) {
                self.stats.merges += 1;
            }
        }
    }

    /// Does any registered query define a window edge exactly at `e`?
    fn edge_required_by_any_query(&self, e: Time) -> bool {
        self.queries
            .iter()
            .any(|q| q.window.measure() == Measure::Time && q.window.requires_edge_at(e))
    }

    // ------------------------------------------------------------------
    // Step 3: the Window Manager
    // ------------------------------------------------------------------

    /// Emits every window that completed in `(last_trigger, wm]`.
    /// `data_pos` is the highest *data* position known to the caller (the
    /// current tuple's timestamp for in-order sweeps, `max_ts` for
    /// watermark sweeps) and bounds the enumeration so flush watermarks
    /// cannot sweep the whole time axis.
    fn trigger_up_to(&mut self, wm: Time, data_pos: Time, out: &mut Vec<WindowResult<A::Output>>) {
        // Deferred index repairs (late runs, finger-tree in-order leaf
        // writes) must land before the sweep queries the store. A no-op
        // when the dirty set is empty.
        self.store.flush_eager_repairs();
        let store = &self.store;
        let f = &self.f;
        let stats = &mut self.stats;
        // Count-space watermark: on in-order streams every processed tuple
        // is final; on out-of-order streams counts below the number of
        // tuples at or before the time watermark are final.
        let count_wm = if !self.chars.has_count_measure {
            0
        } else if self.cfg.order.is_in_order() {
            store.total_count()
        } else {
            store.count_at_or_before(wm)
        };
        // Clamp the sweep to the data extent: windows ending beyond
        // `max_ts + max_extent` are empty by construction, and a flush
        // watermark (e.g. i64::MAX) must not enumerate windows across the
        // whole time axis.
        let max_pos = data_pos.max(self.max_punct);
        if max_pos == TIME_MIN {
            // No data yet: nothing can trigger, and advancing the trigger
            // bookkeeping to an arbitrary watermark would skip windows of
            // data still to come.
            self.swept_once = true;
            return;
        }
        let wm = wm.min(max_pos.saturating_add(self.max_time_extent).saturating_add(1));
        // The first sweep starts from the first data position: windows
        // ending earlier are empty by construction, and enumerating from
        // TIME_MIN would overflow window arithmetic.
        let time_prev = if self.last_trigger_time == TIME_MIN {
            store.first_slice().map_or(wm, |s| s.start()).min(wm)
        } else {
            self.last_trigger_time
        };
        let count_prev = self.last_trigger_count;
        for q in &mut self.queries {
            let id = q.id;
            match q.window.measure() {
                Measure::Time => {
                    q.window.trigger_windows(time_prev, wm, &mut |range| {
                        if let Some(p) = store.query_time(range) {
                            stats.windows_emitted += 1;
                            out.push(WindowResult::new(id, Measure::Time, range, f.lower(&p)));
                        }
                    });
                }
                Measure::Count => {
                    q.window.trigger_windows(count_prev as Time, count_wm as Time, &mut |range| {
                        if let Some(p) = store.query_count(range.start as Count, range.end as Count)
                        {
                            stats.windows_emitted += 1;
                            out.push(WindowResult::new(id, Measure::Count, range, f.lower(&p)));
                        }
                    });
                }
            }
        }
        self.last_trigger_time = self.last_trigger_time.max(wm);
        self.last_trigger_count = self.last_trigger_count.max(count_wm);
        self.swept_once = true;
        self.refresh_trigger_caches();
    }

    /// Emits updated aggregates for already-triggered windows affected by a
    /// late tuple at `ts` (within the allowed lateness).
    fn emit_updates(&mut self, ts: Time, out: &mut Vec<WindowResult<A::Output>>) {
        // Late-tuple revisions query the store: land deferred repairs.
        self.store.flush_eager_repairs();
        let store = &self.store;
        let f = &self.f;
        let stats = &mut self.stats;
        let wm = self.watermark;
        let count_wm = if self.chars.has_count_measure { store.count_at_or_before(wm) } else { 0 };
        for q in &mut self.queries {
            let id = q.id;
            match q.window.measure() {
                Measure::Time => {
                    q.window.windows_containing(ts, &mut |range| {
                        if range.end <= wm {
                            if let Some(p) = store.query_time(range) {
                                stats.updates_emitted += 1;
                                out.push(WindowResult::update(
                                    id,
                                    Measure::Time,
                                    range,
                                    f.lower(&p),
                                ));
                            }
                        }
                    });
                }
                Measure::Count => {
                    // The count shift affects every already-final window at
                    // or after the insert position, not just the one
                    // containing it.
                    let c_ins = store.count_at_or_before(ts).saturating_sub(1);
                    q.window.trigger_windows(c_ins as Time, count_wm as Time, &mut |range| {
                        if let Some(p) = store.query_count(range.start as Count, range.end as Count)
                        {
                            stats.updates_emitted += 1;
                            out.push(WindowResult::update(id, Measure::Count, range, f.lower(&p)));
                        }
                    });
                }
            }
        }
    }

    /// Evicts slices no longer reachable by any window or late update. A
    /// slice is evictable only if **every** registered measure allows it:
    /// time queries bound eviction by `wm - lateness - max_extent` (and by
    /// pending context-aware windows), count queries by the trailing
    /// `max_count_extent` tuple counts.
    fn evict(&mut self, wm: Time) {
        let lateness = if self.cfg.order.is_in_order() { 0 } else { self.cfg.allowed_lateness };
        if self.count_mode() {
            let final_count = self.store.count_at_or_before(wm.saturating_sub(lateness));
            let keep_from = final_count.saturating_sub(self.max_count_extent as u64);
            self.store.evict_keeping_counts(keep_from);
            return;
        }
        let has_time_queries = self.queries.iter().any(|q| q.window.measure() == Measure::Time);
        let k_time = if has_time_queries {
            let mut boundary = wm.saturating_sub(lateness).saturating_sub(self.max_time_extent);
            for q in &self.queries {
                if let Some(pending) = q.window.earliest_pending_start() {
                    boundary = boundary.min(pending);
                }
            }
            self.store.slices().take_while(|s| s.end() <= boundary).count()
        } else {
            self.store.len().saturating_sub(1)
        };
        let k_count = if self.chars.has_count_measure {
            let keep_from = self.store.total_count().saturating_sub(self.max_count_extent as u64);
            self.store.count_evictable(keep_from)
        } else {
            self.store.len()
        };
        self.store.evict_first(k_time.min(k_count));
    }

    // ------------------------------------------------------------------
    // Tuple processing (Figure 7 input path)
    // ------------------------------------------------------------------

    /// Processes one tuple. Emits window results on `out` (in-order
    /// streams emit directly; out-of-order streams emit on watermarks plus
    /// late-update corrections here).
    pub fn process_tuple(
        &mut self,
        ts: Time,
        value: A::Input,
        out: &mut Vec<WindowResult<A::Output>>,
    ) {
        self.stats.tuples += 1;
        if ts >= self.max_ts || self.store.is_empty() {
            self.process_in_order(ts, value, out);
        } else {
            self.process_out_of_order(ts, value, out);
        }
    }

    fn process_in_order(
        &mut self,
        ts: Time,
        value: A::Input,
        out: &mut Vec<WindowResult<A::Output>>,
    ) {
        let slices_at_entry = self.stats.slices_created;
        // Stream Slicer: cut slices for every window edge at or before ts.
        self.ensure_first_slice(ts);
        self.advance_time_edges(ts);
        self.advance_count_edge_in_order(ts);
        // Slice Manager: context-aware windows may add/remove edges.
        self.notify_context_aware(ts, out);
        // Window Manager: on in-order streams every tuple acts as a
        // watermark carrying its own timestamp (paper Section 5.3, Step 3).
        // Triggering happens *before* the tuple is added: windows ending at
        // or before `ts` never contain it, which keeps start-only slicing
        // correct even when window ends fall between start edges (Cutty's
        // in-order trick) — the open slice holds no tuple at or past any
        // end being triggered.
        let in_order_emit = self.cfg.order.is_in_order();
        if in_order_emit {
            let sweep = self.sweep_always
                || !self.swept_once
                || self.next_trigger_time.is_some_and(|t| ts >= t)
                || self.next_trigger_count.is_some_and(|c| self.store.total_count() >= c);
            if sweep {
                self.trigger_up_to(ts, ts, out);
                self.watermark = ts;
            }
        }
        // Update: one incremental ⊕ into the open slice.
        self.store.add_in_order(ts, value);
        self.max_ts = ts;
        if in_order_emit {
            // Count windows can complete exactly with this tuple; emit them
            // immediately rather than on the next arrival.
            if self.next_trigger_count.is_some_and(|c| self.store.total_count() >= c) {
                self.trigger_up_to(ts, ts, out);
                self.watermark = ts;
            }
            // Evict only when slices were cut this call — eviction work is
            // amortized over slice lifetimes, keeping the per-tuple hot
            // path at one comparison.
            if self.stats.slices_created != slices_at_entry {
                self.evict(ts);
            }
        }
    }

    fn process_out_of_order(
        &mut self,
        ts: Time,
        value: A::Input,
        out: &mut Vec<WindowResult<A::Output>>,
    ) {
        self.stats.ooo_tuples += 1;
        debug_assert!(
            self.cfg.order == StreamOrder::OutOfOrder,
            "out-of-order tuple on a stream declared in-order"
        );
        if self.watermark != TIME_MIN && ts < self.watermark - self.cfg.allowed_lateness {
            self.stats.dropped_late += 1;
            return;
        }
        // Slice Manager: context changes first (may split/merge so the
        // tuple's slice exists and is correctly bounded).
        self.notify_context_aware(ts, out);
        if self.count_mode() {
            // If earlier arrivals already filled the open slice to a count
            // edge (the in-order path defers that cut to the next tuple),
            // close it *before* inserting so the boundary exists and the
            // shift cascade below sees correctly sized slices.
            self.advance_count_edge_after_insert();
            let idx = self
                .store
                .covering_index_by_tuples(ts)
                .expect("store cannot be empty when processing an out-of-order tuple");
            self.store.add_out_of_order(idx, ts, value);
            // Figure 6: restore count alignment by shifting the last tuple
            // of each slice one slice further, starting at the insert
            // slice. A tuple landing in the open (latest) slice needs no
            // shift at all.
            let last = self.store.len() - 1;
            for i in idx..last {
                if self.store.shift_last_into_next(i) {
                    self.stats.shifts += 1;
                }
            }
            // The insert grew the total count; close the open slice if it
            // just reached a count edge.
            self.advance_count_edge_after_insert();
        } else {
            let idx = self.late_slice_index(ts);
            self.store.add_out_of_order(idx, ts, value);
        }
        // Window Manager: late tuples below the watermark revise emitted
        // windows.
        if self.watermark != TIME_MIN && ts <= self.watermark {
            self.emit_updates(ts, out);
        }
    }

    /// Slice index for a late tuple at `ts` in a time-tiled store. When
    /// `ts` falls into a coverage gap (before the first slice, or between
    /// slices after a bounded insert), a fresh slice is created, bounded
    /// by the next window edge so it never spans one.
    fn late_slice_index(&mut self, ts: Time) -> usize {
        match self.store.covering_index(ts) {
            Some(i) => i,
            None => {
                let next_slice_start =
                    self.store.slices().map(|s| s.start()).find(|&s| s > ts).unwrap_or(TIME_MAX);
                let next_edge = self.compute_next_time_edge(ts).unwrap_or(TIME_MAX);
                let end = next_edge.min(next_slice_start);
                debug_assert!(end > ts, "gap slice must cover its tuple");
                let idx = self.store.insert_gap_slice(Range::new(ts, end));
                self.stats.slices_created += 1;
                idx
            }
        }
    }

    /// Buffers the longest prefix of `batch[start..]` that can be
    /// ingested as one run into the open slice with exact per-tuple
    /// semantics — consecutive in-order tuples that cross no slice edge,
    /// complete no window, and need no context notification — into
    /// the run-buffer columns and returns its length. Returns 0
    /// (buffering nothing) when the tuple at `start` must take the
    /// per-tuple path.
    fn take_run<B: BatchView<A::Input>>(&mut self, batch: &B, start: usize) -> usize {
        if self.store.is_empty() || self.chars.has_context_aware {
            return 0;
        }
        let in_order_emit = self.cfg.order.is_in_order();
        // The first tuple always sweeps; context-aware and unknown-end
        // windows sweep on every tuple.
        if in_order_emit && (self.sweep_always || !self.swept_once) {
            return 0;
        }
        // Tuples must be in order and inside the open slice (punctuations
        // can cut slices ahead of the data); a late tuple at `start` exits
        // before paying for any cap computation.
        let open_start = self.store.last_slice().map_or(TIME_MAX, |s| s.start());
        let mut prev = self.max_ts.max(open_start);
        if batch.ts(start) < prev {
            return 0;
        }
        // Count caps: stop before the next count edge cuts the open slice
        // and before any count window completes (the per-tuple path checks
        // the trigger both before and after the insert, so the run must
        // keep the post-insert count strictly below the trigger). Pending
        // buffered run tuples count: the store hasn't seen them yet.
        // `total_count` walks every live slice, so only pay for it when a
        // count edge or count trigger actually exists.
        let mut cap = batch.len() - start;
        let needs_count =
            self.next_count_edge.is_some() || (in_order_emit && self.next_trigger_count.is_some());
        if needs_count {
            let total = self.store.total_count() + self.run_times.len() as Count;
            if let Some(edge) = self.next_count_edge {
                if total >= edge {
                    return 0;
                }
                cap = cap.min(cast::to_usize(edge - total));
            }
            if in_order_emit {
                if let Some(c) = self.next_trigger_count {
                    if total + 1 >= c {
                        return 0;
                    }
                    cap = cap.min(cast::to_usize(c - 1 - total));
                }
            }
        }
        // Time bound: strictly below the next slice edge and the next
        // window completion.
        let mut bound = self.next_time_edge.unwrap_or(TIME_MAX);
        if in_order_emit {
            if let Some(t) = self.next_trigger_time {
                bound = bound.min(t);
            }
        }
        // Buffer the run (committed with one store touch by
        // `commit_in_order_run`). Disordered streams produce short runs
        // where a separate scan-then-copy pass costs more than pushing
        // as we scan, while near-in-order streams produce long runs
        // where the bulk `extend_from_slice` beats per-element pushes —
        // so push the first `FUSED` elements inline and switch to
        // scan + bulk copy for the rest of the run.
        const FUSED: usize = 32;
        let mut n = 0;
        let fused_cap = cap.min(FUSED);
        while n < fused_cap {
            let ts = batch.ts(start + n);
            if ts < prev || ts >= bound {
                break;
            }
            prev = ts;
            self.run_times.push(ts);
            self.run_values.push(batch.value(start + n).clone());
            n += 1;
        }
        if n == FUSED && n < cap {
            let tail = start + n;
            let mut m = 0;
            while n + m < cap {
                let ts = batch.ts(tail + m);
                if ts < prev || ts >= bound {
                    break;
                }
                prev = ts;
                m += 1;
            }
            batch.extend_columns(tail, tail + m, &mut self.run_times, &mut self.run_values);
            n += m;
        }
        if n > 0 {
            // `max_ts` advances eagerly so the late/in-order
            // classification of later batch positions matches per-tuple
            // processing.
            self.max_ts = prev;
            self.stats.tuples += n as u64;
        }
        n
    }

    /// Whether a late tuple at `ts` can be deferred into the late buffer
    /// and applied slice-grouped at the end of the batch. Requires that
    /// per-tuple processing would have touched exactly one covering slice
    /// and emitted nothing: a declared out-of-order stream (late tuples
    /// only emit on watermarks), time-tiled slices (the count-measure
    /// Figure-6 shift cascades across slices), no context-aware windows
    /// (their per-tuple notifications can split/merge), and a timestamp
    /// strictly above the watermark (at or below it, the tuple revises
    /// already-emitted windows *immediately* via `emit_updates`).
    fn can_defer_late(&self, ts: Time) -> bool {
        self.defer_config_ok()
            && !self.store.is_empty()
            && ts < self.max_ts
            && (self.watermark == TIME_MIN || ts > self.watermark)
    }

    /// The batch-invariant half of [`can_defer_late`]: nothing here can
    /// change while a batch of tuples is being processed, so
    /// [`process_batch_tuples`] evaluates it once per batch and leaves
    /// only the per-tuple timestamp/store checks in the loop.
    ///
    /// [`can_defer_late`]: WindowOperator::can_defer_late
    /// [`process_batch_tuples`]: WindowOperator::process_batch_tuples
    fn defer_config_ok(&self) -> bool {
        !self.cfg.disable_ooo_batching
            && self.cfg.order == StreamOrder::OutOfOrder
            && !self.count_mode()
            && !self.chars.has_context_aware
    }

    /// Applies the pending in-order run buffer with a single store touch.
    /// Must run before anything reads or restructures the store (late-run
    /// flushes, per-tuple fallbacks): slices keep their tuples sorted by
    /// timestamp, so buffered appends have to land before a late tuple is
    /// merged below them. The buffer's values column is contiguous, so the
    /// commit is a direct bulk-kernel fold — no gather.
    fn commit_in_order_run(&mut self) {
        if self.run_times.is_empty() {
            return;
        }
        crate::audit_assert!(
            self.run_times.windows(2).all(|w| w[0] <= w[1]),
            "in-order run buffer must be monotone"
        );
        crate::audit_assert!(
            self.run_times.len() == self.run_values.len(),
            "run buffer columns diverged: {} times vs {} values",
            self.run_times.len(),
            self.run_values.len()
        );
        self.count_fold(self.run_times.len());
        let mut times = std::mem::take(&mut self.run_times);
        let mut values = std::mem::take(&mut self.run_values);
        self.store.add_in_order_run_columns(&times, &values);
        times.clear();
        values.clear();
        self.run_times = times; // keep the allocations for the next batch
        self.run_values = values;
    }

    /// Attributes one bulk-folded run of `len` values to the kernel or
    /// fallback counter. Contiguous runs always go through
    /// [`AggregateFunction::fold_slice_pairs`] /
    /// [`AggregateFunction::fold_slice`], so the only miss condition is
    /// the function providing neither a values nor a paired-column
    /// kernel; gathered (array-of-structs) runs additionally miss below
    /// the gather threshold, mirroring
    /// [`crate::function::kernel_eligible`] and
    /// [`crate::function::pair_kernel_eligible`].
    fn count_fold(&mut self, len: usize) {
        if (self.f.has_fold_kernel() || self.f.has_pair_kernel()) && len >= 1 {
            self.stats.fold_kernel_hits += 1;
        } else {
            self.stats.fold_kernel_misses += 1;
        }
    }

    /// Whether deferred late tuples can fold straight into per-slice
    /// partials ([`late_groups`](WindowOperator::late_groups)): with
    /// tuples dropped and a commutative ⊕, nothing observes the order
    /// late tuples were folded in, so no sort is needed. Otherwise they
    /// collect in `late_buf` for the sorted-run path.
    fn defer_unsorted(&self) -> bool {
        self.f.properties().commutative && !self.store.keeps_tuples()
    }

    /// Buffers one deferred late tuple into its covering slice's pending
    /// group. The group list doubles as the slice-lookup cache: late
    /// tuples cluster in the few slices just behind the stream head, so
    /// scanning these entries (all in cache) almost always beats a fresh
    /// binary search over the store. Values collect contiguously per
    /// group and are folded in bulk at flush time — the late path's route
    /// into the fold kernel.
    fn defer_into_group(&mut self, ts: Time, v: &A::Input) {
        // `ts - start < end - start` as unsigned is the usual
        // single-compare interval test (a too-small ts wraps to a huge
        // unsigned value).
        let pair_kernel = self.f.has_pair_kernel();
        if let Some(g) = self
            .late_groups
            .iter_mut()
            .find(|g| (ts.wrapping_sub(g.start) as u64) < (g.end - g.start) as u64)
        {
            g.values.push(v.clone());
            if pair_kernel {
                g.times.push(ts);
            }
            g.t_first = g.t_first.min(ts);
            g.t_last = g.t_last.max(ts);
            return;
        }
        let created = self.stats.slices_created;
        let idx = self.late_slice_index(ts);
        if self.stats.slices_created != created {
            // A gap slice was inserted at `idx`: group entries at or past
            // it shifted right.
            for g in &mut self.late_groups {
                if g.idx >= idx {
                    g.idx += 1;
                }
            }
        }
        let s = self.store.slice(idx);
        let (mut times, mut values) = self.late_group_pool.pop().unwrap_or_default();
        values.push(v.clone());
        if pair_kernel {
            times.push(ts);
        }
        self.late_groups.push(LateGroup {
            idx,
            start: s.start(),
            end: s.end(),
            values,
            times,
            t_first: ts,
            t_last: ts,
        });
    }

    /// Applies the deferred late tuples: one store touch per covering
    /// slice, then a single eager-tree repair of the whole dirty
    /// frontier. Pre-folded groups ([`defer_unsorted`]) become one
    /// [`SliceStore::add_out_of_order_partial`] each; buffered tuples
    /// (tuple storage or a non-commutative fold, where insertion order is
    /// observable) are stable-sorted by timestamp and applied as one
    /// [`SliceStore::add_out_of_order_run`] per covering slice, group
    /// boundaries found with one binary search each. k late tuples
    /// hitting m slices cost m slice touches + one bottom-up repair
    /// (+ `O(k log k)` sort on the buffered path), instead of k
    /// covering-slice searches, k tuple inserts, and k `O(log s)`
    /// ancestor walks.
    ///
    /// Deferral preserves per-tuple semantics: deferred tuples emit
    /// nothing (they sit above the watermark), their covering slices are
    /// unaffected by interleaved in-order appends (slices are only created
    /// *after* all existing ones mid-batch), and arrival order among
    /// equal timestamps is kept — the stable sort preserves it, and the
    /// pre-folded path is only taken when fold order cannot be observed —
    /// so each slice receives the same tuples in the same tie order as
    /// the per-tuple path.
    ///
    /// [`defer_unsorted`]: WindowOperator::defer_unsorted
    fn flush_late_runs(&mut self) {
        self.commit_in_order_run();
        if self.late_groups.is_empty() && self.late_buf.is_empty() {
            return;
        }
        if !self.late_groups.is_empty() {
            let mut groups = std::mem::take(&mut self.late_groups);
            for g in groups.drain(..) {
                let mut values = g.values;
                let mut times = g.times;
                self.count_fold(values.len());
                // Pair-kernel functions collected the parallel times
                // column at deferral time; everyone else folds the values
                // column exactly as before (`times` is empty then, so the
                // paired hook's column contract would not hold).
                let folded = if self.f.has_pair_kernel() {
                    self.f.fold_slice_pairs(&times, &values)
                } else {
                    self.f.fold_slice(&values)
                };
                if let Some(p) = folded {
                    self.store.add_out_of_order_partial(
                        g.idx,
                        p,
                        g.t_first,
                        g.t_last,
                        values.len(),
                    );
                }
                values.clear();
                times.clear();
                if self.late_group_pool.len() < 16 {
                    self.late_group_pool.push((times, values)); // recycle the buffers
                }
            }
            self.late_groups = groups; // keep the allocation
        }
        if !self.late_buf.is_empty() {
            let mut buf = std::mem::take(&mut self.late_buf);
            buf.sort_by_key(|&(t, _)| t);
            // Forward pass: resolve each group's covering slice while the
            // buffer is intact. `late_slice_index` may insert gap slices,
            // but only at positions past every already-resolved group
            // (groups ascend in time), so recorded indices stay valid.
            let mut groups: Vec<(usize, usize)> = Vec::new(); // (slice idx, group start)
            let mut i = 0;
            while i < buf.len() {
                let idx = self.late_slice_index(buf[i].0);
                let slice_end = self.store.slice(idx).end();
                let j = i + buf[i..].partition_point(|&(t, _)| t < slice_end);
                debug_assert!(j > i, "late group must contain its first tuple");
                groups.push((idx, i));
                i = j;
            }
            // Apply back to front: each group is split off the buffer's
            // tail and its values *moved* into the slice — the per-tuple
            // `value.clone()` at deferral time is the only copy late
            // tuples ever see.
            for &(idx, start) in groups.iter().rev() {
                let run = buf.split_off(start);
                self.store.add_out_of_order_run_owned(idx, run);
            }
            self.late_buf = buf; // now empty; keeps its allocation
        }
        self.store.flush_eager_repairs();
    }

    /// Batched ingestion fast path for the finger-tree store: one
    /// partition pass splits the batch into its monotone in-order
    /// subsequence and the late remainder, then each half is applied in
    /// bulk — the in-order columns as slice-edge-segmented run commits,
    /// the late tuples deferred into per-slice pre-folded groups and
    /// flushed once. This replaces the generic loop's per-stretch run
    /// detection ([`take_run`] re-derives its caps on every monotone
    /// stretch), whose bookkeeping dominates under heavy disorder where
    /// stretches shrink to a couple of tuples.
    ///
    /// Equivalence to the generic loop: the preconditions rule out every
    /// mid-batch emission and every mid-batch structural read of partial
    /// aggregates, so the only observable interleaving — late groups
    /// applied after all in-order commits — is exactly what the generic
    /// deferral does. Late tuples are classified against the same
    /// running maximum per-tuple processing maintains, and slice edges
    /// are advanced at segment heads precisely where the per-tuple
    /// slicer would cut. A late tuple always lands below the open
    /// slice's end (its timestamp is below some already-committed
    /// in-order tuple), so deferring it after the commits sees the same
    /// covering slice the generic interleaving would.
    ///
    /// Preconditions beyond [`defer_config_ok`] (declared out-of-order
    /// stream, time-tiled slices, no context-aware windows):
    /// * finger-tree store — the bulk late path leans on O(log d)
    ///   deferred leaf writes plus one shared-path repair per batch,
    ///   where the FlatFAT index pays a per-leaf ancestor walk;
    /// * pre-foldable late groups ([`defer_unsorted`]);
    /// * a non-empty store whose open slice covers the stream head (a
    ///   punctuation can cut slices ahead of the data);
    /// * every late timestamp strictly above the watermark — at or
    ///   below it, per-tuple processing emits revisions immediately.
    ///
    /// Returns `false` — leaving the operator untouched — when a
    /// precondition fails, and the generic loop runs instead.
    ///
    /// [`take_run`]: WindowOperator::take_run
    /// [`defer_config_ok`]: WindowOperator::defer_config_ok
    /// [`defer_unsorted`]: WindowOperator::defer_unsorted
    fn process_batch_fast<B: BatchView<A::Input>>(&mut self, batch: &B) -> bool {
        if self.store.policy() != StorePolicy::FingerTree
            || !self.defer_config_ok()
            || !self.defer_unsorted()
            || self.store.last_slice().is_none_or(|s| s.start() > self.max_ts)
        {
            return false;
        }
        let n = batch.len();
        debug_assert!(u32::try_from(n).is_ok(), "batch exceeds u32 index space");
        debug_assert!(self.run_times.is_empty() && self.run_values.is_empty());
        // Partition. The in-order subsequence is exactly the tuples at or
        // above the running maximum — the same classification per-tuple
        // processing applies via `max_ts`. The monotone prefix (the whole
        // batch under zero disorder) is recognized with one predictable
        // scan and bulk-copied; the disordered remainder goes through a
        // branchless index partition (disorder makes a late/in-order
        // branch unpredictable, and at 50 % disorder the mispredictions
        // alone would dominate this loop).
        let mut prev = self.max_ts;
        let mut i = 0;
        while i < n {
            let ts = batch.ts(i);
            if ts < prev {
                break;
            }
            prev = ts;
            i += 1;
        }
        batch.extend_columns(0, i, &mut self.run_times, &mut self.run_values);
        let mut idx = std::mem::take(&mut self.part_idx);
        let rem = n - i;
        let mut ik = 0;
        let mut lk = 0;
        if i < n {
            if idx.len() < rem {
                idx.resize(rem, 0);
            }
            let mut min_late = TIME_MAX;
            for j in i..n {
                let ts = batch.ts(j);
                let is_late = ts < prev;
                prev = prev.max(ts);
                min_late = min_late.min(if is_late { ts } else { TIME_MAX });
                // Two unconditional stores per tuple: in-order indices
                // fill the array from the front, late ones from the back
                // (so the late half sits at `[rem - lk, rem)` in reverse
                // arrival order). Writing both ends every iteration keeps
                // the loop free of data-dependent branches — at 50 %
                // disorder a conditional store is mispredicted constantly.
                idx[ik] = j as u32;
                idx[rem - 1 - lk] = j as u32;
                ik += usize::from(!is_late);
                lk += usize::from(is_late);
            }
            // At or below the watermark a late tuple revises emitted
            // windows immediately; hand the whole batch to the generic
            // loop. Nothing has been applied yet, so bailing is free.
            if min_late <= self.watermark {
                self.run_times.clear();
                self.run_values.clear();
                self.part_idx = idx;
                return false;
            }
            // One fused gather pass: each batch tuple is touched once
            // (its timestamp and value share a cache line in the
            // row-major view), and the upfront reserves keep the push
            // capacity checks predictable.
            self.run_times.reserve(ik);
            self.run_values.reserve(ik);
            for &j in &idx[..ik] {
                let j = cast::idx32(j);
                self.run_times.push(batch.ts(j));
                self.run_values.push(batch.value(j).clone());
            }
        }
        // In-order half: bulk run commits, cut at slice edges exactly
        // where the per-tuple slicer would.
        let mut times = std::mem::take(&mut self.run_times);
        let mut values = std::mem::take(&mut self.run_values);
        let mut a = 0;
        while a < times.len() {
            let b = match self.next_time_edge {
                Some(edge) => a + times[a..].partition_point(|&t| t < edge),
                None => times.len(),
            };
            if b == a {
                // `times[a]` is at or past the cached edge: cut slices
                // first. Afterwards the next edge lies strictly beyond
                // `times[a]`, so the next segment is non-empty.
                self.advance_time_edges(times[a]);
                continue;
            }
            self.count_fold(b - a);
            self.store.add_in_order_run_columns(&times[a..b], &values[a..b]);
            a = b;
        }
        self.stats.tuples += times.len() as u64;
        self.max_ts = prev;
        times.clear();
        values.clear();
        self.run_times = times; // keep the allocations for the next batch
        self.run_values = values;
        // Late half: defer into per-slice groups in arrival order, then
        // apply them with one store touch per covering slice. Same
        // grouping as `defer_into_group`, but the covering slice is found
        // with a branchless ladder over the alive groups sorted by start:
        // the slice alternates unpredictably from tuple to tuple, so a
        // scan's data-dependent branches are mispredicted constantly.
        let mut groups = std::mem::take(&mut self.late_groups);
        let mut starts = [TIME_MAX; 4];
        let mut ends = [TIME_MIN; 4];
        let mut pos = [0usize; 4];
        let mut table_ok = build_group_table(&groups, &mut starts, &mut ends, &mut pos);
        let pair_kernel = self.f.has_pair_kernel();
        for &j in idx[rem - lk..rem].iter().rev() {
            let j = cast::idx32(j);
            let ts = batch.ts(j);
            if table_ok {
                // Highest slot whose start is at or below `ts`; sortedness
                // makes the sum the slot index, with no branches.
                let gid = usize::from(ts >= starts[1])
                    + usize::from(ts >= starts[2])
                    + usize::from(ts >= starts[3]);
                if ts >= starts[0] && ts < ends[gid] {
                    let g = &mut groups[pos[gid]];
                    g.values.push(batch.value(j).clone());
                    if pair_kernel {
                        g.times.push(ts);
                    }
                    g.t_first = g.t_first.min(ts);
                    g.t_last = g.t_last.max(ts);
                    continue;
                }
            }
            // First tuple of this covering slice: group creation (and a
            // possible gap-slice insert) stays on the shared cold path;
            // the ladder is then rebuilt around the new group.
            self.late_groups = groups;
            self.defer_into_group(ts, batch.value(j));
            groups = std::mem::take(&mut self.late_groups);
            table_ok = build_group_table(&groups, &mut starts, &mut ends, &mut pos);
        }
        self.late_groups = groups;
        self.part_idx = idx; // keep the allocation
        self.stats.tuples += lk as u64;
        self.stats.ooo_tuples += lk as u64;
        self.flush_late_runs();
        true
    }

    /// Processes a batch of tuples, ingesting maximal eligible in-order
    /// runs with a single store touch each (one fold + ⊕ into the open
    /// slice, one tuple-storage append, one eager-leaf refresh) and
    /// deferring eligible late tuples into slice-grouped runs applied once
    /// per batch (see [`flush_late_runs`]). On the finger-tree store the
    /// whole batch is instead partitioned once and applied in bulk
    /// ([`process_batch_fast`](WindowOperator::process_batch_fast)).
    /// Everything else — tuples at
    /// slice edges, window completions, below-watermark stragglers,
    /// count-measure shifts — falls back to
    /// [`process_tuple`](WindowOperator::process_tuple) after the pending
    /// late buffer is flushed, so emission points and results are
    /// identical to per-tuple processing.
    ///
    /// [`flush_late_runs`]: WindowOperator::flush_late_runs
    pub fn process_batch_tuples(
        &mut self,
        batch: &[(Time, A::Input)],
        out: &mut Vec<WindowResult<A::Output>>,
    ) {
        // Degenerate size-1 batches take the per-tuple entry point: run
        // detection, run-buffer bookkeeping, and the end-of-batch commit
        // are pure overhead on a single record (the old "batch 1 costs
        // 0.6×" cliff in BENCH_batch.json).
        if let [(ts, value)] = batch {
            self.process_tuple(*ts, value.clone(), out);
            return;
        }
        self.process_batch_view(&batch, out);
    }

    /// Columnar twin of [`WindowOperator::process_batch_tuples`]: the batch
    /// arrives struct-of-arrays as parallel `times` / `values` columns
    /// (the stream layer's chunk layout), so in-order runs stay contiguous
    /// from the source straight into the bulk fold kernel without
    /// re-materializing tuple pairs. Semantics are identical to the
    /// tuple-pair entry point — both delegate to the same view-generic
    /// loop.
    pub fn process_batch_columns(
        &mut self,
        times: &[Time],
        values: &[A::Input],
        out: &mut Vec<WindowResult<A::Output>>,
    ) {
        debug_assert_eq!(times.len(), values.len(), "SoA batch length mismatch");
        crate::audit_assert!(times.len() == values.len(), "SoA batch length mismatch");
        // Same size-1 fallback as the tuple-pair entry point.
        if let ([ts], [value]) = (times, values) {
            self.process_tuple(*ts, value.clone(), out);
            return;
        }
        self.process_batch_view(&ColumnsView { times, values }, out);
    }

    fn process_batch_view<B: BatchView<A::Input>>(
        &mut self,
        batch: &B,
        out: &mut Vec<WindowResult<A::Output>>,
    ) {
        if self.process_batch_fast(batch) {
            return;
        }
        let unsorted = self.defer_unsorted();
        let defer_ok = self.defer_config_ok();
        // Deferred-tuple stats accumulate in a local and land once per
        // batch; nothing observes `stats` mid-batch.
        let mut late_n = 0u64;
        let mut i = 0;
        while i < batch.len() {
            let ts = batch.ts(i);
            if ts < self.max_ts {
                // Late tuple: defer it, or flush and fall back. Testing
                // lateness first (one comparison) keeps the data-dependent
                // late singles off the run-detection path entirely. The
                // watermark comparison under-approximates `can_defer_late`
                // only for `ts == watermark == TIME_MIN`, where the
                // fallback is equally correct (nothing has been emitted
                // yet, so there is nothing to revise).
                if defer_ok && ts > self.watermark && !self.store.is_empty() {
                    debug_assert!(self.can_defer_late(ts));
                    late_n += 1;
                    if unsorted {
                        self.defer_into_group(ts, batch.value(i));
                    } else {
                        self.late_buf.push((ts, batch.value(i).clone()));
                    }
                } else {
                    // A below-watermark straggler, count-measure query, or
                    // context-aware query: apply the pending run and the
                    // pending late runs so per-tuple processing sees final
                    // state.
                    self.commit_in_order_run();
                    if !self.store.is_empty() {
                        self.flush_late_runs();
                    }
                    self.process_tuple(ts, batch.value(i).clone(), out);
                }
                i += 1;
                continue;
            }
            // Accumulate rather than apply: the buffered run commutes
            // with deferred late tuples (it only feeds the open slice and
            // emits nothing a late tuple could affect), so one run can
            // span any number of deferred late singles — disorder does
            // not shorten runs.
            let n = self.take_run(batch, i);
            if n >= 1 {
                i += n;
                continue;
            }
            // An in-order run breaker (slice edge, window completion,
            // count cap, first tuple): apply the pending run, then take
            // the per-tuple path. No late flush is needed — on an
            // out-of-order stream an in-order tuple only cuts or appends
            // slices and triggers nothing a deferred late tuple could
            // affect.
            self.commit_in_order_run();
            self.process_tuple(ts, batch.value(i).clone(), out);
            i += 1;
        }
        self.stats.tuples += late_n;
        self.stats.ooo_tuples += late_n;
        self.flush_late_runs();
    }

    /// Processes a stream punctuation (FCF windows, paper Section 4.4).
    pub fn process_punctuation(&mut self, ts: Time, out: &mut Vec<WindowResult<A::Output>>) {
        self.max_punct = self.max_punct.max(ts);
        if self.store.is_empty() {
            self.ensure_first_slice(ts);
        }
        self.advance_time_edges(ts);
        let mut edges = std::mem::take(&mut self.edges);
        edges.clear();
        for q in &mut self.queries {
            q.window.on_punctuation(ts, &mut edges);
        }
        self.apply_edges(&edges, out);
        self.edges = edges;
        if self.cfg.order.is_in_order() {
            self.trigger_up_to(ts, self.max_ts.max(ts), out);
            self.watermark = ts;
        }
    }

    /// Processes a watermark: emits completed windows and evicts state.
    pub fn process_watermark(&mut self, wm: Time, out: &mut Vec<WindowResult<A::Output>>) {
        if wm <= self.watermark {
            return;
        }
        self.trigger_up_to(wm, self.max_ts, out);
        self.watermark = wm;
        self.evict(wm);
    }

    // ------------------------------------------------------------------
    // Intra-query parallel merge stage (beyond the paper)
    // ------------------------------------------------------------------

    /// Combines one worker-local slice partial into the authoritative
    /// store — the merge stage of the intra-query parallel path.
    ///
    /// The caller's eligibility check guarantees: a commutative function,
    /// time-measure context-free windows with static edges (so
    /// `[part.start, part.end)` is the same span every worker derives —
    /// it either matches an existing slice exactly or fills a coverage
    /// gap without straddling a boundary), an out-of-order config, and no
    /// tuple storage. Partials at or below the current watermark are
    /// straggler singletons and revise already-emitted windows, exactly
    /// like the sequential out-of-order path.
    ///
    /// Index repairs are *deferred*: finish a run of calls with
    /// [`merge_parallel_partials`](Self::merge_parallel_partials)
    /// (which flushes once per run) before querying the store directly;
    /// the operator's own query sweeps flush on entry.
    pub fn add_parallel_partial(
        &mut self,
        part: SlicePartial<A>,
        out: &mut Vec<WindowResult<A::Output>>,
    ) {
        debug_assert!(
            self.f.properties().commutative,
            "parallel merge requires a commutative function"
        );
        debug_assert!(
            !self.chars.requires_tuple_storage() && !self.cfg.force_tuple_storage,
            "parallel merge requires dropped tuples (partials carry none)"
        );
        debug_assert!(!self.count_mode(), "parallel merge requires time-measure windows");
        let SlicePartial { start, end, partial, t_first, t_last, n } = part;
        debug_assert!(start <= t_first && t_first <= t_last && t_last < end);
        let idx = match self.store.covering_index(t_first) {
            Some(i) => i,
            None => {
                let idx = self.store.insert_gap_slice(Range::new(start, end));
                self.stats.slices_created += 1;
                idx
            }
        };
        self.store.add_out_of_order_partial(idx, partial, t_first, t_last, cast::to_usize(n));
        self.stats.tuples += n;
        self.max_ts = self.max_ts.max(t_last);
        // Window Manager: a partial at or below the watermark is a late
        // straggler — revise the windows that already fired. Grouped
        // partials never take this branch: workers group only tuples
        // above their watermark, and the merge protocol applies a group
        // before the global watermark passes it.
        if self.watermark != TIME_MIN && t_first <= self.watermark {
            self.emit_updates(t_first, out);
        }
    }

    /// Bulk-merges a run of worker-local slice partials (one store touch
    /// per `(worker, slice)` run), amortizing the eager-store repair to a
    /// single flush per call.
    pub fn merge_parallel_partials(
        &mut self,
        parts: impl IntoIterator<Item = SlicePartial<A>>,
        out: &mut Vec<WindowResult<A::Output>>,
    ) {
        for p in parts {
            self.add_parallel_partial(p, out);
        }
        self.store.flush_eager_repairs();
    }
}

/// Combines two partials of the **same slice span** into one, keeping
/// the span's earliest/latest contributing timestamps and tuple count.
/// Both sides are taken by value so no `Partial` clone is needed.
fn absorb_partial<A: AggregateFunction>(
    f: &A,
    mut into: SlicePartial<A>,
    other: SlicePartial<A>,
) -> SlicePartial<A> {
    crate::audit_assert!(
        into.start == other.start && into.end == other.end,
        "combining partials of different slice spans: [{}, {}) vs [{}, {})",
        into.start,
        into.end,
        other.start,
        other.end
    );
    into.partial = f.combine(into.partial, &other.partial);
    into.t_first = into.t_first.min(other.t_first);
    into.t_last = into.t_last.max(other.t_last);
    into.n += other.n;
    into
}

/// Sorts one worker's staged partials by slice start and combines
/// duplicates (a worker that flushed more than once in an epoch ships the
/// same regrown slice span in several batches). Stable: duplicates
/// combine in list (= arrival) order.
fn normalize_partials<A: AggregateFunction>(
    f: &A,
    mut list: Vec<SlicePartial<A>>,
) -> Vec<SlicePartial<A>> {
    list.sort_by_key(|p| p.start);
    let mut out: Vec<SlicePartial<A>> = Vec::with_capacity(list.len());
    let mut cur: Option<SlicePartial<A>> = None;
    for p in list {
        cur = Some(match cur.take() {
            Some(c) if c.start == p.start => absorb_partial(f, c, p),
            Some(c) => {
                out.push(c);
                p
            }
            None => p,
        });
    }
    if let Some(c) = cur {
        out.push(c);
    }
    out
}

/// Merges two start-sorted partial lists, combining same-span entries —
/// one round of the pairwise merge tree.
fn merge_partial_pair<A: AggregateFunction>(
    f: &A,
    a: Vec<SlicePartial<A>>,
    b: Vec<SlicePartial<A>>,
) -> Vec<SlicePartial<A>> {
    let mut out = Vec::with_capacity(a.len().max(b.len()));
    let mut ia = a.into_iter();
    let mut ib = b.into_iter();
    let mut next_a = ia.next();
    let mut next_b = ib.next();
    loop {
        match (next_a.take(), next_b.take()) {
            (Some(x), Some(y)) => {
                if x.start < y.start {
                    out.push(x);
                    next_a = ia.next();
                    next_b = Some(y);
                } else if y.start < x.start {
                    out.push(y);
                    next_b = ib.next();
                    next_a = Some(x);
                } else {
                    out.push(absorb_partial(f, x, y));
                    next_a = ia.next();
                    next_b = ib.next();
                }
            }
            (Some(x), None) => {
                out.push(x);
                next_a = ia.next();
            }
            (None, Some(y)) => {
                out.push(y);
                next_b = ib.next();
            }
            (None, None) => return out,
        }
    }
}

/// Pairwise combining merge tree over per-worker slice-partial lists:
/// normalizes each list (start-sorted, duplicates combined), then merges
/// lists pairwise in balanced rounds until one combined list remains.
///
/// With `N` workers over `S` live slices this costs `O(S · log N)`
/// combine work and touches the authoritative store once per slice when
/// the result is applied via
/// [`WindowOperator::merge_parallel_partials`] — instead of the `N · S`
/// store touches of applying each worker's list directly. Requires a
/// **commutative** aggregate (worker lists combine in tree order, not
/// stream order) and static-edge slices, the same preconditions as
/// [`WindowOperator::add_parallel_partial`]; combining is
/// order-deterministic given the input list order, so repeated runs over
/// the same staged lists produce identical partials.
pub fn merge_partials_tree<A: AggregateFunction>(
    f: &A,
    lists: Vec<Vec<SlicePartial<A>>>,
) -> Vec<SlicePartial<A>> {
    let mut round: Vec<Vec<SlicePartial<A>>> =
        lists.into_iter().filter(|l| !l.is_empty()).map(|l| normalize_partials(f, l)).collect();
    while round.len() > 1 {
        let mut next = Vec::with_capacity(round.len().div_ceil(2));
        let mut it = round.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge_partial_pair(f, a, b)),
                None => next.push(a),
            }
        }
        round = next;
    }
    round.pop().unwrap_or_default()
}

impl<A: AggregateFunction> Clone for WindowOperator<A> {
    /// Deep-copies the complete operator state — slices, aggregates,
    /// window context, watermarks, and bookkeeping. A clone is a
    /// **checkpoint**: persist it (or keep it on a standby) and resume
    /// processing from the captured position for Flink-style recovery;
    /// both copies evolve independently afterwards.
    fn clone(&self) -> Self {
        WindowOperator {
            f: self.f.clone(),
            cfg: self.cfg,
            queries: self.queries.clone(),
            next_query_id: self.next_query_id,
            chars: self.chars,
            store: self.store.clone(),
            next_time_edge: self.next_time_edge,
            next_count_edge: self.next_count_edge,
            max_ts: self.max_ts,
            max_punct: self.max_punct,
            watermark: self.watermark,
            last_trigger_time: self.last_trigger_time,
            last_trigger_count: self.last_trigger_count,
            max_time_extent: self.max_time_extent,
            max_count_extent: self.max_count_extent,
            next_trigger_time: self.next_trigger_time,
            next_trigger_count: self.next_trigger_count,
            sweep_always: self.sweep_always,
            swept_once: self.swept_once,
            stats: self.stats,
            late_buf: self.late_buf.clone(),
            late_groups: self.late_groups.clone(),
            late_group_pool: Vec::new(),
            run_times: self.run_times.clone(),
            run_values: self.run_values.clone(),
            // Scratch indices are dead between calls; a checkpoint does
            // not need them.
            part_idx: Vec::new(),
            context_aware: self.context_aware.clone(),
            edges: self.edges.clone(),
        }
    }
}

impl<A: AggregateFunction> WindowAggregator<A> for WindowOperator<A> {
    fn process(&mut self, ts: Time, value: A::Input, out: &mut Vec<WindowResult<A::Output>>) {
        self.process_tuple(ts, value, out);
    }

    fn process_batch(
        &mut self,
        batch: &[(Time, A::Input)],
        out: &mut Vec<WindowResult<A::Output>>,
    ) {
        self.process_batch_tuples(batch, out);
    }

    fn process_batch_columns(
        &mut self,
        times: &[Time],
        values: &[A::Input],
        out: &mut Vec<WindowResult<A::Output>>,
    ) {
        WindowOperator::process_batch_columns(self, times, values, out);
    }

    fn fold_stats(&self) -> (u64, u64) {
        (self.stats.fold_kernel_hits, self.stats.fold_kernel_misses)
    }

    fn on_watermark(&mut self, wm: Time, out: &mut Vec<WindowResult<A::Output>>) {
        self.process_watermark(wm, out);
    }

    fn on_punctuation(&mut self, ts: Time, out: &mut Vec<WindowResult<A::Output>>) {
        self.process_punctuation(ts, out);
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.store.heap_bytes()
    }

    fn name(&self) -> &'static str {
        match self.cfg.policy {
            StorePolicy::Lazy => "Lazy Slicing",
            StorePolicy::Eager => "Eager Slicing",
            StorePolicy::FingerTree => "Finger-Tree Slicing",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::{SumI64, TumblingStub};

    fn op_in_order() -> WindowOperator<SumI64> {
        let mut op = WindowOperator::new(SumI64, OperatorConfig::in_order());
        op.add_query(Box::new(TumblingStub { length: 10 })).unwrap();
        op
    }

    fn op_ooo(lateness: Time) -> WindowOperator<SumI64> {
        let mut op = WindowOperator::new(SumI64, OperatorConfig::out_of_order(lateness));
        op.add_query(Box::new(TumblingStub { length: 10 })).unwrap();
        op
    }

    #[test]
    fn in_order_emits_per_window() {
        let mut op = op_in_order();
        let mut out = Vec::new();
        for ts in [1, 5, 12, 25] {
            op.process_tuple(ts, 1, &mut out);
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].range, Range::new(0, 10));
        assert_eq!(out[0].value, 2);
        assert_eq!(out[1].range, Range::new(10, 20));
        assert_eq!(out[1].value, 1);
    }

    #[test]
    fn watermark_regression_is_ignored() {
        let mut op = op_ooo(100);
        let mut out = Vec::new();
        op.process_tuple(5, 5, &mut out);
        op.process_tuple(25, 25, &mut out);
        op.process_watermark(20, &mut out);
        let n = out.len();
        op.process_watermark(10, &mut out); // regressing watermark: no-op
        op.process_watermark(20, &mut out); // repeated: no-op
        assert_eq!(out.len(), n);
        assert_eq!(op.current_watermark(), 20);
    }

    #[test]
    fn flush_watermark_emits_everything_without_looping() {
        let mut op = op_ooo(100);
        let mut out = Vec::new();
        op.process_tuple(5, 5, &mut out);
        op.process_tuple(95, 95, &mut out);
        // A flush watermark at i64::MAX must clamp to the data extent.
        op.process_watermark(i64::MAX - 1, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value, 5);
        assert_eq!(out[1].value, 95);
    }

    #[test]
    fn watermark_before_any_data_does_not_skip_later_windows() {
        let mut op = op_ooo(100);
        let mut out = Vec::new();
        op.process_watermark(1_000_000, &mut out);
        assert!(out.is_empty());
        op.process_tuple(2_000_000, 7, &mut out);
        op.process_watermark(2_000_011, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, 7);
    }

    #[test]
    fn stats_track_processing() {
        let mut op = op_ooo(100);
        let mut out = Vec::new();
        op.process_tuple(5, 1, &mut out);
        op.process_tuple(15, 1, &mut out);
        op.process_tuple(7, 1, &mut out); // out of order
        op.process_watermark(20, &mut out);
        let s = op.stats();
        assert_eq!(s.tuples, 3);
        assert_eq!(s.ooo_tuples, 1);
        assert_eq!(s.dropped_late, 0);
        assert!(s.slices_created >= 2);
        assert_eq!(s.windows_emitted, 2);
    }

    #[test]
    fn empty_windows_are_skipped() {
        let mut op = op_in_order();
        let mut out = Vec::new();
        op.process_tuple(5, 5, &mut out);
        op.process_tuple(95, 95, &mut out); // 8 empty windows in between
        assert_eq!(out.len(), 1, "only the nonempty window [0,10) fires");
        assert_eq!(out[0].value, 5);
    }

    #[test]
    fn query_removal_stops_emissions() {
        let mut op = WindowOperator::new(SumI64, OperatorConfig::in_order());
        let q = op.add_query(Box::new(TumblingStub { length: 10 })).unwrap();
        let mut out = Vec::new();
        op.process_tuple(5, 5, &mut out);
        assert!(op.remove_query(q));
        op.process_tuple(25, 25, &mut out);
        op.process_tuple(45, 45, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn duplicate_timestamps_accumulate_in_order() {
        let mut op = op_in_order();
        let mut out = Vec::new();
        for _ in 0..5 {
            op.process_tuple(3, 1, &mut out);
        }
        op.process_tuple(12, 0, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, 5);
    }

    #[test]
    fn force_tuple_storage_ablation_flag() {
        let cfg = OperatorConfig { force_tuple_storage: true, ..Default::default() };
        let mut op = WindowOperator::new(SumI64, cfg);
        op.add_query(Box::new(TumblingStub { length: 10 })).unwrap();
        let mut out = Vec::new();
        op.process_tuple(1, 1, &mut out);
        assert!(op.store().keeps_tuples());
        // The adaptive decision for this workload would be to drop them.
        assert!(!op.characteristics().requires_tuple_storage());
    }

    #[test]
    fn lateness_boundary_is_inclusive_of_allowed_updates() {
        let mut op = op_ooo(10);
        let mut out = Vec::new();
        op.process_tuple(5, 5, &mut out);
        op.process_tuple(40, 40, &mut out);
        op.process_watermark(30, &mut out);
        out.clear();
        // Exactly at watermark - lateness: still allowed.
        op.process_tuple(20, 20, &mut out);
        assert_eq!(op.stats().dropped_late, 0);
        // Below it: dropped.
        op.process_tuple(19, 19, &mut out);
        assert_eq!(op.stats().dropped_late, 1);
    }

    #[test]
    fn operator_reports_memory() {
        let mut op = op_in_order();
        let m0 = op.memory_bytes();
        let mut out = Vec::new();
        for i in 0..1_000 {
            op.process_tuple(i, 1, &mut out);
        }
        assert!(op.memory_bytes() >= m0);
        assert_eq!(op.name(), "Lazy Slicing");
        let eager: WindowOperator<SumI64> =
            WindowOperator::new(SumI64, OperatorConfig::in_order().with_policy(StorePolicy::Eager));
        assert_eq!(eager.name(), "Eager Slicing");
    }

    #[test]
    fn batched_ooo_grouping_matches_per_tuple() {
        for policy in [StorePolicy::Lazy, StorePolicy::Eager, StorePolicy::FingerTree] {
            let cfg = OperatorConfig::out_of_order(1_000).with_policy(policy);
            let mut a = WindowOperator::new(SumI64, cfg);
            let mut b = WindowOperator::new(SumI64, cfg);
            a.add_query(Box::new(TumblingStub { length: 10 })).unwrap();
            b.add_query(Box::new(TumblingStub { length: 10 })).unwrap();
            // In-order spine with interleaved late tuples, including ties,
            // a coverage gap (nothing in [40,50) until the late 44), and a
            // below-watermark straggler after the first watermark.
            let batch1: Vec<(Time, i64)> =
                vec![(5, 5), (50, 1), (12, 12), (44, 44), (12, 120), (55, 2), (3, 30)];
            let batch2: Vec<(Time, i64)> = vec![(60, 6), (14, 140), (58, 3)];
            let mut out_a = Vec::new();
            let mut out_b = Vec::new();
            for (ts, v) in &batch1 {
                a.process_tuple(*ts, *v, &mut out_a);
            }
            b.process_batch_tuples(&batch1, &mut out_b);
            a.process_watermark(20, &mut out_a);
            b.process_watermark(20, &mut out_b);
            for (ts, v) in &batch2 {
                a.process_tuple(*ts, *v, &mut out_a);
            }
            b.process_batch_tuples(&batch2, &mut out_b);
            a.process_watermark(100, &mut out_a);
            b.process_watermark(100, &mut out_b);
            let key = |r: &WindowResult<i64>| (r.query, r.range.start, r.range.end, r.value);
            assert_eq!(
                out_a.iter().map(key).collect::<Vec<_>>(),
                out_b.iter().map(key).collect::<Vec<_>>(),
                "policy {policy:?}"
            );
            assert_eq!(a.stats().tuples, b.stats().tuples);
            assert_eq!(a.stats().ooo_tuples, b.stats().ooo_tuples);
            assert_eq!(a.stats().dropped_late, b.stats().dropped_late);
        }
    }

    #[test]
    fn finger_batch_fast_path_edges_match_per_tuple() {
        let mk = || {
            let cfg = OperatorConfig::out_of_order(1_000).with_policy(StorePolicy::FingerTree);
            let mut op = WindowOperator::new(SumI64, cfg);
            op.add_query(Box::new(TumblingStub { length: 10 })).unwrap();
            op
        };
        let mut per_tuple = mk();
        let mut batched = mk();
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        // In-order spine establishing slices up to [100, 110).
        let spine: Vec<(Time, i64)> =
            [5, 7, 12, 18, 23, 31, 44, 57, 68, 101].iter().map(|&t| (t, 1)).collect();
        // Late tuples over FIVE distinct covering slices: one more than the
        // fast path's group ladder holds, forcing its scanning cold path.
        let wide: Vec<(Time, i64)> = vec![
            (105, 1),
            (110, 1),
            (55, 2),
            (62, 3),
            (75, 4),
            (83, 5),
            (91, 6),
            (96, 7),
            (71, 8),
            (88, 9),
        ];
        // A tuple at the watermark: the monotone fast path must bail
        // before mutating anything and defer to the generic batch path.
        let straggler: Vec<(Time, i64)> = vec![(120, 1), (50, 1), (125, 1)];
        for (batch, wm) in [(&spine, 50), (&wide, 100), (&straggler, 300)] {
            for &(ts, v) in batch {
                per_tuple.process_tuple(ts, v, &mut out_a);
            }
            batched.process_batch_tuples(batch, &mut out_b);
            per_tuple.process_watermark(wm, &mut out_a);
            batched.process_watermark(wm, &mut out_b);
        }
        let key = |r: &WindowResult<i64>| (r.query, r.range.start, r.range.end, r.value);
        assert_eq!(
            out_a.iter().map(key).collect::<Vec<_>>(),
            out_b.iter().map(key).collect::<Vec<_>>()
        );
        assert_eq!(per_tuple.stats().tuples, batched.stats().tuples);
        assert_eq!(per_tuple.stats().ooo_tuples, batched.stats().ooo_tuples);
        assert_eq!(per_tuple.stats().dropped_late, batched.stats().dropped_late);
    }

    #[test]
    fn disable_ooo_batching_matches_enabled() {
        let base = OperatorConfig::out_of_order(1_000).with_policy(StorePolicy::Eager);
        let mut enabled = WindowOperator::new(SumI64, base);
        let mut disabled =
            WindowOperator::new(SumI64, OperatorConfig { disable_ooo_batching: true, ..base });
        enabled.add_query(Box::new(TumblingStub { length: 10 })).unwrap();
        disabled.add_query(Box::new(TumblingStub { length: 10 })).unwrap();
        let batch: Vec<(Time, i64)> = (0..200)
            .map(|i| if i % 5 == 0 { (i as Time * 2 - 7, i) } else { (i as Time * 2, i) })
            .collect();
        let mut out_e = Vec::new();
        let mut out_d = Vec::new();
        enabled.process_batch_tuples(&batch, &mut out_e);
        disabled.process_batch_tuples(&batch, &mut out_d);
        enabled.process_watermark(500, &mut out_e);
        disabled.process_watermark(500, &mut out_d);
        let key = |r: &WindowResult<i64>| (r.query, r.range.start, r.range.end, r.value);
        assert_eq!(
            out_e.iter().map(key).collect::<Vec<_>>(),
            out_d.iter().map(key).collect::<Vec<_>>()
        );
    }

    #[test]
    fn collect_helpers_allocate_results() {
        let mut op = op_in_order();
        assert!(op.process_collect(5, 5).is_empty());
        let results = op.process_collect(15, 15);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].value, 5);
        // An explicit watermark also works on in-order streams and flushes
        // the still-open window [10, 20).
        let flushed = op.watermark_collect(100);
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].value, 15);
    }

    fn part(start: Time, v: i64, t_first: Time, t_last: Time, n: u64) -> SlicePartial<SumI64> {
        SlicePartial { start, end: start + 10, partial: v, t_first, t_last, n }
    }

    /// Reference for the merge tree: fold every list linearly into a map
    /// keyed by slice start.
    fn linear_merge(lists: &[Vec<SlicePartial<SumI64>>]) -> Vec<(Time, i64, Time, Time, u64)> {
        let mut map: std::collections::BTreeMap<Time, (i64, Time, Time, u64)> =
            std::collections::BTreeMap::new();
        for l in lists {
            for p in l {
                let e = map.entry(p.start).or_insert((0, Time::MAX, Time::MIN, 0));
                e.0 += p.partial;
                e.1 = e.1.min(p.t_first);
                e.2 = e.2.max(p.t_last);
                e.3 += p.n;
            }
        }
        map.into_iter().map(|(s, (v, tf, tl, n))| (s, v, tf, tl, n)).collect()
    }

    #[test]
    fn merge_tree_matches_linear_fold() {
        // Worker lists with overlapping spans, unsorted entries, and
        // same-span duplicates within one list (multi-flush epochs).
        let lists = vec![
            vec![part(20, 3, 21, 25, 2), part(0, 1, 4, 4, 1), part(20, 7, 29, 29, 1)],
            vec![part(10, 5, 12, 18, 3)],
            Vec::new(),
            vec![part(0, 2, 1, 9, 2), part(30, 4, 33, 33, 1)],
            vec![part(10, 6, 11, 19, 2), part(40, 9, 44, 44, 1)],
        ];
        let got: Vec<(Time, i64, Time, Time, u64)> = merge_partials_tree(&SumI64, lists.clone())
            .into_iter()
            .map(|p| (p.start, p.partial, p.t_first, p.t_last, p.n))
            .collect();
        assert_eq!(got, linear_merge(&lists));
        // Output is start-sorted with one entry per span.
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn merge_tree_handles_degenerate_shapes() {
        assert!(merge_partials_tree::<SumI64>(&SumI64, Vec::new()).is_empty());
        assert!(merge_partials_tree(&SumI64, vec![Vec::<SlicePartial<SumI64>>::new()]).is_empty());
        let one = merge_partials_tree(&SumI64, vec![vec![part(0, 5, 1, 2, 2)]]);
        assert_eq!(one.len(), 1);
        assert_eq!((one[0].start, one[0].partial, one[0].n), (0, 5, 2));
        // Odd list counts: the unpaired list survives rounds untouched.
        let odd = merge_partials_tree(
            &SumI64,
            vec![vec![part(0, 1, 0, 0, 1)], vec![part(0, 2, 1, 1, 1)], vec![part(0, 4, 2, 2, 1)]],
        );
        assert_eq!(odd.len(), 1);
        assert_eq!((odd[0].partial, odd[0].t_first, odd[0].t_last, odd[0].n), (7, 0, 2, 3));
    }
}
