//! The general stream slicing window operator (paper Section 5).
//!
//! Combines the three processing components of Figure 7 — the **Stream
//! Slicer** (creates slices on the fly for in-order tuples), the **Slice
//! Manager** (triggers merge/split/update operations), and the **Window
//! Manager** (computes final window aggregates) — around the shared
//! [`SliceStore`]. The operator adapts automatically to the workload
//! characteristics of its registered queries (Section 5.1): it stores
//! tuples only when required, uses ⊖ when the function is invertible, and
//! recomputes from source tuples only when unavoidable.

use crate::aggregator::WindowAggregator;
use crate::characteristics::WorkloadCharacteristics;
use crate::function::AggregateFunction;
use crate::mem::HeapSize;
use crate::result::WindowResult;
use crate::store::{SliceStore, StorePolicy};
use crate::time::{Count, Measure, Range, StreamOrder, Time, TIME_MAX, TIME_MIN};
use crate::window::{ContextEdges, Query, QueryId, WindowFunction};

/// Configuration of a [`WindowOperator`].
#[derive(Debug, Clone, Copy)]
pub struct OperatorConfig {
    /// Declared stream order (workload characteristic 1). In-order streams
    /// emit windows directly — every tuple acts as a watermark; out-of-order
    /// streams wait for explicit watermarks.
    pub order: StreamOrder,
    /// Lazy or eager final aggregation (Table 1 rows 5–8).
    pub policy: StorePolicy,
    /// How long after the watermark late tuples still update emitted
    /// windows (paper Section 2). Ignored for in-order streams.
    pub allowed_lateness: Time,
    /// Ablation switch: keep tuples in slices even when the Figure-4
    /// decision logic would drop them. Used to measure the value of the
    /// adaptive storage decision; never needed in production.
    pub force_tuple_storage: bool,
    /// Ablation switch: slice at window ends even on in-order streams
    /// (the paper's out-of-order edge set). Measures the value of
    /// start-only slicing; never needed in production.
    pub force_end_edges: bool,
}

impl Default for OperatorConfig {
    fn default() -> Self {
        OperatorConfig {
            order: StreamOrder::InOrder,
            policy: StorePolicy::Lazy,
            allowed_lateness: 0,
            force_tuple_storage: false,
            force_end_edges: false,
        }
    }
}

impl OperatorConfig {
    pub fn in_order() -> Self {
        Self::default()
    }

    pub fn out_of_order(allowed_lateness: Time) -> Self {
        OperatorConfig {
            order: StreamOrder::OutOfOrder,
            policy: StorePolicy::Lazy,
            allowed_lateness,
            ..Default::default()
        }
    }

    pub fn with_policy(mut self, policy: StorePolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// Why a query could not be registered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// Count-measure and time-measure queries cannot share one operator on
    /// an out-of-order stream: the Figure-6 count shift moves tuples across
    /// slice boundaries, which would corrupt time-window aggregates. (The
    /// paper evaluates the two measures separately; in-order streams may
    /// mix them freely.)
    MixedMeasuresOutOfOrder,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::MixedMeasuresOutOfOrder => write!(
                f,
                "count-measure and time-measure queries cannot be mixed on an \
                 out-of-order stream"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

/// Operational counters, useful for tests and the evaluation harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OperatorStats {
    pub tuples: u64,
    pub ooo_tuples: u64,
    pub dropped_late: u64,
    pub slices_created: u64,
    pub splits: u64,
    pub merges: u64,
    pub shifts: u64,
    pub windows_emitted: u64,
    pub updates_emitted: u64,
}

/// The general stream slicing operator.
pub struct WindowOperator<A: AggregateFunction> {
    f: A,
    cfg: OperatorConfig,
    queries: Vec<Query>,
    next_query_id: QueryId,
    chars: WorkloadCharacteristics,
    store: SliceStore<A>,
    /// Cached next time-measure window edge (end of the open slice), the
    /// single comparison the hot path performs per tuple.
    next_time_edge: Option<Time>,
    /// Cached next count-measure window edge.
    next_count_edge: Option<Count>,
    /// Highest event time processed so far.
    max_ts: Time,
    /// Highest punctuation position seen (punctuations can mark window
    /// ends beyond the latest tuple).
    max_punct: Time,
    /// Last processed watermark.
    watermark: Time,
    /// Upper bound of the last trigger sweep, per measure.
    last_trigger_time: Time,
    last_trigger_count: Count,
    /// Longest time-measure window extent among registered queries.
    max_time_extent: i64,
    /// Longest count-measure window extent among registered queries.
    max_count_extent: i64,
    /// Earliest time at which a time-measure window can end next; lets the
    /// in-order hot path skip the trigger sweep (one comparison per tuple).
    next_trigger_time: Option<Time>,
    /// Earliest count at which a count-measure window can end next.
    next_trigger_count: Option<Count>,
    /// Sweep on every tuple (context-aware or unknown-end windows).
    sweep_always: bool,
    /// At least one trigger sweep has run (the first tuple always sweeps).
    swept_once: bool,
    stats: OperatorStats,
    /// Indices into `queries` of context-aware windows (precomputed so the
    /// per-tuple notify loop touches only those).
    context_aware: Vec<usize>,
    /// Reusable buffer for context notifications.
    edges: ContextEdges,
}

impl<A: AggregateFunction> WindowOperator<A> {
    /// Creates an operator with no queries. Add at least one query before
    /// feeding tuples — tuples processed with no registered query are
    /// absorbed into a single catch-all slice.
    pub fn new(f: A, cfg: OperatorConfig) -> Self {
        let chars = WorkloadCharacteristics::derive(&[], cfg.order, f.properties());
        let store = SliceStore::new(f.clone(), cfg.policy, chars.requires_tuple_storage());
        WindowOperator {
            f,
            cfg,
            queries: Vec::new(),
            next_query_id: 0,
            chars,
            store,
            next_time_edge: None,
            next_count_edge: None,
            max_ts: TIME_MIN,
            max_punct: TIME_MIN,
            watermark: TIME_MIN,
            last_trigger_time: TIME_MIN,
            last_trigger_count: 0,
            max_time_extent: 0,
            max_count_extent: 0,
            next_trigger_time: None,
            next_trigger_count: None,
            sweep_always: false,
            swept_once: false,
            stats: OperatorStats::default(),
            context_aware: Vec::new(),
            edges: ContextEdges::new(),
        }
    }

    /// Registers a window query. The operator re-derives its workload
    /// characteristics and adapts storage decisions (paper Section 5:
    /// "our aggregator adapts when one adds or removes queries").
    pub fn add_query(&mut self, window: Box<dyn WindowFunction>) -> Result<QueryId, QueryError> {
        if self.cfg.order == StreamOrder::OutOfOrder {
            let new_measure = window.measure();
            if self.queries.iter().any(|q| q.window.measure() != new_measure) {
                return Err(QueryError::MixedMeasuresOutOfOrder);
            }
        }
        let id = self.next_query_id;
        self.next_query_id += 1;
        self.queries.push(Query::new(id, window));
        self.rederive();
        Ok(id)
    }

    /// Removes a query; returns `true` if it existed.
    pub fn remove_query(&mut self, id: QueryId) -> bool {
        let before = self.queries.len();
        self.queries.retain(|q| q.id != id);
        let removed = self.queries.len() != before;
        if removed {
            self.rederive();
        }
        removed
    }

    /// Current workload characteristics (for inspection/tests).
    pub fn characteristics(&self) -> &WorkloadCharacteristics {
        &self.chars
    }

    /// Operational counters.
    pub fn stats(&self) -> &OperatorStats {
        &self.stats
    }

    /// Number of slices currently stored.
    pub fn slice_count(&self) -> usize {
        self.store.len()
    }

    /// Read access to the aggregate store (benchmarks measure its latency
    /// and memory directly).
    pub fn store(&self) -> &SliceStore<A> {
        &self.store
    }

    /// The last processed watermark.
    pub fn current_watermark(&self) -> Time {
        self.watermark
    }

    fn rederive(&mut self) {
        self.chars =
            WorkloadCharacteristics::derive(&self.queries, self.cfg.order, self.f.properties());
        self.store
            .set_keep_tuples(self.chars.requires_tuple_storage() || self.cfg.force_tuple_storage);
        self.max_time_extent = self
            .queries
            .iter()
            .filter(|q| q.window.measure() == Measure::Time)
            .map(|q| q.window.max_extent())
            .max()
            .unwrap_or(0);
        self.max_count_extent = self
            .queries
            .iter()
            .filter(|q| q.window.measure() == Measure::Count)
            .map(|q| q.window.max_extent())
            .max()
            .unwrap_or(0);
        // Re-derive edge caches: a new query may introduce earlier edges
        // than the cached ones. Slicing for the new query starts strictly
        // after the data already processed (`max_ts`) — windows of a new
        // query that overlap the registration instant see partial data,
        // like in the reference implementation.
        if let Some(open_start) = self.store.last_slice().map(|s| s.start()) {
            let from = open_start.max(self.max_ts);
            self.next_time_edge = self.compute_next_time_edge(from);
            self.store.set_last_end(self.next_time_edge.unwrap_or(TIME_MAX));
        }
        self.next_count_edge = self.compute_next_count_edge(self.store.total_count());
        self.context_aware = self
            .queries
            .iter()
            .enumerate()
            .filter(|(_, q)| q.window.context().is_context_aware())
            .map(|(i, _)| i)
            .collect();
        self.refresh_trigger_caches();
    }

    /// Recomputes the cached positions at which the next window can end.
    fn refresh_trigger_caches(&mut self) {
        let probe_t = if self.last_trigger_time == TIME_MIN {
            self.max_ts.max(0)
        } else {
            self.last_trigger_time
        };
        let probe_c = self.last_trigger_count as Time;
        let mut sweep = self.chars.has_context_aware;
        let mut next_t: Option<Time> = None;
        let mut next_c: Option<Count> = None;
        for q in &self.queries {
            match q.window.measure() {
                Measure::Time => match q.window.next_window_end(probe_t) {
                    Some(e) => next_t = Some(next_t.map_or(e, |x| x.min(e))),
                    None => sweep = true,
                },
                Measure::Count => match q.window.next_window_end(probe_c) {
                    Some(e) => next_c = Some(next_c.map_or(e as Count, |x| x.min(e as Count))),
                    None => sweep = true,
                },
            }
        }
        self.next_trigger_time = next_t;
        self.next_trigger_count = next_c;
        self.sweep_always = sweep;
    }

    /// Minimum next time edge over all time-measure queries, strictly
    /// after `ts`. In-order streams slice only at window starts.
    fn compute_next_time_edge(&self, ts: Time) -> Option<Time> {
        let starts_only = self.cfg.order.is_in_order() && !self.cfg.force_end_edges;
        self.queries
            .iter()
            .filter(|q| q.window.measure() == Measure::Time)
            .filter_map(|q| {
                if starts_only {
                    q.window.next_start_edge(ts)
                } else {
                    q.window.next_edge(ts)
                }
            })
            .min()
    }

    /// Minimum next count edge over all count-measure queries, strictly
    /// after count position `c`.
    fn compute_next_count_edge(&self, c: Count) -> Option<Count> {
        let starts_only = self.cfg.order.is_in_order();
        self.queries
            .iter()
            .filter(|q| q.window.measure() == Measure::Count)
            .filter_map(|q| {
                let edge = if starts_only {
                    q.window.next_start_edge(c as Time)
                } else {
                    q.window.next_edge(c as Time)
                };
                edge.map(|e| e as Count)
            })
            .min()
    }

    /// True when this operator runs in count-delimited mode (count-measure
    /// queries on an out-of-order stream): slice lookups go by tuple
    /// content and the Figure-6 shift keeps count alignment.
    fn count_mode(&self) -> bool {
        self.chars.has_count_measure && self.cfg.order == StreamOrder::OutOfOrder
    }

    // ------------------------------------------------------------------
    // Step 1: the Stream Slicer (in-order tuples only)
    // ------------------------------------------------------------------

    /// Appends slices for every cached edge at or before `ts`. The common
    /// case — no edge crossed — costs a single comparison.
    fn advance_time_edges(&mut self, ts: Time) {
        while let Some(edge) = self.next_time_edge {
            if ts < edge {
                break;
            }
            let next = self.compute_next_time_edge(edge);
            self.store.append_slice(Range::new(edge, next.unwrap_or(TIME_MAX)));
            self.stats.slices_created += 1;
            self.next_time_edge = next;
        }
    }

    /// Cuts the open slice when the tuple count reaches a count edge. The
    /// incoming tuple at `ts` will be the first of the next count slice.
    fn advance_count_edge_in_order(&mut self, ts: Time) {
        while let Some(edge) = self.next_count_edge {
            if self.store.total_count() < edge {
                break;
            }
            if self.store.last_end().is_some_and(|end| ts < end)
                && self.store.last_slice().is_some_and(|s| s.start() <= ts)
            {
                self.store.cut_last_at(ts);
                self.stats.slices_created += 1;
            }
            self.next_count_edge = self.compute_next_count_edge(edge);
        }
    }

    /// Closes the open slice whenever the total count has reached a count
    /// edge. The cut lands at `max_ts`: all current tuples stay in the
    /// closed slice (they precede the edge in count order) and later
    /// arrivals — including ties at `max_ts`, whose count positions come
    /// after — fall into the new open slice.
    fn advance_count_edge_after_insert(&mut self) {
        while let Some(edge) = self.next_count_edge {
            if self.store.total_count() < edge {
                break;
            }
            let cut_at = self.max_ts;
            if self.store.last_end().is_some_and(|end| cut_at < end)
                && self.store.last_slice().is_some_and(|sl| sl.start() <= cut_at)
            {
                self.store.cut_last_at(cut_at);
                self.stats.slices_created += 1;
            }
            self.next_count_edge = self.compute_next_count_edge(edge);
        }
    }

    /// Ensures the store has an open slice covering `ts` (first tuple).
    fn ensure_first_slice(&mut self, ts: Time) {
        if self.store.is_empty() {
            let next = self.compute_next_time_edge(ts);
            self.store.append_slice(Range::new(ts, next.unwrap_or(TIME_MAX)));
            self.stats.slices_created += 1;
            self.next_time_edge = next;
        }
    }

    // ------------------------------------------------------------------
    // Step 2: the Slice Manager
    // ------------------------------------------------------------------

    /// Lets every context-aware window observe `ts` and applies the edge
    /// changes it requests (splits for new edges, merges for removed ones).
    fn notify_context_aware(&mut self, ts: Time, out: &mut Vec<WindowResult<A::Output>>) {
        if !self.chars.has_context_aware {
            return;
        }
        let mut edges = std::mem::take(&mut self.edges);
        edges.clear();
        for &i in &self.context_aware {
            self.queries[i].window.notify_context(ts, &mut edges);
        }
        self.apply_edges(&edges, out);
        self.edges = edges;
    }

    /// Applies requested edge additions (slice splits) and removals (slice
    /// merges). An edge is only merged away if no other query still needs
    /// an edge at that position — slice edges must exactly match window
    /// edges to keep the slice count minimal (paper Section 5.3, Step 2).
    fn apply_edges(&mut self, edges: &ContextEdges, _out: &mut Vec<WindowResult<A::Output>>) {
        for &e in edges.added() {
            if self.store.split_at(e) {
                self.stats.splits += 1;
            }
        }
        for &e in edges.removed() {
            if self.edge_required_by_any_query(e) {
                continue;
            }
            if self.store.merge_at(e) {
                self.stats.merges += 1;
            }
        }
    }

    /// Does any registered query define a window edge exactly at `e`?
    fn edge_required_by_any_query(&self, e: Time) -> bool {
        self.queries
            .iter()
            .any(|q| q.window.measure() == Measure::Time && q.window.requires_edge_at(e))
    }

    // ------------------------------------------------------------------
    // Step 3: the Window Manager
    // ------------------------------------------------------------------

    /// Emits every window that completed in `(last_trigger, wm]`.
    /// `data_pos` is the highest *data* position known to the caller (the
    /// current tuple's timestamp for in-order sweeps, `max_ts` for
    /// watermark sweeps) and bounds the enumeration so flush watermarks
    /// cannot sweep the whole time axis.
    fn trigger_up_to(&mut self, wm: Time, data_pos: Time, out: &mut Vec<WindowResult<A::Output>>) {
        let store = &self.store;
        let f = &self.f;
        let stats = &mut self.stats;
        // Count-space watermark: on in-order streams every processed tuple
        // is final; on out-of-order streams counts below the number of
        // tuples at or before the time watermark are final.
        let count_wm = if !self.chars.has_count_measure {
            0
        } else if self.cfg.order.is_in_order() {
            store.total_count()
        } else {
            store.count_at_or_before(wm)
        };
        // Clamp the sweep to the data extent: windows ending beyond
        // `max_ts + max_extent` are empty by construction, and a flush
        // watermark (e.g. i64::MAX) must not enumerate windows across the
        // whole time axis.
        let max_pos = data_pos.max(self.max_punct);
        if max_pos == TIME_MIN {
            // No data yet: nothing can trigger, and advancing the trigger
            // bookkeeping to an arbitrary watermark would skip windows of
            // data still to come.
            self.swept_once = true;
            return;
        }
        let wm = wm.min(max_pos.saturating_add(self.max_time_extent).saturating_add(1));
        // The first sweep starts from the first data position: windows
        // ending earlier are empty by construction, and enumerating from
        // TIME_MIN would overflow window arithmetic.
        let time_prev = if self.last_trigger_time == TIME_MIN {
            store.first_slice().map_or(wm, |s| s.start()).min(wm)
        } else {
            self.last_trigger_time
        };
        let count_prev = self.last_trigger_count;
        for q in &mut self.queries {
            let id = q.id;
            match q.window.measure() {
                Measure::Time => {
                    q.window.trigger_windows(time_prev, wm, &mut |range| {
                        if let Some(p) = store.query_time(range) {
                            stats.windows_emitted += 1;
                            out.push(WindowResult::new(id, Measure::Time, range, f.lower(&p)));
                        }
                    });
                }
                Measure::Count => {
                    q.window.trigger_windows(count_prev as Time, count_wm as Time, &mut |range| {
                        if let Some(p) = store.query_count(range.start as Count, range.end as Count)
                        {
                            stats.windows_emitted += 1;
                            out.push(WindowResult::new(id, Measure::Count, range, f.lower(&p)));
                        }
                    });
                }
            }
        }
        self.last_trigger_time = self.last_trigger_time.max(wm);
        self.last_trigger_count = self.last_trigger_count.max(count_wm);
        self.swept_once = true;
        self.refresh_trigger_caches();
    }

    /// Emits updated aggregates for already-triggered windows affected by a
    /// late tuple at `ts` (within the allowed lateness).
    fn emit_updates(&mut self, ts: Time, out: &mut Vec<WindowResult<A::Output>>) {
        let store = &self.store;
        let f = &self.f;
        let stats = &mut self.stats;
        let wm = self.watermark;
        let count_wm = if self.chars.has_count_measure { store.count_at_or_before(wm) } else { 0 };
        for q in &mut self.queries {
            let id = q.id;
            match q.window.measure() {
                Measure::Time => {
                    q.window.windows_containing(ts, &mut |range| {
                        if range.end <= wm {
                            if let Some(p) = store.query_time(range) {
                                stats.updates_emitted += 1;
                                out.push(WindowResult::update(
                                    id,
                                    Measure::Time,
                                    range,
                                    f.lower(&p),
                                ));
                            }
                        }
                    });
                }
                Measure::Count => {
                    // The count shift affects every already-final window at
                    // or after the insert position, not just the one
                    // containing it.
                    let c_ins = store.count_at_or_before(ts).saturating_sub(1);
                    q.window.trigger_windows(c_ins as Time, count_wm as Time, &mut |range| {
                        if let Some(p) = store.query_count(range.start as Count, range.end as Count)
                        {
                            stats.updates_emitted += 1;
                            out.push(WindowResult::update(id, Measure::Count, range, f.lower(&p)));
                        }
                    });
                }
            }
        }
    }

    /// Evicts slices no longer reachable by any window or late update. A
    /// slice is evictable only if **every** registered measure allows it:
    /// time queries bound eviction by `wm - lateness - max_extent` (and by
    /// pending context-aware windows), count queries by the trailing
    /// `max_count_extent` tuple counts.
    fn evict(&mut self, wm: Time) {
        let lateness = if self.cfg.order.is_in_order() { 0 } else { self.cfg.allowed_lateness };
        if self.count_mode() {
            let final_count = self.store.count_at_or_before(wm.saturating_sub(lateness));
            let keep_from = final_count.saturating_sub(self.max_count_extent as u64);
            self.store.evict_keeping_counts(keep_from);
            return;
        }
        let has_time_queries = self.queries.iter().any(|q| q.window.measure() == Measure::Time);
        let k_time = if has_time_queries {
            let mut boundary = wm.saturating_sub(lateness).saturating_sub(self.max_time_extent);
            for q in &self.queries {
                if let Some(pending) = q.window.earliest_pending_start() {
                    boundary = boundary.min(pending);
                }
            }
            self.store.slices().take_while(|s| s.end() <= boundary).count()
        } else {
            self.store.len().saturating_sub(1)
        };
        let k_count = if self.chars.has_count_measure {
            let keep_from = self.store.total_count().saturating_sub(self.max_count_extent as u64);
            self.store.count_evictable(keep_from)
        } else {
            self.store.len()
        };
        self.store.evict_first(k_time.min(k_count));
    }

    // ------------------------------------------------------------------
    // Tuple processing (Figure 7 input path)
    // ------------------------------------------------------------------

    /// Processes one tuple. Emits window results on `out` (in-order
    /// streams emit directly; out-of-order streams emit on watermarks plus
    /// late-update corrections here).
    pub fn process_tuple(
        &mut self,
        ts: Time,
        value: A::Input,
        out: &mut Vec<WindowResult<A::Output>>,
    ) {
        self.stats.tuples += 1;
        if ts >= self.max_ts || self.store.is_empty() {
            self.process_in_order(ts, value, out);
        } else {
            self.process_out_of_order(ts, value, out);
        }
    }

    fn process_in_order(
        &mut self,
        ts: Time,
        value: A::Input,
        out: &mut Vec<WindowResult<A::Output>>,
    ) {
        let slices_at_entry = self.stats.slices_created;
        // Stream Slicer: cut slices for every window edge at or before ts.
        self.ensure_first_slice(ts);
        self.advance_time_edges(ts);
        self.advance_count_edge_in_order(ts);
        // Slice Manager: context-aware windows may add/remove edges.
        self.notify_context_aware(ts, out);
        // Window Manager: on in-order streams every tuple acts as a
        // watermark carrying its own timestamp (paper Section 5.3, Step 3).
        // Triggering happens *before* the tuple is added: windows ending at
        // or before `ts` never contain it, which keeps start-only slicing
        // correct even when window ends fall between start edges (Cutty's
        // in-order trick) — the open slice holds no tuple at or past any
        // end being triggered.
        let in_order_emit = self.cfg.order.is_in_order();
        if in_order_emit {
            let sweep = self.sweep_always
                || !self.swept_once
                || self.next_trigger_time.is_some_and(|t| ts >= t)
                || self.next_trigger_count.is_some_and(|c| self.store.total_count() >= c);
            if sweep {
                self.trigger_up_to(ts, ts, out);
                self.watermark = ts;
            }
        }
        // Update: one incremental ⊕ into the open slice.
        self.store.add_in_order(ts, value);
        self.max_ts = ts;
        if in_order_emit {
            // Count windows can complete exactly with this tuple; emit them
            // immediately rather than on the next arrival.
            if self.next_trigger_count.is_some_and(|c| self.store.total_count() >= c) {
                self.trigger_up_to(ts, ts, out);
                self.watermark = ts;
            }
            // Evict only when slices were cut this call — eviction work is
            // amortized over slice lifetimes, keeping the per-tuple hot
            // path at one comparison.
            if self.stats.slices_created != slices_at_entry {
                self.evict(ts);
            }
        }
    }

    fn process_out_of_order(
        &mut self,
        ts: Time,
        value: A::Input,
        out: &mut Vec<WindowResult<A::Output>>,
    ) {
        self.stats.ooo_tuples += 1;
        debug_assert!(
            self.cfg.order == StreamOrder::OutOfOrder,
            "out-of-order tuple on a stream declared in-order"
        );
        if self.watermark != TIME_MIN && ts < self.watermark - self.cfg.allowed_lateness {
            self.stats.dropped_late += 1;
            return;
        }
        // Slice Manager: context changes first (may split/merge so the
        // tuple's slice exists and is correctly bounded).
        self.notify_context_aware(ts, out);
        if self.count_mode() {
            // If earlier arrivals already filled the open slice to a count
            // edge (the in-order path defers that cut to the next tuple),
            // close it *before* inserting so the boundary exists and the
            // shift cascade below sees correctly sized slices.
            self.advance_count_edge_after_insert();
            let idx = self
                .store
                .covering_index_by_tuples(ts)
                .expect("store cannot be empty when processing an out-of-order tuple");
            self.store.add_out_of_order(idx, ts, value);
            // Figure 6: restore count alignment by shifting the last tuple
            // of each slice one slice further, starting at the insert
            // slice. A tuple landing in the open (latest) slice needs no
            // shift at all.
            let last = self.store.len() - 1;
            for i in idx..last {
                if self.store.shift_last_into_next(i) {
                    self.stats.shifts += 1;
                }
            }
            // The insert grew the total count; close the open slice if it
            // just reached a count edge.
            self.advance_count_edge_after_insert();
        } else {
            let idx = match self.store.covering_index(ts) {
                Some(i) => i,
                None => {
                    // The tuple falls into a coverage gap (before the first
                    // slice, or between slices after a bounded insert).
                    // Bound the new slice by the next window edge so it
                    // never spans one.
                    let next_slice_start = self
                        .store
                        .slices()
                        .map(|s| s.start())
                        .find(|&s| s > ts)
                        .unwrap_or(TIME_MAX);
                    let next_edge = self.compute_next_time_edge(ts).unwrap_or(TIME_MAX);
                    let end = next_edge.min(next_slice_start);
                    debug_assert!(end > ts, "gap slice must cover its tuple");
                    let idx = self.store.insert_gap_slice(Range::new(ts, end));
                    self.stats.slices_created += 1;
                    idx
                }
            };
            self.store.add_out_of_order(idx, ts, value);
        }
        // Window Manager: late tuples below the watermark revise emitted
        // windows.
        if self.watermark != TIME_MIN && ts <= self.watermark {
            self.emit_updates(ts, out);
        }
    }

    /// Length of the longest prefix of `batch[start..]` that can be
    /// ingested as one run into the open slice with exact per-tuple
    /// semantics: consecutive in-order tuples that cross no slice edge,
    /// complete no window, and need no context notification. Returns 0
    /// when the tuple at `start` must take the per-tuple path.
    fn run_len(&self, batch: &[(Time, A::Input)], start: usize) -> usize {
        if self.store.is_empty() || self.chars.has_context_aware {
            return 0;
        }
        let in_order_emit = self.cfg.order.is_in_order();
        // The first tuple always sweeps; context-aware and unknown-end
        // windows sweep on every tuple.
        if in_order_emit && (self.sweep_always || !self.swept_once) {
            return 0;
        }
        // Count caps: stop before the next count edge cuts the open slice
        // and before any count window completes (the per-tuple path checks
        // the trigger both before and after the insert, so the run must
        // keep the post-insert count strictly below the trigger).
        let total = self.store.total_count();
        let mut cap = batch.len() - start;
        if let Some(edge) = self.next_count_edge {
            if total >= edge {
                return 0;
            }
            cap = cap.min((edge - total) as usize);
        }
        if in_order_emit {
            if let Some(c) = self.next_trigger_count {
                if total + 1 >= c {
                    return 0;
                }
                cap = cap.min((c - 1 - total) as usize);
            }
        }
        // Time bound: strictly below the next slice edge and the next
        // window completion.
        let mut bound = self.next_time_edge.unwrap_or(TIME_MAX);
        if in_order_emit {
            if let Some(t) = self.next_trigger_time {
                bound = bound.min(t);
            }
        }
        // Tuples must be in order and inside the open slice (punctuations
        // can cut slices ahead of the data).
        let open_start = self.store.last_slice().map_or(TIME_MAX, |s| s.start());
        let mut prev = self.max_ts.max(open_start);
        let mut n = 0;
        while n < cap {
            let ts = batch[start + n].0;
            if ts < prev || ts >= bound {
                break;
            }
            prev = ts;
            n += 1;
        }
        n
    }

    /// Processes a batch of tuples, ingesting maximal eligible runs with a
    /// single store touch each (one fold + ⊕ into the open slice, one
    /// tuple-storage append, one eager-leaf refresh). Tuples at slice
    /// edges, window completions, or out of order fall back to
    /// [`process_tuple`](WindowOperator::process_tuple), so emission
    /// points and results are identical to per-tuple processing.
    pub fn process_batch_tuples(
        &mut self,
        batch: &[(Time, A::Input)],
        out: &mut Vec<WindowResult<A::Output>>,
    ) {
        let mut i = 0;
        while i < batch.len() {
            let n = self.run_len(batch, i);
            if n <= 1 {
                let (ts, value) = &batch[i];
                self.process_tuple(*ts, value.clone(), out);
                i += 1;
                continue;
            }
            let run = &batch[i..i + n];
            self.store.add_in_order_run(run);
            self.max_ts = run[n - 1].0;
            self.stats.tuples += n as u64;
            i += n;
        }
    }

    /// Processes a stream punctuation (FCF windows, paper Section 4.4).
    pub fn process_punctuation(&mut self, ts: Time, out: &mut Vec<WindowResult<A::Output>>) {
        self.max_punct = self.max_punct.max(ts);
        if self.store.is_empty() {
            self.ensure_first_slice(ts);
        }
        self.advance_time_edges(ts);
        let mut edges = std::mem::take(&mut self.edges);
        edges.clear();
        for q in &mut self.queries {
            q.window.on_punctuation(ts, &mut edges);
        }
        self.apply_edges(&edges, out);
        self.edges = edges;
        if self.cfg.order.is_in_order() {
            self.trigger_up_to(ts, self.max_ts.max(ts), out);
            self.watermark = ts;
        }
    }

    /// Processes a watermark: emits completed windows and evicts state.
    pub fn process_watermark(&mut self, wm: Time, out: &mut Vec<WindowResult<A::Output>>) {
        if wm <= self.watermark {
            return;
        }
        self.trigger_up_to(wm, self.max_ts, out);
        self.watermark = wm;
        self.evict(wm);
    }
}

impl<A: AggregateFunction> Clone for WindowOperator<A> {
    /// Deep-copies the complete operator state — slices, aggregates,
    /// window context, watermarks, and bookkeeping. A clone is a
    /// **checkpoint**: persist it (or keep it on a standby) and resume
    /// processing from the captured position for Flink-style recovery;
    /// both copies evolve independently afterwards.
    fn clone(&self) -> Self {
        WindowOperator {
            f: self.f.clone(),
            cfg: self.cfg,
            queries: self.queries.clone(),
            next_query_id: self.next_query_id,
            chars: self.chars,
            store: self.store.clone(),
            next_time_edge: self.next_time_edge,
            next_count_edge: self.next_count_edge,
            max_ts: self.max_ts,
            max_punct: self.max_punct,
            watermark: self.watermark,
            last_trigger_time: self.last_trigger_time,
            last_trigger_count: self.last_trigger_count,
            max_time_extent: self.max_time_extent,
            max_count_extent: self.max_count_extent,
            next_trigger_time: self.next_trigger_time,
            next_trigger_count: self.next_trigger_count,
            sweep_always: self.sweep_always,
            swept_once: self.swept_once,
            stats: self.stats,
            context_aware: self.context_aware.clone(),
            edges: self.edges.clone(),
        }
    }
}

impl<A: AggregateFunction> WindowAggregator<A> for WindowOperator<A> {
    fn process(&mut self, ts: Time, value: A::Input, out: &mut Vec<WindowResult<A::Output>>) {
        self.process_tuple(ts, value, out);
    }

    fn process_batch(
        &mut self,
        batch: &[(Time, A::Input)],
        out: &mut Vec<WindowResult<A::Output>>,
    ) {
        self.process_batch_tuples(batch, out);
    }

    fn on_watermark(&mut self, wm: Time, out: &mut Vec<WindowResult<A::Output>>) {
        self.process_watermark(wm, out);
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.store.heap_bytes()
    }

    fn name(&self) -> &'static str {
        match self.cfg.policy {
            StorePolicy::Lazy => "Lazy Slicing",
            StorePolicy::Eager => "Eager Slicing",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::{SumI64, TumblingStub};

    fn op_in_order() -> WindowOperator<SumI64> {
        let mut op = WindowOperator::new(SumI64, OperatorConfig::in_order());
        op.add_query(Box::new(TumblingStub { length: 10 })).unwrap();
        op
    }

    fn op_ooo(lateness: Time) -> WindowOperator<SumI64> {
        let mut op = WindowOperator::new(SumI64, OperatorConfig::out_of_order(lateness));
        op.add_query(Box::new(TumblingStub { length: 10 })).unwrap();
        op
    }

    #[test]
    fn in_order_emits_per_window() {
        let mut op = op_in_order();
        let mut out = Vec::new();
        for ts in [1, 5, 12, 25] {
            op.process_tuple(ts, 1, &mut out);
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].range, Range::new(0, 10));
        assert_eq!(out[0].value, 2);
        assert_eq!(out[1].range, Range::new(10, 20));
        assert_eq!(out[1].value, 1);
    }

    #[test]
    fn watermark_regression_is_ignored() {
        let mut op = op_ooo(100);
        let mut out = Vec::new();
        op.process_tuple(5, 5, &mut out);
        op.process_tuple(25, 25, &mut out);
        op.process_watermark(20, &mut out);
        let n = out.len();
        op.process_watermark(10, &mut out); // regressing watermark: no-op
        op.process_watermark(20, &mut out); // repeated: no-op
        assert_eq!(out.len(), n);
        assert_eq!(op.current_watermark(), 20);
    }

    #[test]
    fn flush_watermark_emits_everything_without_looping() {
        let mut op = op_ooo(100);
        let mut out = Vec::new();
        op.process_tuple(5, 5, &mut out);
        op.process_tuple(95, 95, &mut out);
        // A flush watermark at i64::MAX must clamp to the data extent.
        op.process_watermark(i64::MAX - 1, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value, 5);
        assert_eq!(out[1].value, 95);
    }

    #[test]
    fn watermark_before_any_data_does_not_skip_later_windows() {
        let mut op = op_ooo(100);
        let mut out = Vec::new();
        op.process_watermark(1_000_000, &mut out);
        assert!(out.is_empty());
        op.process_tuple(2_000_000, 7, &mut out);
        op.process_watermark(2_000_011, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, 7);
    }

    #[test]
    fn stats_track_processing() {
        let mut op = op_ooo(100);
        let mut out = Vec::new();
        op.process_tuple(5, 1, &mut out);
        op.process_tuple(15, 1, &mut out);
        op.process_tuple(7, 1, &mut out); // out of order
        op.process_watermark(20, &mut out);
        let s = op.stats();
        assert_eq!(s.tuples, 3);
        assert_eq!(s.ooo_tuples, 1);
        assert_eq!(s.dropped_late, 0);
        assert!(s.slices_created >= 2);
        assert_eq!(s.windows_emitted, 2);
    }

    #[test]
    fn empty_windows_are_skipped() {
        let mut op = op_in_order();
        let mut out = Vec::new();
        op.process_tuple(5, 5, &mut out);
        op.process_tuple(95, 95, &mut out); // 8 empty windows in between
        assert_eq!(out.len(), 1, "only the nonempty window [0,10) fires");
        assert_eq!(out[0].value, 5);
    }

    #[test]
    fn query_removal_stops_emissions() {
        let mut op = WindowOperator::new(SumI64, OperatorConfig::in_order());
        let q = op.add_query(Box::new(TumblingStub { length: 10 })).unwrap();
        let mut out = Vec::new();
        op.process_tuple(5, 5, &mut out);
        assert!(op.remove_query(q));
        op.process_tuple(25, 25, &mut out);
        op.process_tuple(45, 45, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn duplicate_timestamps_accumulate_in_order() {
        let mut op = op_in_order();
        let mut out = Vec::new();
        for _ in 0..5 {
            op.process_tuple(3, 1, &mut out);
        }
        op.process_tuple(12, 0, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, 5);
    }

    #[test]
    fn force_tuple_storage_ablation_flag() {
        let cfg = OperatorConfig { force_tuple_storage: true, ..Default::default() };
        let mut op = WindowOperator::new(SumI64, cfg);
        op.add_query(Box::new(TumblingStub { length: 10 })).unwrap();
        let mut out = Vec::new();
        op.process_tuple(1, 1, &mut out);
        assert!(op.store().keeps_tuples());
        // The adaptive decision for this workload would be to drop them.
        assert!(!op.characteristics().requires_tuple_storage());
    }

    #[test]
    fn lateness_boundary_is_inclusive_of_allowed_updates() {
        let mut op = op_ooo(10);
        let mut out = Vec::new();
        op.process_tuple(5, 5, &mut out);
        op.process_tuple(40, 40, &mut out);
        op.process_watermark(30, &mut out);
        out.clear();
        // Exactly at watermark - lateness: still allowed.
        op.process_tuple(20, 20, &mut out);
        assert_eq!(op.stats().dropped_late, 0);
        // Below it: dropped.
        op.process_tuple(19, 19, &mut out);
        assert_eq!(op.stats().dropped_late, 1);
    }

    #[test]
    fn operator_reports_memory() {
        let mut op = op_in_order();
        let m0 = op.memory_bytes();
        let mut out = Vec::new();
        for i in 0..1_000 {
            op.process_tuple(i, 1, &mut out);
        }
        assert!(op.memory_bytes() >= m0);
        assert_eq!(op.name(), "Lazy Slicing");
        let eager: WindowOperator<SumI64> =
            WindowOperator::new(SumI64, OperatorConfig::in_order().with_policy(StorePolicy::Eager));
        assert_eq!(eager.name(), "Eager Slicing");
    }

    #[test]
    fn collect_helpers_allocate_results() {
        let mut op = op_in_order();
        assert!(op.process_collect(5, 5).is_empty());
        let results = op.process_collect(15, 15);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].value, 5);
        // An explicit watermark also works on in-order streams and flushes
        // the still-open window [10, 20).
        let flushed = op.watermark_collect(100);
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].value, 15);
    }
}
