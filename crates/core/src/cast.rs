//! Checked numeric conversions for slice-index and timestamp arithmetic.
//!
//! The `core-cast` lint (see `crates/analysis`) bans bare `as usize` /
//! `as i64` casts in this crate: a silently wrapping cast between a
//! global slice index (`i64`) and a dense buffer offset (`usize`), or
//! between a tuple count (`u64`) and a capacity, corrupts aggregates
//! without a trace. Every lossy direction funnels through this module
//! instead, where the debug build asserts the precondition and the
//! release build saturates rather than wraps. This file is the single
//! audited `core-cast` exception in `analysis/lint.allow`.

/// Widens a buffer length or position into global-index (`i64`)
/// arithmetic. Lossless for any in-memory length.
#[inline]
pub fn to_i64(n: usize) -> i64 {
    debug_assert!(i64::try_from(n).is_ok(), "length {n} overflows i64");
    i64::try_from(n).unwrap_or(i64::MAX)
}

/// Narrows a tuple count (`u64`) into a capacity / element count.
#[inline]
pub fn to_usize(n: u64) -> usize {
    debug_assert!(usize::try_from(n).is_ok(), "count {n} overflows usize");
    usize::try_from(n).unwrap_or(usize::MAX)
}

/// Widens a buffer length into a tuple count (`u64`). Lossless on every
/// supported target (`usize` is at most 64 bits).
#[inline]
pub fn to_u64(n: usize) -> u64 {
    debug_assert!(u64::try_from(n).is_ok(), "length {n} overflows u64");
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// Offset of global slice index `g` from `base` as a dense index.
/// Callers guarantee `g >= base`; the debug build asserts it.
#[inline]
pub fn gidx(g: i64, base: i64) -> usize {
    debug_assert!(g >= base, "global index {g} below base {base}");
    usize::try_from(g.wrapping_sub(base)).unwrap_or(0)
}

/// Widens a dense `u32` id (group slots, small handles) to an index.
/// Infallible on every supported target (`usize` is at least 32 bits).
#[inline]
pub fn idx32(n: u32) -> usize {
    n as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        assert_eq!(to_i64(0), 0);
        assert_eq!(to_i64(4096), 4096);
        assert_eq!(to_usize(0), 0);
        assert_eq!(to_usize(1 << 40), 1usize << 40);
        assert_eq!(to_u64(0), 0);
        assert_eq!(to_u64(4096), 4096);
        assert_eq!(gidx(17, 10), 7);
        assert_eq!(gidx(-3, -8), 5);
        assert_eq!(idx32(u32::MAX), u32::MAX as usize);
    }
}
