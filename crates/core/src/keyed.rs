//! Keyed window aggregation: many keys, one operator (beyond the paper).
//!
//! The paper's operator ([`crate::operator::WindowOperator`]) handles one
//! logical stream. Real deployments window *keyed* streams — millions of
//! user/device/session keys, each with the same window definitions. The
//! naive lifting (one full `WindowOperator` per key in a map) duplicates
//! per-key everything: slice metadata, stream-slicer edge caches, trigger
//! bookkeeping, and — worst — makes every watermark an O(total keys) sweep.
//!
//! [`KeyedWindowOperator`] exploits the observation that for *time-measure,
//! context-free* windows (tumbling, sliding) the slice edges are a pure
//! function of the window parameters — identical for every key. So:
//!
//! * **Shared slice timeline.** One global list of slice boundaries
//!   ([`Timeline`]); each key stores only a dense ring of per-slice
//!   aggregate partials aligned to it ([`KeyState`]). Boundary decisions
//!   (which slice does `ts` fall in, when does the next window end) are
//!   computed once per batch run, not once per key.
//! * **Key-grouped batches.** `process_batch` groups the chunk by key with
//!   a fast [`crate::hash::FxHashMap`], then commits one store touch per
//!   `(key, in-order run)` using [`crate::aggregator::in_order_run_len`].
//! * **Amortized watermarks.** A min-heap of `(earliest pending window
//!   end, key)` makes `on_watermark` scale with the number of keys that
//!   actually have a due window, not with the total key population. Idle
//!   keys are dropped after a configurable TTL.
//!
//! Windows whose edges depend on the data (sessions, punctuation windows,
//! count measures) fall back to [`NaiveKeyedOperator`] — the map-of-
//! operators baseline, which is also what the keyed benchmark compares
//! against.

use std::cmp::Reverse;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, VecDeque};

use crate::aggregator::{in_order_run_len, WindowAggregator};
use crate::cast;
use crate::function::{AggregateFunction, FunctionProperties};
use crate::hash::FxHashMap;
use crate::mem::HeapSize;
use crate::operator::{OperatorConfig, WindowOperator};
use crate::result::WindowResult;
use crate::time::{Measure, Time, TIME_MAX, TIME_MIN};
use crate::timeline::Timeline;
use crate::window::{ContextClass, Query, WindowFunction};

/// Lifts an [`AggregateFunction`] over `V` to one over `(key, V)` pairs.
///
/// The key rides along in the partial so that one `WindowAggregator`
/// object type covers both the keyed operator and the existing pipeline
/// plumbing; `combine` asserts (in debug builds) that partials from
/// different keys are never mixed.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerKey<A>(pub A);

impl<A: AggregateFunction> AggregateFunction for PerKey<A> {
    type Input = (u64, A::Input);
    type Partial = (u64, A::Partial);
    type Output = (u64, A::Output);

    fn lift(&self, v: &(u64, A::Input)) -> (u64, A::Partial) {
        (v.0, self.0.lift(&v.1))
    }

    fn combine(&self, a: (u64, A::Partial), b: &(u64, A::Partial)) -> (u64, A::Partial) {
        debug_assert_eq!(a.0, b.0, "combined partials from different keys");
        (a.0, self.0.combine(a.1, &b.1))
    }

    fn lower(&self, p: &(u64, A::Partial)) -> (u64, A::Output) {
        (p.0, self.0.lower(&p.1))
    }

    fn invert(&self, a: (u64, A::Partial), b: &(u64, A::Partial)) -> Option<(u64, A::Partial)> {
        debug_assert_eq!(a.0, b.0, "inverted partials from different keys");
        let key = a.0;
        self.0.invert(a.1, &b.1).map(|p| (key, p))
    }

    fn properties(&self) -> FunctionProperties {
        self.0.properties()
    }
}

/// Configuration of a keyed window operator.
#[derive(Debug, Clone, Copy, Default)]
pub struct KeyedConfig {
    /// How far behind the watermark a tuple may arrive before being
    /// dropped (same meaning as [`OperatorConfig::allowed_lateness`]).
    pub allowed_lateness: Time,
    /// Evict a key's state once no tuple has arrived for it for this long
    /// (in event time, judged against the watermark) *and* it has no
    /// pending window. `None` keeps idle keys forever.
    ///
    /// Eviction is approximate in the spirit of Flink's state TTL: a
    /// tuple for an evicted key re-creates the key from scratch, so
    /// results are exactly those of an infinite-retention run only when
    /// `idle_ttl >= allowed_lateness + max window extent`.
    pub idle_ttl: Option<Time>,
}

impl KeyedConfig {
    pub fn with_allowed_lateness(mut self, lateness: Time) -> Self {
        self.allowed_lateness = lateness;
        self
    }

    pub fn with_idle_ttl(mut self, ttl: Time) -> Self {
        self.idle_ttl = Some(ttl);
        self
    }
}

/// Counters exposed by [`KeyedWindowOperator::stats`] for tests and
/// benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KeyedStats {
    /// Tuples accepted (in-order or late-but-allowed).
    pub tuples: u64,
    /// Tuples that arrived behind their key's max timestamp.
    pub ooo_tuples: u64,
    /// Tuples dropped for exceeding allowed lateness.
    pub dropped_late: u64,
    /// Final window results emitted.
    pub windows_emitted: u64,
    /// Update (early re-fire) results emitted for late tuples.
    pub updates_emitted: u64,
    /// Distinct keys ever created.
    pub keys_created: u64,
    /// Keys evicted by the idle TTL.
    pub keys_evicted: u64,
    /// Shared slices created on the timeline.
    pub slices_created: u64,
    /// Keys actually swept by `on_watermark` (heap hits).
    pub heap_wakeups: u64,
    /// Heap entries discarded as stale (key evicted or due time superseded).
    pub stale_wakeups: u64,
    /// Per-key runs folded through a bulk `fold_slice` kernel.
    pub fold_kernel_hits: u64,
    /// Per-key runs folded through the default lift/combine loop.
    pub fold_kernel_misses: u64,
}

// ---------------------------------------------------------------------------
// Per-key state
// ---------------------------------------------------------------------------

/// One key's windowing state: a dense ring of per-slice partials aligned
/// to the shared [`Timeline`], plus the scalar trigger bookkeeping the
/// reference operator keeps per stream.
struct KeyState<A: AggregateFunction> {
    /// Timeline generation the ring's global indices were issued under
    /// (see [`Timeline::generation`]): a mismatch means the timeline was
    /// rebuilt from empty since this key's last touch and every slot
    /// must be dropped, because the surviving indices would be misread
    /// under the new anchor.
    generation: u64,
    /// Global slice index of `partials[0]`.
    first: i64,
    /// `partials[i]` aggregates this key's tuples in global slice
    /// `first + i`; `None` = no tuples there.
    partials: VecDeque<Option<A::Partial>>,
    /// Timestamp of this key's earliest tuple (for the first sweep).
    t_first: Time,
    /// Timestamp of this key's latest tuple (the key's `max_ts`).
    t_last: Time,
    /// Watermark position up to which windows were already emitted
    /// (`TIME_MIN` until the first sweep), mirroring the reference
    /// operator's `last_trigger`.
    emitted: Time,
    /// Global watermark as of this key's last touch (ingest or sweep).
    /// The reference operator advances `last_trigger` to the clamped
    /// watermark on *every* watermark, fired or not; heap-gated keys
    /// catch up lazily via [`catch_up_emitted`] — sound because `t_last`
    /// cannot change between touches.
    wm_seen: Time,
    /// Earliest pending window end, if one is reachable; mirrors the
    /// live heap entry so stale entries can be recognized on pop.
    due: Option<Time>,
}

impl<A: AggregateFunction> KeyState<A> {
    fn new() -> Self {
        KeyState {
            generation: 0,
            first: 0,
            partials: VecDeque::new(),
            t_first: TIME_MAX,
            t_last: TIME_MIN,
            emitted: TIME_MIN,
            wm_seen: TIME_MIN,
            due: None,
        }
    }

    /// Drops ring slots whose backing slices were evicted: all of them if
    /// the timeline regrew from empty since this key's last touch (the
    /// index↔time anchor moved, so surviving slots would be misread —
    /// possibly *inside* live windows, since the new base can sit below
    /// the stale indices), otherwise just the slots whose global index
    /// fell below the timeline base. Either drop is lossless: eviction
    /// only covers slices no still-fireable window or update can reach.
    fn trim_to(&mut self, timeline: &Timeline) {
        if self.generation != timeline.generation() {
            self.generation = timeline.generation();
            self.partials.clear();
            self.first = timeline.base();
            return;
        }
        let base = timeline.base();
        while self.first < base && !self.partials.is_empty() {
            self.partials.pop_front();
            self.first += 1;
        }
        if self.partials.is_empty() {
            self.first = self.first.max(base);
        }
    }

    /// Combines `p` into the slot for global slice `g`, growing the ring
    /// in either direction as needed. Existing-before-new preserves
    /// arrival order within a slice (only observable for non-commutative
    /// functions, which the shared path doesn't host — but cheap to keep
    /// right).
    fn add_at(&mut self, g: i64, p: A::Partial, f: &A) {
        if self.partials.is_empty() {
            self.first = g;
            self.partials.push_back(Some(p));
            return;
        }
        if g < self.first {
            for _ in 0..(self.first - g) {
                self.partials.push_front(None);
            }
            self.first = g;
            self.partials[0] = Some(p);
            return;
        }
        let idx = cast::gidx(g, self.first);
        if idx >= self.partials.len() {
            for _ in self.partials.len()..=idx {
                self.partials.push_back(None);
            }
        }
        self.partials[idx] = match self.partials[idx].take() {
            Some(existing) => Some(f.combine(existing, &p)),
            None => Some(p),
        };
    }

    /// Aggregate of this key's partials across global slices `[gl, gr)`,
    /// or `None` if the key has no tuples there.
    fn query(&self, gl: i64, gr: i64, f: &A) -> Option<A::Partial> {
        let lo = gl.max(self.first);
        let hi = gr.min(self.first + cast::to_i64(self.partials.len()));
        if lo >= hi {
            return None;
        }
        let mut acc: Option<A::Partial> = None;
        for i in lo..hi {
            if let Some(p) = &self.partials[cast::gidx(i, self.first)] {
                acc = Some(match acc {
                    Some(a) => f.combine(a, p),
                    None => p.clone(),
                });
            }
        }
        acc
    }

    fn heap_bytes(&self) -> usize {
        self.partials.capacity() * std::mem::size_of::<Option<A::Partial>>()
            + self.partials.iter().flatten().map(HeapSize::heap_bytes).sum::<usize>()
    }
}

// ---------------------------------------------------------------------------
// Shared-timeline keyed operator
// ---------------------------------------------------------------------------

/// Earliest window end strictly after `probe` across all queries, or
/// `TIME_MAX` if none is known.
fn union_next_end(queries: &[Query], probe: Time) -> Time {
    let mut e = TIME_MAX;
    for q in queries {
        if let Some(n) = q.window.next_window_end(probe) {
            e = e.min(n);
        }
    }
    e
}

/// Advances a key's `emitted` floor over watermarks that passed while the
/// key was heap-gated (not due, so nothing could have fired). The
/// reference operator advances `last_trigger` to the clamped watermark on
/// *every* watermark delivery; without this catch-up, a late tuple
/// landing below the reference's floor would be re-fired as a regular
/// window at the key's next sweep instead of staying update-only.
/// Sound to do lazily because a key's `t_last` cannot change between
/// touches: any tuple arrival is itself a touch.
fn catch_up_emitted<A: AggregateFunction>(st: &mut KeyState<A>, wm: Time, max_extent: i64) {
    if wm > st.wm_seen {
        if st.t_last != TIME_MIN && wm != TIME_MIN {
            let clamped = wm.min(st.t_last.saturating_add(max_extent).saturating_add(1));
            st.emitted = st.emitted.max(clamped);
        }
        st.wm_seen = wm;
    }
}

/// Recomputes a key's earliest *reachable* pending window end. A window
/// end past `t_last + max_extent` can never contain any of this key's
/// tuples, so the key is drained and needs no heap entry.
fn due_of<A: AggregateFunction>(
    st: &KeyState<A>,
    queries: &[Query],
    max_extent: i64,
) -> Option<Time> {
    if st.t_last == TIME_MIN {
        return None;
    }
    let probe = if st.emitted == TIME_MIN { st.t_first } else { st.emitted };
    let cand = union_next_end(queries, probe);
    let reach = st.t_last.saturating_add(max_extent);
    (cand <= reach).then_some(cand)
}

/// Sweeps one key's completed windows up to watermark `wm`, mirroring the
/// reference operator's `trigger_up_to` (clamp, first-sweep floor, one
/// `trigger_windows` pass per query).
#[allow(clippy::too_many_arguments)]
fn sweep_key<A: AggregateFunction>(
    key: u64,
    st: &mut KeyState<A>,
    f: &A,
    queries: &mut [Query],
    timeline: &Timeline,
    max_extent: i64,
    wm: Time,
    stats: &mut KeyedStats,
    out: &mut Vec<WindowResult<(u64, A::Output)>>,
) {
    if st.t_last == TIME_MIN {
        return;
    }
    // Don't emit windows that could still receive in-order tuples for
    // this key — same clamp as the reference operator.
    let wm_eff = wm.min(st.t_last.saturating_add(max_extent).saturating_add(1));
    let prev = if st.emitted == TIME_MIN { st.t_first.min(wm_eff) } else { st.emitted };
    if wm_eff > prev {
        for q in queries.iter_mut() {
            let id = q.id;
            let st = &*st;
            q.window.trigger_windows(prev, wm_eff, &mut |range| {
                let Some((gl, gr)) = timeline.global_range(range) else { return };
                if let Some(p) = st.query(gl, gr, f) {
                    stats.windows_emitted += 1;
                    out.push(WindowResult::new(id, Measure::Time, range, (key, f.lower(&p))));
                }
            });
        }
        st.emitted = st.emitted.max(wm_eff);
    }
}

/// Re-emits the windows containing a late tuple at `ts` that already
/// fired (window end at or before `wm`), flagged as updates — the keyed
/// analogue of the reference operator's `emit_updates`.
#[allow(clippy::too_many_arguments)]
fn emit_updates_key<A: AggregateFunction>(
    key: u64,
    st: &KeyState<A>,
    f: &A,
    queries: &[Query],
    timeline: &Timeline,
    ts: Time,
    wm: Time,
    stats: &mut KeyedStats,
    out: &mut Vec<WindowResult<(u64, A::Output)>>,
) {
    for q in queries {
        let id = q.id;
        q.window.windows_containing(ts, &mut |range| {
            if range.end > wm {
                return;
            }
            let Some((gl, gr)) = timeline.global_range(range) else { return };
            if let Some(p) = st.query(gl, gr, f) {
                stats.updates_emitted += 1;
                out.push(WindowResult::update(id, Measure::Time, range, (key, f.lower(&p))));
            }
        });
    }
}

/// Per-key tuple groups built by batch grouping; storage recycled across
/// batches.
type KeyGroups<A> = Vec<(u64, Vec<(Time, <A as AggregateFunction>::Input)>)>;

/// The shared-timeline engine behind [`KeyedWindowOperator`]. Hosts only
/// time-measure, context-free windows with static edges and commutative
/// aggregate functions (checked by [`KeyedWindowOperator::new`]).
struct SharedKeyed<A: AggregateFunction> {
    f: A,
    cfg: KeyedConfig,
    queries: Vec<Query>,
    max_extent: i64,
    timeline: Timeline,
    keys: FxHashMap<u64, KeyState<A>>,
    /// Min-heap of `(due window end, key)`. Entries are lazy: a key's
    /// live entry is the one matching `KeyState::due`; all others are
    /// discarded as stale on pop.
    trigger_heap: BinaryHeap<Reverse<(Time, u64)>>,
    /// Min-heap of `(expiry, key)` for TTL eviction, also lazy.
    ttl_heap: BinaryHeap<Reverse<(Time, u64)>>,
    watermark: Time,
    stats: KeyedStats,
    // Reusable batch-grouping scratch.
    group_of: FxHashMap<u64, u32>,
    groups: KeyGroups<A>,
}

impl<A: AggregateFunction> SharedKeyed<A> {
    fn new(f: A, windows: Vec<Box<dyn WindowFunction>>, cfg: KeyedConfig) -> Self {
        let queries: Vec<Query> =
            windows.into_iter().enumerate().map(|(i, w)| Query::new(i as u32, w)).collect();
        let max_extent = queries.iter().map(|q| q.window.max_extent()).max().unwrap_or(0);
        SharedKeyed {
            f,
            cfg,
            queries,
            max_extent,
            timeline: Timeline::default(),
            keys: FxHashMap::default(),
            trigger_heap: BinaryHeap::new(),
            ttl_heap: BinaryHeap::new(),
            watermark: TIME_MIN,
            stats: KeyedStats::default(),
            group_of: FxHashMap::default(),
            groups: Vec::new(),
        }
    }

    /// Splits `batch` into per-key groups, preserving arrival order
    /// within each key. Group storage is recycled across batches.
    fn group_batch(&mut self, batch: &[(Time, (u64, A::Input))]) {
        self.group_of.clear();
        let mut live = 0usize;
        for (ts, (key, v)) in batch {
            let gi = match self.group_of.get(key) {
                Some(&gi) => cast::idx32(gi),
                None => {
                    let gi = live;
                    if gi == self.groups.len() {
                        self.groups.push((*key, Vec::new()));
                    } else {
                        self.groups[gi].0 = *key;
                        self.groups[gi].1.clear();
                    }
                    live += 1;
                    self.group_of.insert(*key, gi as u32);
                    gi
                }
            };
            self.groups[gi].1.push((*ts, v.clone()));
        }
        // Clear any leftover groups from a previous, larger batch.
        for g in &mut self.groups[live..] {
            g.1.clear();
        }
        self.groups.truncate(live);
    }

    /// Ingests one key's ordered tuple group and refreshes its heap entry.
    fn ingest_group(
        &mut self,
        key: u64,
        tuples: &[(Time, A::Input)],
        out: &mut Vec<WindowResult<(u64, A::Output)>>,
    ) {
        if tuples.is_empty() {
            return;
        }
        let st = match self.keys.entry(key) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => {
                self.stats.keys_created += 1;
                if let Some(ttl) = self.cfg.idle_ttl {
                    let expiry = tuples[0].0.saturating_add(ttl);
                    self.ttl_heap.push(Reverse((expiry, key)));
                }
                e.insert(KeyState::new())
            }
        };
        st.trim_to(&self.timeline);
        catch_up_emitted(st, self.watermark, self.max_extent);
        let old_due = st.due;

        let mut i = 0;
        while i < tuples.len() {
            let (ts, _) = tuples[i];
            if st.t_last == TIME_MIN || ts >= st.t_last {
                // Key-in-order: fold the longest run inside one slice.
                let pos = self.timeline.ensure_covering(
                    ts,
                    &self.queries,
                    &mut self.stats.slices_created,
                );
                let slice = self.timeline.get(pos);
                let n = in_order_run_len(tuples, i, ts, slice.end, usize::MAX);
                debug_assert!(n >= 1);
                // The per-key run commit goes through the shared bulk-fold
                // routing: long runs gather into contiguous buffer(s) for
                // the `fold_slice` / `fold_slice_pairs` kernel, short ones
                // fold inline.
                if crate::function::kernel_eligible(&self.f, n)
                    || crate::function::pair_kernel_eligible(&self.f, n)
                {
                    self.stats.fold_kernel_hits += 1;
                } else {
                    self.stats.fold_kernel_misses += 1;
                }
                let p = match crate::slice::fold_run(&self.f, &tuples[i..i + n]) {
                    Some(p) => p,
                    None => unreachable!("run has at least one tuple"),
                };
                // `ensure_covering` may have rebirthed an empty timeline,
                // starting a new generation this key must sync to.
                st.trim_to(&self.timeline);
                st.add_at(self.timeline.base() + cast::to_i64(pos), p, &self.f);
                st.t_first = st.t_first.min(ts);
                st.t_last = tuples[i + n - 1].0;
                self.stats.tuples += n as u64;
                i += n;
            } else {
                // Key-late tuple: same drop / update rules as the
                // reference operator's out-of-order path.
                self.stats.ooo_tuples += 1;
                let wm = self.watermark;
                if wm != TIME_MIN && ts < wm.saturating_sub(self.cfg.allowed_lateness) {
                    self.stats.dropped_late += 1;
                    i += 1;
                    continue;
                }
                let pos = self.timeline.ensure_covering(
                    ts,
                    &self.queries,
                    &mut self.stats.slices_created,
                );
                st.trim_to(&self.timeline);
                let g = self.timeline.base() + cast::to_i64(pos);
                st.add_at(g, self.f.lift(&tuples[i].1), &self.f);
                st.t_first = st.t_first.min(ts);
                self.stats.tuples += 1;
                if wm != TIME_MIN && ts <= wm {
                    emit_updates_key(
                        key,
                        st,
                        &self.f,
                        &self.queries,
                        &self.timeline,
                        ts,
                        wm,
                        &mut self.stats,
                        out,
                    );
                }
                i += 1;
            }
        }

        st.due = due_of(st, &self.queries, self.max_extent);
        let due = st.due;
        if let Some(d) = due {
            if old_due != Some(d) {
                self.trigger_heap.push(Reverse((d, key)));
            }
        }
    }

    fn process_batch(
        &mut self,
        batch: &[(Time, (u64, A::Input))],
        out: &mut Vec<WindowResult<(u64, A::Output)>>,
    ) {
        self.group_batch(batch);
        let mut groups = std::mem::take(&mut self.groups);
        for (key, tuples) in &groups {
            self.ingest_group(*key, tuples, out);
        }
        for g in &mut groups {
            g.1.clear();
        }
        self.groups = groups;
    }

    fn on_watermark(&mut self, wm: Time, out: &mut Vec<WindowResult<(u64, A::Output)>>) {
        if wm <= self.watermark {
            return;
        }
        // Sweep only keys whose earliest pending window end is due.
        while let Some(&Reverse((due, key))) = self.trigger_heap.peek() {
            if due > wm {
                break;
            }
            self.trigger_heap.pop();
            let Some(st) = self.keys.get_mut(&key) else {
                self.stats.stale_wakeups += 1;
                continue;
            };
            if st.due != Some(due) {
                self.stats.stale_wakeups += 1;
                continue;
            }
            st.due = None;
            self.stats.heap_wakeups += 1;
            st.trim_to(&self.timeline);
            // Catch the floor up over watermarks skipped while heap-gated
            // (`self.watermark` is still the previous watermark here).
            catch_up_emitted(st, self.watermark, self.max_extent);
            sweep_key(
                key,
                st,
                &self.f,
                &mut self.queries,
                &self.timeline,
                self.max_extent,
                wm,
                &mut self.stats,
                out,
            );
            st.wm_seen = wm;
            st.due = due_of(st, &self.queries, self.max_extent);
            let due = st.due;
            if let Some(d) = due {
                self.trigger_heap.push(Reverse((d, key)));
            }
        }
        self.watermark = wm;

        // Evict shared slices no late tuple can reach any more.
        let boundary = wm.saturating_sub(self.cfg.allowed_lateness).saturating_sub(self.max_extent);
        self.timeline.evict_to(boundary);

        // TTL: drop keys idle past the deadline with nothing pending.
        if let Some(ttl) = self.cfg.idle_ttl {
            while let Some(&Reverse((expiry, key))) = self.ttl_heap.peek() {
                if expiry > wm {
                    break;
                }
                self.ttl_heap.pop();
                let Some(st) = self.keys.get(&key) else { continue };
                let fresh = st.t_last.saturating_add(ttl);
                if fresh <= wm && st.due.is_none() {
                    self.keys.remove(&key);
                    self.stats.keys_evicted += 1;
                } else {
                    self.ttl_heap.push(Reverse((fresh.max(wm.saturating_add(1)), key)));
                }
            }
        }
        #[cfg(feature = "audit")]
        self.assert_invariants();
    }

    /// Dense trigger-gating checks for the audit build, run after every
    /// watermark: no live key may still owe an emission (a due time at
    /// or below the watermark), every live due time must have a backing
    /// trigger-heap entry (entries are lazy, so the heap may hold extra
    /// stale ones), and no key's watermark floor may run ahead of the
    /// operator's.
    #[cfg(feature = "audit")]
    fn assert_invariants(&self) {
        let mut entries: Vec<(Time, u64)> = self.trigger_heap.iter().map(|&Reverse(e)| e).collect();
        entries.sort_unstable();
        for (key, st) in &self.keys {
            assert!(
                st.wm_seen <= self.watermark,
                "key {key} watermark floor {} ahead of operator watermark {}",
                st.wm_seen,
                self.watermark
            );
            let Some(d) = st.due else { continue };
            assert!(
                d > self.watermark,
                "key {key} left due {d} at or below watermark {}",
                self.watermark
            );
            assert!(
                entries.binary_search(&(d, *key)).is_ok(),
                "key {key} due {d} has no trigger-heap entry"
            );
        }
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.timeline.heap_bytes()
            + self
                .keys
                .values()
                .map(|st| std::mem::size_of::<(u64, KeyState<A>)>() + st.heap_bytes())
                .sum::<usize>()
            + (self.trigger_heap.len() + self.ttl_heap.len())
                * std::mem::size_of::<Reverse<(Time, u64)>>()
    }
}

// ---------------------------------------------------------------------------
// Naive map-of-operators baseline / fallback
// ---------------------------------------------------------------------------

/// One full [`WindowOperator`] per key — the straightforward lifting of
/// the paper's operator to keyed streams. Used as the benchmark baseline
/// and as the fallback for window types the shared timeline can't host
/// (sessions, punctuation windows, count measures, non-commutative
/// functions). Correct for everything, but every watermark costs
/// O(total keys) and slice metadata is duplicated per key.
pub struct NaiveKeyedOperator<A: AggregateFunction> {
    f: A,
    cfg: KeyedConfig,
    /// Window prototypes, cloned for each new key so per-key context
    /// state (e.g. session edges) starts fresh.
    windows: Vec<Box<dyn WindowFunction>>,
    max_extent: i64,
    keys: FxHashMap<u64, (Time, WindowOperator<A>)>,
    watermark: Time,
    keys_evicted: u64,
    // Reusable scratch: batch grouping and per-key result staging.
    group_of: FxHashMap<u64, u32>,
    groups: KeyGroups<A>,
    scratch: Vec<WindowResult<A::Output>>,
}

impl<A: AggregateFunction> NaiveKeyedOperator<A> {
    pub fn new(f: A, windows: Vec<Box<dyn WindowFunction>>, cfg: KeyedConfig) -> Self {
        let max_extent = windows.iter().map(|w| w.max_extent()).max().unwrap_or(0);
        NaiveKeyedOperator {
            f,
            cfg,
            windows,
            max_extent,
            keys: FxHashMap::default(),
            watermark: TIME_MIN,
            keys_evicted: 0,
            group_of: FxHashMap::default(),
            groups: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Number of keys currently holding state.
    pub fn live_keys(&self) -> usize {
        self.keys.len()
    }

    fn operator_for(&mut self, key: u64) -> &mut (Time, WindowOperator<A>) {
        let (f, windows, cfg, watermark) = (&self.f, &self.windows, &self.cfg, self.watermark);
        self.keys.entry(key).or_insert_with(|| {
            let mut op =
                WindowOperator::new(f.clone(), OperatorConfig::out_of_order(cfg.allowed_lateness));
            for w in windows {
                op.add_query(w.clone_box()).expect("keyed windows share one measure");
            }
            // Watermarks are broadcast: a key that first appears after the
            // stream has progressed must still apply the global late-drop
            // rule, exactly as the shared timeline does. Replaying into an
            // empty operator emits nothing.
            if watermark != TIME_MIN {
                let mut sink = Vec::new();
                op.process_watermark(watermark, &mut sink);
                debug_assert!(sink.is_empty(), "fresh operator emitted on watermark replay");
            }
            (TIME_MIN, op)
        })
    }

    fn group_batch(&mut self, batch: &[(Time, (u64, A::Input))]) {
        self.group_of.clear();
        let mut live = 0usize;
        for (ts, (key, v)) in batch {
            let gi = match self.group_of.get(key) {
                Some(&gi) => cast::idx32(gi),
                None => {
                    let gi = live;
                    if gi == self.groups.len() {
                        self.groups.push((*key, Vec::new()));
                    } else {
                        self.groups[gi].0 = *key;
                        self.groups[gi].1.clear();
                    }
                    live += 1;
                    self.group_of.insert(*key, gi as u32);
                    gi
                }
            };
            self.groups[gi].1.push((*ts, v.clone()));
        }
        for g in &mut self.groups[live..] {
            g.1.clear();
        }
        self.groups.truncate(live);
    }

    fn tag_and_drain(
        key: u64,
        scratch: &mut Vec<WindowResult<A::Output>>,
        out: &mut Vec<WindowResult<(u64, A::Output)>>,
    ) {
        for r in scratch.drain(..) {
            out.push(WindowResult {
                query: r.query,
                measure: r.measure,
                range: r.range,
                value: (key, r.value),
                is_update: r.is_update,
            });
        }
    }
}

impl<A: AggregateFunction> WindowAggregator<PerKey<A>> for NaiveKeyedOperator<A> {
    fn process(
        &mut self,
        ts: Time,
        value: (u64, A::Input),
        out: &mut Vec<WindowResult<(u64, A::Output)>>,
    ) {
        let (key, v) = value;
        let mut scratch = std::mem::take(&mut self.scratch);
        let (t_last, op) = self.operator_for(key);
        *t_last = ts.max(*t_last);
        op.process(ts, v, &mut scratch);
        Self::tag_and_drain(key, &mut scratch, out);
        self.scratch = scratch;
    }

    fn process_batch(
        &mut self,
        batch: &[(Time, (u64, A::Input))],
        out: &mut Vec<WindowResult<(u64, A::Output)>>,
    ) {
        self.group_batch(batch);
        let mut groups = std::mem::take(&mut self.groups);
        let mut scratch = std::mem::take(&mut self.scratch);
        for (key, tuples) in &groups {
            if tuples.is_empty() {
                continue;
            }
            let (t_last, op) = self.operator_for(*key);
            for (ts, _) in tuples {
                *t_last = (*ts).max(*t_last);
            }
            op.process_batch(tuples, &mut scratch);
            Self::tag_and_drain(*key, &mut scratch, out);
        }
        for g in &mut groups {
            g.1.clear();
        }
        self.groups = groups;
        self.scratch = scratch;
    }

    fn on_watermark(&mut self, wm: Time, out: &mut Vec<WindowResult<(u64, A::Output)>>) {
        if wm <= self.watermark {
            return;
        }
        self.watermark = wm;
        let mut scratch = std::mem::take(&mut self.scratch);
        // The O(total keys) sweep the shared operator exists to avoid.
        for (key, (_, op)) in self.keys.iter_mut() {
            op.process_watermark(wm, &mut scratch);
            Self::tag_and_drain(*key, &mut scratch, out);
        }
        if let Some(ttl) = self.cfg.idle_ttl {
            let max_extent = self.max_extent;
            let before = self.keys.len();
            self.keys.retain(|_, (t_last, _)| {
                let idle = t_last.saturating_add(ttl) <= wm;
                let drained = t_last.saturating_add(max_extent).saturating_add(1) <= wm;
                !(idle && drained)
            });
            self.keys_evicted += (before - self.keys.len()) as u64;
        }
        self.scratch = scratch;
    }

    fn on_punctuation(&mut self, ts: Time, out: &mut Vec<WindowResult<(u64, A::Output)>>) {
        let mut scratch = std::mem::take(&mut self.scratch);
        for (key, (_, op)) in self.keys.iter_mut() {
            op.on_punctuation(ts, &mut scratch);
            Self::tag_and_drain(*key, &mut scratch, out);
        }
        self.scratch = scratch;
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .keys
                .iter()
                .map(|(_, (_, op))| std::mem::size_of::<(u64, Time)>() + op.memory_bytes())
                .sum::<usize>()
    }

    fn fold_stats(&self) -> (u64, u64) {
        let mut hits = 0u64;
        let mut misses = 0u64;
        for (_, (_, op)) in self.keys.iter() {
            let (h, m) = WindowAggregator::fold_stats(op);
            hits += h;
            misses += m;
        }
        (hits, misses)
    }

    fn name(&self) -> &'static str {
        "Naive keyed (map of operators)"
    }
}

// ---------------------------------------------------------------------------
// Public operator: shared timeline with automatic fallback
// ---------------------------------------------------------------------------

enum KeyedInner<A: AggregateFunction> {
    Shared(SharedKeyed<A>),
    Fallback(NaiveKeyedOperator<A>),
}

/// A window aggregator over `(key, value)` tuples hosting many keys in
/// one operator (see the module docs for the design).
///
/// For tumbling/sliding (time-measure, context-free, static-edge) windows
/// over commutative aggregate functions, all keys share one slice
/// timeline and watermark work is heap-gated; anything else transparently
/// falls back to the per-key-operator baseline.
pub struct KeyedWindowOperator<A: AggregateFunction> {
    inner: KeyedInner<A>,
}

impl<A: AggregateFunction> KeyedWindowOperator<A> {
    /// Builds a keyed operator over `windows`, choosing the shared
    /// timeline when every window has static edges and `f` commutes.
    pub fn new(f: A, windows: Vec<Box<dyn WindowFunction>>, cfg: KeyedConfig) -> Self {
        let eligible = !windows.is_empty()
            && f.properties().commutative
            && windows.iter().all(|w| {
                w.measure() == Measure::Time
                    && w.context() == ContextClass::ContextFree
                    && w.has_static_edges()
            });
        let inner = if eligible {
            KeyedInner::Shared(SharedKeyed::new(f, windows, cfg))
        } else {
            KeyedInner::Fallback(NaiveKeyedOperator::new(f, windows, cfg))
        };
        KeyedWindowOperator { inner }
    }

    /// True iff this operator runs on the shared slice timeline.
    pub fn is_shared(&self) -> bool {
        matches!(self.inner, KeyedInner::Shared(_))
    }

    /// Number of keys currently holding state.
    pub fn live_keys(&self) -> usize {
        match &self.inner {
            KeyedInner::Shared(s) => s.keys.len(),
            KeyedInner::Fallback(n) => n.keys.len(),
        }
    }

    /// Number of shared slices currently on the timeline (0 in fallback
    /// mode, where slices are per key).
    pub fn live_slices(&self) -> usize {
        match &self.inner {
            KeyedInner::Shared(s) => s.timeline.len(),
            KeyedInner::Fallback(_) => 0,
        }
    }

    /// Operator counters (all zero in fallback mode except via results).
    pub fn stats(&self) -> KeyedStats {
        match &self.inner {
            KeyedInner::Shared(s) => s.stats,
            KeyedInner::Fallback(n) => {
                KeyedStats { keys_evicted: n.keys_evicted, ..KeyedStats::default() }
            }
        }
    }
}

impl<A: AggregateFunction> WindowAggregator<PerKey<A>> for KeyedWindowOperator<A> {
    fn process(
        &mut self,
        ts: Time,
        value: (u64, A::Input),
        out: &mut Vec<WindowResult<(u64, A::Output)>>,
    ) {
        match &mut self.inner {
            KeyedInner::Shared(s) => s.process_batch(&[(ts, value)], out),
            KeyedInner::Fallback(n) => n.process(ts, value, out),
        }
    }

    fn process_batch(
        &mut self,
        batch: &[(Time, (u64, A::Input))],
        out: &mut Vec<WindowResult<(u64, A::Output)>>,
    ) {
        match &mut self.inner {
            KeyedInner::Shared(s) => s.process_batch(batch, out),
            KeyedInner::Fallback(n) => n.process_batch(batch, out),
        }
    }

    fn on_watermark(&mut self, wm: Time, out: &mut Vec<WindowResult<(u64, A::Output)>>) {
        match &mut self.inner {
            KeyedInner::Shared(s) => s.on_watermark(wm, out),
            KeyedInner::Fallback(n) => n.on_watermark(wm, out),
        }
    }

    fn on_punctuation(&mut self, ts: Time, out: &mut Vec<WindowResult<(u64, A::Output)>>) {
        match &mut self.inner {
            // Static-edge windows ignore punctuation (it only closes
            // data-dependent windows), so the shared path is a no-op.
            KeyedInner::Shared(_) => {}
            KeyedInner::Fallback(n) => n.on_punctuation(ts, out),
        }
    }

    fn memory_bytes(&self) -> usize {
        match &self.inner {
            KeyedInner::Shared(s) => s.memory_bytes(),
            KeyedInner::Fallback(n) => n.memory_bytes(),
        }
    }

    fn fold_stats(&self) -> (u64, u64) {
        match &self.inner {
            KeyedInner::Shared(s) => (s.stats.fold_kernel_hits, s.stats.fold_kernel_misses),
            KeyedInner::Fallback(n) => WindowAggregator::fold_stats(n),
        }
    }

    fn name(&self) -> &'static str {
        match &self.inner {
            KeyedInner::Shared(_) => "Keyed shared slicing",
            KeyedInner::Fallback(_) => "Keyed fallback (map of operators)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::{Concat, SumI64, TumblingStub};

    fn tumbling(len: Time) -> Box<dyn WindowFunction> {
        Box::new(TumblingStub { length: len })
    }

    fn shared_op(len: Time, cfg: KeyedConfig) -> KeyedWindowOperator<SumI64> {
        let op = KeyedWindowOperator::new(SumI64, vec![tumbling(len)], cfg);
        assert!(op.is_shared());
        op
    }

    /// Sorted copy of `out` for order-insensitive comparison across keys.
    fn sorted(mut out: Vec<WindowResult<(u64, i64)>>) -> Vec<(u32, Time, Time, u64, i64, bool)> {
        let mut v: Vec<_> = out
            .drain(..)
            .map(|r| (r.query, r.range.start, r.range.end, r.value.0, r.value.1, r.is_update))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn single_key_matches_reference_operator() {
        let mut keyed = shared_op(10, KeyedConfig::default());
        let mut reference = WindowOperator::new(SumI64, OperatorConfig::out_of_order(0));
        reference.add_query(tumbling(10)).unwrap();

        let tuples = [(1, 5), (3, 2), (12, 7), (25, 1)];
        let mut got = Vec::new();
        let mut want = Vec::new();
        for (ts, v) in tuples {
            keyed.process(ts, (7, v), &mut got);
            reference.process(ts, v, &mut want);
        }
        keyed.on_watermark(30, &mut got);
        reference.process_watermark(30, &mut want);

        let want_tagged: Vec<_> = want
            .into_iter()
            .map(|r| (r.query, r.range.start, r.range.end, 7u64, r.value, r.is_update))
            .collect();
        assert_eq!(sorted(got), want_tagged);
    }

    #[test]
    fn keys_are_independent() {
        let mut op = shared_op(10, KeyedConfig::default());
        let mut out = Vec::new();
        op.process_batch(&[(1, (1, 10)), (2, (2, 20)), (5, (1, 1)), (7, (2, 2))], &mut out);
        op.on_watermark(10, &mut out);
        assert_eq!(sorted(out), vec![(0, 0, 10, 1, 11, false), (0, 0, 10, 2, 22, false)]);
    }

    #[test]
    fn late_tuple_emits_update() {
        let mut op = shared_op(10, KeyedConfig::default().with_allowed_lateness(100));
        let mut out = Vec::new();
        op.process_batch(&[(5, (1, 1)), (15, (1, 2))], &mut out);
        op.on_watermark(20, &mut out);
        assert_eq!(
            sorted(std::mem::take(&mut out)),
            vec![(0, 0, 10, 1, 1, false), (0, 10, 20, 1, 2, false)]
        );

        // A late tuple inside an already-fired window re-fires it as an
        // update with the revised aggregate.
        op.process(6, (1, 100), &mut out);
        assert_eq!(sorted(out), vec![(0, 0, 10, 1, 101, true)]);
        let s = op.stats();
        assert_eq!(s.ooo_tuples, 1);
        assert_eq!(s.updates_emitted, 1);
        assert_eq!(s.dropped_late, 0);
    }

    #[test]
    fn too_late_tuple_dropped() {
        let mut op = shared_op(10, KeyedConfig::default().with_allowed_lateness(5));
        let mut out = Vec::new();
        op.process(50, (1, 1), &mut out);
        op.on_watermark(40, &mut out);
        op.process(10, (1, 100), &mut out); // 10 < 40 - 5
        assert_eq!(op.stats().dropped_late, 1);
        op.on_watermark(100, &mut out);
        assert_eq!(sorted(out), vec![(0, 50, 60, 1, 1, false)]);
    }

    #[test]
    fn watermark_sweeps_only_due_keys() {
        let mut op = shared_op(10, KeyedConfig::default());
        let mut out = Vec::new();
        // 100 keys with data due at wm=10; one key far in the future.
        let batch: Vec<_> = (0..100u64).map(|k| (5, (k, 1))).collect();
        op.process_batch(&batch, &mut out);
        op.process(1000, (500, 1), &mut out);
        op.on_watermark(10, &mut out);
        assert_eq!(out.len(), 100);
        let s = op.stats();
        // The future key must not have been swept.
        assert_eq!(s.heap_wakeups, 100);
        // Repeat watermarks with nothing due sweep nothing.
        op.on_watermark(11, &mut out);
        op.on_watermark(12, &mut out);
        assert_eq!(op.stats().heap_wakeups, 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn idle_keys_evicted_after_ttl() {
        let mut op = shared_op(10, KeyedConfig::default().with_idle_ttl(50));
        let mut out = Vec::new();
        op.process(5, (1, 1), &mut out);
        op.process(5, (2, 1), &mut out);
        op.on_watermark(20, &mut out);
        assert_eq!(op.live_keys(), 2);
        // Key 2 stays active; key 1 goes idle past the TTL.
        op.process(60, (2, 1), &mut out);
        op.on_watermark(70, &mut out);
        assert_eq!(op.live_keys(), 1);
        assert_eq!(op.stats().keys_evicted, 1);
        // The surviving key keeps aggregating correctly.
        op.process(75, (2, 1), &mut out);
        op.on_watermark(100, &mut out);
        let last = sorted(out.split_off(out.len() - 2));
        assert_eq!(last, vec![(0, 60, 70, 2, 1, false), (0, 70, 80, 2, 1, false)]);
    }

    #[test]
    fn ttl_never_evicts_key_with_pending_window() {
        let mut op = shared_op(100, KeyedConfig::default().with_idle_ttl(10));
        let mut out = Vec::new();
        op.process(5, (1, 7), &mut out);
        // Idle for far longer than the TTL, but its window [0,100) is
        // still open — the key must survive to emit it.
        op.on_watermark(90, &mut out);
        assert_eq!(op.live_keys(), 1);
        op.on_watermark(150, &mut out);
        assert_eq!(sorted(out), vec![(0, 0, 100, 1, 7, false)]);
    }

    #[test]
    fn shared_slices_evicted_behind_watermark() {
        let mut op = shared_op(10, KeyedConfig::default());
        let mut out = Vec::new();
        for t in 0..100 {
            op.process(t, (t as u64 % 4, 1), &mut out);
        }
        op.on_watermark(100, &mut out);
        // boundary = 100 - 0 lateness - 10 extent = 90: one live slice.
        assert!(op.live_slices() <= 2, "live slices: {}", op.live_slices());
    }

    #[test]
    fn non_commutative_function_falls_back() {
        let op = KeyedWindowOperator::new(Concat, vec![tumbling(10)], KeyedConfig::default());
        assert!(!op.is_shared());
    }

    #[test]
    fn fallback_matches_reference_semantics() {
        let mut op = KeyedWindowOperator::new(Concat, vec![tumbling(10)], KeyedConfig::default());
        let mut out = Vec::new();
        op.process_batch(&[(1, (1, 10)), (2, (2, 20)), (3, (1, 30))], &mut out);
        op.on_watermark(10, &mut out);
        let mut vals: Vec<_> = out.iter().map(|r| (r.value.0, r.value.1.clone())).collect();
        vals.sort();
        assert_eq!(vals, vec![(1, vec![10, 30]), (2, vec![20])]);
    }

    #[test]
    fn per_key_function_lifts_and_lowers() {
        let f = PerKey(SumI64);
        let p = f.combine(f.lift(&(3, 10)), &f.lift(&(3, 5)));
        assert_eq!(f.lower(&p), (3, 15));
        assert_eq!(f.invert(p, &(3, 5)), Some((3, 10)));
        assert!(f.properties().commutative);
    }

    #[test]
    fn empty_query_set_falls_back() {
        let op = KeyedWindowOperator::new(SumI64, vec![], KeyedConfig::default());
        assert!(!op.is_shared());
    }

    #[test]
    fn timeline_prepends_for_late_keys() {
        let mut op = shared_op(10, KeyedConfig::default().with_allowed_lateness(1000));
        let mut out = Vec::new();
        // Key 1 establishes the timeline far ahead; key 2's first tuple
        // is much earlier, forcing a backwards extension.
        op.process(95, (1, 1), &mut out);
        op.process(12, (2, 5), &mut out);
        op.on_watermark(200, &mut out);
        assert_eq!(sorted(out), vec![(0, 10, 20, 2, 5, false), (0, 90, 100, 1, 1, false)]);
    }

    /// A heap-gated key skips watermarks, but its emission floor must
    /// still advance as if it had been swept (the reference operator
    /// advances `last_trigger` on every watermark). A late tuple landing
    /// below that floor fires an update only — never a regular result at
    /// the key's next sweep.
    #[test]
    fn late_tuple_below_skipped_floor_stays_update_only() {
        let mut op = shared_op(10, KeyedConfig::default().with_allowed_lateness(500));
        let mut out = Vec::new();
        // Key due at 110 — watermark 90 leaves it gated while the floor
        // conceptually advances to min(90, 100 + 11) = 90.
        op.process(100, (1, 1), &mut out);
        op.on_watermark(90, &mut out);
        assert!(out.is_empty());
        // Late tuple at 55: window [50, 60) ended before the floor, so
        // this is an update; the next sweep must not re-fire it.
        op.process(55, (1, 2), &mut out);
        assert_eq!(sorted(std::mem::take(&mut out)), vec![(0, 50, 60, 1, 2, true)]);
        op.on_watermark(200, &mut out);
        assert_eq!(sorted(out), vec![(0, 100, 110, 1, 1, false)]);
    }

    /// A key first seen *after* the watermark advanced: both operators
    /// route the key's first tuple through the in-order path (no drop, no
    /// update — same as a fresh reference operator), but a key-late tuple
    /// arriving before the next watermark must already be held to the
    /// global lateness rule. The naive baseline gets this right only
    /// because it replays the current watermark into freshly created
    /// per-key operators.
    #[test]
    fn new_key_after_watermark_matches_naive() {
        let windows = || vec![tumbling(10)];
        let cfg = KeyedConfig::default().with_allowed_lateness(0);
        let mut shared = KeyedWindowOperator::new(SumI64, windows(), cfg);
        assert!(shared.is_shared());
        let mut naive = NaiveKeyedOperator::new(SumI64, windows(), cfg);

        for op in [&mut shared as &mut dyn WindowAggregator<PerKey<SumI64>>, &mut naive] {
            let mut out = Vec::new();
            op.process(500, (1, 1), &mut out);
            op.on_watermark(200, &mut out);
            out.clear();
            // New key 2 behind the watermark: first tuple accepted
            // (in-order path), the key-late one at ts=50 dropped
            // (50 < 200 - 0), despite key 2 never having seen a watermark.
            op.process_batch(&[(100, (2, 7)), (50, (2, 1000))], &mut out);
            assert!(out.is_empty(), "no updates for windows not yet emitted");
            op.on_watermark(600, &mut out);
            assert_eq!(sorted(out), vec![(0, 100, 110, 2, 7, false), (0, 500, 510, 1, 1, false)]);
        }
        assert_eq!(shared.stats().dropped_late, 1);
    }

    /// Regression: eviction can empty the shared timeline, and the next
    /// tuple then re-anchors the global index↔time map at its own
    /// timestamp ([`Timeline::generation`]). A key holding ring slots
    /// from the old anchor must drop them — before the generation check,
    /// a backward extension below the stale indices (key 3's ts=500
    /// here) let them survive `trim_to` and re-emerge as phantom
    /// partials at unrelated times inside live windows.
    #[test]
    fn timeline_rebirth_invalidates_stale_key_rings() {
        let windows = || vec![tumbling(10)];
        let cfg = KeyedConfig::default().with_allowed_lateness(0);
        let mut shared = KeyedWindowOperator::new(SumI64, windows(), cfg);
        assert!(shared.is_shared());
        let mut naive = NaiveKeyedOperator::new(SumI64, windows(), cfg);

        let mut results = Vec::new();
        for op in [&mut shared as &mut dyn WindowAggregator<PerKey<SumI64>>, &mut naive] {
            let mut out = Vec::new();
            // Key 1 fires [100, 110); the watermark then evicts the whole
            // timeline (boundary 200 - 0 - 10 = 190).
            op.process(100, (1, 5), &mut out);
            op.on_watermark(200, &mut out);
            // Key 2 rebirths the timeline anchored at 1000; key 3 (new,
            // so not key-late) extends it backward past key 1's stale
            // global indices; key 1 returns in order.
            op.process(1_000, (2, 3), &mut out);
            op.process(500, (3, 2), &mut out);
            op.process(1_005, (1, 7), &mut out);
            op.on_watermark(2_000, &mut out);
            results.push(sorted(out));
        }
        assert_eq!(results[0], results[1], "shared path diverged from naive after rebirth");
        assert_eq!(
            results[0],
            vec![
                (0, 100, 110, 1, 5, false),
                (0, 500, 510, 3, 2, false),
                (0, 1_000, 1_010, 1, 7, false),
                (0, 1_000, 1_010, 2, 3, false),
            ]
        );
    }
}
