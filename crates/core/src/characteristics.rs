//! Workload-characteristics decision logic (paper Section 5.1, Figures 4–6).
//!
//! General stream slicing adapts to four workload characteristics: stream
//! order, aggregate-function properties, windowing measure, and window type.
//! This module derives, from the set of registered queries and the
//! aggregation's algebraic properties, the three decisions the paper's
//! figures encode:
//!
//! * **Figure 4** — must individual tuples be kept in memory?
//! * **Figure 5** — can split operations occur?
//! * **Figure 6** — are tuple removals needed, and how are they performed?
//!
//! The decisions depend only on workload characteristics, never on the data
//! (Section 5: "there is no need to adapt on changes in the input data
//! streams"), so they are recomputed only when queries are added or removed.

use crate::function::FunctionProperties;
use crate::time::{Measure, StreamOrder};
use crate::window::{ContextClass, Query};

/// Aggregated characteristics of the current set of queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadCharacteristics {
    /// Declared order of the input stream.
    pub order: StreamOrder,
    /// At least one forward-context-aware window is registered.
    pub has_fca_window: bool,
    /// At least one context-aware window that is *not* a session window.
    pub has_context_aware_non_session: bool,
    /// At least one context-aware window of any kind (incl. sessions).
    pub has_context_aware: bool,
    /// At least one query uses the count measure.
    pub has_count_measure: bool,
    /// Properties of the aggregate function shared by all queries.
    pub function: FunctionProperties,
}

/// How tuples are removed from slices when count-based windows meet
/// out-of-order tuples (paper Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemovalStrategy {
    /// No removals ever happen for this workload.
    NotNeeded,
    /// Incremental removal via the ⊖ operation.
    Invert,
    /// Recompute the slice aggregate from its stored tuples.
    Recompute,
}

impl WorkloadCharacteristics {
    /// Derives the characteristics from the registered queries, the declared
    /// stream order, and the aggregate function's properties.
    pub fn derive(queries: &[Query], order: StreamOrder, function: FunctionProperties) -> Self {
        let mut has_fca_window = false;
        let mut has_context_aware_non_session = false;
        let mut has_context_aware = false;
        let mut has_count_measure = false;
        for q in queries {
            let ctx = q.window.context();
            if ctx == ContextClass::ForwardContextAware {
                has_fca_window = true;
            }
            if ctx.is_context_aware() {
                has_context_aware = true;
                if !q.window.is_session() {
                    has_context_aware_non_session = true;
                }
            }
            if q.window.measure() == Measure::Count {
                has_count_measure = true;
            }
        }
        WorkloadCharacteristics {
            order,
            has_fca_window,
            has_context_aware_non_session,
            has_context_aware,
            has_count_measure,
            function,
        }
    }

    /// Figure 4: which workload characteristics require storing individual
    /// tuples in memory?
    ///
    /// * In-order streams: keep tuples iff an FCA window is registered.
    /// * Out-of-order streams: keep tuples if the function is
    ///   non-commutative, **or** a non-session context-aware window is
    ///   registered, **or** a count-based measure is used.
    pub fn requires_tuple_storage(&self) -> bool {
        match self.order {
            StreamOrder::InOrder => self.has_fca_window,
            StreamOrder::OutOfOrder => {
                !self.function.commutative
                    || self.has_context_aware_non_session
                    || self.has_count_measure
            }
        }
    }

    /// Figure 5: can split operations occur?
    ///
    /// In-order streams split only for FCA windows; out-of-order streams
    /// split for every context-aware window. Context-free windows never
    /// split. Session windows are context aware, so they formally fall in
    /// the "splits required" branch, but their splits always hit the cheap
    /// no-recompute path (the split point lies in a tuple-free gap), which
    /// is why Figure 4 exempts them from tuple storage.
    pub fn requires_splits(&self) -> bool {
        match self.order {
            StreamOrder::InOrder => self.has_fca_window,
            StreamOrder::OutOfOrder => self.has_context_aware,
        }
    }

    /// Figure 6: how are tuples removed from slices?
    ///
    /// Removals are needed only for count-based measures on out-of-order
    /// streams (an out-of-order tuple shifts the count of all succeeding
    /// tuples, so the last tuple of each slice moves one slice further).
    /// Invertible functions remove incrementally; otherwise the slice
    /// aggregate is recomputed from stored tuples.
    pub fn removal_strategy(&self) -> RemovalStrategy {
        if self.order.is_in_order() || !self.has_count_measure {
            RemovalStrategy::NotNeeded
        } else if self.function.invertible {
            RemovalStrategy::Invert
        } else {
            RemovalStrategy::Recompute
        }
    }

    /// Out-of-order tuples force a slice recomputation when the function is
    /// non-commutative (paper Section 5.2, Update).
    pub fn ooo_insert_recomputes(&self) -> bool {
        !self.function.commutative
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionKind;
    use crate::time::Range;
    use crate::window::{ContextEdges, WindowFunction};

    /// Configurable stub window for decision-table tests.
    #[derive(Clone)]
    struct Stub {
        measure: Measure,
        context: ContextClass,
        session: bool,
    }

    impl WindowFunction for Stub {
        fn measure(&self) -> Measure {
            self.measure
        }
        fn context(&self) -> ContextClass {
            self.context
        }
        fn is_session(&self) -> bool {
            self.session
        }
        fn next_edge(&self, _ts: i64) -> Option<i64> {
            None
        }
        fn trigger_windows(&mut self, _p: i64, _c: i64, _out: &mut dyn FnMut(Range)) {}
        fn windows_containing(&self, _ts: i64, _out: &mut dyn FnMut(Range)) {}
        fn notify_context(&mut self, _ts: i64, _e: &mut ContextEdges) {}
        fn max_extent(&self) -> i64 {
            0
        }
        fn clone_box(&self) -> Box<dyn WindowFunction> {
            Box::new(self.clone())
        }
    }

    fn q(measure: Measure, context: ContextClass, session: bool) -> Query {
        Query::new(0, Box::new(Stub { measure, context, session }))
    }

    fn props(commutative: bool, invertible: bool) -> FunctionProperties {
        FunctionProperties { commutative, invertible, kind: FunctionKind::Distributive }
    }

    const CF: ContextClass = ContextClass::ContextFree;
    const FCF: ContextClass = ContextClass::ForwardContextFree;
    const FCA: ContextClass = ContextClass::ForwardContextAware;

    #[test]
    fn fig4_in_order_cf_drops_tuples() {
        let qs = [q(Measure::Time, CF, false)];
        let c = WorkloadCharacteristics::derive(&qs, StreamOrder::InOrder, props(true, true));
        assert!(!c.requires_tuple_storage());
    }

    #[test]
    fn fig4_in_order_fcf_drops_tuples() {
        let qs = [q(Measure::Time, FCF, false)];
        let c = WorkloadCharacteristics::derive(&qs, StreamOrder::InOrder, props(true, true));
        assert!(!c.requires_tuple_storage());
    }

    #[test]
    fn fig4_in_order_fca_keeps_tuples() {
        let qs = [q(Measure::Time, FCA, false)];
        let c = WorkloadCharacteristics::derive(&qs, StreamOrder::InOrder, props(true, true));
        assert!(c.requires_tuple_storage());
    }

    #[test]
    fn fig4_ooo_non_commutative_keeps_tuples() {
        let qs = [q(Measure::Time, CF, false)];
        let c = WorkloadCharacteristics::derive(&qs, StreamOrder::OutOfOrder, props(false, false));
        assert!(c.requires_tuple_storage());
    }

    #[test]
    fn fig4_ooo_session_drops_tuples() {
        // Sessions are the exception among context-aware windows.
        let qs = [q(Measure::Time, FCA, true)];
        let c = WorkloadCharacteristics::derive(&qs, StreamOrder::OutOfOrder, props(true, false));
        assert!(!c.requires_tuple_storage());
    }

    #[test]
    fn fig4_ooo_non_session_context_aware_keeps_tuples() {
        let qs = [q(Measure::Time, FCF, false)];
        let c = WorkloadCharacteristics::derive(&qs, StreamOrder::OutOfOrder, props(true, false));
        assert!(c.requires_tuple_storage());
    }

    #[test]
    fn fig4_ooo_count_measure_keeps_tuples() {
        let qs = [q(Measure::Count, CF, false)];
        let c = WorkloadCharacteristics::derive(&qs, StreamOrder::OutOfOrder, props(true, true));
        assert!(c.requires_tuple_storage());
    }

    #[test]
    fn fig4_ooo_cf_time_commutative_drops_tuples() {
        let qs = [q(Measure::Time, CF, false)];
        let c = WorkloadCharacteristics::derive(&qs, StreamOrder::OutOfOrder, props(true, false));
        assert!(!c.requires_tuple_storage());
    }

    #[test]
    fn fig5_split_matrix() {
        let cf = [q(Measure::Time, CF, false)];
        let fca = [q(Measure::Time, FCA, false)];
        let fcf = [q(Measure::Time, FCF, false)];
        let p = props(true, true);
        let io = StreamOrder::InOrder;
        let ooo = StreamOrder::OutOfOrder;
        assert!(!WorkloadCharacteristics::derive(&cf, io, p).requires_splits());
        assert!(!WorkloadCharacteristics::derive(&cf, ooo, p).requires_splits());
        assert!(!WorkloadCharacteristics::derive(&fcf, io, p).requires_splits());
        assert!(WorkloadCharacteristics::derive(&fcf, ooo, p).requires_splits());
        assert!(WorkloadCharacteristics::derive(&fca, io, p).requires_splits());
        assert!(WorkloadCharacteristics::derive(&fca, ooo, p).requires_splits());
    }

    #[test]
    fn fig6_removal_matrix() {
        let count = [q(Measure::Count, CF, false)];
        let time = [q(Measure::Time, CF, false)];
        let ooo = StreamOrder::OutOfOrder;
        assert_eq!(
            WorkloadCharacteristics::derive(&count, StreamOrder::InOrder, props(true, true))
                .removal_strategy(),
            RemovalStrategy::NotNeeded
        );
        assert_eq!(
            WorkloadCharacteristics::derive(&time, ooo, props(true, true)).removal_strategy(),
            RemovalStrategy::NotNeeded
        );
        assert_eq!(
            WorkloadCharacteristics::derive(&count, ooo, props(true, true)).removal_strategy(),
            RemovalStrategy::Invert
        );
        assert_eq!(
            WorkloadCharacteristics::derive(&count, ooo, props(true, false)).removal_strategy(),
            RemovalStrategy::Recompute
        );
    }

    #[test]
    fn non_commutative_ooo_inserts_recompute() {
        let qs = [q(Measure::Time, CF, false)];
        let c = WorkloadCharacteristics::derive(&qs, StreamOrder::OutOfOrder, props(false, false));
        assert!(c.ooo_insert_recomputes());
        let c = WorkloadCharacteristics::derive(&qs, StreamOrder::OutOfOrder, props(true, false));
        assert!(!c.ooo_insert_recomputes());
    }

    #[test]
    fn mixed_queries_union_characteristics() {
        let qs = [
            q(Measure::Time, CF, false),
            q(Measure::Count, CF, false),
            q(Measure::Time, FCA, true),
        ];
        let c = WorkloadCharacteristics::derive(&qs, StreamOrder::OutOfOrder, props(true, true));
        assert!(c.has_count_measure);
        assert!(c.has_context_aware);
        assert!(!c.has_context_aware_non_session);
        assert!(c.has_fca_window);
        // Count measure on an out-of-order stream forces tuple storage even
        // though the session alone would not.
        assert!(c.requires_tuple_storage());
    }
}
