//! The invariant-audit build (`--features audit`).
//!
//! The audit feature compiles dense structural checks into the hot
//! paths — checks too expensive for `debug_assert!` because they walk
//! whole structures (the timeline, the FlatFAT node array, the keyed
//! trigger heap) rather than test one condition. The normal build pays
//! nothing; `cargo test --workspace --features audit` runs the whole
//! suite, including the property tests, with every invariant armed.
//!
//! Audited invariants:
//!
//! * `Timeline` — slices are non-empty, and contiguous (each slice
//!   starts where its predecessor ends), after every extension and
//!   eviction; the global-index base shifts in lockstep.
//! * `FlatFat` — after `repair_dirty`: the dirty set is empty, spare
//!   leaves beyond `len` are vacant, and every internal node is present
//!   exactly when one of its children is.
//! * `SliceStore` — slices stay in ascending, non-overlapping order and
//!   the eager FlatFAT index (when present) mirrors the slice count.
//! * Keyed operator — after a watermark: no live key holds a due time
//!   at or below the new watermark, and every live due time has a
//!   matching trigger-heap entry (heap entries are lazy, so the
//!   converse does not hold).
//! * Parallel merge — barrier acks agree on the watermark value
//!   (FIFO-broadcast integrity; asserted in `gss-stream`).
//!
//! [`audit_assert!`] is the entry point for one-line checks; whole-
//! structure walks live in `#[cfg(feature = "audit")] assert_invariants`
//! methods next to the structures they check.

/// Asserts `$cond` (with optional `assert!`-style message arguments)
/// only when the `audit` feature of the *expanding* crate is enabled.
/// The condition always compiles, so audit checks cannot rot.
#[macro_export]
macro_rules! audit_assert {
    ($($arg:tt)*) => {
        if cfg!(feature = "audit") {
            assert!($($arg)*);
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn audit_assert_compiles_in_both_modes() {
        // With the feature off this is dead code; with it on it must
        // hold. Either way it compiles and passes.
        audit_assert!(1 + 1 == 2, "arithmetic holds");
    }
}
