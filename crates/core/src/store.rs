//! The Aggregate Store (paper Figure 7): the shared data structure holding
//! slices, accessed by the stream slicer (to create slices), the slice
//! manager (to update them), and the window manager (to compute window
//! aggregates).
//!
//! Three variants extend the paper's lazy/eager distinction (Table 1 rows
//! 5–8): the **lazy** store keeps only the ordered slice list and combines
//! slice partials on demand; the **eager** store additionally maintains a
//! [`FlatFat`] tree over slice partials, trading update work for `O(log s)`
//! window queries and microsecond output latencies (Figure 11); the
//! **finger-tree** store swaps the dense FlatFAT array for a
//! [`FingerTree`] (FiBA-style finger B-tree), keeping the eager query
//! latency while making out-of-order leaf writes O(log d) from the
//! nearer finger, gap-slice inserts O(log s) instead of a full rebuild,
//! and watermark evictions amortized O(1) per slice via whole-subtree
//! release.

use std::collections::VecDeque;

use crate::fiba::FingerTree;
use crate::flatfat::FlatFat;
use crate::function::AggregateFunction;
use crate::mem::HeapSize;
use crate::slice::Slice;
use crate::time::{Range, Time};

/// Lazy vs. eager final aggregation (paper Section 3.4), plus the
/// disorder-tuned eager variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorePolicy {
    /// Store slices only; combine on demand when windows end.
    Lazy,
    /// Maintain a dense FlatFAT aggregate tree over slices for
    /// low-latency output.
    Eager,
    /// Maintain a finger B-tree aggregate index: eager-grade query
    /// latency, O(log d) out-of-order writes, and O(1)-amortized bulk
    /// eviction (FiBA, arXiv 2307.11210).
    FingerTree,
}

/// The per-slice aggregate index backing the eager policies. `None`
/// (lazy) stores nothing; the other variants mirror `slices[i]`'s
/// aggregate at leaf `i` and share one contract: eager `update`s fix
/// ancestors immediately, `update_deferred`s mark a dirty region that
/// [`repair`](AggIndex::repair) fixes in one batched pass.
#[derive(Clone)]
enum AggIndex<A: AggregateFunction> {
    None,
    Flat(FlatFat<A>),
    Finger(FingerTree<A>),
}

impl<A: AggregateFunction> AggIndex<A> {
    /// Appends a leaf. The finger tree defers the spine recompute (the
    /// appended leaf starts empty and in-order fills keep marking the
    /// same right-edge path dirty); queries repair first.
    fn push(&mut self, p: Option<A::Partial>) {
        match self {
            AggIndex::None => {}
            AggIndex::Flat(t) => t.push(p),
            AggIndex::Finger(t) => t.push_deferred(p),
        }
    }

    fn insert(&mut self, i: usize, p: Option<A::Partial>) {
        match self {
            AggIndex::None => {}
            AggIndex::Flat(t) => t.insert(i, p),
            AggIndex::Finger(t) => t.insert(i, p),
        }
    }

    fn update(&mut self, i: usize, p: Option<A::Partial>) {
        match self {
            AggIndex::None => {}
            AggIndex::Flat(t) => t.update(i, p),
            AggIndex::Finger(t) => t.update(i, p),
        }
    }

    fn update_deferred(&mut self, i: usize, p: Option<A::Partial>) {
        match self {
            AggIndex::None => {}
            AggIndex::Flat(t) => t.update_deferred(i, p),
            AggIndex::Finger(t) => t.update_deferred(i, p),
        }
    }

    fn remove(&mut self, i: usize) {
        match self {
            AggIndex::None => {}
            AggIndex::Flat(t) => {
                t.remove(i);
            }
            AggIndex::Finger(t) => {
                t.remove(i);
            }
        }
    }

    fn remove_prefix(&mut self, k: usize) {
        match self {
            AggIndex::None => {}
            AggIndex::Flat(t) => t.remove_prefix(k),
            AggIndex::Finger(t) => t.remove_prefix(k),
        }
    }

    fn repair(&mut self) {
        match self {
            AggIndex::None => {}
            AggIndex::Flat(t) => t.repair_dirty(),
            AggIndex::Finger(t) => t.repair_dirty(),
        }
    }

    fn has_dirty(&self) -> bool {
        match self {
            AggIndex::None => false,
            AggIndex::Flat(t) => t.has_dirty(),
            AggIndex::Finger(t) => t.has_dirty(),
        }
    }

    /// Indexed range query; `None` when no index is maintained (lazy).
    fn query(&self, l: usize, r: usize) -> Option<Option<A::Partial>> {
        match self {
            AggIndex::None => None,
            AggIndex::Flat(t) => Some(t.query(l, r)),
            AggIndex::Finger(t) => Some(t.query(l, r)),
        }
    }
}

/// Ranges at most this many slices long are answered by folding the
/// slice deque sequentially instead of consulting the aggregate index.
/// Measured on the `ooo` workload (~25 live slices, windows spanning
/// 1–20): the scan closes the finger store's entire in-order query
/// overhead vs the lazy store, while ranges past the cutoff are where
/// an O(log n) index visit beats O(n) combines anyway.
const INDEX_SCAN_CUTOFF: usize = 32;

/// An ordered collection of slices with optional eager index and count
/// bookkeeping for count-measure windows.
#[derive(Clone)]
pub struct SliceStore<A: AggregateFunction> {
    f: A,
    slices: VecDeque<Slice<A>>,
    /// Aggregate index: leaf `i` mirrors `slices[i].aggregate()`.
    index: AggIndex<A>,
    /// Whether the index mirrors the slices. The finger tree is built
    /// *adaptively*: while the store has never outgrown
    /// [`INDEX_SCAN_CUTOFF`] slices, every range query folds the slice
    /// deque anyway, so the tree stays empty and all maintenance is a
    /// flag check — the in-order hot path costs exactly what the lazy
    /// store does. The first append past the cutoff bulk-builds the
    /// tree from the slice partials (one deferred push per slice) and
    /// flips this permanently. Lazy and eager stores are born live
    /// (no index, and the FlatFAT's contract is eager mirroring).
    index_live: bool,
    keep_tuples: bool,
    /// Number of tuples evicted from the front; offsets count positions so
    /// count-measure queries use absolute counts.
    evicted_tuples: u64,
}

impl<A: AggregateFunction> SliceStore<A> {
    pub fn new(f: A, policy: StorePolicy, keep_tuples: bool) -> Self {
        let index = match policy {
            StorePolicy::Lazy => AggIndex::None,
            StorePolicy::Eager => AggIndex::Flat(FlatFat::new(f.clone())),
            StorePolicy::FingerTree => AggIndex::Finger(FingerTree::new(f.clone())),
        };
        let index_live = policy != StorePolicy::FingerTree;
        SliceStore { f, slices: VecDeque::new(), index, index_live, keep_tuples, evicted_tuples: 0 }
    }

    /// Mirrors a slice append into the index, or — for a not-yet-built
    /// finger tree — checks whether the store just outgrew the scan
    /// cutoff and the index must now materialize.
    fn index_append(&mut self) {
        if self.index_live {
            self.index.push(None);
        } else {
            self.maybe_build_index();
        }
    }

    /// Mirrors a slice insertion at position `i` into the index (same
    /// adaptive-build rule as [`index_append`]).
    fn index_insert(&mut self, i: usize) {
        if self.index_live {
            self.index.insert(i, None);
        } else {
            self.maybe_build_index();
        }
    }

    /// Bulk-builds the finger tree from the current slice partials once
    /// the store exceeds [`INDEX_SCAN_CUTOFF`] slices. The pushes are
    /// deferred; the next query sweep's flush repairs the spine in one
    /// pass. O(n) once per store lifetime.
    fn maybe_build_index(&mut self) {
        if self.slices.len() <= INDEX_SCAN_CUTOFF {
            return;
        }
        if let AggIndex::Finger(t) = &mut self.index {
            debug_assert_eq!(t.len(), 0, "building an already-populated index");
            for s in &self.slices {
                t.push_deferred(s.aggregate().cloned());
            }
        }
        self.index_live = true;
    }

    /// The policy this store was built with.
    pub fn policy(&self) -> StorePolicy {
        match &self.index {
            AggIndex::None => StorePolicy::Lazy,
            AggIndex::Flat(_) => StorePolicy::Eager,
            AggIndex::Finger(_) => StorePolicy::FingerTree,
        }
    }

    /// Number of slices currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// Whether slices store their source tuples (Figure-4 decision).
    #[inline]
    pub fn keeps_tuples(&self) -> bool {
        self.keep_tuples
    }

    /// Changes the tuple-storage policy for **future** slices. Called when
    /// adding/removing queries changes the workload characteristics. If
    /// storage turns off, existing slices drop their tuples; if it turns
    /// on, existing aggregate-only slices stay as they are (their tuples
    /// are gone) and correctness holds for data from now on — matching the
    /// paper's query-add/remove adaptivity.
    pub fn set_keep_tuples(&mut self, keep: bool) {
        if self.keep_tuples == keep {
            return;
        }
        self.keep_tuples = keep;
        if !keep {
            for s in &mut self.slices {
                s.drop_tuples();
            }
        } else if let Some(last) = self.slices.back_mut() {
            if last.is_empty() {
                last.enable_tuple_storage();
            }
        }
    }

    pub fn slices(&self) -> impl Iterator<Item = &Slice<A>> {
        self.slices.iter()
    }

    pub fn slice(&self, i: usize) -> &Slice<A> {
        &self.slices[i]
    }

    pub fn first_slice(&self) -> Option<&Slice<A>> {
        self.slices.front()
    }

    pub fn last_slice(&self) -> Option<&Slice<A>> {
        self.slices.back()
    }

    /// End timestamp of the latest slice (exclusive), if any.
    pub fn last_end(&self) -> Option<Time> {
        self.slices.back().map(|s| s.end())
    }

    /// Appends a fresh empty slice covering `range`. The caller (stream
    /// slicer) guarantees ranges are appended in order and do not overlap.
    pub fn append_slice(&mut self, range: Range) {
        debug_assert!(
            self.slices.back().is_none_or(|s| s.end() <= range.start),
            "slices must be appended in order"
        );
        self.slices.push_back(Slice::new(range, self.keep_tuples));
        self.index_append();
    }

    /// Extends the end of the latest slice (the open slice grows as time
    /// advances). No-op if the store is empty.
    pub fn extend_last(&mut self, end: Time) {
        if let Some(s) = self.slices.back_mut() {
            if s.end() < end {
                s.set_end(end);
            }
        }
    }

    /// Sets the end of the latest (open) slice unconditionally — used when
    /// query changes move the next window edge earlier. The caller must
    /// guarantee no stored tuple lies at or beyond `end`.
    pub fn set_last_end(&mut self, end: Time) {
        if let Some(s) = self.slices.back_mut() {
            debug_assert!(s.is_empty() || s.t_last() < end, "open-slice tuples beyond new end");
            s.set_end(end);
        }
    }

    /// Cuts the open (latest) slice at `ts`: the latest slice's end becomes
    /// `ts` and a fresh slice `[ts, old_end)` is appended. Existing tuples
    /// stay in the left part (used for session starts and count edges,
    /// where all current tuples precede the cut).
    pub fn cut_last_at(&mut self, ts: Time) {
        let Some(last) = self.slices.back_mut() else {
            return;
        };
        let old_end = last.end();
        debug_assert!(ts >= last.start() && ts < old_end, "cut point {ts} outside open slice");
        last.set_end(ts);
        self.append_slice_unchecked(Range::new(ts, old_end));
    }

    /// Prepends a slice before the current first slice (late tuples older
    /// than any slice, e.g. at stream start).
    pub fn prepend_slice(&mut self, range: Range) {
        debug_assert!(
            self.slices.front().is_none_or(|s| range.end <= s.start()),
            "prepended slice must precede the first slice"
        );
        self.slices.push_front(Slice::new(range, self.keep_tuples));
        self.index_insert(0);
    }

    /// Inserts a slice into a coverage gap (late tuples landing between
    /// existing slices). Returns the insertion index. The range must not
    /// overlap existing slices.
    pub fn insert_gap_slice(&mut self, range: Range) -> usize {
        let idx = self.slices.partition_point(|s| s.end() <= range.start);
        debug_assert!(
            idx == self.slices.len() || range.end <= self.slices[idx].start(),
            "gap slice {range} overlaps successor"
        );
        self.slices.insert(idx, Slice::new(range, self.keep_tuples));
        self.index_insert(idx);
        #[cfg(feature = "audit")]
        self.assert_invariants();
        idx
    }

    /// Dense structural checks for the audit build: slices are in
    /// ascending, non-overlapping time order (lazy stores may leave
    /// gaps; count cuts at tied timestamps may leave zero-width time
    /// ranges) and the eager FlatFAT index, when present, has exactly
    /// one leaf per slice.
    #[cfg(feature = "audit")]
    pub fn assert_invariants(&self) {
        let mut prev_end: Option<Time> = None;
        for s in &self.slices {
            assert!(s.start() <= s.end(), "slice {} inverted", s.range());
            if let Some(pe) = prev_end {
                assert!(pe <= s.start(), "slice {} overlaps predecessor ending {pe}", s.range());
            }
            prev_end = Some(s.end());
        }
        match &self.index {
            AggIndex::None => {}
            AggIndex::Flat(t) => {
                assert_eq!(t.len(), self.slices.len(), "eager index out of sync with slices");
            }
            AggIndex::Finger(t) => {
                if self.index_live {
                    assert_eq!(t.len(), self.slices.len(), "finger index out of sync with slices");
                } else {
                    assert_eq!(t.len(), 0, "unbuilt finger index holds leaves");
                    assert!(
                        self.slices.len() <= INDEX_SCAN_CUTOFF,
                        "store outgrew the cutoff without building its index"
                    );
                }
                t.assert_invariants();
            }
        }
    }

    /// `append_slice` without the ordering debug-assert (for count cuts
    /// where a tied timestamp may equal the previous end).
    fn append_slice_unchecked(&mut self, range: Range) {
        self.slices.push_back(Slice::new(range, self.keep_tuples));
        self.index_append();
    }

    /// Adds an in-order tuple to the **latest** slice (the hot path: one ⊕
    /// per tuple).
    pub fn add_in_order(&mut self, ts: Time, value: A::Input) {
        let idx = self.slices.len() - 1;
        let slice = self.slices.back_mut().expect("add_in_order on empty store");
        slice.add_in_order(&self.f, ts, value);
        self.refresh_leaf(idx);
    }

    /// Adds a run of in-order tuples to the **latest** slice with a single
    /// store touch: one fold + ⊕ into the slice partial, one tuple-vector
    /// append, and one eager-leaf refresh (the batched ingestion fast
    /// path). Semantically equal to calling [`add_in_order`] per tuple.
    ///
    /// [`add_in_order`]: SliceStore::add_in_order
    pub fn add_in_order_run(&mut self, run: &[(Time, A::Input)]) {
        if run.is_empty() {
            return;
        }
        let idx = self.slices.len() - 1;
        let slice = self.slices.back_mut().expect("add_in_order_run on empty store");
        slice.add_run(&self.f, run);
        self.refresh_leaf(idx);
    }

    /// Columnar twin of [`SliceStore::add_in_order_run`]: the run arrives
    /// as parallel `times` / `values` columns, so the contiguous values
    /// feed the bulk fold kernel directly (see [`Slice::add_run_columns`]).
    pub fn add_in_order_run_columns(&mut self, times: &[Time], values: &[A::Input]) {
        if times.is_empty() {
            return;
        }
        let idx = self.slices.len() - 1;
        let slice = self.slices.back_mut().expect("add_in_order_run_columns on empty store");
        slice.add_run_columns(&self.f, times, values);
        self.refresh_leaf(idx);
    }

    /// Index of the slice whose time range contains `ts` (time-tiled
    /// stores).
    pub fn covering_index(&self, ts: Time) -> Option<usize> {
        // First slice whose end is beyond ts…
        let idx = self.slices.partition_point(|s| s.end() <= ts);
        // …must also start at or before ts (session gaps leave holes).
        (idx < self.slices.len() && self.slices[idx].start() <= ts).then_some(idx)
    }

    /// Index of the slice an out-of-order tuple at `ts` should join in a
    /// count-delimited store: the first slice whose last tuple lies
    /// strictly after `ts` (slices partition the event-time-sorted tuple
    /// sequence, and a late tie must land *after* every stored tuple with
    /// an equal timestamp — count ties break by arrival order). Falls back
    /// to the latest slice.
    pub fn covering_index_by_tuples(&self, ts: Time) -> Option<usize> {
        let n = self.slices.len();
        if n == 0 {
            return None;
        }
        // Binary search: count slices partition the event-time-sorted tuple
        // sequence, so `t_last` is non-decreasing across *non-empty*
        // slices. Empty slices (shifts can drain a slice) break strict
        // monotonicity, so each probe advances to the first non-empty
        // slice in its half; the search stays O(log s) plus the length of
        // empty runs it skips.
        let mut lo = 0;
        let mut hi = n;
        let mut found = n;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let mut probe = mid;
            while probe < hi && self.slices[probe].is_empty() {
                probe += 1;
            }
            if probe == hi {
                // Everything in [mid, hi) is empty: candidates are < mid.
                hi = mid;
            } else if self.slices[probe].t_last() > ts {
                found = probe;
                hi = mid;
            } else {
                lo = probe + 1;
            }
        }
        Some(if found == n { n - 1 } else { found })
    }

    /// Adds an out-of-order tuple to slice `idx`.
    pub fn add_out_of_order(&mut self, idx: usize, ts: Time, value: A::Input) {
        self.slices[idx].add_out_of_order(&self.f, ts, value);
        self.refresh_leaf(idx);
    }

    /// Adds a sorted run of out-of-order tuples to slice `idx` with **one**
    /// slice touch (one tuple merge, one combined partial — see
    /// [`Slice::add_out_of_order_run`]) and a *deferred* eager-leaf write:
    /// the leaf value is refreshed immediately but its ancestor repair is
    /// postponed until [`SliceStore::flush_eager_repairs`], so k late runs
    /// into m slices cost m leaf writes plus one bottom-up repair of the
    /// dirty frontier instead of m full `O(log s)` walks.
    pub fn add_out_of_order_run(&mut self, idx: usize, run: &[(Time, A::Input)]) {
        if run.is_empty() {
            return;
        }
        self.slices[idx].add_out_of_order_run(&self.f, run);
        if self.index_live {
            self.index.update_deferred(idx, self.slices[idx].aggregate().cloned());
        }
    }

    /// Owned-run variant of [`SliceStore::add_out_of_order_run`]: the
    /// run's values are moved into the slice, not cloned. Same deferred
    /// eager-leaf handling.
    pub fn add_out_of_order_run_owned(&mut self, idx: usize, run: Vec<(Time, A::Input)>) {
        if run.is_empty() {
            return;
        }
        self.slices[idx].add_out_of_order_run_owned(&self.f, run);
        if self.index_live {
            self.index.update_deferred(idx, self.slices[idx].aggregate().cloned());
        }
    }

    /// Applies a pre-folded partial of late tuples to slice `idx` — the
    /// unsorted out-of-order fast path for commutative functions without
    /// tuple storage. `t_first`/`t_last` are the group's extreme
    /// timestamps and `n` its tuple count; eager leaf refresh is deferred
    /// like [`SliceStore::add_out_of_order_run`].
    pub fn add_out_of_order_partial(
        &mut self,
        idx: usize,
        partial: A::Partial,
        t_first: Time,
        t_last: Time,
        n: usize,
    ) {
        self.slices[idx].add_out_of_order_partial(&self.f, partial, t_first, t_last, n);
        if self.index_live {
            self.index.update_deferred(idx, self.slices[idx].aggregate().cloned());
        }
    }

    /// Repairs the eager tree's dirty frontier after deferred leaf writes.
    /// Must run before any window query; no-op for lazy stores and clean
    /// trees. (Structural slice operations — gap inserts, splits, merges,
    /// evictions — rebuild the tree wholesale and clear pending repairs on
    /// their own.)
    pub fn flush_eager_repairs(&mut self) {
        // While the store holds at most [`INDEX_SCAN_CUTOFF`] slices, no
        // range query can be long enough to consult the index (every
        // range is bounded by the store length, and short ranges scan
        // the slice deque — see `query_slice_range`), so deferred dirt
        // can keep accumulating for free. The moment the store outgrows
        // the cutoff, the next query sweep lands here and repairs before
        // the first index visit.
        if self.slices.len() > INDEX_SCAN_CUTOFF {
            self.index.repair();
        }
        #[cfg(feature = "audit")]
        self.assert_invariants();
    }

    /// Whether deferred eager-leaf writes are pending repair.
    pub fn has_pending_repairs(&self) -> bool {
        self.index.has_dirty()
    }

    /// Splits the slice covering `ts` at `ts`. Returns `false` if `ts`
    /// already is a slice edge (nothing to do) or lies outside all slices.
    pub fn split_at(&mut self, ts: Time) -> bool {
        let Some(idx) = self.covering_index(ts) else {
            return false;
        };
        if self.slices[idx].start() == ts {
            return false;
        }
        let right = self.slices[idx].split(&self.f, ts);
        self.slices.insert(idx + 1, right);
        self.index_insert(idx + 1);
        self.refresh_leaf(idx);
        self.refresh_leaf(idx + 1);
        true
    }

    /// Merges the two slices adjacent at edge `ts` (`slices[i].end == ts ==
    /// slices[i+1].start`). Returns `false` if `ts` is not such an edge.
    pub fn merge_at(&mut self, ts: Time) -> bool {
        let idx = self.slices.partition_point(|s| s.end() < ts);
        if idx + 1 >= self.slices.len()
            || self.slices[idx].end() != ts
            || self.slices[idx + 1].start() != ts
        {
            return false;
        }
        let right = self.slices.remove(idx + 1).expect("bounds checked");
        self.slices[idx].merge(&self.f, right);
        if self.index_live {
            self.index.remove(idx + 1);
        }
        self.refresh_leaf(idx);
        true
    }

    /// Combines the partial aggregates of all slices inside the time range
    /// `[range.start, range.end)`, in slice order. Window edges align with
    /// slice edges (the slicing invariant), so overlap implies containment.
    pub fn query_time(&self, range: Range) -> Option<A::Partial> {
        let l = self.slices.partition_point(|s| s.end() <= range.start);
        let r = self.slices.partition_point(|s| s.start() < range.end);
        if l >= r {
            return None;
        }
        // Overlap implies containment *of tuples*: the slicing invariant
        // guarantees every window edge is a slice edge, but the open
        // (latest) slice and session slices may nominally extend past the
        // window end while holding no tuples there.
        debug_assert!(
            self.slices
                .iter()
                .skip(l)
                .take(r - l)
                .all(|s| s.is_empty() || (s.t_first() >= range.start && s.t_last() < range.end)),
            "window {range} does not align with slice contents"
        );
        self.query_slice_range(l, r)
    }

    /// Combines the partials of slices `[l, r)` (indices), in order.
    ///
    /// Hybrid dispatch: short ranges fold the contiguous slice deque
    /// directly — a handful of sequential combines on prefetcher-friendly
    /// memory beats a tree descent over cold pointers (or a FlatFAT
    /// ancestor walk) every time. The index only earns its keep once the
    /// range outgrows [`INDEX_SCAN_CUTOFF`] slices, which is exactly the
    /// regime (large lateness, many live slices) it exists for. Slices
    /// are the source of truth, so the scan is also immune to deferred
    /// index repairs.
    pub fn query_slice_range(&self, l: usize, r: usize) -> Option<A::Partial> {
        if r - l > INDEX_SCAN_CUTOFF {
            // A range longer than the cutoff implies the store outgrew
            // the cutoff, which is exactly when the finger tree builds.
            debug_assert!(self.index_live, "long-range query against an unbuilt index");
            if let Some(q) = self.index.query(l, r) {
                return q;
            }
        }
        let mut acc: Option<A::Partial> = None;
        for s in self.slices.iter().skip(l).take(r - l) {
            acc = self.f.combine_opt(acc, s.aggregate());
        }
        acc
    }

    /// Combines the partials of slices covering the absolute count range
    /// `[c1, c2)`. Slice boundaries must align with `c1`/`c2` (the count
    /// slicing invariant maintained by the Figure-6 shift).
    pub fn query_count(&self, c1: u64, c2: u64) -> Option<A::Partial> {
        if c2 <= c1 {
            return None;
        }
        let mut acc: Option<A::Partial> = None;
        let mut pos = self.evicted_tuples;
        for (i, s) in self.slices.iter().enumerate() {
            let next = pos + s.len() as u64;
            if next > c1 && pos < c2 {
                debug_assert!(
                    pos >= c1 && next <= c2,
                    "count window [{c1}, {c2}) does not align with slice counts at slice {i}"
                );
                acc = self.f.combine_opt(acc, s.aggregate());
            }
            if pos >= c2 {
                break;
            }
            pos = next;
        }
        acc
    }

    /// Number of tuples (absolute count) with timestamp `<= ts`, counting
    /// evicted tuples. Requires stored tuples for the partially-covered
    /// slice; exact because count workloads always store tuples.
    pub fn count_at_or_before(&self, ts: Time) -> u64 {
        let mut count = self.evicted_tuples;
        for s in &self.slices {
            if !s.is_empty() && s.t_last() <= ts {
                count += s.len() as u64;
            } else {
                if let Some(tuples) = s.tuples() {
                    count += tuples.partition_point(|(t, _)| *t <= ts) as u64;
                }
                break;
            }
        }
        count
    }

    /// Total number of tuples ever added (absolute count).
    pub fn total_count(&self) -> u64 {
        self.evicted_tuples + self.slices.iter().map(|s| s.len() as u64).sum::<u64>()
    }

    /// Absolute count position of the start of slice `idx`.
    pub fn count_start_of(&self, idx: usize) -> u64 {
        self.evicted_tuples + self.slices.iter().take(idx).map(|s| s.len() as u64).sum::<u64>()
    }

    /// Moves the last tuple of slice `idx` into slice `idx + 1` (the
    /// Figure-6 shift for count-based windows). Uses ⊖ when the function is
    /// invertible, otherwise recomputes the source slice. Returns `false`
    /// if there is no successor or the slice is empty.
    pub fn shift_last_into_next(&mut self, idx: usize) -> bool {
        if idx + 1 >= self.slices.len() || self.slices[idx].is_empty() {
            return false;
        }
        let Some((ts, value)) = self.slices[idx].remove_last(&self.f) else {
            return false;
        };
        // The moved tuple precedes everything in the successor slice —
        // including equal-timestamp tuples — so it is inserted at the
        // front of its timestamp group (incremental for commutative
        // functions, recompute otherwise). Count-delimited slices treat
        // time ranges as advisory — lookups go through
        // `covering_index_by_tuples` — so ranges stay untouched.
        self.slices[idx + 1].add_shifted(&self.f, ts, value);
        self.refresh_leaf(idx);
        self.refresh_leaf(idx + 1);
        true
    }

    /// Evicts every slice whose end lies at or before `ts`. Returns the
    /// number of evicted slices.
    pub fn evict_before(&mut self, ts: Time) -> usize {
        let k = self.slices.partition_point(|s| s.end() <= ts);
        self.evict_first(k);
        k
    }

    /// Number of leading slices whose tuples all lie at absolute counts
    /// below `keep_from` (safe to evict for count-measure windows).
    pub fn count_evictable(&self, keep_from: u64) -> usize {
        let mut k = 0;
        let mut pos = self.evicted_tuples;
        for s in &self.slices {
            let next = pos + s.len() as u64;
            if next <= keep_from && k + 1 < self.slices.len() {
                k += 1;
                pos = next;
            } else {
                break;
            }
        }
        k
    }

    /// Evicts the first `k` slices unconditionally.
    pub fn evict_first(&mut self, k: usize) {
        for s in self.slices.iter().take(k) {
            self.evicted_tuples += s.len() as u64;
        }
        self.slices.drain(..k);
        if self.index_live {
            self.index.remove_prefix(k);
        }
        #[cfg(feature = "audit")]
        self.assert_invariants();
    }

    /// Evicts leading slices whose tuples are entirely below the absolute
    /// count `keep_from` (count-measure eviction).
    pub fn evict_keeping_counts(&mut self, keep_from: u64) -> usize {
        let k = self.count_evictable(keep_from);
        self.evict_first(k);
        k
    }

    /// Re-synchronizes the eager leaf for slice `idx`. The FlatFAT
    /// repairs its ancestors immediately (a cheap flat-array walk —
    /// that is the eager store's contract); the finger tree defers its
    /// spine recompute to [`SliceStore::flush_eager_repairs`], so k
    /// hot-slice writes between queries mark an already-dirty path in
    /// O(1) and share one repair instead of paying k pointer-chasing
    /// walks. Every query entry point repairs first.
    fn refresh_leaf(&mut self, idx: usize) {
        if !self.index_live {
            return;
        }
        let p = self.slices[idx].aggregate().cloned();
        match &mut self.index {
            AggIndex::Finger(t) => t.update_deferred(idx, p),
            other => other.update(idx, p),
        }
    }

    /// The aggregate function.
    pub fn function(&self) -> &A {
        &self.f
    }
}

impl<A: AggregateFunction> HeapSize for SliceStore<A> {
    fn heap_bytes(&self) -> usize {
        self.slices.heap_bytes()
            + match &self.index {
                AggIndex::None => 0,
                AggIndex::Flat(t) => t.total_bytes(),
                AggIndex::Finger(t) => t.total_bytes(),
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::{Concat, SumI64};

    fn store(policy: StorePolicy, keep: bool) -> SliceStore<SumI64> {
        SliceStore::new(SumI64, policy, keep)
    }

    /// Builds a store with slices [0,10), [10,20), [20,30) holding the
    /// given tuples.
    fn filled(policy: StorePolicy, keep: bool) -> SliceStore<SumI64> {
        let mut st = store(policy, keep);
        st.append_slice(Range::new(0, 10));
        st.add_in_order(1, 1);
        st.add_in_order(5, 5);
        st.append_slice(Range::new(10, 20));
        st.add_in_order(12, 12);
        st.append_slice(Range::new(20, 30));
        st.add_in_order(21, 21);
        st.add_in_order(29, 29);
        st
    }

    #[test]
    fn append_and_query_lazy() {
        let st = filled(StorePolicy::Lazy, false);
        assert_eq!(st.len(), 3);
        assert_eq!(st.query_time(Range::new(0, 30)), Some(68));
        assert_eq!(st.query_time(Range::new(10, 20)), Some(12));
        assert_eq!(st.query_time(Range::new(0, 20)), Some(18));
        assert_eq!(st.query_time(Range::new(30, 40)), None);
    }

    #[test]
    fn eager_matches_lazy() {
        let lazy = filled(StorePolicy::Lazy, false);
        let eager = filled(StorePolicy::Eager, false);
        for (a, b) in [(0, 10), (0, 20), (0, 30), (10, 30), (20, 30)] {
            assert_eq!(
                lazy.query_time(Range::new(a, b)),
                eager.query_time(Range::new(a, b)),
                "range [{a},{b})"
            );
        }
    }

    #[test]
    fn covering_index_finds_slice() {
        let st = filled(StorePolicy::Lazy, false);
        assert_eq!(st.covering_index(0), Some(0));
        assert_eq!(st.covering_index(9), Some(0));
        assert_eq!(st.covering_index(10), Some(1));
        assert_eq!(st.covering_index(29), Some(2));
        assert_eq!(st.covering_index(30), None);
        assert_eq!(st.covering_index(-1), None);
    }

    #[test]
    fn covering_index_respects_session_gaps() {
        let mut st = store(StorePolicy::Lazy, false);
        st.append_slice(Range::new(0, 10));
        st.append_slice(Range::new(50, 60)); // gap [10, 50)
        assert_eq!(st.covering_index(5), Some(0));
        assert_eq!(st.covering_index(30), None);
        assert_eq!(st.covering_index(55), Some(1));
    }

    #[test]
    fn ooo_add_updates_aggregate_and_eager_leaf() {
        let mut st = filled(StorePolicy::Eager, false);
        let idx = st.covering_index(13).unwrap();
        st.add_out_of_order(idx, 13, 100);
        assert_eq!(st.query_time(Range::new(10, 20)), Some(112));
        assert_eq!(st.query_time(Range::new(0, 30)), Some(168));
    }

    #[test]
    fn split_inserts_new_slice() {
        let mut st = filled(StorePolicy::Eager, true);
        assert!(st.split_at(3));
        assert_eq!(st.len(), 4);
        assert_eq!(st.query_time(Range::new(0, 3)), Some(1));
        assert_eq!(st.query_time(Range::new(3, 10)), Some(5));
        assert_eq!(st.query_time(Range::new(0, 30)), Some(68));
    }

    #[test]
    fn split_on_existing_edge_is_noop() {
        let mut st = filled(StorePolicy::Lazy, true);
        assert!(!st.split_at(10));
        assert!(!st.split_at(0));
        assert!(!st.split_at(99));
        assert_eq!(st.len(), 3);
    }

    #[test]
    fn merge_at_edge_combines() {
        let mut st = filled(StorePolicy::Eager, false);
        assert!(st.merge_at(10));
        assert_eq!(st.len(), 2);
        assert_eq!(st.query_time(Range::new(0, 20)), Some(18));
        assert_eq!(st.query_time(Range::new(0, 30)), Some(68));
        assert!(!st.merge_at(15)); // not an edge
        assert!(!st.merge_at(30)); // no successor
    }

    #[test]
    fn merge_skips_gap_boundaries() {
        let mut st = store(StorePolicy::Lazy, false);
        st.append_slice(Range::new(0, 10));
        st.append_slice(Range::new(50, 60));
        // 10 ends slice 0 but slice 1 starts at 50: not a shared edge.
        assert!(!st.merge_at(10));
        assert_eq!(st.len(), 2);
    }

    #[test]
    fn eviction_advances_count_offset() {
        let mut st = filled(StorePolicy::Eager, false);
        assert_eq!(st.total_count(), 5);
        assert_eq!(st.evict_before(20), 2);
        assert_eq!(st.len(), 1);
        assert_eq!(st.total_count(), 5); // absolute counts keep history
        assert_eq!(st.query_time(Range::new(20, 30)), Some(50));
    }

    #[test]
    fn count_queries_align_with_slice_counts() {
        let st = filled(StorePolicy::Lazy, true);
        // Slice tuple counts: 2, 1, 2 -> boundaries at 0, 2, 3, 5.
        assert_eq!(st.query_count(0, 2), Some(6));
        assert_eq!(st.query_count(2, 3), Some(12));
        assert_eq!(st.query_count(0, 5), Some(68));
        assert_eq!(st.query_count(3, 5), Some(50));
        assert_eq!(st.query_count(4, 4), None);
    }

    #[test]
    fn count_at_or_before_counts_within_slices() {
        let st = filled(StorePolicy::Lazy, true);
        assert_eq!(st.count_at_or_before(-5), 0);
        assert_eq!(st.count_at_or_before(1), 1);
        assert_eq!(st.count_at_or_before(5), 2);
        assert_eq!(st.count_at_or_before(12), 3);
        assert_eq!(st.count_at_or_before(28), 4);
        assert_eq!(st.count_at_or_before(1000), 5);
    }

    #[test]
    fn shift_moves_last_tuple_to_successor() {
        let mut st = filled(StorePolicy::Lazy, true);
        assert!(st.shift_last_into_next(0));
        // Tuple (5,5) moved from slice 0 to slice 1.
        assert_eq!(st.slice(0).len(), 1);
        assert_eq!(st.slice(1).len(), 2);
        assert_eq!(st.slice(0).aggregate(), Some(&1));
        assert_eq!(st.slice(1).aggregate(), Some(&17));
        // Count boundaries now: 0,1,3,5.
        assert_eq!(st.query_count(0, 1), Some(1));
        assert_eq!(st.query_count(1, 3), Some(17));
    }

    #[test]
    fn shift_preserves_event_time_order_for_non_commutative() {
        let mut st: SliceStore<Concat> = SliceStore::new(Concat, StorePolicy::Lazy, true);
        st.append_slice(Range::new(0, 10));
        st.add_in_order(1, 1);
        st.add_in_order(8, 8);
        st.append_slice(Range::new(10, 20));
        st.add_in_order(11, 11);
        assert!(st.shift_last_into_next(0));
        assert_eq!(st.slice(1).aggregate(), Some(&vec![8, 11]));
    }

    #[test]
    fn shift_without_successor_fails() {
        let mut st = filled(StorePolicy::Lazy, true);
        assert!(!st.shift_last_into_next(2));
    }

    #[test]
    fn covering_index_by_tuples_places_ties_after_equals() {
        // Slice t_lasts: 5, 12, 29. A tuple tied with a slice's last tuple
        // belongs to the *next* slice (its count position follows every
        // stored equal-timestamp tuple).
        let st = filled(StorePolicy::Lazy, true);
        assert_eq!(st.covering_index_by_tuples(0), Some(0));
        assert_eq!(st.covering_index_by_tuples(5), Some(1));
        assert_eq!(st.covering_index_by_tuples(6), Some(1));
        assert_eq!(st.covering_index_by_tuples(12), Some(2));
        assert_eq!(st.covering_index_by_tuples(13), Some(2));
        assert_eq!(st.covering_index_by_tuples(99), Some(2));
    }

    #[test]
    fn covering_index_by_tuples_skips_empty_slices() {
        let mut st = store(StorePolicy::Lazy, true);
        st.append_slice(Range::new(0, 10));
        st.add_in_order(5, 5);
        st.append_slice(Range::new(10, 20)); // drained by shifts: empty
        st.append_slice(Range::new(20, 30));
        st.add_in_order(25, 25);
        st.append_slice(Range::new(30, 40)); // open slice, still empty
        assert_eq!(st.covering_index_by_tuples(0), Some(0));
        // Tie with (5, ·): lands after it, in the next *non-empty* slice.
        assert_eq!(st.covering_index_by_tuples(5), Some(2));
        assert_eq!(st.covering_index_by_tuples(24), Some(2));
        // Nothing stored after ts: falls back to the latest slice.
        assert_eq!(st.covering_index_by_tuples(25), Some(3));
        assert_eq!(st.covering_index_by_tuples(99), Some(3));
    }

    #[test]
    fn add_in_order_run_matches_per_tuple_adds() {
        for policy in [StorePolicy::Lazy, StorePolicy::Eager, StorePolicy::FingerTree] {
            for keep in [false, true] {
                let mut per_tuple = store(policy, keep);
                let mut batched = store(policy, keep);
                for st in [&mut per_tuple, &mut batched] {
                    st.append_slice(Range::new(0, 100));
                }
                let run = [(1, 1), (4, 4), (4, 40), (9, 9)];
                for (ts, v) in run {
                    per_tuple.add_in_order(ts, v);
                }
                batched.add_in_order_run(&run);
                per_tuple.flush_eager_repairs();
                batched.flush_eager_repairs();
                assert_eq!(
                    per_tuple.query_time(Range::new(0, 100)),
                    batched.query_time(Range::new(0, 100))
                );
                assert_eq!(per_tuple.total_count(), batched.total_count());
                assert_eq!(per_tuple.slice(0).t_first(), batched.slice(0).t_first());
                assert_eq!(per_tuple.slice(0).t_last(), batched.slice(0).t_last());
                assert_eq!(per_tuple.slice(0).tuples(), batched.slice(0).tuples());
            }
        }
    }

    #[test]
    fn add_out_of_order_run_matches_per_tuple_adds() {
        for policy in [StorePolicy::Lazy, StorePolicy::Eager, StorePolicy::FingerTree] {
            for keep in [false, true] {
                let mut per_tuple = filled(policy, keep);
                let mut batched = filled(policy, keep);
                // One sorted run per touched slice, as the operator groups.
                let groups: [&[(Time, i64)]; 3] =
                    [&[(2, 2), (5, 50), (5, 51)], &[(11, 11)], &[(25, 100), (29, 290)]];
                for run in groups {
                    let idx = per_tuple.covering_index(run[0].0).unwrap();
                    for &(ts, v) in run {
                        per_tuple.add_out_of_order(idx, ts, v);
                    }
                    batched.add_out_of_order_run(idx, run);
                }
                // Lazy has no index; the small finger store has not
                // built one yet — only the eager FlatFAT defers dirt.
                assert_eq!(batched.has_pending_repairs(), policy == StorePolicy::Eager);
                batched.flush_eager_repairs();
                // The store is below INDEX_SCAN_CUTOFF, so the flush may
                // leave the dirt in place: every query scans the slices.
                per_tuple.flush_eager_repairs();
                for (a, b) in [(0, 10), (10, 20), (20, 30), (0, 30)] {
                    assert_eq!(
                        per_tuple.query_time(Range::new(a, b)),
                        batched.query_time(Range::new(a, b)),
                        "policy {policy:?} keep {keep} range [{a},{b})"
                    );
                }
                if keep {
                    for i in 0..3 {
                        assert_eq!(per_tuple.slice(i).tuples(), batched.slice(i).tuples());
                    }
                }
            }
        }
    }

    #[test]
    fn add_out_of_order_partial_matches_per_tuple_adds() {
        // Pre-folded group inserts (the operator's unsorted late path)
        // must land like the equivalent per-tuple adds. Tuples are
        // dropped (`keep = false`): the API is only legal there.
        for policy in [StorePolicy::Lazy, StorePolicy::Eager, StorePolicy::FingerTree] {
            let mut per_tuple = filled(policy, false);
            let mut grouped = filled(policy, false);
            let groups: [&[(Time, i64)]; 3] =
                [&[(5, 50), (2, 2), (5, 51)], &[(11, 11)], &[(29, 290), (25, 100)]];
            for run in groups {
                let idx = per_tuple.covering_index(run[0].0).unwrap();
                for &(ts, v) in run {
                    per_tuple.add_out_of_order(idx, ts, v);
                }
                let partial = run.iter().skip(1).fold(run[0].1, |a, &(_, v)| a + v);
                let t_first = run.iter().map(|&(t, _)| t).min().unwrap();
                let t_last = run.iter().map(|&(t, _)| t).max().unwrap();
                grouped.add_out_of_order_partial(idx, partial, t_first, t_last, run.len());
            }
            assert_eq!(grouped.has_pending_repairs(), policy == StorePolicy::Eager);
            grouped.flush_eager_repairs();
            per_tuple.flush_eager_repairs();
            for (a, b) in [(0, 10), (10, 20), (20, 30), (0, 30)] {
                assert_eq!(
                    per_tuple.query_time(Range::new(a, b)),
                    grouped.query_time(Range::new(a, b)),
                    "policy {policy:?} range [{a},{b})"
                );
            }
            assert_eq!(per_tuple.total_count(), grouped.total_count());
            for i in 0..3 {
                assert_eq!(per_tuple.slice(i).t_first(), grouped.slice(i).t_first());
                assert_eq!(per_tuple.slice(i).t_last(), grouped.slice(i).t_last());
            }
        }
    }

    #[test]
    fn structural_ops_between_deferred_writes_stay_consistent() {
        let mut st = filled(StorePolicy::Eager, true);
        st.add_out_of_order_run(0, &[(3, 3)]);
        // A gap insert rebuilds the whole eager tree and clears the dirty
        // set; the deferred leaf write must survive the rebuild.
        st.insert_gap_slice(Range::new(40, 50));
        assert!(!st.has_pending_repairs());
        assert_eq!(st.query_time(Range::new(0, 10)), Some(9));
        st.add_out_of_order_run(1, &[(13, 13)]);
        st.flush_eager_repairs();
        assert_eq!(st.query_time(Range::new(10, 20)), Some(25));
        assert_eq!(st.query_time(Range::new(0, 30)), Some(84));
    }

    #[test]
    fn finger_structural_ops_between_deferred_writes_stay_consistent() {
        // Unlike FlatFAT (whose structural ops rebuild the dense array
        // and clear the dirty set wholesale), the finger tree keeps its
        // deferred-repair region across gap inserts — the repair
        // contract only requires queries to flush first. The store must
        // outgrow the scan cutoff so the tree is actually built.
        let mut st = store(StorePolicy::FingerTree, true);
        let n = INDEX_SCAN_CUTOFF + 4;
        for i in 0..n {
            if i == 3 {
                continue; // leave a coverage gap at [30, 40)
            }
            let t = i as Time * 10;
            st.append_slice(Range::new(t, t + 10));
            st.add_in_order(t + 1, 1);
        }
        st.add_out_of_order_run(0, &[(3, 3)]);
        assert!(st.has_pending_repairs());
        let gap_idx = st.insert_gap_slice(Range::new(30, 40));
        assert_eq!(gap_idx, 3);
        st.add_out_of_order_run(gap_idx, &[(33, 33)]);
        st.flush_eager_repairs();
        assert!(!st.has_pending_repairs());
        assert_eq!(st.query_time(Range::new(0, 10)), Some(4));
        assert_eq!(st.query_time(Range::new(30, 40)), Some(33));
        // Long range: answered by the tree (past the scan cutoff).
        let full = st.query_time(Range::new(0, n as Time * 10));
        assert_eq!(full, Some((n as i64 - 1) + 3 + 33));
    }

    #[test]
    fn flush_repairs_only_when_index_queryable() {
        // Below INDEX_SCAN_CUTOFF every query folds the slice deque, so
        // flush leaves deferred dirt alone; past the cutoff the next
        // flush must repair before the first index visit.
        for policy in [StorePolicy::Eager, StorePolicy::FingerTree] {
            let mut st = store(policy, false);
            let n = INDEX_SCAN_CUTOFF + 4;
            for i in 0..n {
                let t = i as Time * 10;
                st.append_slice(Range::new(t, t + 10));
                st.add_in_order(t, i as i64 + 1);
            }
            st.add_out_of_order_run(0, &[(3, 100)]);
            assert!(st.has_pending_repairs(), "{policy:?}: deferred write left no dirt");
            st.flush_eager_repairs();
            assert!(!st.has_pending_repairs(), "{policy:?}: flush skipped a queryable index");
            // Full range exceeds the cutoff: answered via the index.
            let full = st.query_time(Range::new(0, n as Time * 10));
            let expect: i64 = (1..=n as i64).sum::<i64>() + 100;
            assert_eq!(full, Some(expect), "{policy:?}: index query wrong after repair");

            // A small store never repairs: the eager FlatFAT keeps its
            // dirt across flushes, the finger tree has not even built —
            // and the scan answers correctly either way.
            let mut small = store(policy, false);
            small.append_slice(Range::new(0, 10));
            small.add_in_order(1, 1);
            small.add_out_of_order_run(0, &[(2, 2)]);
            small.flush_eager_repairs();
            assert_eq!(
                small.has_pending_repairs(),
                policy == StorePolicy::Eager,
                "{policy:?}: unexpected small-store dirt state"
            );
            assert_eq!(small.query_time(Range::new(0, 10)), Some(3));
        }
    }

    #[test]
    fn finger_matches_lazy() {
        let lazy = filled(StorePolicy::Lazy, false);
        let mut finger = filled(StorePolicy::FingerTree, false);
        finger.flush_eager_repairs();
        for (a, b) in [(0, 10), (10, 20), (20, 30), (0, 20), (10, 30), (0, 30)] {
            assert_eq!(
                lazy.query_time(Range::new(a, b)),
                finger.query_time(Range::new(a, b)),
                "range [{a}, {b})"
            );
        }
    }

    #[test]
    fn evict_keeping_counts_drops_leading_slices() {
        let mut st = filled(StorePolicy::Eager, true);
        // Keep counts from 3 on: slices 0 (counts 0..2) and 1 (2..3) go.
        assert_eq!(st.evict_keeping_counts(3), 2);
        assert_eq!(st.len(), 1);
        assert_eq!(st.query_count(3, 5), Some(50));
    }

    #[test]
    fn set_keep_tuples_drops_existing_tuples() {
        let mut st = filled(StorePolicy::Lazy, true);
        assert!(st.slice(0).keeps_tuples());
        st.set_keep_tuples(false);
        assert!(!st.slice(0).keeps_tuples());
        // Aggregates survive.
        assert_eq!(st.query_time(Range::new(0, 30)), Some(68));
    }

    #[test]
    fn memory_grows_with_tuple_storage() {
        let a = filled(StorePolicy::Lazy, false);
        let b = filled(StorePolicy::Lazy, true);
        let c = filled(StorePolicy::Eager, true);
        assert!(b.heap_bytes() > a.heap_bytes());
        assert!(c.heap_bytes() > b.heap_bytes());
    }

    #[test]
    fn extend_last_grows_open_slice() {
        let mut st = store(StorePolicy::Lazy, false);
        st.append_slice(Range::new(0, 10));
        st.extend_last(15);
        assert_eq!(st.last_end(), Some(15));
        st.extend_last(12); // never shrinks
        assert_eq!(st.last_end(), Some(15));
    }
}
