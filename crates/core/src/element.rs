//! Stream elements: the wire format between sources and operators.

use crate::time::Time;

/// One element of a data stream: a payload tuple, a low-watermark, or a
/// window punctuation (paper Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamElement<V> {
    /// A data tuple with its event timestamp.
    Record { ts: Time, value: V },
    /// No tuple with `ts < watermark` will arrive (late stragglers within
    /// the allowed lateness produce output updates).
    Watermark(Time),
    /// A window punctuation marking a window boundary (FCF windows).
    Punctuation(Time),
}

impl<V> StreamElement<V> {
    /// The element's position in event time.
    pub fn ts(&self) -> Time {
        match self {
            StreamElement::Record { ts, .. } => *ts,
            StreamElement::Watermark(ts) => *ts,
            StreamElement::Punctuation(ts) => *ts,
        }
    }

    pub fn is_record(&self) -> bool {
        matches!(self, StreamElement::Record { .. })
    }

    /// Maps the payload type.
    pub fn map<W>(self, f: impl FnOnce(V) -> W) -> StreamElement<W> {
        match self {
            StreamElement::Record { ts, value } => StreamElement::Record { ts, value: f(value) },
            StreamElement::Watermark(ts) => StreamElement::Watermark(ts),
            StreamElement::Punctuation(ts) => StreamElement::Punctuation(ts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let r: StreamElement<i64> = StreamElement::Record { ts: 5, value: 9 };
        assert_eq!(r.ts(), 5);
        assert!(r.is_record());
        let w: StreamElement<i64> = StreamElement::Watermark(7);
        assert_eq!(w.ts(), 7);
        assert!(!w.is_record());
    }

    #[test]
    fn map_transforms_record_payloads_only() {
        let r: StreamElement<i64> = StreamElement::Record { ts: 5, value: 9 };
        assert_eq!(r.map(|v| v * 2), StreamElement::Record { ts: 5, value: 18 });
        let p: StreamElement<i64> = StreamElement::Punctuation(3);
        assert_eq!(p.map(|v| v * 2), StreamElement::Punctuation(3));
    }
}
