//! The incremental aggregation framework (paper Section 5.4.1).
//!
//! Following Tangwongsan et al. [42], an aggregation is decomposed into
//! `lift`, `combine` (⊕), `lower`, and an optional `invert` (⊖). General
//! stream slicing *requires* associativity of ⊕ (all aggregate-sharing
//! techniques do) and *exploits* commutativity and invertibility when the
//! function declares them (workload characteristic 2, Section 4.2).

use crate::mem::HeapSize;
use crate::time::Time;

/// Classification of aggregations by the size of their partial aggregates
/// (Gray et al. [16], adopted in paper Section 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FunctionKind {
    /// Partials equal finals and have constant size (sum, min, max).
    Distributive,
    /// Partials are a fixed-size intermediate (avg, stddev, M4).
    Algebraic,
    /// Partials have unbounded size (median, percentiles).
    Holistic,
}

/// Algebraic properties of an aggregation, used by the decision logic
/// (Figures 4 and 6 of the paper) to pick processing strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionProperties {
    /// `x ⊕ y = y ⊕ x`. Non-commutative functions force slice recomputation
    /// for out-of-order tuples.
    pub commutative: bool,
    /// `(x ⊕ y) ⊖ y = x`. Invertible functions allow incremental removal of
    /// tuples (count-based windows with out-of-order tuples, Figure 6).
    pub invertible: bool,
    /// Size class of partial aggregates.
    pub kind: FunctionKind,
}

/// An incremental aggregate function.
///
/// # Contract
///
/// * `combine` must be **associative**:
///   `combine(combine(a, b), c) == combine(a, combine(b, c))`.
/// * If [`FunctionProperties::commutative`] is set, `combine(a, b) ==
///   combine(b, a)`.
/// * If [`FunctionProperties::invertible`] is set, [`Self::invert`] must
///   satisfy `invert(combine(a, b), b) == a` and must not return `None`.
/// * `combine` arguments are ordered: `a` aggregates tuples that occur
///   *before* the tuples aggregated in `b` (stream slicing preserves slice
///   order so non-commutative functions stay correct).
///
/// Implementations live in the `gss-aggregates` crate; the trait is defined
/// here so the slicing core, the baselines, and user code share it.
pub trait AggregateFunction: Clone + Send + 'static {
    /// Input tuple value (the `v` in `⟨t, v⟩`).
    type Input: Clone + Send + HeapSize + 'static;
    /// Partial aggregate produced by `lift` and merged by `combine`.
    type Partial: Clone + Send + HeapSize + 'static;
    /// Final aggregate produced by `lower`.
    type Output: Clone + Send + 'static;

    /// Transforms one tuple into a partial aggregate, e.g. `v ↦ (sum=v,
    /// count=1)` for an average.
    fn lift(&self, input: &Self::Input) -> Self::Partial;

    /// The ⊕ operation: combines two partials, `a` before `b`.
    fn combine(&self, a: Self::Partial, b: &Self::Partial) -> Self::Partial;

    /// Transforms a partial into the final aggregate, e.g. `(sum, count) ↦
    /// sum / count`.
    fn lower(&self, partial: &Self::Partial) -> Self::Output;

    /// The optional ⊖ operation: removes partial `b` from `a`. Must be
    /// implemented iff `properties().invertible`; the slicing core uses it
    /// to shift tuples between slices without recomputation.
    fn invert(&self, _a: Self::Partial, _b: &Self::Partial) -> Option<Self::Partial> {
        None
    }

    /// Declared algebraic properties. The slicing core trusts these; a
    /// wrongly-declared property yields wrong results, exactly like in the
    /// reference implementation.
    fn properties(&self) -> FunctionProperties;

    /// Folds a lifted partial for every tuple of `inputs` in the given
    /// order. Used when slices must be recomputed from their source tuples
    /// (split operations, non-commutative out-of-order inserts).
    fn lift_all<'a, I>(&self, inputs: I) -> Option<Self::Partial>
    where
        I: IntoIterator<Item = &'a Self::Input>,
        Self::Input: 'a,
    {
        let mut acc: Option<Self::Partial> = None;
        for v in inputs {
            let lifted = self.lift(v);
            acc = Some(match acc {
                None => lifted,
                Some(a) => self.combine(a, &lifted),
            });
        }
        acc
    }

    /// Combines two optional partials, treating `None` as the neutral
    /// element. Slices can be empty, so the core works with `Option`
    /// accumulators instead of requiring an identity element.
    fn combine_opt(
        &self,
        a: Option<Self::Partial>,
        b: Option<&Self::Partial>,
    ) -> Option<Self::Partial> {
        match (a, b) {
            (None, None) => None,
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b.clone()),
            (Some(a), Some(b)) => Some(self.combine(a, b)),
        }
    }

    /// Folds an entire contiguous run of input values into one partial —
    /// the bulk-fold kernel hook. Semantically identical to lifting and
    /// combining each value left to right (the default does exactly that),
    /// but implementations over primitive inputs override it with a tight
    /// branch-free loop the compiler can auto-vectorize, collapsing the
    /// per-element `lift` + `combine` overhead that dominates once the
    /// slicing store is touched only once per run.
    ///
    /// The contract mirrors `combine`: values are folded in slice order, so
    /// non-commutative functions stay correct as long as callers pass runs
    /// in stream order.
    fn fold_slice(&self, values: &[Self::Input]) -> Option<Self::Partial> {
        default_fold_slice(self, values)
    }

    /// Whether [`Self::fold_slice`] is a hand-written kernel rather than the
    /// default lift/combine loop. Callers holding tuples in
    /// array-of-structs form use this to decide whether gathering values
    /// into a contiguous scratch buffer pays for itself; observability
    /// layers use it to attribute runs to the kernel or fallback path.
    fn has_fold_kernel(&self) -> bool {
        false
    }

    /// Paired-column twin of [`Self::fold_slice`]: folds a contiguous run
    /// whose record timestamps arrive as a parallel `times` column
    /// (`times.len() == values.len()`, `times[i]` stamps `values[i]`).
    /// The result contract is identical to `fold_slice` — bit-for-bit
    /// equal to [`default_fold_slice`] over `values` in the given order —
    /// so the default simply delegates there. Functions whose inputs are
    /// `(Time, V)`-shaped pairs (ArgMin/ArgMax, M4, first/last) override
    /// this with a lane kernel: the columnar ingestion paths carry both
    /// columns end-to-end, so the kernel gets two contiguous slices for
    /// free where the element-shaped `fold_slice` hook could not help.
    ///
    /// `times` is auxiliary: kernels over self-contained pair inputs may
    /// ignore it, and kernels that do read it must not change the result
    /// relative to the `values`-only fold.
    fn fold_slice_pairs(&self, times: &[Time], values: &[Self::Input]) -> Option<Self::Partial> {
        debug_assert_eq!(times.len(), values.len(), "paired fold columns diverged");
        let _ = times;
        self.fold_slice(values)
    }

    /// Whether [`Self::fold_slice_pairs`] is a hand-written kernel rather
    /// than the `fold_slice` delegation. Mirrors [`Self::has_fold_kernel`]
    /// for the paired-column hook: array-of-structs callers use it to
    /// decide whether gathering *both* columns pays for itself, and the
    /// hit/miss accounting uses it to attribute paired runs.
    fn has_pair_kernel(&self) -> bool {
        false
    }

    /// Minimum run length at which gathering array-of-structs tuples into
    /// contiguous column(s) and calling a bulk kernel beats the plain
    /// per-element fold for *this* function. Defaults to the global
    /// [`FOLD_KERNEL_MIN_RUN`]; functions whose kernels break even earlier
    /// or later (e.g. paired kernels replacing a branchy compare chain, or
    /// kernels with wide partial copies) override it.
    fn kernel_min_run(&self) -> usize {
        FOLD_KERNEL_MIN_RUN
    }
}

/// The reference lift/combine fold over a contiguous run — the default body
/// of [`AggregateFunction::fold_slice`], exposed as a free function so
/// equivalence tests and the `fold` benchmark can compare a kernel against
/// the exact loop it replaces.
pub fn default_fold_slice<A: AggregateFunction>(f: &A, values: &[A::Input]) -> Option<A::Partial> {
    let mut acc: Option<A::Partial> = None;
    for v in values {
        let lifted = f.lift(v);
        acc = Some(match acc {
            None => lifted,
            Some(a) => f.combine(a, &lifted),
        });
    }
    acc
}

/// Default minimum run length at which gathering array-of-structs tuples
/// into a contiguous values buffer and calling a bulk kernel beats the
/// plain per-element fold. Below this the gather's copy dominates the
/// kernel's savings; above it the copy is one linear pass amortized over a
/// vectorized fold. Per-function break-evens override it via
/// [`AggregateFunction::kernel_min_run`].
pub const FOLD_KERNEL_MIN_RUN: usize = 16;

/// Whether a run of `len` tuples should be routed through the bulk
/// [`AggregateFunction::fold_slice`] kernel (gathering values first when
/// the caller's storage is array-of-structs). Centralizing the decision
/// keeps the hit/miss accounting consistent across every fold site.
pub fn kernel_eligible<A: AggregateFunction>(f: &A, len: usize) -> bool {
    len >= f.kernel_min_run() && f.has_fold_kernel()
}

/// Whether a run of `len` tuples should be routed through the paired-column
/// [`AggregateFunction::fold_slice_pairs`] kernel (gathering both the times
/// and values columns first when the caller's storage is
/// array-of-structs). The paired twin of [`kernel_eligible`], sharing the
/// same per-function break-even.
pub fn pair_kernel_eligible<A: AggregateFunction>(f: &A, len: usize) -> bool {
    len >= f.kernel_min_run() && f.has_pair_kernel()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal sum used to exercise the defaults; the real functions live in
    /// `gss-aggregates`.
    #[derive(Clone)]
    struct TestSum;

    impl AggregateFunction for TestSum {
        type Input = i64;
        type Partial = i64;
        type Output = i64;

        fn lift(&self, v: &i64) -> i64 {
            *v
        }
        fn combine(&self, a: i64, b: &i64) -> i64 {
            a + b
        }
        fn lower(&self, p: &i64) -> i64 {
            *p
        }
        fn properties(&self) -> FunctionProperties {
            FunctionProperties {
                commutative: true,
                invertible: false,
                kind: FunctionKind::Distributive,
            }
        }
    }

    #[test]
    fn lift_all_folds_in_order() {
        let s = TestSum;
        assert_eq!(s.lift_all([&1, &2, &3]), Some(6));
        assert_eq!(s.lift_all(std::iter::empty::<&i64>()), None);
    }

    #[test]
    fn combine_opt_treats_none_as_neutral() {
        let s = TestSum;
        assert_eq!(s.combine_opt(None, None), None);
        assert_eq!(s.combine_opt(Some(4), None), Some(4));
        assert_eq!(s.combine_opt(None, Some(&5)), Some(5));
        assert_eq!(s.combine_opt(Some(4), Some(&5)), Some(9));
    }

    #[test]
    fn default_invert_is_none() {
        assert_eq!(TestSum.invert(1, &2), None);
    }

    #[test]
    fn default_fold_slice_matches_lift_all() {
        let s = TestSum;
        assert_eq!(s.fold_slice(&[1, 2, 3, 4]), Some(10));
        assert_eq!(s.fold_slice(&[]), None);
        assert_eq!(s.fold_slice(&[7]), s.lift_all([&7]));
        assert!(!s.has_fold_kernel());
    }

    #[test]
    fn kernel_eligibility_requires_kernel_and_length() {
        // TestSum has no kernel: never eligible.
        assert!(!kernel_eligible(&TestSum, 10_000));

        #[derive(Clone)]
        struct KernelSum;
        impl AggregateFunction for KernelSum {
            type Input = i64;
            type Partial = i64;
            type Output = i64;
            fn lift(&self, v: &i64) -> i64 {
                *v
            }
            fn combine(&self, a: i64, b: &i64) -> i64 {
                a + b
            }
            fn lower(&self, p: &i64) -> i64 {
                *p
            }
            fn properties(&self) -> FunctionProperties {
                FunctionProperties {
                    commutative: true,
                    invertible: false,
                    kind: FunctionKind::Distributive,
                }
            }
            fn fold_slice(&self, values: &[i64]) -> Option<i64> {
                (!values.is_empty()).then(|| values.iter().sum())
            }
            fn has_fold_kernel(&self) -> bool {
                true
            }
        }
        assert!(!kernel_eligible(&KernelSum, FOLD_KERNEL_MIN_RUN - 1));
        assert!(kernel_eligible(&KernelSum, FOLD_KERNEL_MIN_RUN));
        assert_eq!(KernelSum.fold_slice(&[1, 2, 3]), default_fold_slice(&KernelSum, &[1, 2, 3]));
        // No pair kernel declared: the paired gate never opens, even though
        // the values-only gate does.
        assert!(!pair_kernel_eligible(&KernelSum, 10_000));
    }

    #[test]
    fn default_fold_slice_pairs_delegates_to_fold_slice() {
        let s = TestSum;
        assert!(!s.has_pair_kernel());
        assert_eq!(s.fold_slice_pairs(&[10, 20, 30], &[1, 2, 3]), s.fold_slice(&[1, 2, 3]));
        assert_eq!(s.fold_slice_pairs(&[], &[]), None);
    }

    #[test]
    fn kernel_min_run_override_moves_both_gates() {
        #[derive(Clone)]
        struct EarlySum;
        impl AggregateFunction for EarlySum {
            type Input = i64;
            type Partial = i64;
            type Output = i64;
            fn lift(&self, v: &i64) -> i64 {
                *v
            }
            fn combine(&self, a: i64, b: &i64) -> i64 {
                a + b
            }
            fn lower(&self, p: &i64) -> i64 {
                *p
            }
            fn properties(&self) -> FunctionProperties {
                FunctionProperties {
                    commutative: true,
                    invertible: false,
                    kind: FunctionKind::Distributive,
                }
            }
            fn has_fold_kernel(&self) -> bool {
                true
            }
            fn has_pair_kernel(&self) -> bool {
                true
            }
            fn kernel_min_run(&self) -> usize {
                4
            }
        }
        assert_eq!(TestSum.kernel_min_run(), FOLD_KERNEL_MIN_RUN);
        assert!(!kernel_eligible(&EarlySum, 3));
        assert!(kernel_eligible(&EarlySum, 4));
        assert!(!pair_kernel_eligible(&EarlySum, 3));
        assert!(pair_kernel_eligible(&EarlySum, 4));
    }
}
