//! The incremental aggregation framework (paper Section 5.4.1).
//!
//! Following Tangwongsan et al. [42], an aggregation is decomposed into
//! `lift`, `combine` (⊕), `lower`, and an optional `invert` (⊖). General
//! stream slicing *requires* associativity of ⊕ (all aggregate-sharing
//! techniques do) and *exploits* commutativity and invertibility when the
//! function declares them (workload characteristic 2, Section 4.2).

use crate::mem::HeapSize;

/// Classification of aggregations by the size of their partial aggregates
/// (Gray et al. [16], adopted in paper Section 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FunctionKind {
    /// Partials equal finals and have constant size (sum, min, max).
    Distributive,
    /// Partials are a fixed-size intermediate (avg, stddev, M4).
    Algebraic,
    /// Partials have unbounded size (median, percentiles).
    Holistic,
}

/// Algebraic properties of an aggregation, used by the decision logic
/// (Figures 4 and 6 of the paper) to pick processing strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionProperties {
    /// `x ⊕ y = y ⊕ x`. Non-commutative functions force slice recomputation
    /// for out-of-order tuples.
    pub commutative: bool,
    /// `(x ⊕ y) ⊖ y = x`. Invertible functions allow incremental removal of
    /// tuples (count-based windows with out-of-order tuples, Figure 6).
    pub invertible: bool,
    /// Size class of partial aggregates.
    pub kind: FunctionKind,
}

/// An incremental aggregate function.
///
/// # Contract
///
/// * `combine` must be **associative**:
///   `combine(combine(a, b), c) == combine(a, combine(b, c))`.
/// * If [`FunctionProperties::commutative`] is set, `combine(a, b) ==
///   combine(b, a)`.
/// * If [`FunctionProperties::invertible`] is set, [`Self::invert`] must
///   satisfy `invert(combine(a, b), b) == a` and must not return `None`.
/// * `combine` arguments are ordered: `a` aggregates tuples that occur
///   *before* the tuples aggregated in `b` (stream slicing preserves slice
///   order so non-commutative functions stay correct).
///
/// Implementations live in the `gss-aggregates` crate; the trait is defined
/// here so the slicing core, the baselines, and user code share it.
pub trait AggregateFunction: Clone + Send + 'static {
    /// Input tuple value (the `v` in `⟨t, v⟩`).
    type Input: Clone + Send + HeapSize + 'static;
    /// Partial aggregate produced by `lift` and merged by `combine`.
    type Partial: Clone + Send + HeapSize + 'static;
    /// Final aggregate produced by `lower`.
    type Output: Clone + Send + 'static;

    /// Transforms one tuple into a partial aggregate, e.g. `v ↦ (sum=v,
    /// count=1)` for an average.
    fn lift(&self, input: &Self::Input) -> Self::Partial;

    /// The ⊕ operation: combines two partials, `a` before `b`.
    fn combine(&self, a: Self::Partial, b: &Self::Partial) -> Self::Partial;

    /// Transforms a partial into the final aggregate, e.g. `(sum, count) ↦
    /// sum / count`.
    fn lower(&self, partial: &Self::Partial) -> Self::Output;

    /// The optional ⊖ operation: removes partial `b` from `a`. Must be
    /// implemented iff `properties().invertible`; the slicing core uses it
    /// to shift tuples between slices without recomputation.
    fn invert(&self, _a: Self::Partial, _b: &Self::Partial) -> Option<Self::Partial> {
        None
    }

    /// Declared algebraic properties. The slicing core trusts these; a
    /// wrongly-declared property yields wrong results, exactly like in the
    /// reference implementation.
    fn properties(&self) -> FunctionProperties;

    /// Folds a lifted partial for every tuple of `inputs` in the given
    /// order. Used when slices must be recomputed from their source tuples
    /// (split operations, non-commutative out-of-order inserts).
    fn lift_all<'a, I>(&self, inputs: I) -> Option<Self::Partial>
    where
        I: IntoIterator<Item = &'a Self::Input>,
        Self::Input: 'a,
    {
        let mut acc: Option<Self::Partial> = None;
        for v in inputs {
            let lifted = self.lift(v);
            acc = Some(match acc {
                None => lifted,
                Some(a) => self.combine(a, &lifted),
            });
        }
        acc
    }

    /// Combines two optional partials, treating `None` as the neutral
    /// element. Slices can be empty, so the core works with `Option`
    /// accumulators instead of requiring an identity element.
    fn combine_opt(
        &self,
        a: Option<Self::Partial>,
        b: Option<&Self::Partial>,
    ) -> Option<Self::Partial> {
        match (a, b) {
            (None, None) => None,
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b.clone()),
            (Some(a), Some(b)) => Some(self.combine(a, b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal sum used to exercise the defaults; the real functions live in
    /// `gss-aggregates`.
    #[derive(Clone)]
    struct TestSum;

    impl AggregateFunction for TestSum {
        type Input = i64;
        type Partial = i64;
        type Output = i64;

        fn lift(&self, v: &i64) -> i64 {
            *v
        }
        fn combine(&self, a: i64, b: &i64) -> i64 {
            a + b
        }
        fn lower(&self, p: &i64) -> i64 {
            *p
        }
        fn properties(&self) -> FunctionProperties {
            FunctionProperties {
                commutative: true,
                invertible: false,
                kind: FunctionKind::Distributive,
            }
        }
    }

    #[test]
    fn lift_all_folds_in_order() {
        let s = TestSum;
        assert_eq!(s.lift_all([&1, &2, &3]), Some(6));
        assert_eq!(s.lift_all(std::iter::empty::<&i64>()), None);
    }

    #[test]
    fn combine_opt_treats_none_as_neutral() {
        let s = TestSum;
        assert_eq!(s.combine_opt(None, None), None);
        assert_eq!(s.combine_opt(Some(4), None), Some(4));
        assert_eq!(s.combine_opt(None, Some(&5)), Some(5));
        assert_eq!(s.combine_opt(Some(4), Some(&5)), Some(9));
    }

    #[test]
    fn default_invert_is_none() {
        assert_eq!(TestSum.invert(1, &2), None);
    }
}
