//! Deterministic deep-size accounting.
//!
//! The paper measures memory footprints with Nashorn's
//! `ObjectSizeCalculator` (Section 6.1). We substitute a deterministic
//! byte-accounting trait: every store reports the exact number of bytes its
//! owned heap and inline data occupy. This keeps the memory experiments
//! (Table 1, Figure 10) reproducible without a JVM.

/// Types that can report the total size of the data they own: the inline
/// (`size_of::<Self>()`) part plus all owned heap allocations.
pub trait HeapSize {
    /// Bytes owned on the heap (excluding `size_of::<Self>()`).
    fn heap_bytes(&self) -> usize;

    /// Total footprint: inline size plus owned heap bytes.
    #[inline]
    fn total_bytes(&self) -> usize
    where
        Self: Sized,
    {
        std::mem::size_of::<Self>() + self.heap_bytes()
    }
}

macro_rules! impl_heapsize_scalar {
    ($($t:ty),* $(,)?) => {
        $(impl HeapSize for $t {
            #[inline]
            fn heap_bytes(&self) -> usize { 0 }
        })*
    };
}

impl_heapsize_scalar!(
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    bool,
    char,
    ()
);

impl<T: HeapSize> HeapSize for Option<T> {
    #[inline]
    fn heap_bytes(&self) -> usize {
        self.as_ref().map_or(0, HeapSize::heap_bytes)
    }
}

impl<T: HeapSize> HeapSize for Vec<T> {
    /// Accounts for the allocated capacity (not just the length), mirroring
    /// what a real allocator charges, plus the heap data owned by elements.
    fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
            + self.iter().map(HeapSize::heap_bytes).sum::<usize>()
    }
}

impl<T: HeapSize> HeapSize for std::collections::VecDeque<T> {
    fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
            + self.iter().map(HeapSize::heap_bytes).sum::<usize>()
    }
}

impl<T: HeapSize> HeapSize for Box<T> {
    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<T>() + self.as_ref().heap_bytes()
    }
}

impl HeapSize for String {
    fn heap_bytes(&self) -> usize {
        self.capacity()
    }
}

impl<A: HeapSize, B: HeapSize> HeapSize for (A, B) {
    fn heap_bytes(&self) -> usize {
        self.0.heap_bytes() + self.1.heap_bytes()
    }
}

impl<A: HeapSize, B: HeapSize, C: HeapSize> HeapSize for (A, B, C) {
    fn heap_bytes(&self) -> usize {
        self.0.heap_bytes() + self.1.heap_bytes() + self.2.heap_bytes()
    }
}

impl<A: HeapSize, B: HeapSize, C: HeapSize, D: HeapSize> HeapSize for (A, B, C, D) {
    fn heap_bytes(&self) -> usize {
        self.0.heap_bytes() + self.1.heap_bytes() + self.2.heap_bytes() + self.3.heap_bytes()
    }
}

impl<T: HeapSize, const N: usize> HeapSize for [T; N] {
    fn heap_bytes(&self) -> usize {
        self.iter().map(HeapSize::heap_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_have_no_heap() {
        assert_eq!(42u64.heap_bytes(), 0);
        assert_eq!(42u64.total_bytes(), 8);
        assert_eq!(1.5f64.total_bytes(), 8);
    }

    #[test]
    fn vec_accounts_for_capacity() {
        let mut v: Vec<u64> = Vec::with_capacity(16);
        v.push(1);
        assert_eq!(v.heap_bytes(), 16 * 8);
        assert_eq!(v.total_bytes(), std::mem::size_of::<Vec<u64>>() + 16 * 8);
    }

    #[test]
    fn nested_vec_sums_element_heaps() {
        let v: Vec<Vec<u8>> = vec![Vec::with_capacity(10), Vec::with_capacity(20)];
        let elems = std::mem::size_of::<Vec<u8>>() * v.capacity();
        assert_eq!(v.heap_bytes(), elems + 30);
    }

    #[test]
    fn option_none_is_free() {
        let none: Option<Vec<u8>> = None;
        assert_eq!(none.heap_bytes(), 0);
        let some: Option<Vec<u8>> = Some(Vec::with_capacity(7));
        assert_eq!(some.heap_bytes(), 7);
    }

    #[test]
    fn tuple_sums_components() {
        let t = (Vec::<u8>::with_capacity(3), 1u64);
        assert_eq!(t.heap_bytes(), 3);
    }

    #[test]
    fn boxed_value_charges_pointee() {
        let b = Box::new(5u64);
        assert_eq!(b.heap_bytes(), 8);
    }

    #[test]
    fn string_charges_capacity() {
        let mut s = String::with_capacity(32);
        s.push('x');
        assert_eq!(s.heap_bytes(), 32);
    }
}
