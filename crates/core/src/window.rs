//! Window-type interfaces (paper Sections 4.4 and 5.4.2).
//!
//! Window types are classified by the *context* needed to know where windows
//! start and end (Li et al. [31]): context free (CF), forward context free
//! (FCF), and forward context aware (FCA). The slicing core is agnostic to
//! concrete window types; they plug in through [`WindowFunction`], mirroring
//! the paper's `getNextEdge` / `triggerWindows` / `notifyContext` interface.
//! Implementations live in the `gss-windows` crate.

use crate::time::{Measure, Range, Time};

/// Identifier of a query registered with a window operator.
pub type QueryId = u32;

/// Context classification of a window type (paper Section 4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContextClass {
    /// All start/end timestamps are known a priori (tumbling, sliding).
    ContextFree,
    /// Start/end timestamps up to `t` are known once all tuples up to `t`
    /// are processed (punctuation-based windows).
    ForwardContextFree,
    /// Tuples *after* `t` may determine edges *before* `t` (multi-measure
    /// windows, sessions).
    ForwardContextAware,
}

impl ContextClass {
    /// Context-aware = not context free (paper Figure 5 vocabulary).
    #[inline]
    pub fn is_context_aware(self) -> bool {
        !matches!(self, ContextClass::ContextFree)
    }
}

/// Edge changes requested by a context-aware window while observing a tuple
/// or punctuation. The slice manager translates additions into slice splits
/// and removals into slice merges (paper Section 5.3, Step 2).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ContextEdges {
    added: Vec<Time>,
    removed: Vec<Time>,
}

impl ContextEdges {
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a new window start/end edge at `ts`.
    pub fn add_edge(&mut self, ts: Time) {
        self.added.push(ts);
    }

    /// Declare that the edge at `ts` no longer exists (e.g. two sessions
    /// merged and the later session's start edge vanished).
    pub fn remove_edge(&mut self, ts: Time) {
        self.removed.push(ts);
    }

    pub fn added(&self) -> &[Time] {
        &self.added
    }

    pub fn removed(&self) -> &[Time] {
        &self.removed
    }

    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    pub fn clear(&mut self) {
        self.added.clear();
        self.removed.clear();
    }
}

/// A window type pluggable into the slicing core and the baselines.
///
/// All positions (`ts` arguments, reported [`Range`]s) are expressed in the
/// window's own [`Measure`]: timestamps for time-measure windows, counts for
/// count-measure windows. The window operator translates watermarks into the
/// right measure before calling [`WindowFunction::trigger_windows`].
pub trait WindowFunction: Send {
    /// The measure this window is defined on.
    fn measure(&self) -> Measure;

    /// Context class; decides whether tuples must be kept and whether
    /// splits/merges can occur (paper Figures 4 and 5).
    fn context(&self) -> ContextClass;

    /// Session windows are context aware but never require aggregate
    /// recomputation (paper Section 5.1, condition 2). The decision logic
    /// special-cases them through this flag.
    fn is_session(&self) -> bool {
        false
    }

    /// Next window edge (start or end) strictly after `ts`, if known.
    ///
    /// CF windows always know this; context-aware windows return their
    /// current best knowledge or `None`. The stream slicer caches the
    /// returned edge and compares each in-order tuple against it (paper
    /// Section 5.3, Step 1).
    fn next_edge(&self, ts: Time) -> Option<Time>;

    /// Latest window edge (start or end) at or **before** `ts`, if the
    /// window can compute it without stream context. Context-free periodic
    /// windows derive it arithmetically; stateful windows keep the default
    /// `None`. Used by the keyed operator to extend its shared slice
    /// timeline backwards for late tuples.
    fn prev_edge(&self, _ts: Time) -> Option<Time> {
        None
    }

    /// True iff this window's edge set is a pure function of its
    /// parameters — independent of the tuples observed (tumbling, sliding).
    /// Such windows can share one slice timeline across all keys of a
    /// keyed operator; everything else (sessions, punctuation windows,
    /// count measures) needs per-key edges. Implementations returning
    /// `true` must also implement [`WindowFunction::prev_edge`] and
    /// [`WindowFunction::next_window_end`].
    fn has_static_edges(&self) -> bool {
        false
    }

    /// Next window **start** edge strictly after `ts`. On in-order streams
    /// it suffices to start slices when windows start (paper Section 5.3,
    /// Step 1: "In an in-order stream, it is sufficient to start slices
    /// when windows start"); out-of-order streams also slice at window
    /// ends, via [`WindowFunction::next_edge`]. Defaults to `next_edge`.
    fn next_start_edge(&self, ts: Time) -> Option<Time> {
        self.next_edge(ts)
    }

    /// Earliest position still needed by a window that has not been
    /// finally emitted (e.g. the start of the oldest live session). The
    /// operator never evicts slices at or after this position. `None`
    /// means no such constraint.
    fn earliest_pending_start(&self) -> Option<Time> {
        None
    }

    /// True iff this window currently defines a start or end edge exactly
    /// at `e`. Used before merging slices away: an edge is only removed if
    /// no query still needs it. The default derives the answer from
    /// [`WindowFunction::next_edge`]; stateful windows (sessions) override
    /// it.
    fn requires_edge_at(&self, e: Time) -> bool {
        self.next_edge(e - 1) == Some(e)
    }

    /// The earliest window **end** strictly after `ts`, if known. Lets the
    /// operator skip the trigger sweep entirely until a window can actually
    /// complete — the key to constant per-tuple cost with many concurrent
    /// context-free queries. `None` means "unknown, sweep every time".
    fn next_window_end(&self, _ts: Time) -> Option<Time> {
        None
    }

    /// Reports every window `[start, end)` whose **end** lies in
    /// `(prev_wm, curr_wm]`, i.e. windows that completed since the previous
    /// watermark. Mirrors `triggerWindows(Callback, prevWM, currWM)`.
    fn trigger_windows(&mut self, prev_wm: Time, curr_wm: Time, out: &mut dyn FnMut(Range));

    /// Reports every *currently known* window that contains position `ts`.
    /// Used by the bucket baseline for window assignment and by the window
    /// manager to re-emit updated aggregates for late tuples.
    fn windows_containing(&self, ts: Time, out: &mut dyn FnMut(Range));

    /// Context-aware windows observe every tuple here and may add or remove
    /// window edges. Context-free windows keep the default no-op.
    fn notify_context(&mut self, _ts: Time, _edges: &mut ContextEdges) {}

    /// FCF windows observe stream punctuations here (paper Section 4.4).
    fn on_punctuation(&mut self, _ts: Time, _edges: &mut ContextEdges) {}

    /// An upper bound on how far back (in this window's measure) a window
    /// containing position `ts` can start. Used for state eviction.
    fn max_extent(&self) -> i64;

    /// Clones the window into a box (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn WindowFunction>;
}

impl Clone for Box<dyn WindowFunction> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A registered query: a window function plus its identifier.
pub struct Query {
    pub id: QueryId,
    pub window: Box<dyn WindowFunction>,
}

impl Query {
    pub fn new(id: QueryId, window: Box<dyn WindowFunction>) -> Self {
        Query { id, window }
    }
}

impl Clone for Query {
    fn clone(&self) -> Self {
        Query { id: self.id, window: self.window.clone_box() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_awareness_classification() {
        assert!(!ContextClass::ContextFree.is_context_aware());
        assert!(ContextClass::ForwardContextFree.is_context_aware());
        assert!(ContextClass::ForwardContextAware.is_context_aware());
    }

    #[test]
    fn context_edges_collects_changes() {
        let mut e = ContextEdges::new();
        assert!(e.is_empty());
        e.add_edge(10);
        e.add_edge(20);
        e.remove_edge(15);
        assert_eq!(e.added(), &[10, 20]);
        assert_eq!(e.removed(), &[15]);
        assert!(!e.is_empty());
        e.clear();
        assert!(e.is_empty());
    }
}
