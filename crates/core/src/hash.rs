//! A fast non-cryptographic hasher for key-grouped batching.
//!
//! Keyed window state lives in hash maps indexed by `u64` keys, touched
//! once per tuple run on the hot path. `std`'s default SipHash is
//! DoS-resistant but costs tens of cycles per key; for internal,
//! non-adversarial key routing the FxHash construction (a single
//! multiply-xor per word, as used by rustc's interners) is the standard
//! choice. The tree is offline (no crates.io), so the ~30 lines live here
//! instead of pulling in the `fxhash`/`rustc-hash` crate.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash construction: the golden-ratio constant
/// also used by Fibonacci hashing ([`crate::time`] is unrelated — this is
/// purely bit mixing).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An FxHash-style streaming hasher: one wrapping multiply and xor-rotate
/// per 8-byte word. Not DoS-resistant — use only for internal keys.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // chunks_exact(8) guarantees the width.
            let word: [u8; 8] = chunk.try_into().unwrap_or_default();
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (deterministic: no per-map random seed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`] — the map type for per-key window
/// state and batch grouping.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Hashes one `u64` key (convenience for tests and probing).
#[inline]
pub fn fx_hash_u64(key: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(key);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(fx_hash_u64(42), fx_hash_u64(42));
        let mut a = FxHasher::default();
        a.write(b"hello world");
        let mut b = FxHasher::default();
        b.write(b"hello world");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Sequential keys must spread: count distinct top bytes over a
        // small range (a weak but deterministic avalanche check).
        let mut top_bytes = std::collections::HashSet::new();
        for k in 0u64..256 {
            top_bytes.insert((fx_hash_u64(k) >> 56) as u8);
        }
        assert!(top_bytes.len() > 100, "only {} distinct top bytes", top_bytes.len());
    }

    #[test]
    fn map_works_with_u64_keys() {
        let mut m: FxHashMap<u64, i64> = FxHashMap::default();
        for k in 0..1000u64 {
            m.insert(k, k as i64 * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&500), Some(&1000));
    }

    #[test]
    fn partial_words_hash_consistently() {
        let mut a = FxHasher::default();
        a.write(b"abc");
        let mut b = FxHasher::default();
        b.write(b"abc");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"abd");
        assert_ne!(a.finish(), c.finish());
    }
}
