//! Slices and the three fundamental slice operations (paper Section 5.2).
//!
//! A slice is a non-overlapping chunk of the stream holding a partial
//! aggregate and — only when the workload requires it (Figure 4) — its
//! source tuples. The three operations are **merge**, **split**, and
//! **update**; workload characteristics determine what each costs and how
//! often it runs.

use crate::function::AggregateFunction;
use crate::mem::HeapSize;
use crate::time::{Range, Time, TIME_MAX, TIME_MIN};

/// A slice: `[t_start, t_end)` plus metadata and aggregate state.
///
/// Per the paper, a slice stores its start/end timestamps and the timestamps
/// of the first and last tuple it contains — which need not coincide with
/// the slice boundaries (a slice `[1, 10)` may contain tuples only in
/// `[2, 9]`).
#[derive(Clone)]
pub struct Slice<A: AggregateFunction> {
    range: Range,
    /// Timestamp of the earliest contained tuple; `TIME_MAX` if empty.
    t_first: Time,
    /// Timestamp of the latest contained tuple; `TIME_MIN` if empty.
    t_last: Time,
    /// Number of contained tuples (drives the count measure).
    n_tuples: usize,
    /// Partial aggregate of the contained tuples in event-time order;
    /// `None` iff the slice is empty.
    agg: Option<A::Partial>,
    /// Source tuples sorted by timestamp (stable w.r.t. arrival for ties).
    /// Present iff the decision logic requires tuple storage.
    tuples: Option<Vec<(Time, A::Input)>>,
}

/// Folds a run of tuples into one partial in stream order; `None` for an
/// empty run. Runs long enough to amortize a gather (the function's
/// [`AggregateFunction::kernel_min_run`]) are routed through a bulk
/// kernel: pair-kernel functions gather *both* columns for
/// [`AggregateFunction::fold_slice_pairs`], values-kernel functions gather
/// the values for [`AggregateFunction::fold_slice`] — one linear copy into
/// contiguous buffer(s), then a vectorized fold. Everything else — short
/// runs and functions without a kernel — takes the per-element
/// lift/combine loop, so the routing never costs more than the code it
/// replaced.
pub fn fold_run<A: AggregateFunction>(f: &A, run: &[(Time, A::Input)]) -> Option<A::Partial> {
    if crate::function::pair_kernel_eligible(f, run.len()) {
        let mut times: Vec<Time> = Vec::with_capacity(run.len());
        let mut values: Vec<A::Input> = Vec::with_capacity(run.len());
        for (t, v) in run {
            times.push(*t);
            values.push(v.clone());
        }
        return f.fold_slice_pairs(&times, &values);
    }
    if crate::function::kernel_eligible(f, run.len()) {
        let values: Vec<A::Input> = run.iter().map(|(_, v)| v.clone()).collect();
        return f.fold_slice(&values);
    }
    let mut acc: Option<A::Partial> = None;
    for (_, v) in run {
        let lifted = f.lift(v);
        acc = Some(match acc {
            None => lifted,
            Some(a) => f.combine(a, &lifted),
        });
    }
    acc
}

impl<A: AggregateFunction> Slice<A> {
    /// Creates an empty slice covering `range`. `keep_tuples` mirrors the
    /// Figure-4 decision and must be uniform across all slices of a store.
    pub fn new(range: Range, keep_tuples: bool) -> Self {
        Slice {
            range,
            t_first: TIME_MAX,
            t_last: TIME_MIN,
            n_tuples: 0,
            agg: None,
            tuples: if keep_tuples { Some(Vec::new()) } else { None },
        }
    }

    #[inline]
    pub fn range(&self) -> Range {
        self.range
    }

    #[inline]
    pub fn start(&self) -> Time {
        self.range.start
    }

    #[inline]
    pub fn end(&self) -> Time {
        self.range.end
    }

    /// Timestamp of the first (earliest) contained tuple.
    #[inline]
    pub fn t_first(&self) -> Time {
        self.t_first
    }

    /// Timestamp of the last (latest) contained tuple.
    #[inline]
    pub fn t_last(&self) -> Time {
        self.t_last
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.n_tuples
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n_tuples == 0
    }

    /// The partial aggregate (event-time order), `None` for empty slices.
    #[inline]
    pub fn aggregate(&self) -> Option<&A::Partial> {
        self.agg.as_ref()
    }

    /// Whether this slice stores its source tuples.
    #[inline]
    pub fn keeps_tuples(&self) -> bool {
        self.tuples.is_some()
    }

    /// The stored tuples, if kept.
    pub fn tuples(&self) -> Option<&[(Time, A::Input)]> {
        self.tuples.as_deref()
    }

    /// Extends the slice's end (metadata update; used when the successor is
    /// merged away or when the latest slice grows).
    pub fn set_end(&mut self, end: Time) {
        debug_assert!(end >= self.range.start);
        self.range.end = end;
    }

    /// Adds an in-order tuple (`ts >= t_last`) with one incremental ⊕ step.
    pub fn add_in_order(&mut self, f: &A, ts: Time, value: A::Input) {
        debug_assert!(ts >= self.t_last || self.is_empty(), "tuple {ts} not in order");
        debug_assert!(self.range.contains(ts), "tuple {ts} outside slice {}", self.range);
        let lifted = f.lift(&value);
        self.agg = Some(match self.agg.take() {
            None => lifted,
            Some(a) => f.combine(a, &lifted),
        });
        self.t_first = self.t_first.min(ts);
        self.t_last = self.t_last.max(ts);
        self.n_tuples += 1;
        if let Some(tuples) = &mut self.tuples {
            tuples.push((ts, value));
        }
    }

    /// Adds a run of in-order tuples in one step (the batched ingestion
    /// fast path). The caller guarantees the run is non-decreasing in
    /// timestamp, starts at or after `t_last`, and lies inside the slice
    /// range. The run is folded left-to-right into one partial which is
    /// combined into the slice aggregate with a single ⊕ — by
    /// associativity this equals adding the tuples one by one, including
    /// for non-commutative functions (event-time order is preserved).
    pub fn add_run(&mut self, f: &A, run: &[(Time, A::Input)]) {
        let (Some(&(first_ts, _)), Some(&(last_ts, _))) = (run.first(), run.last()) else {
            return;
        };
        debug_assert!(first_ts >= self.t_last || self.is_empty(), "run {first_ts} not in order");
        debug_assert!(
            self.range.contains(first_ts) && self.range.contains(last_ts),
            "run [{first_ts}, {last_ts}] outside slice {}",
            self.range
        );
        debug_assert!(run.windows(2).all(|w| w[0].0 <= w[1].0), "run not sorted");
        let Some(p) = fold_run(f, run) else {
            return;
        };
        self.agg = Some(match self.agg.take() {
            None => p,
            Some(a) => f.combine(a, &p),
        });
        self.t_first = self.t_first.min(first_ts);
        self.t_last = self.t_last.max(last_ts);
        self.n_tuples += run.len();
        if let Some(tuples) = &mut self.tuples {
            tuples.extend_from_slice(run);
        }
    }

    /// Columnar twin of [`Slice::add_run`]: the run arrives as parallel
    /// `times` / `values` slices (struct-of-arrays), so both columns are
    /// already contiguous and feed
    /// [`AggregateFunction::fold_slice_pairs`] directly — no gather, no
    /// re-materialization. (The default `fold_slice_pairs` delegates to
    /// `fold_slice`, so values-kernel and kernel-less functions behave
    /// exactly as before.) Caller guarantees are identical to `add_run`
    /// plus `times.len() == values.len()`.
    pub fn add_run_columns(&mut self, f: &A, times: &[Time], values: &[A::Input]) {
        debug_assert_eq!(times.len(), values.len(), "SoA run length mismatch");
        let (Some(&first_ts), Some(&last_ts)) = (times.first(), times.last()) else {
            return;
        };
        debug_assert!(first_ts >= self.t_last || self.is_empty(), "run {first_ts} not in order");
        debug_assert!(
            self.range.contains(first_ts) && self.range.contains(last_ts),
            "run [{first_ts}, {last_ts}] outside slice {}",
            self.range
        );
        debug_assert!(times.windows(2).all(|w| w[0] <= w[1]), "run not sorted");
        let Some(p) = f.fold_slice_pairs(times, values) else {
            return;
        };
        self.agg = Some(match self.agg.take() {
            None => p,
            Some(a) => f.combine(a, &p),
        });
        self.t_first = self.t_first.min(first_ts);
        self.t_last = self.t_last.max(last_ts);
        self.n_tuples += times.len();
        if let Some(tuples) = &mut self.tuples {
            tuples.extend(times.iter().copied().zip(values.iter().cloned()));
        }
    }

    /// Adds an out-of-order tuple. For commutative functions the aggregate
    /// is updated with one incremental ⊕ step; for non-commutative
    /// functions the aggregate is recomputed from the stored tuples to
    /// retain the order of aggregation steps (paper Section 5.2, Update).
    pub fn add_out_of_order(&mut self, f: &A, ts: Time, value: A::Input) {
        // Note: no range assertion here — count-delimited slices (Figure 6
        // shifts) legitimately receive tuples before their nominal start.
        let commutative = f.properties().commutative;
        if let Some(tuples) = &mut self.tuples {
            // Stable insert: after existing tuples with the same timestamp.
            let pos = tuples.partition_point(|(t, _)| *t <= ts);
            tuples.insert(pos, (ts, value.clone()));
        } else {
            debug_assert!(
                commutative,
                "non-commutative out-of-order insert requires stored tuples (Figure 4)"
            );
        }
        self.t_first = self.t_first.min(ts);
        self.t_last = self.t_last.max(ts);
        self.n_tuples += 1;
        if commutative {
            let lifted = f.lift(&value);
            self.agg = Some(match self.agg.take() {
                None => lifted,
                Some(a) => f.combine(a, &lifted),
            });
        } else {
            self.recompute(f);
        }
    }

    /// Adds a sorted run of out-of-order tuples in one step (the batched
    /// out-of-order fast path). The caller guarantees the run is
    /// non-decreasing in timestamp; nothing else is assumed — tuples may
    /// fall anywhere relative to the stored ones. Equivalent to calling
    /// [`Slice::add_out_of_order`] once per tuple in run order: stored
    /// tuples are merged in one `O(n + k)` pass (each run tuple lands
    /// *after* existing equal-timestamp tuples, preserving arrival-order
    /// ties), and for commutative functions the run folds into one lifted
    /// partial combined with a single ⊕ instead of k separate ⊕ steps.
    /// Non-commutative functions recompute once instead of k times.
    pub fn add_out_of_order_run(&mut self, f: &A, run: &[(Time, A::Input)]) {
        let (Some(&(first_ts, _)), Some(&(last_ts, _))) = (run.first(), run.last()) else {
            return;
        };
        debug_assert!(run.windows(2).all(|w| w[0].0 <= w[1].0), "run not sorted");
        let commutative = f.properties().commutative;
        if let Some(tuples) = &mut self.tuples {
            if first_ts >= self.t_last {
                // The whole run follows every stored tuple (ties included:
                // equal timestamps append after, matching the per-tuple
                // stable insert).
                tuples.extend_from_slice(run);
            } else {
                // One merge pass; run tuples go after stored equal-ts ones.
                let mut merged = Vec::with_capacity(tuples.len() + run.len());
                let mut it = run.iter();
                let mut next = it.next();
                for old in tuples.drain(..) {
                    while let Some(&(ts, ref v)) = next {
                        if ts < old.0 {
                            merged.push((ts, v.clone()));
                            next = it.next();
                        } else {
                            break;
                        }
                    }
                    merged.push(old);
                }
                while let Some(&(ts, ref v)) = next {
                    merged.push((ts, v.clone()));
                    next = it.next();
                }
                *tuples = merged;
            }
        } else {
            debug_assert!(
                commutative,
                "non-commutative out-of-order insert requires stored tuples (Figure 4)"
            );
        }
        self.t_first = self.t_first.min(first_ts);
        self.t_last = self.t_last.max(last_ts);
        self.n_tuples += run.len();
        if commutative {
            if let Some(p) = fold_run(f, run) {
                self.agg = Some(match self.agg.take() {
                    None => p,
                    Some(a) => f.combine(a, &p),
                });
            }
        } else {
            self.recompute(f);
        }
    }

    /// Owned-run variant of [`Slice::add_out_of_order_run`]: identical
    /// semantics, but the run's values are **moved** into tuple storage
    /// instead of cloned — the zero-copy path for deferred late buffers
    /// whose tuples are owned by the caller and not needed afterwards.
    pub fn add_out_of_order_run_owned(&mut self, f: &A, mut run: Vec<(Time, A::Input)>) {
        let (Some(&(first_ts, _)), Some(&(last_ts, _))) = (run.first(), run.last()) else {
            return;
        };
        debug_assert!(run.windows(2).all(|w| w[0].0 <= w[1].0), "run not sorted");
        let n = run.len();
        let commutative = f.properties().commutative;
        // Fold the aggregate by reference before the values move away.
        let folded = if commutative { fold_run(f, &run) } else { None };
        if let Some(tuples) = &mut self.tuples {
            if first_ts >= self.t_last {
                tuples.append(&mut run);
            } else {
                // One merge pass, moving run values; run tuples land after
                // stored equal-timestamp ones (stable, as per tuple).
                let mut merged = Vec::with_capacity(tuples.len() + run.len());
                let mut it = run.drain(..).peekable();
                for old in tuples.drain(..) {
                    while let Some(t) = it.next_if(|&(ts, _)| ts < old.0) {
                        merged.push(t);
                    }
                    merged.push(old);
                }
                merged.extend(it);
                *tuples = merged;
            }
        } else {
            debug_assert!(
                commutative,
                "non-commutative out-of-order insert requires stored tuples (Figure 4)"
            );
        }
        self.t_first = self.t_first.min(first_ts);
        self.t_last = self.t_last.max(last_ts);
        self.n_tuples += n;
        if let Some(p) = folded {
            self.agg = Some(match self.agg.take() {
                None => p,
                Some(a) => f.combine(a, &p),
            });
        } else {
            self.recompute(f);
        }
    }

    /// Merges a pre-folded partial of out-of-order tuples (minimum
    /// timestamp `t_first`, maximum `t_last`, `n` tuples) with a single ⊕.
    /// Only valid without tuple storage and for commutative functions:
    /// nothing then observes the order late tuples were folded in, so the
    /// caller may group them by covering slice without sorting.
    pub fn add_out_of_order_partial(
        &mut self,
        f: &A,
        partial: A::Partial,
        t_first: Time,
        t_last: Time,
        n: usize,
    ) {
        debug_assert!(self.tuples.is_none(), "partial-only insert requires dropped tuples");
        debug_assert!(
            f.properties().commutative,
            "partial-only insert requires a commutative function"
        );
        self.t_first = self.t_first.min(t_first);
        self.t_last = self.t_last.max(t_last);
        self.n_tuples += n;
        self.agg = Some(match self.agg.take() {
            None => partial,
            Some(a) => f.combine(a, &partial),
        });
    }

    /// Adds a tuple moved here by the count shift (Figure 6). Unlike
    /// [`Slice::add_out_of_order`], the tuple is inserted *before* any
    /// stored tuple with an equal timestamp: it comes from the predecessor
    /// slice, so its count position precedes everything already here.
    pub fn add_shifted(&mut self, f: &A, ts: Time, value: A::Input) {
        let commutative = f.properties().commutative;
        if let Some(tuples) = &mut self.tuples {
            let pos = tuples.partition_point(|(t, _)| *t < ts);
            tuples.insert(pos, (ts, value.clone()));
        } else {
            debug_assert!(commutative, "shifts require stored tuples (Figure 4)");
        }
        self.t_first = self.t_first.min(ts);
        self.t_last = self.t_last.max(ts);
        self.n_tuples += 1;
        if commutative {
            let lifted = f.lift(&value);
            self.agg = Some(match self.agg.take() {
                None => lifted,
                Some(a) => f.combine(a, &lifted),
            });
        } else {
            self.recompute(f);
        }
    }

    /// Recomputes the aggregate from the stored tuples (the expensive path
    /// used by splits and non-commutative updates). Panics if tuples are
    /// not stored — the decision logic (Figure 4) guarantees they are
    /// whenever a recomputation can be required.
    pub fn recompute(&mut self, f: &A) {
        let tuples = self
            .tuples
            .as_ref()
            .expect("recompute requires stored tuples; decision logic should have kept them");
        self.agg = f.lift_all(tuples.iter().map(|(_, v)| v));
        self.n_tuples = tuples.len();
        self.t_first = tuples.first().map_or(TIME_MAX, |(t, _)| *t);
        self.t_last = tuples.last().map_or(TIME_MIN, |(t, _)| *t);
    }

    /// Removes and returns the latest tuple. Used by the count-measure
    /// shift (Figure 6): invertible functions pay one ⊖ step, everything
    /// else recomputes from stored tuples.
    ///
    /// Returns `None` if the slice is empty. Panics if tuples are not
    /// stored (removals always require them, Figure 4).
    pub fn remove_last(&mut self, f: &A) -> Option<(Time, A::Input)> {
        let tuples = self
            .tuples
            .as_mut()
            .expect("tuple removal requires stored tuples; decision logic should have kept them");
        let (ts, value) = tuples.pop()?;
        self.n_tuples -= 1;
        if self.n_tuples == 0 {
            self.agg = None;
            self.t_first = TIME_MAX;
            self.t_last = TIME_MIN;
            return Some((ts, value));
        }
        self.t_last = tuples.last().map_or(TIME_MIN, |(t, _)| *t);
        let removed = f.lift(&value);
        let inverted = self.agg.take().and_then(|a| {
            if f.properties().invertible {
                f.invert(a, &removed)
            } else {
                None
            }
        });
        match inverted {
            Some(p) => self.agg = Some(p),
            None => self.recompute(f),
        }
        Some((ts, value))
    }

    /// Merges `other` (the immediate successor slice) into `self`:
    /// 1. `t_end(self) ← t_end(other)`
    /// 2. `agg ← agg ⊕ other.agg`
    /// 3. `other` is consumed.
    pub fn merge(&mut self, f: &A, other: Slice<A>) {
        debug_assert_eq!(
            self.range.end, other.range.start,
            "merge requires adjacent slices ({} then {})",
            self.range, other.range
        );
        self.range.end = other.range.end;
        self.agg = f.combine_opt(self.agg.take(), other.agg.as_ref());
        self.t_first = self.t_first.min(other.t_first);
        self.t_last = self.t_last.max(other.t_last);
        self.n_tuples += other.n_tuples;
        match (&mut self.tuples, other.tuples) {
            (Some(a), Some(b)) => a.extend(b),
            (None, None) => {}
            _ => unreachable!("tuple storage must be uniform across slices"),
        }
    }

    /// Splits the slice at `t`: `self` becomes `[start, t)` and the
    /// returned slice covers `[t, end)`.
    ///
    /// Fast paths (no recomputation, used by session windows): if `t` is
    /// beyond `t_last` all tuples stay left; if `t` is at or before
    /// `t_first` all tuples move right. Otherwise both aggregates are
    /// recomputed from stored tuples — the expensive operation the paper
    /// benchmarks in Figure 15.
    pub fn split(&mut self, f: &A, t: Time) -> Slice<A> {
        debug_assert!(
            t > self.range.start && t < self.range.end,
            "split point {t} must fall strictly inside {}",
            self.range
        );
        let right_range = Range::new(t, self.range.end);
        self.range.end = t;
        if t > self.t_last {
            // All tuples remain in the left part; right is empty.
            return Slice::new_with_storage(right_range, self.tuples.is_some());
        }
        if t <= self.t_first {
            // All tuples move to the right part; left becomes empty.
            let mut right = Slice {
                range: right_range,
                t_first: self.t_first,
                t_last: self.t_last,
                n_tuples: self.n_tuples,
                agg: self.agg.take(),
                tuples: self.tuples.as_mut().map(std::mem::take),
            };
            // `tuples` of self must stay Some(vec![]) when storage is on.
            if right.tuples.is_none() && self.tuples.is_some() {
                right.tuples = Some(Vec::new());
            }
            self.t_first = TIME_MAX;
            self.t_last = TIME_MIN;
            self.n_tuples = 0;
            self.agg = None;
            return right;
        }
        // Genuine split through stored tuples: recompute both sides.
        let tuples =
            self.tuples.as_mut().expect("split through tuples requires stored tuples (Figure 4)");
        let pos = tuples.partition_point(|(ts, _)| *ts < t);
        let right_tuples: Vec<(Time, A::Input)> = tuples.split_off(pos);
        let mut right = Slice {
            range: right_range,
            t_first: TIME_MAX,
            t_last: TIME_MIN,
            n_tuples: 0,
            agg: None,
            tuples: Some(right_tuples),
        };
        self.recompute(f);
        right.recompute(f);
        right
    }

    fn new_with_storage(range: Range, keep_tuples: bool) -> Self {
        Slice::new(range, keep_tuples)
    }

    /// Drops stored tuples (used when a query removal makes storage
    /// unnecessary). The aggregate is kept.
    pub fn drop_tuples(&mut self) {
        self.tuples = None;
    }

    /// Starts storing tuples from now on. Only valid on slices that are
    /// still empty — the paper's adaptivity re-derives the decision when
    /// queries change, and new slices pick up the new policy.
    pub fn enable_tuple_storage(&mut self) {
        debug_assert!(self.is_empty(), "cannot enable tuple storage retroactively");
        if self.tuples.is_none() {
            self.tuples = Some(Vec::new());
        }
    }
}

impl<A: AggregateFunction> HeapSize for Slice<A> {
    fn heap_bytes(&self) -> usize {
        self.agg.as_ref().map_or(0, |p| p.heap_bytes())
            + self.tuples.as_ref().map_or(0, |t| t.heap_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::{Concat, SumI64, SumNoInvert};

    fn slice_with(f: &SumI64, range: Range, keep: bool, tuples: &[(Time, i64)]) -> Slice<SumI64> {
        let mut s = Slice::new(range, keep);
        for (ts, v) in tuples {
            s.add_in_order(f, *ts, *v);
        }
        s
    }

    #[test]
    fn empty_slice_has_no_aggregate() {
        let s: Slice<SumI64> = Slice::new(Range::new(0, 10), false);
        assert!(s.is_empty());
        assert!(s.aggregate().is_none());
        assert_eq!(s.t_first(), TIME_MAX);
        assert_eq!(s.t_last(), TIME_MIN);
    }

    #[test]
    fn in_order_adds_accumulate() {
        let f = SumI64;
        let s = slice_with(&f, Range::new(0, 10), false, &[(1, 5), (3, 7), (9, 1)]);
        assert_eq!(s.aggregate(), Some(&13));
        assert_eq!(s.len(), 3);
        assert_eq!(s.t_first(), 1);
        assert_eq!(s.t_last(), 9);
    }

    #[test]
    fn first_last_need_not_match_boundaries() {
        // Paper's own example: slice [1,10) with t_first=2, t_last=9.
        let f = SumI64;
        let s = slice_with(&f, Range::new(1, 10), false, &[(2, 1), (9, 1)]);
        assert_eq!(s.start(), 1);
        assert_eq!(s.end(), 10);
        assert_eq!(s.t_first(), 2);
        assert_eq!(s.t_last(), 9);
    }

    #[test]
    fn ooo_add_commutative_is_incremental() {
        let f = SumI64;
        let mut s = slice_with(&f, Range::new(0, 10), false, &[(2, 5), (8, 7)]);
        s.add_out_of_order(&f, 4, 100);
        assert_eq!(s.aggregate(), Some(&112));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn ooo_add_non_commutative_recomputes_in_event_time_order() {
        let f = Concat;
        let mut s: Slice<Concat> = Slice::new(Range::new(0, 10), true);
        s.add_in_order(&f, 2, 20);
        s.add_in_order(&f, 8, 80);
        s.add_out_of_order(&f, 4, 40);
        // Event-time order must be retained despite arrival order 20,80,40.
        assert_eq!(s.aggregate(), Some(&vec![20, 40, 80]));
    }

    #[test]
    fn ooo_tie_breaks_by_arrival_order() {
        let f = Concat;
        let mut s: Slice<Concat> = Slice::new(Range::new(0, 10), true);
        s.add_in_order(&f, 5, 1);
        s.add_in_order(&f, 7, 3);
        s.add_out_of_order(&f, 5, 2); // same ts as first tuple, arrived later
        assert_eq!(s.aggregate(), Some(&vec![1, 2, 3]));
    }

    #[test]
    fn columnar_run_matches_tuple_run() {
        let f = SumI64;
        for keep in [false, true] {
            let run: Vec<(Time, i64)> = (0..40).map(|i| (i * 2, i * 3 + 1)).collect();
            let (times, values): (Vec<Time>, Vec<i64>) = run.iter().copied().unzip();
            let mut a: Slice<SumI64> = Slice::new(Range::new(0, 100), keep);
            let mut b = a.clone();
            a.add_run(&f, &run);
            b.add_run_columns(&f, &times, &values);
            assert_eq!(a.aggregate(), b.aggregate());
            assert_eq!(a.len(), b.len());
            assert_eq!(a.t_first(), b.t_first());
            assert_eq!(a.t_last(), b.t_last());
            assert_eq!(a.tuples(), b.tuples());
        }
        // Empty columns are a no-op.
        let mut s: Slice<SumI64> = Slice::new(Range::new(0, 100), false);
        s.add_run_columns(&f, &[], &[]);
        assert!(s.is_empty());
    }

    #[test]
    fn ooo_run_matches_per_tuple_adds() {
        let f = SumI64;
        for keep in [false, true] {
            let mut a = slice_with(&f, Range::new(0, 100), keep, &[(10, 1), (50, 5), (90, 9)]);
            let mut b = a.clone();
            let run = [(5, 50), (10, 100), (10, 101), (55, 2), (95, 3)];
            for (ts, v) in run {
                a.add_out_of_order(&f, ts, v);
            }
            b.add_out_of_order_run(&f, &run);
            assert_eq!(a.aggregate(), b.aggregate());
            assert_eq!(a.len(), b.len());
            assert_eq!(a.t_first(), b.t_first());
            assert_eq!(a.t_last(), b.t_last());
            assert_eq!(a.tuples(), b.tuples());
        }
    }

    #[test]
    fn ooo_run_owned_matches_borrowed_run() {
        for keep in [false, true] {
            let f = SumI64;
            let mut a = slice_with(&f, Range::new(0, 100), keep, &[(10, 1), (50, 5), (90, 9)]);
            let mut b = a.clone();
            let run = [(5, 50), (10, 100), (10, 101), (55, 2), (95, 3)];
            a.add_out_of_order_run(&f, &run);
            b.add_out_of_order_run_owned(&f, run.to_vec());
            assert_eq!(a.aggregate(), b.aggregate());
            assert_eq!(a.len(), b.len());
            assert_eq!(a.t_first(), b.t_first());
            assert_eq!(a.t_last(), b.t_last());
            assert_eq!(a.tuples(), b.tuples());
            // Append-only fast path (run entirely past t_last).
            let tail = [(95, 7), (99, 8)];
            a.add_out_of_order_run(&f, &tail);
            b.add_out_of_order_run_owned(&f, tail.to_vec());
            assert_eq!(a.tuples(), b.tuples());
            assert_eq!(a.aggregate(), b.aggregate());
        }
        // Non-commutative: owned merge must keep event-time order + ties.
        let f = Concat;
        let mut s: Slice<Concat> = Slice::new(Range::new(0, 100), true);
        s.add_in_order(&f, 20, 20);
        s.add_in_order(&f, 80, 80);
        s.add_out_of_order_run_owned(&f, vec![(10, 10), (20, 21), (50, 50)]);
        assert_eq!(s.aggregate(), Some(&vec![10, 20, 21, 50, 80]));
        s.add_out_of_order_run_owned(&f, Vec::new());
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn ooo_run_appends_when_past_t_last() {
        let f = SumI64;
        let mut s = slice_with(&f, Range::new(0, 100), true, &[(10, 1), (20, 2)]);
        s.add_out_of_order_run(&f, &[(20, 200), (30, 3)]);
        // The tied (20, 200) lands after the stored (20, 2).
        assert_eq!(s.tuples(), Some(&[(10, 1), (20, 2), (20, 200), (30, 3)][..]));
        assert_eq!(s.aggregate(), Some(&206));
    }

    #[test]
    fn ooo_run_non_commutative_recomputes_in_event_time_order() {
        let f = Concat;
        let mut s: Slice<Concat> = Slice::new(Range::new(0, 100), true);
        s.add_in_order(&f, 20, 20);
        s.add_in_order(&f, 80, 80);
        s.add_out_of_order_run(&f, &[(10, 10), (20, 21), (50, 50)]);
        // Event-time order with arrival-order ties: 21 follows the stored 20.
        assert_eq!(s.aggregate(), Some(&vec![10, 20, 21, 50, 80]));
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn ooo_run_into_empty_slice() {
        let f = SumI64;
        let mut s: Slice<SumI64> = Slice::new(Range::new(0, 100), true);
        s.add_out_of_order_run(&f, &[(3, 3), (7, 7)]);
        assert_eq!(s.aggregate(), Some(&10));
        assert_eq!(s.t_first(), 3);
        assert_eq!(s.t_last(), 7);
        s.add_out_of_order_run(&f, &[]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn merge_combines_aggregates_and_metadata() {
        let f = SumI64;
        let mut a = slice_with(&f, Range::new(0, 10), false, &[(1, 1), (9, 2)]);
        let b = slice_with(&f, Range::new(10, 20), false, &[(12, 10)]);
        a.merge(&f, b);
        assert_eq!(a.range(), Range::new(0, 20));
        assert_eq!(a.aggregate(), Some(&13));
        assert_eq!(a.len(), 3);
        assert_eq!(a.t_first(), 1);
        assert_eq!(a.t_last(), 12);
    }

    #[test]
    fn merge_with_empty_keeps_aggregate() {
        let f = SumI64;
        let mut a = slice_with(&f, Range::new(0, 10), false, &[(1, 7)]);
        let b: Slice<SumI64> = Slice::new(Range::new(10, 20), false);
        a.merge(&f, b);
        assert_eq!(a.aggregate(), Some(&7));
        assert_eq!(a.end(), 20);
    }

    #[test]
    fn merge_preserves_order_for_non_commutative() {
        let f = Concat;
        let mut a: Slice<Concat> = Slice::new(Range::new(0, 10), true);
        a.add_in_order(&f, 1, 1);
        let mut b: Slice<Concat> = Slice::new(Range::new(10, 20), true);
        b.add_in_order(&f, 11, 2);
        a.merge(&f, b);
        assert_eq!(a.aggregate(), Some(&vec![1, 2]));
    }

    #[test]
    fn split_through_tuples_recomputes_both_sides() {
        let f = SumI64;
        let mut s = slice_with(&f, Range::new(0, 10), true, &[(1, 1), (4, 4), (8, 8)]);
        let right = s.split(&f, 5);
        assert_eq!(s.range(), Range::new(0, 5));
        assert_eq!(right.range(), Range::new(5, 10));
        assert_eq!(s.aggregate(), Some(&5));
        assert_eq!(right.aggregate(), Some(&8));
        assert_eq!(s.len(), 2);
        assert_eq!(right.len(), 1);
    }

    #[test]
    fn split_at_tuple_timestamp_puts_tuple_right() {
        // Windows are [start, end): a tuple exactly at the split point
        // belongs to the right slice.
        let f = SumI64;
        let mut s = slice_with(&f, Range::new(0, 10), true, &[(2, 2), (5, 5)]);
        let right = s.split(&f, 5);
        assert_eq!(s.aggregate(), Some(&2));
        assert_eq!(right.aggregate(), Some(&5));
    }

    #[test]
    fn split_after_last_tuple_is_free_even_without_stored_tuples() {
        // The session-window fast path: no recomputation, works on
        // aggregate-only slices.
        let f = SumI64;
        let mut s = slice_with(&f, Range::new(0, 10), false, &[(1, 1), (3, 3)]);
        let right = s.split(&f, 7);
        assert_eq!(s.aggregate(), Some(&4));
        assert!(right.is_empty());
        assert_eq!(right.range(), Range::new(7, 10));
    }

    #[test]
    fn split_before_first_tuple_moves_everything_right() {
        let f = SumI64;
        let mut s = slice_with(&f, Range::new(0, 10), true, &[(6, 6), (8, 8)]);
        let right = s.split(&f, 4);
        assert!(s.is_empty());
        assert_eq!(s.aggregate(), None);
        assert_eq!(right.aggregate(), Some(&14));
        assert_eq!(right.len(), 2);
        assert!(right.keeps_tuples());
        assert!(s.keeps_tuples());
    }

    #[test]
    fn remove_last_with_invert_is_incremental() {
        let f = SumI64;
        let mut s = slice_with(&f, Range::new(0, 10), true, &[(1, 1), (4, 4), (8, 8)]);
        let removed = s.remove_last(&f);
        assert_eq!(removed, Some((8, 8)));
        assert_eq!(s.aggregate(), Some(&5));
        assert_eq!(s.t_last(), 4);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn remove_last_without_invert_recomputes() {
        let f = SumNoInvert;
        let mut s: Slice<SumNoInvert> = Slice::new(Range::new(0, 10), true);
        s.add_in_order(&f, 1, 1);
        s.add_in_order(&f, 4, 4);
        s.add_in_order(&f, 8, 8);
        assert_eq!(s.remove_last(&f), Some((8, 8)));
        assert_eq!(s.aggregate(), Some(&5));
    }

    #[test]
    fn remove_last_empties_slice() {
        let f = SumI64;
        let mut s = slice_with(&f, Range::new(0, 10), true, &[(1, 1)]);
        assert_eq!(s.remove_last(&f), Some((1, 1)));
        assert!(s.is_empty());
        assert!(s.aggregate().is_none());
        assert_eq!(s.remove_last(&f), None);
    }

    #[test]
    fn heap_size_reflects_tuple_storage() {
        let f = SumI64;
        let no_tuples = slice_with(&f, Range::new(0, 10), false, &[(1, 1), (2, 2)]);
        let with_tuples = slice_with(&f, Range::new(0, 10), true, &[(1, 1), (2, 2)]);
        assert!(with_tuples.heap_bytes() > no_tuples.heap_bytes());
    }
}
