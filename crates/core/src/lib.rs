//! # General Stream Slicing — core
//!
//! A from-scratch Rust implementation of *general stream slicing* for
//! efficient streaming window aggregation (Traub et al., EDBT 2019). The
//! core crate provides:
//!
//! * the [`Slice`](slice::Slice) abstraction with the three fundamental
//!   operations **merge**, **split**, and **update** (paper Section 5.2),
//! * the [`SliceStore`](store::SliceStore) aggregate store with lazy and
//!   eager (FlatFAT-indexed) variants,
//! * the [`WindowOperator`](operator::WindowOperator) combining the Stream
//!   Slicer, Slice Manager, and Window Manager of paper Figure 7,
//! * the workload-characteristics decision logic of Figures 4–6
//!   ([`characteristics`]),
//! * the extension traits for user-defined aggregate functions
//!   ([`function::AggregateFunction`]) and window types
//!   ([`window::WindowFunction`]).
//!
//! Aggregate-function implementations live in `gss-aggregates`, window
//! types in `gss-windows`, the baseline techniques the paper compares
//! against in `gss-baselines`, and a tuple-at-a-time dataflow runtime in
//! `gss-stream`.
//!
//! ## Quick example
//!
//! ```
//! use gss_core::operator::{OperatorConfig, WindowOperator};
//! use gss_core::testsupport::SumI64;
//! use gss_core::time::{Measure, Range, Time};
//! use gss_core::window::{ContextClass, WindowFunction};
//!
//! // A minimal tumbling window of length 10 (real window types live in
//! // `gss-windows`).
//! #[derive(Clone)]
//! struct Tumbling;
//! impl WindowFunction for Tumbling {
//!     fn measure(&self) -> Measure { Measure::Time }
//!     fn context(&self) -> ContextClass { ContextClass::ContextFree }
//!     fn next_edge(&self, ts: Time) -> Option<Time> { Some((ts.div_euclid(10) + 1) * 10) }
//!     fn next_window_end(&self, ts: Time) -> Option<Time> { self.next_edge(ts) }
//!     fn trigger_windows(&mut self, p: Time, c: Time, out: &mut dyn FnMut(Range)) {
//!         let mut e = (p.div_euclid(10) + 1) * 10;
//!         while e <= c { out(Range::new(e - 10, e)); e += 10; }
//!     }
//!     fn windows_containing(&self, ts: Time, out: &mut dyn FnMut(Range)) {
//!         let s = ts.div_euclid(10) * 10;
//!         out(Range::new(s, s + 10));
//!     }
//!     fn max_extent(&self) -> i64 { 10 }
//!     fn clone_box(&self) -> Box<dyn WindowFunction> { Box::new(self.clone()) }
//! }
//!
//! let mut op = WindowOperator::new(SumI64, OperatorConfig::in_order());
//! op.add_query(Box::new(Tumbling)).unwrap();
//! let mut out = Vec::new();
//! for ts in [1, 4, 9, 11, 15, 21] {
//!     op.process_tuple(ts, ts, &mut out);
//! }
//! // Window [0, 10) summed 1 + 4 + 9, window [10, 20) summed 11 + 15.
//! assert_eq!(out.len(), 2);
//! assert_eq!(out[0].value, 14);
//! assert_eq!(out[1].value, 26);
//! ```

pub mod aggregator;
#[macro_use]
pub mod audit;
pub mod cast;
pub mod characteristics;
pub mod element;
pub mod fiba;
pub mod flatfat;
pub mod function;
pub mod hash;
pub mod keyed;
pub mod mem;
pub mod operator;
pub mod result;
pub mod slice;
pub mod store;
pub mod testsupport;
pub mod time;
pub mod timeline;
pub mod window;

pub use aggregator::{in_order_run_len, WindowAggregator};
pub use characteristics::{RemovalStrategy, WorkloadCharacteristics};
pub use element::StreamElement;
pub use fiba::FingerTree;
pub use flatfat::FlatFat;
pub use function::{
    default_fold_slice, kernel_eligible, pair_kernel_eligible, AggregateFunction, FunctionKind,
    FunctionProperties, FOLD_KERNEL_MIN_RUN,
};
pub use hash::{fx_hash_u64, FxBuildHasher, FxHashMap, FxHasher};
pub use keyed::{KeyedConfig, KeyedStats, KeyedWindowOperator, NaiveKeyedOperator, PerKey};
pub use mem::HeapSize;
pub use operator::{
    merge_partials_tree, OperatorConfig, OperatorStats, QueryError, SlicePartial, WindowOperator,
};
pub use result::WindowResult;
pub use slice::{fold_run, Slice};
pub use store::{SliceStore, StorePolicy};
pub use time::{Count, Measure, Range, StreamOrder, Time, Watermark, TIME_MAX, TIME_MIN};
pub use timeline::{SliceMeta, Timeline};
pub use window::{ContextClass, ContextEdges, Query, QueryId, WindowFunction};
