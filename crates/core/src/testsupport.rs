//! Tiny aggregate functions used by the core's own tests and doctests.
//!
//! Real, user-facing aggregations live in `gss-aggregates` (which depends on
//! this crate); the core needs a couple of minimal functions with known
//! algebraic properties to test the slicing machinery in isolation.

use crate::function::{AggregateFunction, FunctionKind, FunctionProperties};

/// Commutative, invertible integer sum. Partial = running sum.
#[derive(Debug, Clone, Copy, Default)]
pub struct SumI64;

impl AggregateFunction for SumI64 {
    type Input = i64;
    type Partial = i64;
    type Output = i64;

    fn lift(&self, v: &i64) -> i64 {
        *v
    }
    fn combine(&self, a: i64, b: &i64) -> i64 {
        a + b
    }
    fn lower(&self, p: &i64) -> i64 {
        *p
    }
    fn invert(&self, a: i64, b: &i64) -> Option<i64> {
        Some(a - b)
    }
    fn properties(&self) -> FunctionProperties {
        FunctionProperties { commutative: true, invertible: true, kind: FunctionKind::Distributive }
    }
}

/// Integer sum with invertibility deliberately *not* declared — the "sum
/// w/o invert" baseline of paper Figure 13.
#[derive(Debug, Clone, Copy, Default)]
pub struct SumNoInvert;

impl AggregateFunction for SumNoInvert {
    type Input = i64;
    type Partial = i64;
    type Output = i64;

    fn lift(&self, v: &i64) -> i64 {
        *v
    }
    fn combine(&self, a: i64, b: &i64) -> i64 {
        a + b
    }
    fn lower(&self, p: &i64) -> i64 {
        *p
    }
    fn properties(&self) -> FunctionProperties {
        FunctionProperties {
            commutative: true,
            invertible: false,
            kind: FunctionKind::Distributive,
        }
    }
}

/// Order-preserving concatenation: associative but **non-commutative** and
/// non-invertible. The partial is the ordered list of inputs, so tests can
/// assert that slicing preserved aggregation order exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct Concat;

impl AggregateFunction for Concat {
    type Input = i64;
    type Partial = Vec<i64>;
    type Output = Vec<i64>;

    fn lift(&self, v: &i64) -> Vec<i64> {
        vec![*v]
    }
    fn combine(&self, mut a: Vec<i64>, b: &Vec<i64>) -> Vec<i64> {
        a.extend_from_slice(b);
        a
    }
    fn lower(&self, p: &Vec<i64>) -> Vec<i64> {
        p.clone()
    }
    fn properties(&self) -> FunctionProperties {
        FunctionProperties { commutative: false, invertible: false, kind: FunctionKind::Holistic }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_inverts() {
        let s = SumI64;
        let ab = s.combine(s.lift(&3), &s.lift(&4));
        assert_eq!(s.invert(ab, &4), Some(3));
    }

    #[test]
    fn concat_preserves_order() {
        let c = Concat;
        let ab = c.combine(c.lift(&1), &c.lift(&2));
        let ba = c.combine(c.lift(&2), &c.lift(&1));
        assert_ne!(ab, ba);
        assert_eq!(ab, vec![1, 2]);
    }

    #[test]
    fn sum_no_invert_declares_correctly() {
        assert!(!SumNoInvert.properties().invertible);
        assert_eq!(SumNoInvert.invert(5, &2), None);
    }
}

/// A minimal tumbling window for core-internal tests (real window types
/// live in `gss-windows`, which depends on this crate).
#[derive(Debug, Clone, Copy)]
pub struct TumblingStub {
    pub length: crate::time::Time,
}

impl crate::window::WindowFunction for TumblingStub {
    fn measure(&self) -> crate::time::Measure {
        crate::time::Measure::Time
    }
    fn context(&self) -> crate::window::ContextClass {
        crate::window::ContextClass::ContextFree
    }
    fn next_edge(&self, ts: crate::time::Time) -> Option<crate::time::Time> {
        Some((ts.div_euclid(self.length) + 1) * self.length)
    }
    fn next_window_end(&self, ts: crate::time::Time) -> Option<crate::time::Time> {
        self.next_edge(ts)
    }
    fn prev_edge(&self, ts: crate::time::Time) -> Option<crate::time::Time> {
        Some(ts.div_euclid(self.length) * self.length)
    }
    fn has_static_edges(&self) -> bool {
        true
    }
    fn requires_edge_at(&self, e: crate::time::Time) -> bool {
        e.rem_euclid(self.length) == 0
    }
    fn trigger_windows(
        &mut self,
        prev: crate::time::Time,
        cur: crate::time::Time,
        out: &mut dyn FnMut(crate::time::Range),
    ) {
        let mut e = (prev.div_euclid(self.length) + 1) * self.length;
        while e <= cur {
            out(crate::time::Range::new(e - self.length, e));
            e += self.length;
        }
    }
    fn windows_containing(&self, ts: crate::time::Time, out: &mut dyn FnMut(crate::time::Range)) {
        let s = ts.div_euclid(self.length) * self.length;
        out(crate::time::Range::new(s, s + self.length));
    }
    fn max_extent(&self) -> i64 {
        self.length
    }
    fn clone_box(&self) -> Box<dyn crate::window::WindowFunction> {
        Box::new(*self)
    }
}
