//! FlatFAT: a flat fixed-size aggregate tree (Tangwongsan et al. [42]).
//!
//! A complete binary tree stored in one array whose leaves are partial
//! aggregates and whose inner nodes combine their children **in leaf
//! order**, so non-commutative functions remain correct. The slicing core
//! uses it over *slices* (eager slicing, Table 1 rows 6/8); the baseline
//! aggregate tree uses it over *tuples* (Table 1 row 2).
//!
//! Complexity: `update`/`push` are `O(log n)`; `query` is `O(log n)`
//! combine steps; `insert`/`remove` in the middle shift leaves and rebuild
//! affected ancestors, costing `O(n)` — which is exactly why out-of-order
//! tuples hurt aggregate trees on tuples (paper Section 6.2.2) but rarely
//! hurt eager slicing (inserts land in an existing slice, not a new leaf).
//!
//! For batched out-of-order ingestion the tree also supports *deferred*
//! repair: [`FlatFat::update_deferred`] / [`FlatFat::push_deferred`] write
//! leaves without walking their ancestors and record them in a dirty set;
//! one [`FlatFat::repair_dirty`] call then recomputes the ancestors of the
//! whole dirty frontier level by level. `m` deferred writes cost `m` leaf
//! stores plus `O(m · log(n / m) + m)` combine steps in one repair, versus
//! `m · O(log n)` for eager updates — shared ancestors are recomputed once.

use crate::function::AggregateFunction;
use crate::mem::HeapSize;

/// Order-preserving aggregate tree over `A::Partial` leaves.
#[derive(Clone)]
pub struct FlatFat<A: AggregateFunction> {
    f: A,
    /// Number of live leaves.
    len: usize,
    /// Leaf capacity; always a power of two and >= 1.
    cap: usize,
    /// `2 * cap` nodes; node 1 is the root, leaves start at `cap`.
    /// Index 0 is unused.
    nodes: Vec<Option<A::Partial>>,
    /// Leaf indices whose ancestors are stale (deferred-repair writes).
    /// Unsorted and possibly duplicated; [`FlatFat::repair_dirty`] dedups.
    dirty: Vec<usize>,
}

impl<A: AggregateFunction> FlatFat<A> {
    /// Creates an empty tree.
    pub fn new(f: A) -> Self {
        Self::with_capacity(f, 1)
    }

    /// Creates an empty tree with room for `capacity` leaves.
    pub fn with_capacity(f: A, capacity: usize) -> Self {
        let cap = capacity.max(1).next_power_of_two();
        FlatFat { f, len: 0, cap, nodes: vec![None; 2 * cap], dirty: Vec::new() }
    }

    /// Number of leaves.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The aggregate of all leaves (the root), `None` when empty.
    pub fn total(&self) -> Option<&A::Partial> {
        debug_assert!(self.dirty.is_empty(), "total() on a dirty tree; call repair_dirty() first");
        self.nodes[1].as_ref()
    }

    /// The leaf at `i`.
    pub fn leaf(&self, i: usize) -> Option<&A::Partial> {
        assert!(i < self.len, "leaf index {i} out of bounds (len {})", self.len);
        self.nodes[self.cap + i].as_ref()
    }

    /// Appends a leaf at the end, growing capacity if needed.
    pub fn push(&mut self, p: Option<A::Partial>) {
        if self.len == self.cap {
            self.grow(self.cap * 2);
        }
        let i = self.len;
        self.len += 1;
        self.nodes[self.cap + i] = p;
        self.fix_ancestors(i);
    }

    /// Replaces the leaf at `i` and repairs its ancestors: `O(log n)`.
    pub fn update(&mut self, i: usize, p: Option<A::Partial>) {
        assert!(i < self.len, "leaf index {i} out of bounds (len {})", self.len);
        self.nodes[self.cap + i] = p;
        self.fix_ancestors(i);
    }

    /// Replaces the leaf at `i` **without** repairing its ancestors,
    /// recording it in the dirty set instead. The tree is inconsistent
    /// until [`FlatFat::repair_dirty`] runs; queries assert on that.
    pub fn update_deferred(&mut self, i: usize, p: Option<A::Partial>) {
        assert!(i < self.len, "leaf index {i} out of bounds (len {})", self.len);
        self.nodes[self.cap + i] = p;
        self.mark_dirty(i);
    }

    /// Appends a leaf **without** repairing its ancestors (deferred bulk
    /// append). Growth rebuilds the whole tree and therefore clears the
    /// dirty set; otherwise the new leaf joins the dirty frontier.
    pub fn push_deferred(&mut self, p: Option<A::Partial>) {
        if self.len == self.cap {
            self.grow(self.cap * 2);
        }
        let i = self.len;
        self.len += 1;
        self.nodes[self.cap + i] = p;
        self.mark_dirty(i);
    }

    /// Records leaf `i` as having a stale ancestor path. Use after writing
    /// the leaf through some other channel; pairs with
    /// [`FlatFat::repair_dirty`].
    pub fn mark_dirty(&mut self, i: usize) {
        debug_assert!(i < self.len, "leaf index {i} out of bounds (len {})", self.len);
        self.dirty.push(i);
    }

    /// Whether deferred writes are pending repair.
    #[inline]
    pub fn has_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Recomputes the ancestors of every dirty leaf, level by level from
    /// the leaves up. Each internal node on the dirty frontier is combined
    /// exactly once, so `m` dirty leaves cost `O(m · log(n / m) + m)`
    /// combine steps in total instead of `m` separate `O(log n)` walks.
    pub fn repair_dirty(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        // Map leaves to their parents; the frontier stays at a uniform
        // depth because all leaves live on one level of the complete tree.
        let cap = self.cap;
        let mut frontier = std::mem::take(&mut self.dirty);
        for i in frontier.iter_mut() {
            *i = (cap + *i) / 2;
        }
        frontier.sort_unstable();
        frontier.dedup();
        frontier.retain(|&i| i >= 1); // cap == 1: the leaf is the root
        while !frontier.is_empty() {
            for &i in &frontier {
                self.nodes[i] = self.combine_children(i);
            }
            if frontier[0] == 1 {
                break;
            }
            for i in frontier.iter_mut() {
                *i /= 2;
            }
            frontier.dedup();
        }
        #[cfg(feature = "audit")]
        self.assert_invariants();
    }

    /// Dense structural checks for the audit build: the node array is
    /// shaped like a complete tree, spare leaves are vacant, no repair
    /// is pending, and internal-node presence is consistent with the
    /// children (partials carry no equality, so presence is the
    /// strongest checkable property).
    #[cfg(feature = "audit")]
    pub fn assert_invariants(&self) {
        assert!(self.cap.is_power_of_two(), "capacity {} not a power of two", self.cap);
        assert_eq!(self.nodes.len(), 2 * self.cap, "node array out of shape");
        assert!(self.len <= self.cap, "len {} exceeds capacity {}", self.len, self.cap);
        assert!(self.dirty.is_empty(), "dirty leaves survived repair");
        for i in self.len..self.cap {
            assert!(self.nodes[self.cap + i].is_none(), "spare leaf {i} is occupied");
        }
        for i in 1..self.cap {
            let children = self.nodes[2 * i].is_some() || self.nodes[2 * i + 1].is_some();
            assert_eq!(
                self.nodes[i].is_some(),
                children,
                "internal node {i} presence inconsistent with its children"
            );
        }
    }

    /// Inserts a leaf at `i`, shifting later leaves right: `O(n)`.
    pub fn insert(&mut self, i: usize, p: Option<A::Partial>) {
        assert!(i <= self.len, "insert index {i} out of bounds (len {})", self.len);
        if self.len == self.cap {
            self.grow(self.cap * 2);
        }
        // Shift leaves [i, len) one position right, then rebuild the
        // ancestors of the touched suffix.
        let base = self.cap;
        for j in (i..self.len).rev() {
            self.nodes[base + j + 1] = self.nodes[base + j].take();
        }
        self.nodes[base + i] = p;
        self.len += 1;
        self.rebuild_internal();
    }

    /// Removes the leaf at `i`, shifting later leaves left: `O(n)`.
    pub fn remove(&mut self, i: usize) -> Option<A::Partial> {
        assert!(i < self.len, "leaf index {i} out of bounds (len {})", self.len);
        let base = self.cap;
        let removed = self.nodes[base + i].take();
        for j in i..self.len - 1 {
            self.nodes[base + j] = self.nodes[base + j + 1].take();
        }
        self.nodes[base + self.len - 1] = None;
        self.len -= 1;
        self.rebuild_internal();
        removed
    }

    /// Removes the first `k` leaves (eviction of expired slices): `O(n)`.
    pub fn remove_prefix(&mut self, k: usize) {
        assert!(k <= self.len, "prefix {k} exceeds len {}", self.len);
        let base = self.cap;
        for j in 0..self.len - k {
            self.nodes[base + j] = self.nodes[base + j + k].take();
        }
        for j in self.len - k..self.len {
            self.nodes[base + j] = None;
        }
        self.len -= k;
        self.rebuild_internal();
    }

    /// Order-preserving range query over leaves `[l, r)`: combines the
    /// covered leaves left-to-right in `O(log n)` combine steps.
    pub fn query(&self, l: usize, r: usize) -> Option<A::Partial> {
        assert!(l <= r && r <= self.len, "invalid query range [{l}, {r}) of len {}", self.len);
        debug_assert!(self.dirty.is_empty(), "query() on a dirty tree; call repair_dirty() first");
        let mut left_acc: Option<A::Partial> = None;
        let mut right_acc: Option<A::Partial> = None;
        let mut lo = self.cap + l;
        let mut hi = self.cap + r;
        while lo < hi {
            if lo & 1 == 1 {
                left_acc = self.f.combine_opt(left_acc, self.nodes[lo].as_ref());
                lo += 1;
            }
            if hi & 1 == 1 {
                hi -= 1;
                right_acc = self.f.combine_opt(self.nodes[hi].clone(), right_acc.as_ref());
            }
            lo >>= 1;
            hi >>= 1;
        }
        self.f.combine_opt(left_acc, right_acc.as_ref())
    }

    /// Rebuilds the whole tree from the given leaves.
    pub fn rebuild_from<I>(&mut self, leaves: I)
    where
        I: IntoIterator<Item = Option<A::Partial>>,
    {
        let leaves: Vec<Option<A::Partial>> = leaves.into_iter().collect();
        let cap = leaves.len().max(1).next_power_of_two();
        self.len = leaves.len();
        self.cap = cap;
        self.nodes = vec![None; 2 * cap];
        self.dirty.clear();
        self.nodes[cap..cap + self.len]
            .iter_mut()
            .zip(leaves)
            .for_each(|(slot, leaf)| *slot = leaf);
        for i in (1..cap).rev() {
            self.nodes[i] = self.combine_children(i);
        }
    }

    fn grow(&mut self, new_cap: usize) {
        self.dirty.clear(); // the full rebuild below repairs everything
        let leaves: Vec<Option<A::Partial>> = self.nodes[self.cap..self.cap + self.len].to_vec();
        let len = self.len;
        self.cap = new_cap.next_power_of_two();
        self.nodes = vec![None; 2 * self.cap];
        self.len = len;
        self.nodes[self.cap..self.cap + len]
            .iter_mut()
            .zip(leaves)
            .for_each(|(slot, leaf)| *slot = leaf);
        for i in (1..self.cap).rev() {
            self.nodes[i] = self.combine_children(i);
        }
    }

    #[inline]
    fn combine_children(&self, i: usize) -> Option<A::Partial> {
        self.f.combine_opt(self.nodes[2 * i].clone(), self.nodes[2 * i + 1].as_ref())
    }

    fn fix_ancestors(&mut self, leaf: usize) {
        let mut i = (self.cap + leaf) / 2;
        while i >= 1 {
            self.nodes[i] = self.combine_children(i);
            i /= 2;
        }
    }

    /// Recomputes every internal node bottom-up. Used after leaf shifts;
    /// those operations are `O(n)` regardless, so a full internal rebuild
    /// keeps them simple without changing their complexity class.
    fn rebuild_internal(&mut self) {
        self.dirty.clear(); // every internal node is recomputed below
        for i in (1..self.cap).rev() {
            self.nodes[i] = self.combine_children(i);
        }
    }
}

impl<A: AggregateFunction> HeapSize for FlatFat<A> {
    fn heap_bytes(&self) -> usize {
        self.nodes.heap_bytes() + self.dirty.capacity() * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::{Concat, SumI64};

    fn tree_with(values: &[i64]) -> FlatFat<SumI64> {
        let mut t = FlatFat::new(SumI64);
        for v in values {
            t.push(Some(*v));
        }
        t
    }

    #[test]
    fn empty_tree_totals_none() {
        let t = FlatFat::new(SumI64);
        assert!(t.is_empty());
        assert_eq!(t.total(), None);
        assert_eq!(t.query(0, 0), None);
    }

    #[test]
    fn push_maintains_root() {
        let t = tree_with(&[1, 2, 3, 4, 5]);
        assert_eq!(t.len(), 5);
        assert_eq!(t.total(), Some(&15));
    }

    #[test]
    fn query_matches_linear_scan_on_all_ranges() {
        let values: Vec<i64> = (0..37).map(|i| i * i - 3).collect();
        let t = tree_with(&values);
        for l in 0..=values.len() {
            for r in l..=values.len() {
                let expect: i64 = values[l..r].iter().sum();
                let got = t.query(l, r).unwrap_or(0);
                assert_eq!(got, expect, "range [{l}, {r})");
            }
        }
    }

    #[test]
    fn query_preserves_order_for_non_commutative() {
        let mut t = FlatFat::new(Concat);
        for v in 0..13 {
            t.push(Some(vec![v]));
        }
        for l in 0..=13usize {
            for r in l..=13usize {
                let expect: Vec<i64> = (l as i64..r as i64).collect();
                let got = t.query(l, r).unwrap_or_default();
                assert_eq!(got, expect, "range [{l}, {r})");
            }
        }
    }

    #[test]
    fn update_changes_results() {
        let mut t = tree_with(&[1, 2, 3, 4]);
        t.update(2, Some(30));
        assert_eq!(t.total(), Some(&37));
        assert_eq!(t.query(2, 3), Some(30));
        t.update(0, None);
        assert_eq!(t.total(), Some(&36));
    }

    #[test]
    fn insert_shifts_leaves() {
        let mut t = tree_with(&[1, 2, 4]);
        t.insert(2, Some(3));
        assert_eq!(t.len(), 4);
        assert_eq!(t.leaf(2), Some(&3));
        assert_eq!(t.leaf(3), Some(&4));
        assert_eq!(t.total(), Some(&10));
        t.insert(0, Some(100));
        assert_eq!(t.leaf(0), Some(&100));
        assert_eq!(t.total(), Some(&110));
    }

    #[test]
    fn remove_shifts_leaves() {
        let mut t = tree_with(&[1, 2, 3, 4, 5]);
        assert_eq!(t.remove(1), Some(2));
        assert_eq!(t.len(), 4);
        assert_eq!(t.total(), Some(&13));
        assert_eq!(t.query(0, 2), Some(4)); // 1 + 3
    }

    #[test]
    fn remove_prefix_evicts() {
        let mut t = tree_with(&[1, 2, 3, 4, 5]);
        t.remove_prefix(3);
        assert_eq!(t.len(), 2);
        assert_eq!(t.total(), Some(&9));
        assert_eq!(t.leaf(0), Some(&4));
        t.remove_prefix(2);
        assert!(t.is_empty());
        assert_eq!(t.total(), None);
    }

    #[test]
    fn growth_preserves_content() {
        let mut t = FlatFat::with_capacity(SumI64, 2);
        for v in 0..100i64 {
            t.push(Some(v));
        }
        assert_eq!(t.total(), Some(&4950));
        assert_eq!(t.query(10, 20), Some((10..20).sum::<i64>()));
    }

    #[test]
    fn rebuild_from_replaces_content() {
        let mut t = tree_with(&[9, 9, 9]);
        t.rebuild_from((0..8).map(Some));
        assert_eq!(t.len(), 8);
        assert_eq!(t.total(), Some(&28));
    }

    #[test]
    fn none_leaves_are_neutral() {
        let mut t = FlatFat::new(SumI64);
        t.push(Some(5));
        t.push(None);
        t.push(Some(7));
        assert_eq!(t.total(), Some(&12));
        assert_eq!(t.query(1, 2), None);
        assert_eq!(t.query(0, 2), Some(5));
    }

    #[test]
    fn deferred_update_then_repair_matches_eager() {
        let mut eager = tree_with(&[1, 2, 3, 4, 5, 6, 7]);
        let mut deferred = tree_with(&[1, 2, 3, 4, 5, 6, 7]);
        for (i, v) in [(0usize, 10i64), (3, 40), (6, 70), (3, 41)] {
            eager.update(i, Some(v));
            deferred.update_deferred(i, Some(v));
        }
        assert!(deferred.has_dirty());
        deferred.repair_dirty();
        assert!(!deferred.has_dirty());
        for l in 0..=7usize {
            for r in l..=7usize {
                assert_eq!(eager.query(l, r), deferred.query(l, r), "range [{l}, {r})");
            }
        }
        assert_eq!(eager.total(), deferred.total());
    }

    #[test]
    fn push_deferred_bulk_append_matches_push() {
        let mut a = FlatFat::new(SumI64);
        let mut b = FlatFat::new(SumI64);
        for v in 0..100i64 {
            a.push(Some(v));
            b.push_deferred(Some(v));
        }
        b.repair_dirty();
        assert_eq!(a.total(), b.total());
        assert_eq!(a.query(13, 77), b.query(13, 77));
    }

    #[test]
    fn repair_dirty_preserves_order_for_non_commutative() {
        let mut t = FlatFat::new(Concat);
        for v in 0..9 {
            t.push(Some(vec![v]));
        }
        t.update_deferred(2, Some(vec![20]));
        t.update_deferred(7, Some(vec![70]));
        t.repair_dirty();
        assert_eq!(t.query(0, 9), Some(vec![0, 1, 20, 3, 4, 5, 6, 70, 8]));
    }

    #[test]
    fn repair_dirty_on_clean_tree_is_noop() {
        let mut t = tree_with(&[1, 2, 3]);
        assert!(!t.has_dirty());
        t.repair_dirty();
        assert_eq!(t.total(), Some(&6));
    }

    #[test]
    fn single_leaf_tree_has_no_ancestors() {
        let mut t = FlatFat::new(SumI64);
        t.push_deferred(Some(42));
        t.repair_dirty();
        assert_eq!(t.total(), Some(&42));
        t.update_deferred(0, Some(7));
        t.repair_dirty();
        assert_eq!(t.total(), Some(&7));
    }

    #[test]
    fn structural_ops_clear_dirty() {
        let mut t = tree_with(&[1, 2, 3, 4]);
        t.update_deferred(1, Some(20));
        t.insert(0, Some(100)); // full rebuild repairs everything
        assert!(!t.has_dirty());
        assert_eq!(t.total(), Some(&128));
        t.update_deferred(0, Some(0));
        t.remove(0);
        assert!(!t.has_dirty());
        assert_eq!(t.total(), Some(&28));
    }

    #[test]
    fn randomized_against_linear_scan() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        // Deterministic pseudo-random ops without external crates.
        let mut rng_state = 0xDEADBEEFu64;
        let mut next = move |bound: usize| {
            let mut h = DefaultHasher::new();
            rng_state.hash(&mut h);
            rng_state = h.finish();
            (rng_state % bound.max(1) as u64) as usize
        };
        let mut t = FlatFat::new(SumI64);
        let mut model: Vec<Option<i64>> = Vec::new();
        for step in 0..500 {
            match next(4) {
                0 => {
                    let v = step as i64;
                    t.push(Some(v));
                    model.push(Some(v));
                }
                1 if !model.is_empty() => {
                    let i = next(model.len());
                    let v = (step * 7) as i64;
                    t.update(i, Some(v));
                    model[i] = Some(v);
                }
                2 if !model.is_empty() => {
                    let i = next(model.len());
                    t.remove(i);
                    model.remove(i);
                }
                _ => {
                    let i = next(model.len() + 1);
                    let v = -(step as i64);
                    t.insert(i, Some(v));
                    model.insert(i, Some(v));
                }
            }
            let l = next(model.len() + 1);
            let r = l + next(model.len() - l + 1);
            let expect = model[l..r].iter().flatten().copied().reduce(|a, b| a + b);
            assert_eq!(t.query(l, r), expect, "step {step} range [{l},{r})");
            let total = model.iter().flatten().copied().reduce(|a, b| a + b);
            assert_eq!(t.total().copied(), total, "step {step} total");
        }
    }
}
