//! The shared slice timeline: window-edge boundary math decoupled from
//! aggregate storage.
//!
//! For time-measure, context-free windows with **static edges**
//! ([`WindowFunction::has_static_edges`]), slice boundaries are a pure
//! function of the query set — every observer derives the same `[start,
//! end)` spans without coordination. The keyed operator exploits this to
//! share one boundary list across all keys; the intra-query parallel path
//! exploits it so N workers pre-aggregate disjoint sub-streams into
//! identical per-slice partials that a merge stage can `combine`.
//!
//! Slices are addressed by a *global index* (`base + position`) that stays
//! stable across front eviction, so consumers holding dense rings of
//! per-slice state need no fixups when the timeline advances. Stability
//! holds only within one [`Timeline::generation`]: once eviction empties
//! the timeline, the next slice re-anchors the index↔time map at its own
//! timestamp, and indices from the previous generation must be discarded.
//!
//! [`WindowFunction::has_static_edges`]: crate::window::WindowFunction::has_static_edges

use std::collections::VecDeque;

use crate::cast;
use crate::time::{Range, Time, TIME_MAX, TIME_MIN};
use crate::window::Query;

/// One shared slice: a half-open `[start, end)` span bounded by window
/// edges. Unlike [`crate::slice::Slice`] it holds **no aggregate** — those
/// live with whoever aligns state to the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceMeta {
    pub start: Time,
    pub end: Time,
}

/// The shared, contiguous slice timeline (see module docs).
#[derive(Debug, Default, Clone)]
pub struct Timeline {
    slices: VecDeque<SliceMeta>,
    /// Global index of `slices[0]`. Increases on eviction, decreases when
    /// a late tuple forces a prepend.
    base: i64,
    /// Bumped every time the timeline regrows from empty. Global indices
    /// are only comparable *within* one generation: an empty timeline has
    /// lost its anchor, so the next slice re-anchors the index↔time map
    /// wherever its timestamp lands. Consumers caching per-slice state
    /// keyed by global index must drop it when the generation changes.
    generation: u64,
}

impl Timeline {
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// Global index of the slice at position 0.
    pub fn base(&self) -> i64 {
        self.base
    }

    /// The current anchor generation. Global indices obtained under a
    /// different generation are meaningless against this timeline (see
    /// the field docs); consumers must discard state keyed by them.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Slice metadata at `position` (an index into the live span, not a
    /// global index).
    pub fn get(&self, position: usize) -> SliceMeta {
        self.slices[position]
    }

    /// Drops all slices and resets the global numbering. Boundary math is
    /// stateless, so a cleared timeline regrows exact spans on demand —
    /// used by parallel workers that ship their state off after a flush.
    pub fn clear(&mut self) {
        self.slices.clear();
        self.base = 0;
    }

    /// Earliest next edge strictly after `ts` across all queries.
    pub fn union_next_edge(queries: &[Query], ts: Time) -> Time {
        let mut e = TIME_MAX;
        for q in queries {
            if let Some(n) = q.window.next_edge(ts) {
                e = e.min(n);
            }
        }
        debug_assert!(e > ts, "next edge must be strictly after ts");
        e
    }

    /// Latest edge at or before `ts` across all queries.
    pub fn union_prev_edge(queries: &[Query], ts: Time) -> Time {
        let mut e = TIME_MIN;
        for q in queries {
            if let Some(p) = q.window.prev_edge(ts) {
                e = e.max(p);
            }
        }
        debug_assert!(e <= ts, "prev edge must be at or before ts");
        e
    }

    /// Extends the timeline (in either direction) so some slice covers
    /// `ts`, and returns that slice's **position** (index into the live
    /// span). Increments `slices_created` once per slice added.
    pub fn ensure_covering(
        &mut self,
        ts: Time,
        queries: &[Query],
        slices_created: &mut u64,
    ) -> usize {
        if self.slices.is_empty() {
            // Rebirth: the first slice anchors the index↔time map anew,
            // at whatever `base` eviction left behind — the old numbering
            // no longer means anything, so start a new generation.
            self.generation += 1;
            let start = Self::union_prev_edge(queries, ts);
            let end = Self::union_next_edge(queries, ts);
            self.slices.push_back(SliceMeta { start, end });
            *slices_created += 1;
            return 0;
        }
        while let Some(start) = self.slices.back().map(|s| s.end) {
            if ts < start {
                break;
            }
            let end = Self::union_next_edge(queries, start);
            self.slices.push_back(SliceMeta { start, end });
            *slices_created += 1;
        }
        while let Some(end) = self.slices.front().map(|s| s.start) {
            if ts >= end {
                break;
            }
            let start = Self::union_prev_edge(queries, end - 1);
            debug_assert!(start < end);
            self.slices.push_front(SliceMeta { start, end });
            self.base -= 1;
            *slices_created += 1;
        }
        // The loops above extended coverage to include `ts`.
        let pos = self.pos_covering(ts);
        debug_assert!(pos.is_some(), "timeline extended to cover ts");
        #[cfg(feature = "audit")]
        self.assert_invariants();
        pos.unwrap_or(0)
    }

    /// Dense structural checks for the audit build: every slice is
    /// non-empty and the timeline is contiguous (each slice starts where
    /// its predecessor ends), so global indices map 1:1 onto disjoint
    /// covering time ranges.
    #[cfg(feature = "audit")]
    pub fn assert_invariants(&self) {
        let mut prev_end: Option<Time> = None;
        for s in &self.slices {
            assert!(s.start < s.end, "slice [{}, {}) empty or inverted", s.start, s.end);
            if let Some(pe) = prev_end {
                assert_eq!(
                    pe, s.start,
                    "timeline gap: predecessor ends {pe}, slice starts {}",
                    s.start
                );
            }
            prev_end = Some(s.end);
        }
    }

    /// Position of the slice covering `ts`, if any.
    pub fn pos_covering(&self, ts: Time) -> Option<usize> {
        let (front, back) = (self.slices.front()?, self.slices.back()?);
        if ts < front.start || ts >= back.end {
            return None;
        }
        // Largest position whose start <= ts; slices are contiguous.
        let pos = self.slices.partition_point(|s| s.start <= ts);
        debug_assert!(pos > 0);
        Some(pos - 1)
    }

    /// Maps a window `[range.start, range.end)` to the inclusive-exclusive
    /// global slice index span it covers, clamped to current coverage.
    /// `None` if the window doesn't overlap the timeline at all.
    pub fn global_range(&self, range: Range) -> Option<(i64, i64)> {
        let first = self.slices.front()?;
        let last = self.slices.back()?;
        if range.end <= first.start || range.start >= last.end {
            return None;
        }
        let lo_pos = if range.start <= first.start {
            0
        } else {
            // Guarded above: first.start < range.start < last.end.
            let pos = self.pos_covering(range.start);
            debug_assert!(pos.is_some(), "start within coverage");
            pos.unwrap_or(0)
        };
        // Exclusive upper bound: first slice whose start >= range.end.
        let hi_pos = self.slices.partition_point(|s| s.start < range.end);
        debug_assert!(hi_pos > lo_pos);
        Some((self.base + cast::to_i64(lo_pos), self.base + cast::to_i64(hi_pos)))
    }

    /// Drops slices that end at or before `boundary`; keeps global
    /// numbering monotone by advancing `base`.
    pub fn evict_to(&mut self, boundary: Time) {
        while let Some(front) = self.slices.front() {
            if front.end <= boundary {
                self.slices.pop_front();
                self.base += 1;
            } else {
                break;
            }
        }
        #[cfg(feature = "audit")]
        self.assert_invariants();
    }

    pub fn heap_bytes(&self) -> usize {
        self.slices.capacity() * std::mem::size_of::<SliceMeta>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::WindowFunction;
    use crate::{ContextClass, Measure};

    #[derive(Clone)]
    struct Tumble(Time);
    impl WindowFunction for Tumble {
        fn measure(&self) -> Measure {
            Measure::Time
        }
        fn context(&self) -> ContextClass {
            ContextClass::ContextFree
        }
        fn next_edge(&self, ts: Time) -> Option<Time> {
            Some((ts.div_euclid(self.0) + 1) * self.0)
        }
        fn prev_edge(&self, ts: Time) -> Option<Time> {
            Some(ts.div_euclid(self.0) * self.0)
        }
        fn next_window_end(&self, ts: Time) -> Option<Time> {
            self.next_edge(ts)
        }
        fn has_static_edges(&self) -> bool {
            true
        }
        fn trigger_windows(&mut self, p: Time, c: Time, out: &mut dyn FnMut(Range)) {
            let mut e = (p.div_euclid(self.0) + 1) * self.0;
            while e <= c {
                out(Range::new(e - self.0, e));
                e += self.0;
            }
        }
        fn windows_containing(&self, ts: Time, out: &mut dyn FnMut(Range)) {
            let s = ts.div_euclid(self.0) * self.0;
            out(Range::new(s, s + self.0));
        }
        fn max_extent(&self) -> i64 {
            self.0
        }
        fn clone_box(&self) -> Box<dyn WindowFunction> {
            Box::new(self.clone())
        }
    }

    fn queries() -> Vec<Query> {
        vec![Query::new(0, Box::new(Tumble(10))), Query::new(1, Box::new(Tumble(15)))]
    }

    #[test]
    fn covering_grows_both_directions() {
        let qs = queries();
        let mut t = Timeline::default();
        let mut created = 0u64;
        let pos = t.ensure_covering(17, &qs, &mut created);
        // Union edges of tumble(10) and tumble(15) around 17: [15, 20).
        assert_eq!(t.get(pos), SliceMeta { start: 15, end: 20 });
        let before = t.base();
        let pos2 = t.ensure_covering(3, &qs, &mut created);
        assert_eq!(t.get(pos2), SliceMeta { start: 0, end: 10 });
        assert!(t.base() < before, "prepend must lower the base");
        let pos3 = t.ensure_covering(42, &qs, &mut created);
        assert_eq!(t.get(pos3), SliceMeta { start: 40, end: 45 });
        assert_eq!(created, t.len() as u64);
        // Contiguity: every neighbor pair shares an edge.
        for i in 1..t.len() {
            assert_eq!(t.get(i - 1).end, t.get(i).start);
        }
    }

    #[test]
    fn boundaries_are_deterministic_across_instances() {
        // Two independent timelines fed disjoint timestamp subsets must
        // agree on every span they both cover — the property the parallel
        // workers rely on.
        let qs = queries();
        let (mut a, mut b) = (Timeline::default(), Timeline::default());
        let mut c = 0u64;
        for ts in [3, 17, 42, 8, 29] {
            let p = a.ensure_covering(ts, &qs, &mut c);
            let q = b.ensure_covering(ts, &qs, &mut c);
            assert_eq!(a.get(p), b.get(q));
        }
    }

    #[test]
    fn clear_resets_and_regrows_exact_spans() {
        let qs = queries();
        let mut t = Timeline::default();
        let mut c = 0u64;
        let pos = t.ensure_covering(17, &qs, &mut c);
        let span = t.get(pos);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.base(), 0);
        let pos = t.ensure_covering(17, &qs, &mut c);
        assert_eq!(t.get(pos), span);
    }

    #[test]
    fn rebirth_bumps_generation_and_reanchors_indices() {
        let qs = queries();
        let mut t = Timeline::default();
        let mut c = 0u64;
        t.ensure_covering(17, &qs, &mut c);
        let gen = t.generation();
        // Growth and partial eviction keep the anchor.
        t.ensure_covering(42, &qs, &mut c);
        t.evict_to(20);
        assert_eq!(t.generation(), gen);
        let id_42 = t.base() + t.pos_covering(42).unwrap() as i64;
        // Evicting to empty loses the anchor; the regrown timeline may
        // reuse old indices for different times, so the generation bumps.
        t.evict_to(TIME_MAX);
        assert!(t.is_empty());
        assert_eq!(t.generation(), gen, "emptying alone keeps the generation");
        let pos = t.ensure_covering(1_000, &qs, &mut c);
        assert!(t.generation() > gen, "rebirth must start a new generation");
        let id_1000 = t.base() + pos as i64;
        // The stale index for 42 now sits below the new anchor entirely
        // by accident of eviction order — the point is it is meaningless.
        assert_ne!(id_42, id_1000);
    }

    #[test]
    fn evict_advances_base() {
        let qs = queries();
        let mut t = Timeline::default();
        let mut c = 0u64;
        t.ensure_covering(0, &qs, &mut c);
        t.ensure_covering(55, &qs, &mut c);
        let len = t.len();
        t.evict_to(30);
        assert!(t.len() < len);
        assert_eq!(t.base(), (len - t.len()) as i64);
        assert!(t.get(0).end > 30);
    }
}
