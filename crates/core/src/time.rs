//! Time and measure primitives.
//!
//! The paper (Section 4.3) defines windows over different *measures*: event
//! time, processing time, arbitrary advancing measures, and tuple counts. A
//! "timestamp" is any monotonically increasing measure; we represent all of
//! them as [`Time`] (`i64`). Count-based measures use [`Count`] (`u64`)
//! positions in event-time order.

/// A point on an advancing measure (event time, processing time, transaction
/// counter, ...). Milliseconds in all examples, but the framework never
/// assumes a unit.
pub type Time = i64;

/// A position on the count measure: the number of tuples with a strictly
/// smaller event time (ties broken by arrival order).
pub type Count = u64;

/// Sentinel for "no timestamp yet" / minus infinity.
pub const TIME_MIN: Time = i64::MIN;
/// Sentinel for plus infinity.
pub const TIME_MAX: Time = i64::MAX;

/// The windowing measure a query is defined on (paper Section 4.3).
///
/// Arbitrary advancing measures are processed identically to event time
/// (Section 6.3.4: "the throughput for arbitrary advancing measures is the
/// same as for time-based measures because they are processed identically"),
/// so they share the `Time` variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Measure {
    /// Event-time / processing-time / arbitrary advancing measure.
    Time,
    /// Tuple-count measure. Out-of-order tuples shift the counts of all
    /// succeeding tuples (Section 4.3).
    Count,
}

/// A half-open interval `[start, end)` on some measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Range {
    pub start: Time,
    pub end: Time,
}

impl Range {
    /// Creates `[start, end)`. Panics in debug builds if `end < start`.
    #[inline]
    pub fn new(start: Time, end: Time) -> Self {
        debug_assert!(end >= start, "invalid range [{start}, {end})");
        Range { start, end }
    }

    /// Number of measure units covered.
    #[inline]
    pub fn len(&self) -> i64 {
        self.end - self.start
    }

    /// True iff the interval covers no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// True iff `ts` lies in `[start, end)`.
    #[inline]
    pub fn contains(&self, ts: Time) -> bool {
        ts >= self.start && ts < self.end
    }

    /// True iff the two half-open intervals share at least one point.
    #[inline]
    pub fn overlaps(&self, other: &Range) -> bool {
        self.start < other.end && other.start < self.end
    }
}

impl crate::mem::HeapSize for Range {
    #[inline]
    fn heap_bytes(&self) -> usize {
        0
    }
}

impl std::fmt::Display for Range {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// A low-watermark: a promise that no tuple with `ts < watermark` will
/// arrive, except for *allowed-lateness* stragglers which trigger output
/// updates (paper Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Watermark(pub Time);

/// Stream order declaration for an input stream (workload characteristic 1,
/// paper Section 4.1). This is a property of the *stream contract*, not of
/// individual tuples: an out-of-order stream may still deliver mostly
/// in-order tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamOrder {
    /// Every tuple satisfies `t_e(s_x) >= t_e(s_y)` for all `y < x`.
    /// Windows are emitted directly; no watermarks are needed.
    InOrder,
    /// Tuples may arrive late; output waits for watermarks and late tuples
    /// within the allowed lateness produce output updates.
    OutOfOrder,
}

impl StreamOrder {
    #[inline]
    pub fn is_in_order(self) -> bool {
        matches!(self, StreamOrder::InOrder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_contains_is_half_open() {
        let r = Range::new(10, 20);
        assert!(r.contains(10));
        assert!(r.contains(19));
        assert!(!r.contains(20));
        assert!(!r.contains(9));
    }

    #[test]
    fn range_len_and_empty() {
        assert_eq!(Range::new(5, 9).len(), 4);
        assert!(Range::new(5, 5).is_empty());
        assert!(!Range::new(5, 6).is_empty());
    }

    #[test]
    fn range_overlap_excludes_touching_intervals() {
        let a = Range::new(0, 10);
        let b = Range::new(10, 20);
        let c = Range::new(9, 11);
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn watermarks_order_by_time() {
        assert!(Watermark(5) < Watermark(6));
        assert_eq!(Watermark(5), Watermark(5));
    }

    #[test]
    fn stream_order_predicate() {
        assert!(StreamOrder::InOrder.is_in_order());
        assert!(!StreamOrder::OutOfOrder.is_in_order());
    }
}
