//! Window results emitted by aggregation operators.

use crate::time::{Measure, Range};
use crate::window::QueryId;

/// One emitted window aggregate.
///
/// `range` is expressed in the query's [`Measure`]: timestamps for
/// time-measure windows, absolute tuple counts for count-measure windows.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowResult<O> {
    /// The query that produced this window.
    pub query: QueryId,
    /// The measure `range` is expressed in.
    pub measure: Measure,
    /// The window bounds `[start, end)`.
    pub range: Range,
    /// The lowered (final) aggregate.
    pub value: O,
    /// `true` when this result revises a window that was already emitted —
    /// an out-of-order tuple arrived after the watermark but within the
    /// allowed lateness (paper Section 5.3, Step 3, case 1), or a context
    /// change revealed a window ending before the current watermark
    /// (case 2).
    pub is_update: bool,
}

impl<O> WindowResult<O> {
    pub fn new(query: QueryId, measure: Measure, range: Range, value: O) -> Self {
        WindowResult { query, measure, range, value, is_update: false }
    }

    pub fn update(query: QueryId, measure: Measure, range: Range, value: O) -> Self {
        WindowResult { query, measure, range, value, is_update: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_update_flag() {
        let r = WindowResult::new(1, Measure::Time, Range::new(0, 10), 5i64);
        assert!(!r.is_update);
        let u = WindowResult::update(1, Measure::Time, Range::new(0, 10), 6i64);
        assert!(u.is_update);
    }
}
