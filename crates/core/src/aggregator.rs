//! The common facade implemented by every window-aggregation technique.
//!
//! The paper compares general stream slicing against tuple buffers,
//! aggregate trees, buckets, Pairs, and Cutty (Section 3 / Section 6). All
//! of them — and the general slicing operator itself — implement
//! [`WindowAggregator`], so the benchmark harness and the dataflow substrate
//! can swap techniques freely.

use crate::function::AggregateFunction;
use crate::result::WindowResult;
use crate::time::Time;

/// A drop-in window aggregation operator: feed it tuples and watermarks, it
/// emits window aggregates. Output semantics are identical across
/// techniques (the paper's generality requirement: "general stream slicing
/// replaces alternative operators for window aggregation without changing
/// their input or output semantics").
pub trait WindowAggregator<A: AggregateFunction>: Send {
    /// Processes one stream tuple. Results (if any windows completed on an
    /// in-order stream) are appended to `out`.
    fn process(&mut self, ts: Time, value: A::Input, out: &mut Vec<WindowResult<A::Output>>);

    /// Processes a batch of stream tuples. Semantically identical to
    /// calling [`process`](WindowAggregator::process) once per tuple in
    /// order — same results, same emission points — but implementations
    /// may amortize per-tuple overhead over runs of consecutive tuples
    /// (the batched ingestion fast path). The default simply loops.
    fn process_batch(
        &mut self,
        batch: &[(Time, A::Input)],
        out: &mut Vec<WindowResult<A::Output>>,
    ) {
        for (ts, value) in batch {
            self.process(*ts, value.clone(), out);
        }
    }

    /// Processes a batch delivered struct-of-arrays: parallel `times` /
    /// `values` columns of equal length. Semantically identical to
    /// [`process_batch`](WindowAggregator::process_batch) over the zipped
    /// pairs; implementations that fold runs in bulk override it to keep
    /// the contiguous values column flowing straight into their fold
    /// kernel. The default re-materializes pairs and delegates, so
    /// techniques that only optimized `process_batch` keep their fast
    /// path.
    fn process_batch_columns(
        &mut self,
        times: &[Time],
        values: &[A::Input],
        out: &mut Vec<WindowResult<A::Output>>,
    ) {
        debug_assert_eq!(times.len(), values.len(), "SoA batch length mismatch");
        let batch: Vec<(Time, A::Input)> =
            times.iter().copied().zip(values.iter().cloned()).collect();
        self.process_batch(&batch, out);
    }

    /// Bulk-fold attribution counters as `(kernel_runs, fallback_runs)`:
    /// how many folded runs went through a hand-written
    /// [`AggregateFunction::fold_slice`] kernel versus the default
    /// lift/combine loop. Techniques without bulk folding report zeros.
    fn fold_stats(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Processes a watermark: emits every window that ended at or before
    /// `wm` and evicts expired state.
    fn on_watermark(&mut self, wm: Time, out: &mut Vec<WindowResult<A::Output>>);

    /// Processes a stream punctuation marking a window boundary at `ts`
    /// (forward-context-free windows, paper Section 4.4). Only techniques
    /// that support punctuation windows react; the default ignores it, so
    /// punctuations are harmless to every other technique.
    fn on_punctuation(&mut self, ts: Time, out: &mut Vec<WindowResult<A::Output>>) {
        let _ = (ts, out);
    }

    /// Total bytes of operator state (deterministic deep size, the
    /// substitution for the paper's `ObjectSizeCalculator` measurements).
    fn memory_bytes(&self) -> usize;

    /// Technique name for reports ("Lazy Slicing", "Buckets", ...).
    fn name(&self) -> &'static str;

    /// Convenience wrapper allocating a fresh result vector.
    fn process_collect(&mut self, ts: Time, value: A::Input) -> Vec<WindowResult<A::Output>> {
        let mut out = Vec::new();
        self.process(ts, value, &mut out);
        out
    }

    /// Convenience wrapper allocating a fresh result vector.
    fn watermark_collect(&mut self, wm: Time) -> Vec<WindowResult<A::Output>> {
        let mut out = Vec::new();
        self.on_watermark(wm, &mut out);
        out
    }
}

/// Length of the longest prefix of `batch[start..]` that forms an
/// in-order run: timestamps non-decreasing, starting at or above `floor`,
/// and strictly below `bound`, capped at `cap` tuples. The shared
/// run-detection core of every technique's batched fast path — callers
/// derive `floor` from their high-water mark and `bound` from the nearest
/// state change (slice edge, pane end, window completion) so that a whole
/// run can be folded with one state touch and exact per-tuple semantics.
pub fn in_order_run_len<V>(
    batch: &[(Time, V)],
    start: usize,
    floor: Time,
    bound: Time,
    cap: usize,
) -> usize {
    let cap = cap.min(batch.len() - start);
    let mut prev = floor;
    let mut n = 0;
    while n < cap {
        let ts = batch[start + n].0;
        if ts < prev || ts >= bound {
            break;
        }
        prev = ts;
        n += 1;
    }
    n
}
