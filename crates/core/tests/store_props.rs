//! Property tests for the core data structures: FlatFAT against a linear
//! model, the slice store against a reference implementation, and slice
//! operations against recomputation from scratch.

use gss_core::testsupport::{Concat, SumI64};
use gss_core::{AggregateFunction, FingerTree, FlatFat, Range, Slice, SliceStore, StorePolicy};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum TreeOp {
    Push(i64),
    Update(usize, i64),
    Insert(usize, i64),
    Remove(usize),
    Query(usize, usize),
}

fn tree_ops() -> impl Strategy<Value = Vec<TreeOp>> {
    prop::collection::vec(
        prop_oneof![
            (-100i64..100).prop_map(TreeOp::Push),
            (0usize..64, -100i64..100).prop_map(|(i, v)| TreeOp::Update(i, v)),
            (0usize..64, -100i64..100).prop_map(|(i, v)| TreeOp::Insert(i, v)),
            (0usize..64).prop_map(TreeOp::Remove),
            (0usize..64, 0usize..64).prop_map(|(l, r)| TreeOp::Query(l, r)),
        ],
        1..200,
    )
}

#[derive(Debug, Clone)]
enum FingerOp {
    Push(i64),
    Update(usize, i64),
    UpdateDeferred(usize, i64),
    Insert(usize, i64),
    Remove(usize),
    RemovePrefix(usize),
    Query(usize, usize),
}

fn finger_ops() -> impl Strategy<Value = Vec<FingerOp>> {
    prop::collection::vec(
        prop_oneof![
            (-100i64..100).prop_map(FingerOp::Push),
            (0usize..64, -100i64..100).prop_map(|(i, v)| FingerOp::Update(i, v)),
            (0usize..64, -100i64..100).prop_map(|(i, v)| FingerOp::UpdateDeferred(i, v)),
            (0usize..64, -100i64..100).prop_map(|(i, v)| FingerOp::Insert(i, v)),
            (0usize..64).prop_map(FingerOp::Remove),
            (0usize..64).prop_map(FingerOp::RemovePrefix),
            (0usize..64, 0usize..64).prop_map(|(l, r)| FingerOp::Query(l, r)),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// FlatFAT agrees with a plain vector model under arbitrary operation
    /// sequences (indices are clamped into range).
    #[test]
    fn flatfat_matches_linear_model(ops in tree_ops()) {
        let mut tree = FlatFat::new(SumI64);
        let mut model: Vec<i64> = Vec::new();
        for op in ops {
            match op {
                TreeOp::Push(v) => {
                    tree.push(Some(v));
                    model.push(v);
                }
                TreeOp::Update(i, v) if !model.is_empty() => {
                    let i = i % model.len();
                    tree.update(i, Some(v));
                    model[i] = v;
                }
                TreeOp::Insert(i, v) => {
                    let i = i % (model.len() + 1);
                    tree.insert(i, Some(v));
                    model.insert(i, v);
                }
                TreeOp::Remove(i) if !model.is_empty() => {
                    let i = i % model.len();
                    tree.remove(i);
                    model.remove(i);
                }
                TreeOp::Query(l, r) if !model.is_empty() => {
                    let l = l % (model.len() + 1);
                    let r = l + (r % (model.len() - l + 1));
                    let expect: Option<i64> =
                        if l == r { None } else { Some(model[l..r].iter().sum()) };
                    prop_assert_eq!(tree.query(l, r), expect);
                }
                _ => {}
            }
            prop_assert_eq!(tree.len(), model.len());
            let total: Option<i64> =
                if model.is_empty() { None } else { Some(model.iter().sum()) };
            prop_assert_eq!(tree.total().copied(), total);
        }
    }

    /// The finger B-tree agrees with a plain vector model under
    /// arbitrary operation sequences — the same harness FlatFAT is
    /// pinned by, plus bulk `remove_prefix` evictions, deferred
    /// updates with batched repair, and structural invariant checks
    /// after every step.
    #[test]
    fn finger_tree_matches_linear_model(ops in finger_ops()) {
        let mut tree = FingerTree::new(SumI64);
        let mut model: Vec<i64> = Vec::new();
        let mut dirty = false;
        for op in ops {
            match op {
                FingerOp::Push(v) => {
                    tree.push(Some(v));
                    model.push(v);
                }
                FingerOp::Update(i, v) if !model.is_empty() => {
                    let i = i % model.len();
                    tree.update(i, Some(v));
                    model[i] = v;
                }
                FingerOp::UpdateDeferred(i, v) if !model.is_empty() => {
                    let i = i % model.len();
                    tree.update_deferred(i, Some(v));
                    model[i] = v;
                    dirty = true;
                }
                FingerOp::Insert(i, v) => {
                    let i = i % (model.len() + 1);
                    tree.insert(i, Some(v));
                    model.insert(i, v);
                }
                FingerOp::Remove(i) if !model.is_empty() => {
                    let i = i % model.len();
                    tree.remove(i);
                    model.remove(i);
                }
                FingerOp::RemovePrefix(k) => {
                    let k = k % (model.len() + 1);
                    tree.remove_prefix(k);
                    model.drain(..k);
                }
                FingerOp::Query(l, r) if !model.is_empty() => {
                    if dirty {
                        tree.repair_dirty();
                        dirty = false;
                    }
                    let l = l % (model.len() + 1);
                    let r = l + (r % (model.len() - l + 1));
                    let expect: Option<i64> =
                        if l == r { None } else { Some(model[l..r].iter().sum()) };
                    prop_assert_eq!(tree.query(l, r), expect);
                }
                _ => {}
            }
            tree.assert_invariants();
            prop_assert_eq!(tree.len(), model.len());
            if !dirty {
                let total: Option<i64> =
                    if model.is_empty() { None } else { Some(model.iter().sum()) };
                prop_assert_eq!(tree.total().copied(), total);
            }
        }
    }

    /// The finger B-tree preserves leaf order for non-commutative
    /// combines (same pin as FlatFAT's).
    #[test]
    fn finger_tree_order_preserving(values in prop::collection::vec(0i64..100, 1..64)) {
        let mut tree = FingerTree::new(Concat);
        for v in &values {
            tree.push(Some(vec![*v]));
        }
        prop_assert_eq!(tree.query(0, values.len()), Some(values.clone()));
        let mid = values.len() / 2;
        prop_assert_eq!(tree.query(0, mid).unwrap_or_default(), values[..mid].to_vec());
        prop_assert_eq!(tree.query(mid, values.len()).unwrap_or_default(), values[mid..].to_vec());
    }

    /// FlatFAT preserves leaf order for non-commutative combines.
    #[test]
    fn flatfat_order_preserving(values in prop::collection::vec(0i64..100, 1..64)) {
        let mut tree = FlatFat::new(Concat);
        for v in &values {
            tree.push(Some(vec![*v]));
        }
        prop_assert_eq!(tree.query(0, values.len()), Some(values.clone()));
        // Range queries return contiguous sub-sequences in order.
        let mid = values.len() / 2;
        prop_assert_eq!(tree.query(0, mid).unwrap_or_default(), values[..mid].to_vec());
        prop_assert_eq!(tree.query(mid, values.len()).unwrap_or_default(), values[mid..].to_vec());
    }

    /// Splitting a slice at any point conserves tuples and aggregates.
    #[test]
    fn slice_split_conserves_content(
        tuples in prop::collection::vec((0i64..1_000, -50i64..50), 1..100),
        split_at in 1i64..999,
    ) {
        let mut sorted = tuples.clone();
        sorted.sort();
        let f = SumI64;
        let mut slice: Slice<SumI64> = Slice::new(Range::new(0, 1_000), true);
        for (ts, v) in &sorted {
            slice.add_in_order(&f, *ts, *v);
        }
        let total = slice.aggregate().copied().unwrap();
        let n = slice.len();
        let right = slice.split(&f, split_at);
        prop_assert_eq!(slice.len() + right.len(), n);
        let combined = f.combine_opt(slice.aggregate().copied(), right.aggregate());
        prop_assert_eq!(combined, Some(total));
        // Partition respects the split point.
        if let Some(ts) = slice.tuples().and_then(|t| t.last().map(|(ts, _)| *ts)) {
            prop_assert!(ts < split_at);
        }
        if let Some(ts) = right.tuples().and_then(|t| t.first().map(|(ts, _)| *ts)) {
            prop_assert!(ts >= split_at);
        }
    }

    /// Merging adjacent slices equals building one slice directly.
    #[test]
    fn slice_merge_equals_direct_build(
        left in prop::collection::vec((0i64..500, -50i64..50), 0..50),
        right in prop::collection::vec((500i64..1_000, -50i64..50), 0..50),
    ) {
        let f = SumI64;
        let mut sorted_left = left.clone();
        sorted_left.sort();
        let mut sorted_right = right.clone();
        sorted_right.sort();
        let mut a: Slice<SumI64> = Slice::new(Range::new(0, 500), true);
        for (ts, v) in &sorted_left {
            a.add_in_order(&f, *ts, *v);
        }
        let mut b: Slice<SumI64> = Slice::new(Range::new(500, 1_000), true);
        for (ts, v) in &sorted_right {
            b.add_in_order(&f, *ts, *v);
        }
        a.merge(&f, b);
        let mut direct: Slice<SumI64> = Slice::new(Range::new(0, 1_000), true);
        let mut all = sorted_left;
        all.extend(sorted_right);
        for (ts, v) in &all {
            direct.add_in_order(&f, *ts, *v);
        }
        prop_assert_eq!(a.aggregate(), direct.aggregate());
        prop_assert_eq!(a.len(), direct.len());
        prop_assert_eq!(a.t_first(), direct.t_first());
        prop_assert_eq!(a.t_last(), direct.t_last());
    }

    /// Store query over any aligned range equals a scan over all stored
    /// tuples, lazy and eager alike.
    #[test]
    fn store_range_queries_match_scan(
        tuples in prop::collection::vec((0i64..100, -50i64..50), 1..200),
        slice_len in 1i64..20,
        l in 0i64..100,
        len in 0i64..100,
    ) {
        let mut sorted = tuples.clone();
        sorted.sort();
        for policy in [StorePolicy::Lazy, StorePolicy::Eager, StorePolicy::FingerTree] {
            let mut store = SliceStore::new(SumI64, policy, false);
            let mut next_edge = slice_len;
            store.append_slice(Range::new(0, slice_len));
            for (ts, v) in &sorted {
                while *ts >= next_edge {
                    store.append_slice(Range::new(next_edge, next_edge + slice_len));
                    next_edge += slice_len;
                }
                store.add_in_order(*ts, *v);
            }
            store.flush_eager_repairs();
            // Align the query to slice edges.
            let start = (l / slice_len) * slice_len;
            let end = start + (len / slice_len + 1) * slice_len;
            let expect: i64 = sorted
                .iter()
                .filter(|(ts, _)| *ts >= start && *ts < end)
                .map(|(_, v)| v)
                .sum();
            let got = store.query_time(Range::new(start, end)).unwrap_or(0);
            prop_assert_eq!(got, expect, "policy {:?} range [{}, {})", policy, start, end);
        }
    }

    /// Count bookkeeping: absolute counts survive eviction.
    #[test]
    fn store_counts_survive_eviction(
        n_slices in 2usize..20,
        per_slice in 1usize..10,
        evict_at in 0usize..10,
    ) {
        let mut store = SliceStore::new(SumI64, StorePolicy::Lazy, true);
        let mut ts = 0i64;
        for s in 0..n_slices {
            store.append_slice(Range::new((s as i64) * 100, (s as i64 + 1) * 100));
            for _ in 0..per_slice {
                store.add_in_order(ts, 1);
                ts += 100 / per_slice as i64;
                ts = ts.min((s as i64 + 1) * 100 - 1);
            }
            ts = (s as i64 + 1) * 100;
        }
        let total_before = store.total_count();
        prop_assert_eq!(total_before, (n_slices * per_slice) as u64);
        let evict_slices = evict_at.min(n_slices - 1);
        store.evict_before(evict_slices as i64 * 100);
        prop_assert_eq!(store.total_count(), total_before);
        // Counts of retained slices remain queryable at absolute offsets.
        let c1 = (evict_slices * per_slice) as u64;
        let c2 = c1 + per_slice as u64;
        prop_assert_eq!(store.query_count(c1, c2), Some(per_slice as i64));
    }
}
