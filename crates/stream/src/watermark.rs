//! Watermark generation strategies.
//!
//! Out-of-order streams need watermarks to bound how long the operator
//! waits for stragglers (paper Section 2). These strategies mirror the
//! generators streaming systems ship: periodic bounded-out-of-orderness
//! (the Flink default) and ascending-timestamps for in-order sources.

use gss_core::{Time, TIME_MIN};

/// Decides when to emit watermarks while observing record timestamps.
pub trait WatermarkStrategy: Send {
    /// Observes a record timestamp; returns a watermark to emit after the
    /// record, if one is due.
    fn on_record(&mut self, ts: Time) -> Option<Time>;

    /// The watermark that closes the stream.
    fn on_close(&self) -> Time {
        i64::MAX - 1
    }
}

/// Emits `max_seen - bound` every `period` of event-time progress. With a
/// disorder bound `d <= bound`, no record ever arrives below the
/// watermark (late records inside the allowed lateness still update
/// results).
#[derive(Debug, Clone)]
pub struct BoundedOutOfOrderness {
    bound: Time,
    period: Time,
    max_seen: Time,
    next_at: Time,
}

impl BoundedOutOfOrderness {
    pub fn new(bound: Time, period: Time) -> Self {
        assert!(bound >= 0 && period > 0);
        BoundedOutOfOrderness { bound, period, max_seen: TIME_MIN, next_at: TIME_MIN }
    }
}

impl WatermarkStrategy for BoundedOutOfOrderness {
    fn on_record(&mut self, ts: Time) -> Option<Time> {
        if self.max_seen == TIME_MIN {
            self.max_seen = ts;
            self.next_at = ts + self.period;
            return None;
        }
        self.max_seen = self.max_seen.max(ts);
        if self.max_seen >= self.next_at {
            self.next_at = self.max_seen + self.period;
            Some(self.max_seen - self.bound)
        } else {
            None
        }
    }
}

/// For in-order sources: the watermark is the latest timestamp itself,
/// emitted with every record.
#[derive(Debug, Clone, Default)]
pub struct AscendingTimestamps {
    max_seen: Time,
}

impl WatermarkStrategy for AscendingTimestamps {
    fn on_record(&mut self, ts: Time) -> Option<Time> {
        debug_assert!(ts >= self.max_seen || self.max_seen == 0, "not ascending");
        self.max_seen = ts;
        Some(ts)
    }
}

/// Never emits watermarks (driven externally or purely in-order
/// tuple-at-a-time emission).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoWatermarks;

impl WatermarkStrategy for NoWatermarks {
    fn on_record(&mut self, _ts: Time) -> Option<Time> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_lags_by_bound() {
        let mut s = BoundedOutOfOrderness::new(100, 50);
        assert_eq!(s.on_record(0), None);
        assert_eq!(s.on_record(10), None);
        assert_eq!(s.on_record(60), Some(-40)); // 60 - 100
        assert_eq!(s.on_record(70), None);
        assert_eq!(s.on_record(200), Some(100));
    }

    #[test]
    fn bounded_ignores_regressing_timestamps() {
        let mut s = BoundedOutOfOrderness::new(10, 50);
        s.on_record(0);
        assert_eq!(s.on_record(100), Some(90));
        // A late record never moves the watermark backwards.
        assert_eq!(s.on_record(20), None);
        assert_eq!(s.on_record(200), Some(190));
    }

    #[test]
    fn ascending_emits_every_record() {
        let mut s = AscendingTimestamps::default();
        assert_eq!(s.on_record(5), Some(5));
        assert_eq!(s.on_record(9), Some(9));
    }

    #[test]
    fn close_flushes() {
        let s = BoundedOutOfOrderness::new(10, 50);
        assert_eq!(s.on_close(), i64::MAX - 1);
    }
}
