//! A minimal tuple-at-a-time dataflow runtime with key partitioning.
//!
//! The paper parallelizes window aggregation the way Flink, Spark, and
//! Storm do (Section 5.3, "Parallelization"): the stream is partitioned by
//! key, one window-operator instance runs per partition, and watermarks
//! are broadcast to all partitions. Because the window operator is a
//! drop-in replacement, the runtime is agnostic to the aggregation
//! technique — any [`WindowAggregator`] plugs in, which is how the
//! Figure 17 experiment compares slicing against buckets under varying
//! degrees of parallelism.

use std::time::{Duration, Instant};

use crossbeam::runtime::{self, bounded, Sender};
use gss_core::{AggregateFunction, PerKey, StreamElement, Time, WindowAggregator, WindowResult};

use crate::batching::{Batching, ChunkBuilder, RecordChunk};
use crate::metrics::{BatchSizeHistogram, LatencyHistogram};

/// Runtime configuration.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Number of parallel operator instances (degree of parallelism).
    pub parallelism: usize,
    /// Bounded channel capacity per partition (backpressure), in chunks.
    pub channel_capacity: usize,
    /// How sources pack records into channel chunks and how workers feed
    /// them to the operator (see [`Batching`]). The default is
    /// latency-bounded adaptive batching; watermarks and punctuations
    /// always flush pending chunks first, so every mode produces
    /// identical results.
    pub batching: Batching,
    /// Collect emitted window results (disable for pure throughput runs —
    /// results are counted either way).
    pub collect_results: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            parallelism: 1,
            channel_capacity: 256,
            batching: Batching::default(),
            collect_results: true,
        }
    }
}

impl PipelineConfig {
    pub fn with_parallelism(parallelism: usize) -> Self {
        PipelineConfig { parallelism: parallelism.max(1), ..Default::default() }
    }

    /// Fixed-size chunks of `batch_size` records. Composes with
    /// [`per_tuple`](PipelineConfig::per_tuple) in either order: the
    /// per-tuple flag controls the operator path, the size the transport
    /// chunking.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        let n = batch_size.max(1);
        self.batching = match self.batching {
            Batching::PerTuple { .. } => Batching::PerTuple { chunk: n },
            _ => Batching::Fixed(n),
        };
        self
    }

    /// Latency-bounded adaptive batching: chunks flush at `target`
    /// records or after `max_delay`, whichever comes first.
    pub fn adaptive(mut self, target: usize, max_delay: Duration) -> Self {
        self.batching = Batching::Adaptive { target: target.max(1), max_delay };
        self
    }

    /// Process records one `process` call at a time (the pre-batching
    /// behavior; chunks still ride the channels).
    pub fn per_tuple(mut self) -> Self {
        self.batching = Batching::PerTuple { chunk: self.batching.chunk_target().max(1) };
        self
    }

    pub fn throughput_only(mut self) -> Self {
        self.collect_results = false;
        self
    }
}

/// A unit of work sent to a partition worker: a chunk of in-partition
/// records, or a broadcast watermark/punctuation. Records travel as a
/// struct-of-arrays [`RecordChunk`] so workers can hand the whole chunk
/// to [`WindowAggregator::process_batch_columns`] — contiguous values
/// column, zero repacking.
enum Chunk<V> {
    Records(RecordChunk<V>),
    Watermark(Time),
    Punctuation(Time),
}

/// Outcome of a pipeline run.
#[derive(Debug)]
pub struct PipelineReport<O> {
    /// Collected window results (empty if `collect_results` was off),
    /// tagged with the partition that produced them.
    pub results: Vec<(usize, WindowResult<O>)>,
    /// Number of window results produced (counted even when not collected).
    pub result_count: u64,
    /// Records processed across all partitions.
    pub records: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// CPU time consumed by the whole process during the run.
    pub cpu_time: Duration,
    /// Queue-wait latency of producer sends into the merge stage, folded
    /// across workers ([`LatencyHistogram::merge`]). Non-empty only for
    /// [`run_parallel`](crate::parallel::run_parallel)'s two-stage path;
    /// a fat tail here means the merge stage is the bottleneck
    /// (backpressure), not the workers.
    pub send_wait: LatencyHistogram,
    /// Pre-aggregation workers used by the two-stage parallel path; 0 when
    /// the run went through a sequential operator (including the
    /// ineligible-workload fallback of `run_parallel`).
    pub parallel_workers: usize,
    /// Key-hash shards used by
    /// [`run_sharded_keyed`](crate::sharded::run_sharded_keyed); 0 for
    /// every other driver.
    pub shards: usize,
    /// Folded runs that went through a hand-written
    /// [`AggregateFunction::fold_slice`](gss_core::AggregateFunction::fold_slice)
    /// kernel, summed across partitions/workers.
    pub fold_hits: u64,
    /// Folded runs that fell back to the default lift/combine loop
    /// (no kernel for the aggregate, or a gathered run below the kernel
    /// threshold).
    pub fold_misses: u64,
    /// Achieved batch-size distribution: the records each chunk actually
    /// carried when the source flushed it. Under adaptive batching this
    /// shows which regime the run was in (target-filled vs
    /// deadline-flushed).
    pub batch_sizes: BatchSizeHistogram,
}

impl<O> PipelineReport<O> {
    /// Records per second of wall-clock time.
    pub fn throughput(&self) -> f64 {
        self.records as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Average CPU utilization in busy cores (e.g. 4.0 ≙ 400 %), or
    /// `None` when process CPU time is unavailable or below the clock-tick
    /// resolution: [`process_cpu_time`] reads `/proc` and returns zero on
    /// non-Linux platforms (and for runs shorter than one `USER_HZ` tick),
    /// so a raw ratio would silently report 0 there.
    pub fn cpu_utilization(&self) -> Option<f64> {
        if self.cpu_time == Duration::ZERO {
            return None;
        }
        let elapsed = self.elapsed.as_secs_f64();
        if !elapsed.is_finite() || elapsed <= 0.0 {
            return None;
        }
        Some(self.cpu_time.as_secs_f64() / elapsed)
    }

    pub(crate) fn empty() -> Self {
        PipelineReport {
            results: Vec::new(),
            result_count: 0,
            records: 0,
            elapsed: Duration::ZERO,
            cpu_time: Duration::ZERO,
            send_wait: LatencyHistogram::new(),
            parallel_workers: 0,
            shards: 0,
            fold_hits: 0,
            fold_misses: 0,
            batch_sizes: BatchSizeHistogram::new(),
        }
    }
}

/// Deterministic key-to-partition assignment (Fibonacci hashing).
#[inline]
pub fn partition_of(key: u64, parallelism: usize) -> usize {
    ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % parallelism as u64) as usize
}

/// Total process CPU time (user + system). Linux-specific; returns zero on
/// other platforms.
pub fn process_cpu_time() -> Duration {
    #[cfg(target_os = "linux")]
    {
        let Ok(stat) = std::fs::read_to_string("/proc/self/stat") else {
            return Duration::ZERO;
        };
        // The comm field may contain spaces; skip past its closing paren.
        let Some(close) = stat.rfind(')') else {
            return Duration::ZERO;
        };
        let fields: Vec<&str> = stat[close + 1..].split_whitespace().collect();
        // utime and stime are fields 14 and 15 of the stat line overall,
        // i.e. indices 11 and 12 after state.
        if fields.len() > 12 {
            let utime: u64 = fields[11].parse().unwrap_or(0);
            let stime: u64 = fields[12].parse().unwrap_or(0);
            return Duration::from_millis((utime + stime) * 1000 / clock_ticks_per_sec());
        }
        Duration::ZERO
    }
    #[cfg(not(target_os = "linux"))]
    {
        Duration::ZERO
    }
}

/// Kernel clock ticks per second (`USER_HZ`), the unit of `/proc` CPU-time
/// fields. Queried once via `sysconf(_SC_CLK_TCK)` — 100 on most Linux
/// builds but a kernel configuration choice, not a constant.
#[cfg(target_os = "linux")]
fn clock_ticks_per_sec() -> u64 {
    use std::sync::OnceLock;
    static TICKS: OnceLock<u64> = OnceLock::new();
    *TICKS.get_or_init(|| {
        const SC_CLK_TCK: std::ffi::c_int = 2;
        extern "C" {
            fn sysconf(name: std::ffi::c_int) -> std::ffi::c_long;
        }
        // SAFETY: sysconf is async-signal-safe, takes no pointers, and
        // _SC_CLK_TCK is a valid name on every Linux libc.
        let hz = unsafe { sysconf(SC_CLK_TCK) };
        if hz > 0 {
            hz as u64
        } else {
            100
        }
    })
}

/// Runs a keyed, parallel window aggregation over a finite stream.
///
/// * `elements` — records carry `(key, value)` pairs; watermarks and
///   punctuations are broadcast to every partition.
/// * `make_operator` — factory building one aggregation operator per
///   partition (called with the partition index).
///
/// Records are routed by [`partition_of`]; each partition processes its
/// share in arrival order on its own OS thread, exactly like a keyed
/// window operator in Flink.
pub fn run_keyed<A, F>(
    elements: impl IntoIterator<Item = StreamElement<(u64, A::Input)>>,
    cfg: PipelineConfig,
    make_operator: F,
) -> PipelineReport<A::Output>
where
    A: AggregateFunction,
    A::Output: Send,
    F: Fn(usize) -> Box<dyn WindowAggregator<A>>,
{
    let p = cfg.parallelism.max(1);
    let cpu_before = process_cpu_time();
    let start = Instant::now();
    let mut report = PipelineReport::empty();
    runtime::scope(|scope| {
        let mut senders: Vec<Sender<Chunk<A::Input>>> = Vec::with_capacity(p);
        let mut handles = Vec::with_capacity(p);
        for i in 0..p {
            let (tx, rx) = bounded::<Chunk<A::Input>>(cfg.channel_capacity);
            senders.push(tx);
            let mut op = make_operator(i);
            let collect = cfg.collect_results;
            let per_tuple = cfg.batching.is_per_tuple();
            handles.push(scope.spawn(move || {
                let mut results = Vec::new();
                let mut scratch: Vec<WindowResult<A::Output>> = Vec::new();
                let mut records = 0u64;
                let mut count = 0u64;
                for chunk in rx.iter() {
                    match chunk {
                        Chunk::Records(chunk) => {
                            chunk.check();
                            records += chunk.len() as u64;
                            // Size-1 chunks take the plain per-record
                            // entry point: the batched path's run
                            // detection is pure overhead on a single
                            // record (the old "batch 1 costs 0.6×"
                            // cliff).
                            if per_tuple || chunk.len() == 1 {
                                for (ts, value) in chunk {
                                    op.process(ts, value, &mut scratch);
                                }
                            } else {
                                op.process_batch_columns(
                                    chunk.times(),
                                    chunk.values(),
                                    &mut scratch,
                                );
                            }
                        }
                        Chunk::Watermark(wm) => op.on_watermark(wm, &mut scratch),
                        Chunk::Punctuation(ts) => op.on_punctuation(ts, &mut scratch),
                    }
                    count += scratch.len() as u64;
                    if collect {
                        results.append(&mut scratch);
                    } else {
                        scratch.clear();
                    }
                }
                let (fold_hits, fold_misses) = op.fold_stats();
                (results, count, records, fold_hits, fold_misses)
            }));
        }
        // Source: partition records into per-partition chunks; broadcast
        // watermarks, flushing chunks first to preserve ordering.
        let mut builders: Vec<ChunkBuilder<A::Input>> =
            (0..p).map(|_| ChunkBuilder::new(cfg.batching)).collect();
        let mut sizes = BatchSizeHistogram::new();
        let flush_all = |builders: &mut Vec<ChunkBuilder<A::Input>>,
                         sizes: &mut BatchSizeHistogram,
                         senders: &[Sender<Chunk<A::Input>>]| {
            for (builder, tx) in builders.iter_mut().zip(senders) {
                if let Some(chunk) = builder.take() {
                    sizes.record(chunk.len());
                    tx.send(Chunk::Records(chunk)).expect("worker hung up");
                }
            }
        };
        for element in elements {
            match element {
                StreamElement::Record { ts, value: (key, v) } => {
                    let dst = partition_of(key, p);
                    if let Some(chunk) = builders[dst].push(ts, v) {
                        sizes.record(chunk.len());
                        senders[dst].send(Chunk::Records(chunk)).expect("worker hung up");
                    }
                }
                StreamElement::Watermark(wm) => {
                    flush_all(&mut builders, &mut sizes, &senders);
                    for tx in &senders {
                        tx.send(Chunk::Watermark(wm)).expect("worker hung up");
                    }
                }
                StreamElement::Punctuation(ts) => {
                    flush_all(&mut builders, &mut sizes, &senders);
                    for tx in &senders {
                        tx.send(Chunk::Punctuation(ts)).expect("worker hung up");
                    }
                }
            }
        }
        flush_all(&mut builders, &mut sizes, &senders);
        drop(senders);
        report.batch_sizes = sizes;
        for (i, h) in handles.into_iter().enumerate() {
            let (results, count, records, hits, misses) = h.join().expect("worker panicked");
            report.result_count += count;
            report.records += records;
            report.fold_hits += hits;
            report.fold_misses += misses;
            report.results.extend(results.into_iter().map(|r| (i, r)));
        }
    });
    report.elapsed = start.elapsed();
    report.cpu_time = process_cpu_time().saturating_sub(cpu_before);
    report
}

/// Runs a keyed aggregation where the operators themselves are
/// key-aware — each partition hosts one multi-key operator (e.g.
/// [`gss_core::KeyedWindowOperator`]) instead of stripping keys off.
///
/// Results come back key-tagged: every [`WindowResult`] carries
/// `(key, aggregate)` so downstream consumers can tell the per-key
/// windows apart, unlike [`run_keyed`] where the key is implicit in the
/// partition. Records are still routed with [`partition_of`], so all
/// tuples of one key meet in the same operator instance.
pub fn run_per_key<A, F>(
    elements: impl IntoIterator<Item = StreamElement<(u64, A::Input)>>,
    cfg: PipelineConfig,
    make_operator: F,
) -> PipelineReport<(u64, A::Output)>
where
    A: AggregateFunction,
    A::Output: Send,
    F: Fn(usize) -> Box<dyn WindowAggregator<PerKey<A>>>,
{
    // The outer key routes the partition; the inner copy stays attached
    // for the keyed operator.
    run_keyed::<PerKey<A>, F>(
        elements.into_iter().map(|e| match e {
            StreamElement::Record { ts, value: (key, v) } => {
                StreamElement::Record { ts, value: (key, (key, v)) }
            }
            StreamElement::Watermark(wm) => StreamElement::Watermark(wm),
            StreamElement::Punctuation(p) => StreamElement::Punctuation(p),
        }),
        cfg,
        make_operator,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_core::operator::{OperatorConfig, WindowOperator};
    use gss_core::testsupport::SumI64;
    use gss_core::StreamOrder;
    use gss_windows::TumblingWindow;

    fn make_elements(n: i64, keys: u64) -> Vec<StreamElement<(u64, i64)>> {
        let mut v: Vec<StreamElement<(u64, i64)>> = Vec::new();
        for i in 0..n {
            v.push(StreamElement::Record { ts: i, value: (i as u64 % keys, 1) });
            if i % 50 == 49 {
                v.push(StreamElement::Watermark(i - 10));
            }
        }
        v.push(StreamElement::Watermark(i64::MAX - 1));
        v
    }

    fn slicing_factory(_: usize) -> Box<dyn WindowAggregator<SumI64>> {
        let mut op = WindowOperator::new(
            SumI64,
            OperatorConfig {
                order: StreamOrder::OutOfOrder,
                allowed_lateness: 100,
                ..Default::default()
            },
        );
        op.add_query(Box::new(TumblingWindow::new(100))).unwrap();
        Box::new(op)
    }

    #[test]
    fn single_partition_processes_everything() {
        let report = run_keyed(make_elements(1000, 4), PipelineConfig::default(), slicing_factory);
        assert_eq!(report.records, 1000);
        assert!(report.result_count > 0);
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn partition_results_sum_to_global_counts() {
        // Values are all 1, so summing all window results of all partitions
        // for a window range equals the tuples in that range.
        let report =
            run_keyed(make_elements(1000, 8), PipelineConfig::with_parallelism(4), slicing_factory);
        assert_eq!(report.records, 1000);
        let mut per_window: std::collections::BTreeMap<i64, i64> =
            std::collections::BTreeMap::new();
        for (_, r) in &report.results {
            *per_window.entry(r.range.start).or_default() += r.value;
        }
        for (start, total) in per_window {
            assert_eq!(total, 100, "window starting {start}");
        }
    }

    #[test]
    fn same_key_stays_on_one_partition() {
        for key in 0..100u64 {
            let a = partition_of(key, 8);
            let b = partition_of(key, 8);
            assert_eq!(a, b);
            assert!(a < 8);
        }
    }

    #[test]
    fn parallel_run_matches_sequential_results() {
        let seq = run_keyed(make_elements(2000, 16), PipelineConfig::default(), slicing_factory);
        let par = run_keyed(
            make_elements(2000, 16),
            PipelineConfig::with_parallelism(4),
            slicing_factory,
        );
        let norm = |r: &PipelineReport<i64>| {
            let mut m: std::collections::BTreeMap<(i64, i64), i64> =
                std::collections::BTreeMap::new();
            for (_, w) in &r.results {
                *m.entry((w.range.start, w.range.end)).or_default() += w.value;
            }
            m
        };
        assert_eq!(norm(&seq), norm(&par));
    }

    #[test]
    fn batched_mode_matches_per_tuple_results() {
        let batched = run_keyed(
            make_elements(2000, 8),
            PipelineConfig::default().with_batch_size(128),
            slicing_factory,
        );
        let per_tuple = run_keyed(
            make_elements(2000, 8),
            PipelineConfig::default().with_batch_size(128).per_tuple(),
            slicing_factory,
        );
        assert_eq!(batched.records, per_tuple.records);
        assert_eq!(batched.result_count, per_tuple.result_count);
        let norm = |r: &PipelineReport<i64>| {
            let mut m: Vec<(usize, i64, i64, i64)> =
                r.results.iter().map(|(p, w)| (*p, w.range.start, w.range.end, w.value)).collect();
            m.sort_unstable();
            m
        };
        assert_eq!(norm(&batched), norm(&per_tuple));
    }

    #[test]
    fn punctuation_windows_flow_through_pipeline() {
        // FCF punctuation workload end-to-end: punctuations are broadcast
        // to every partition and forwarded to the operator's punctuation
        // entry point, mirroring the direct-API test in gss-windows.
        let factory = |_: usize| {
            let mut op = WindowOperator::new(SumI64, OperatorConfig::in_order());
            op.add_query(Box::new(gss_windows::PunctuationWindow::new())).unwrap();
            Box::new(op) as Box<dyn WindowAggregator<SumI64>>
        };
        let elements: Vec<StreamElement<(u64, i64)>> = vec![
            StreamElement::Punctuation(0),
            StreamElement::Record { ts: 1, value: (0, 1) },
            StreamElement::Record { ts: 5, value: (0, 5) },
            StreamElement::Punctuation(10),
            StreamElement::Record { ts: 12, value: (0, 12) },
            StreamElement::Punctuation(20),
        ];
        let report = run_keyed(elements, PipelineConfig::default(), factory);
        assert_eq!(report.records, 3);
        let mut results: Vec<(i64, i64, i64)> =
            report.results.iter().map(|(_, r)| (r.range.start, r.range.end, r.value)).collect();
        results.sort_unstable();
        assert_eq!(results, vec![(0, 10, 6), (10, 20, 12)]);
    }

    #[test]
    fn punctuations_broadcast_to_all_partitions() {
        // Two keys on two partitions, values all 1: each partition sees
        // the same punctuation boundaries, so summing a window's results
        // across partitions counts the tuples in its range.
        let factory = |_: usize| {
            let mut op = WindowOperator::new(SumI64, OperatorConfig::in_order());
            op.add_query(Box::new(gss_windows::PunctuationWindow::new())).unwrap();
            Box::new(op) as Box<dyn WindowAggregator<SumI64>>
        };
        let mut elements: Vec<StreamElement<(u64, i64)>> = Vec::new();
        for i in 0..200i64 {
            if i % 50 == 0 {
                elements.push(StreamElement::Punctuation(i));
            }
            elements.push(StreamElement::Record { ts: i, value: (i as u64 % 2, 1) });
        }
        elements.push(StreamElement::Punctuation(200));
        let report = run_keyed(elements, PipelineConfig::with_parallelism(2), factory);
        assert_eq!(report.records, 200);
        let mut per_window: std::collections::BTreeMap<(i64, i64), i64> =
            std::collections::BTreeMap::new();
        for (_, r) in &report.results {
            *per_window.entry((r.range.start, r.range.end)).or_default() += r.value;
        }
        let windows: Vec<((i64, i64), i64)> = per_window.into_iter().collect();
        assert_eq!(
            windows,
            vec![((0, 50), 50), ((50, 100), 50), ((100, 150), 50), ((150, 200), 50)]
        );
    }

    #[test]
    fn run_per_key_tags_results_with_keys() {
        use gss_core::{KeyedConfig, KeyedWindowOperator};
        let factory = |_: usize| {
            let op = KeyedWindowOperator::new(
                SumI64,
                vec![Box::new(TumblingWindow::new(100))],
                KeyedConfig::default().with_allowed_lateness(100),
            );
            assert!(op.is_shared());
            Box::new(op) as Box<dyn WindowAggregator<gss_core::PerKey<SumI64>>>
        };
        let report = run_per_key(make_elements(1000, 4), PipelineConfig::default(), factory);
        assert_eq!(report.records, 1000);
        // Values are all 1 and keys round-robin, so each complete window
        // contributes 25 per key.
        let mut per_key_window: std::collections::BTreeMap<(u64, i64), i64> =
            std::collections::BTreeMap::new();
        for (_, r) in &report.results {
            assert!(!r.is_update);
            *per_key_window.entry((r.value.0, r.range.start)).or_default() += r.value.1;
        }
        assert_eq!(per_key_window.len(), 4 * 10);
        assert!(per_key_window.values().all(|&v| v == 25));
    }

    #[test]
    fn run_per_key_matches_naive_keyed_across_parallelism() {
        use gss_core::{KeyedConfig, KeyedWindowOperator, NaiveKeyedOperator, PerKey};
        let shared = |_: usize| {
            Box::new(KeyedWindowOperator::new(
                SumI64,
                vec![Box::new(TumblingWindow::new(100))],
                KeyedConfig::default().with_allowed_lateness(100),
            )) as Box<dyn WindowAggregator<PerKey<SumI64>>>
        };
        let naive = |_: usize| {
            Box::new(NaiveKeyedOperator::new(
                SumI64,
                vec![Box::new(TumblingWindow::new(100))],
                KeyedConfig::default().with_allowed_lateness(100),
            )) as Box<dyn WindowAggregator<PerKey<SumI64>>>
        };
        let norm = |r: &PipelineReport<(u64, i64)>| {
            let mut m: Vec<(u64, i64, i64, i64, bool)> = r
                .results
                .iter()
                .map(|(_, w)| (w.value.0, w.range.start, w.range.end, w.value.1, w.is_update))
                .collect();
            m.sort_unstable();
            m
        };
        let a = run_per_key(make_elements(2000, 16), PipelineConfig::default(), shared);
        let b = run_per_key(make_elements(2000, 16), PipelineConfig::with_parallelism(4), shared);
        let c = run_per_key(make_elements(2000, 16), PipelineConfig::default(), naive);
        assert!(!norm(&a).is_empty());
        assert_eq!(norm(&a), norm(&b), "shared keyed must be parallelism-invariant");
        assert_eq!(norm(&a), norm(&c), "shared keyed must match the naive baseline");
    }

    #[test]
    fn report_carries_fold_stats_and_batch_sizes() {
        let report = run_keyed(
            make_elements(2000, 4),
            PipelineConfig::default().with_batch_size(128),
            slicing_factory,
        );
        // SumI64 (testsupport) has no fold kernel, so every folded run is
        // a miss — but runs *were* folded, and every chunk was recorded.
        assert_eq!(report.fold_hits, 0);
        assert!(report.fold_misses > 0, "batched runs must be counted");
        assert!(!report.batch_sizes.is_empty());
        assert_eq!(report.batch_sizes.records(), 2000);
        assert!(report.batch_sizes.max() <= 128);
    }

    #[test]
    fn adaptive_batching_matches_fixed_results() {
        let adaptive = run_keyed(
            make_elements(2000, 8),
            PipelineConfig::default().adaptive(256, Duration::from_millis(1)),
            slicing_factory,
        );
        let fixed = run_keyed(
            make_elements(2000, 8),
            PipelineConfig::default().with_batch_size(256),
            slicing_factory,
        );
        let norm = |r: &PipelineReport<i64>| {
            let mut m: Vec<(usize, i64, i64, i64)> =
                r.results.iter().map(|(p, w)| (*p, w.range.start, w.range.end, w.value)).collect();
            m.sort_unstable();
            m
        };
        assert_eq!(adaptive.records, fixed.records);
        assert_eq!(norm(&adaptive), norm(&fixed));
        assert_eq!(adaptive.batch_sizes.records(), 2000);
    }

    #[test]
    fn size_one_chunks_flow_through_per_record_path() {
        // with_batch_size(1) ships singleton chunks; the worker must
        // route them through `process` and still match batched results.
        let one = run_keyed(
            make_elements(500, 4),
            PipelineConfig::default().with_batch_size(1),
            slicing_factory,
        );
        let big = run_keyed(
            make_elements(500, 4),
            PipelineConfig::default().with_batch_size(512),
            slicing_factory,
        );
        assert_eq!(one.records, big.records);
        assert_eq!(one.result_count, big.result_count);
        assert_eq!(one.batch_sizes.max(), 1);
    }

    #[test]
    fn throughput_only_mode_counts_without_collecting() {
        let report = run_keyed(
            make_elements(500, 4),
            PipelineConfig::default().throughput_only(),
            slicing_factory,
        );
        assert!(report.results.is_empty());
        assert!(report.result_count > 0);
    }
}
