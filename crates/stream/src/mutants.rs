//! Seeded protocol faults for `cargo sched`'s anti-vacuity check.
//!
//! A schedule-exploration harness that never fails proves nothing, so
//! each mutant here re-introduces one concurrency bug class at a real
//! protocol decision point — firing an epoch barrier early, applying a
//! partials batch twice, dropping staged emissions — and the harness
//! must catch every one on some explored schedule.
//!
//! Without the `sched-mutants` feature, [`is`] is a constant `false`
//! and every guarded branch compiles away: release binaries carry no
//! fault-injection code at all. With the feature, the `sched` binary
//! selects one mutant at a time through [`set_mutant`] (runs are
//! single-flight, so a process-global is sufficient and keeps the
//! protocol signatures untouched).

/// Which protocol fault to inject. `Healthy` (the default) injects
/// nothing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum Mutant {
    /// No fault: the shipped protocol.
    Healthy = 0,
    /// `run_parallel` merge: fire the epoch barrier as soon as *any*
    /// worker front is an ack instead of waiting for all of them.
    ParEagerBarrier = 1,
    /// `run_parallel` merge: apply every partials batch twice
    /// (exactly-once violation).
    ParDoubleApply = 2,
    /// `run_sharded_keyed` merge: release the epoch as soon as any
    /// shard front is an ack.
    ShardEagerRelease = 3,
    /// `run_sharded_keyed` merge: drop shard 0's staged emissions at
    /// the barrier.
    ShardDropStaged = 4,
}

/// Every injectable fault, for harness iteration.
pub const ALL_MUTANTS: &[Mutant] = &[
    Mutant::ParEagerBarrier,
    Mutant::ParDoubleApply,
    Mutant::ShardEagerRelease,
    Mutant::ShardDropStaged,
];

#[cfg(feature = "sched-mutants")]
mod imp {
    use std::sync::atomic::{AtomicU8, Ordering};

    static ACTIVE: AtomicU8 = AtomicU8::new(0);

    pub(super) fn set(m: super::Mutant) {
        ACTIVE.store(m as u8, Ordering::SeqCst);
    }

    pub(super) fn get() -> u8 {
        ACTIVE.load(Ordering::SeqCst)
    }
}

/// Activates one mutant for subsequent runs (deactivate with
/// [`Mutant::Healthy`]). Only exists under the `sched-mutants` feature.
#[cfg(feature = "sched-mutants")]
pub fn set_mutant(m: Mutant) {
    imp::set(m);
}

/// Whether `m` is the currently injected fault. Constant `false`
/// without the `sched-mutants` feature.
#[inline(always)]
pub fn is(m: Mutant) -> bool {
    #[cfg(feature = "sched-mutants")]
    {
        m != Mutant::Healthy && imp::get() == m as u8
    }
    #[cfg(not(feature = "sched-mutants"))]
    {
        let _ = m;
        false
    }
}

/// Doubles a batch under `m` (the exactly-once mutants). Feature-gated
/// because it needs `Clone` on the payload.
#[cfg(feature = "sched-mutants")]
pub fn double_if<T: Clone>(m: Mutant, batch: Vec<T>) -> Vec<T> {
    if is(m) {
        let mut out = batch.clone();
        out.extend(batch);
        out
    } else {
        batch
    }
}
