//! A fluent pipeline builder: source → map/filter → key-by → windowed
//! aggregation, in the style of dataflow APIs (Flink's `DataStream`,
//! Beam's `PCollection`), composed from the crate's primitives.
//!
//! ```
//! use gss_core::operator::{OperatorConfig, WindowOperator};
//! use gss_core::{StreamOrder, WindowAggregator};
//! use gss_stream::{BoundedOutOfOrderness, Pipeline, PipelineConfig};
//! use gss_windows::TumblingWindow;
//!
//! let records = (0..10_000i64).map(|i| (i, i % 100));
//! let report = Pipeline::from_records(records, BoundedOutOfOrderness::new(100, 50))
//!     .map(|_ts, v| v * 2)
//!     .filter(|_ts, v| *v % 4 == 0)
//!     .key_by(|_ts, v| (*v % 8) as u64)
//!     .aggregate(PipelineConfig::with_parallelism(2), |_partition| {
//!         let mut op = WindowOperator::new(
//!             gss_core::testsupport::SumI64,
//!             OperatorConfig { order: StreamOrder::OutOfOrder, allowed_lateness: 100, ..Default::default() },
//!         );
//!         op.add_query(Box::new(TumblingWindow::new(1_000))).unwrap();
//!         Box::new(op) as Box<dyn WindowAggregator<_>>
//!     });
//! assert!(report.result_count > 0);
//! ```

use gss_core::{AggregateFunction, StreamElement, Time, WindowAggregator};

use crate::pipeline::{run_keyed, PipelineConfig, PipelineReport};
use crate::source::{filter_records, key_by, map_records, IteratorSource};
use crate::watermark::WatermarkStrategy;

/// An unkeyed element stream under construction.
pub struct Pipeline<V> {
    elements: Box<dyn Iterator<Item = StreamElement<V>>>,
}

impl<V: 'static> Pipeline<V> {
    /// Starts from timestamped records, generating watermarks with the
    /// given strategy (plus a final flush watermark).
    pub fn from_records<I, W>(records: I, strategy: W) -> Self
    where
        I: IntoIterator<Item = (Time, V)>,
        I::IntoIter: 'static,
        W: WatermarkStrategy + 'static,
    {
        Pipeline { elements: Box::new(IteratorSource::new(records.into_iter(), strategy)) }
    }

    /// Starts from pre-built stream elements (records, watermarks,
    /// punctuations).
    pub fn from_elements<I>(elements: I) -> Self
    where
        I: IntoIterator<Item = StreamElement<V>>,
        I::IntoIter: 'static,
    {
        Pipeline { elements: Box::new(elements.into_iter()) }
    }

    /// Transforms record payloads; watermarks pass through.
    pub fn map<W: 'static>(self, f: impl FnMut(Time, V) -> W + 'static) -> Pipeline<W> {
        Pipeline { elements: Box::new(map_records(self.elements, f)) }
    }

    /// Drops records failing the predicate; watermarks pass through.
    pub fn filter(self, pred: impl FnMut(Time, &V) -> bool + 'static) -> Pipeline<V> {
        Pipeline { elements: Box::new(filter_records(self.elements, pred)) }
    }

    /// Assigns a key to every record, enabling partitioned execution.
    pub fn key_by(self, key: impl FnMut(Time, &V) -> u64 + 'static) -> KeyedPipeline<V> {
        KeyedPipeline { elements: Box::new(key_by(self.elements, key)) }
    }

    /// Collects the element stream (for tests and small jobs).
    pub fn collect(self) -> Vec<StreamElement<V>> {
        self.elements.collect()
    }
}

/// A keyed element stream, ready for windowed aggregation.
pub struct KeyedPipeline<V> {
    elements: Box<dyn Iterator<Item = StreamElement<(u64, V)>>>,
}

impl<V: 'static> KeyedPipeline<V> {
    /// Runs a window aggregation with one operator instance per partition
    /// (the `factory` builds each instance).
    pub fn aggregate<A, F>(self, cfg: PipelineConfig, factory: F) -> PipelineReport<A::Output>
    where
        A: AggregateFunction<Input = V>,
        A::Output: Send,
        F: Fn(usize) -> Box<dyn WindowAggregator<A>>,
    {
        run_keyed(self.elements, cfg, factory)
    }

    /// Collects the keyed element stream.
    pub fn collect(self) -> Vec<StreamElement<(u64, V)>> {
        self.elements.collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::watermark::AscendingTimestamps;
    use gss_core::operator::{OperatorConfig, WindowOperator};
    use gss_core::testsupport::SumI64;
    use gss_core::window::WindowFunction;
    use gss_core::ContextClass;
    use gss_core::Measure;
    use gss_core::Range;
    use gss_core::StreamOrder;

    #[derive(Clone, Copy)]
    struct Tumble100;
    impl WindowFunction for Tumble100 {
        fn measure(&self) -> Measure {
            Measure::Time
        }
        fn context(&self) -> ContextClass {
            ContextClass::ContextFree
        }
        fn next_edge(&self, ts: Time) -> Option<Time> {
            Some((ts.div_euclid(100) + 1) * 100)
        }
        fn next_window_end(&self, ts: Time) -> Option<Time> {
            self.next_edge(ts)
        }
        fn trigger_windows(&mut self, p: Time, c: Time, out: &mut dyn FnMut(Range)) {
            let mut e = (p.div_euclid(100) + 1) * 100;
            while e <= c {
                out(Range::new(e - 100, e));
                e += 100;
            }
        }
        fn windows_containing(&self, ts: Time, out: &mut dyn FnMut(Range)) {
            let s = ts.div_euclid(100) * 100;
            out(Range::new(s, s + 100));
        }
        fn max_extent(&self) -> i64 {
            100
        }
        fn clone_box(&self) -> Box<dyn WindowFunction> {
            Box::new(*self)
        }
    }

    #[test]
    fn map_filter_key_flow() {
        let records = (0..1_000i64).map(|i| (i, i));
        let report = Pipeline::from_records(records, AscendingTimestamps::default())
            .map(|_, v| v % 10)
            .filter(|_, v| *v != 0)
            .key_by(|_, v| (*v % 4) as u64)
            .aggregate(PipelineConfig::default(), |_| {
                let mut op = WindowOperator::new(
                    SumI64,
                    OperatorConfig {
                        order: StreamOrder::OutOfOrder,
                        allowed_lateness: 0,
                        ..Default::default()
                    },
                );
                op.add_query(Box::new(Tumble100)).unwrap();
                Box::new(op)
            });
        assert_eq!(report.records, 900); // v % 10 == 0 filtered out
        assert!(report.result_count >= 10);
        // Every window sums 1..=9 repeated 10x = 450 split across keys.
        let total: i64 = report.results.iter().map(|(_, r)| r.value).sum();
        assert_eq!(total, 900 / 9 * 45);
    }

    #[test]
    fn collect_preserves_structure() {
        let records = vec![(0i64, 1i64), (10, 2)];
        let elements = Pipeline::from_records(records, AscendingTimestamps::default()).collect();
        assert_eq!(elements.iter().filter(|e| e.is_record()).count(), 2);
        assert!(matches!(elements.last(), Some(StreamElement::Watermark(_))));
        let keyed = Pipeline::from_elements(elements).key_by(|_, v| *v as u64).collect();
        assert!(matches!(keyed[0], StreamElement::Record { value: (1, 1), .. }));
    }
}
