//! A fluent pipeline builder: source → map/filter → key-by → windowed
//! aggregation, in the style of dataflow APIs (Flink's `DataStream`,
//! Beam's `PCollection`), composed from the crate's primitives.
//!
//! ```
//! use gss_core::operator::{OperatorConfig, WindowOperator};
//! use gss_core::{StreamOrder, WindowAggregator};
//! use gss_stream::{BoundedOutOfOrderness, Pipeline, PipelineConfig};
//! use gss_windows::TumblingWindow;
//!
//! let records = (0..10_000i64).map(|i| (i, i % 100));
//! let report = Pipeline::from_records(records, BoundedOutOfOrderness::new(100, 50))
//!     .map(|_ts, v| v * 2)
//!     .filter(|_ts, v| *v % 4 == 0)
//!     .key_by(|_ts, v| (*v % 8) as u64)
//!     .aggregate(PipelineConfig::with_parallelism(2), |_partition| {
//!         let mut op = WindowOperator::new(
//!             gss_core::testsupport::SumI64,
//!             OperatorConfig { order: StreamOrder::OutOfOrder, allowed_lateness: 100, ..Default::default() },
//!         );
//!         op.add_query(Box::new(TumblingWindow::new(1_000))).unwrap();
//!         Box::new(op) as Box<dyn WindowAggregator<_>>
//!     });
//! assert!(report.result_count > 0);
//! ```

use gss_core::{
    AggregateFunction, OperatorConfig, PerKey, StreamElement, Time, WindowAggregator,
    WindowFunction,
};

use crate::parallel::run_parallel;
use crate::pipeline::{run_keyed, run_per_key, PipelineConfig, PipelineReport};
use crate::source::{filter_records, key_by, map_records, punctuate_every, IteratorSource};
use crate::watermark::WatermarkStrategy;

/// An unkeyed element stream under construction.
pub struct Pipeline<V> {
    elements: Box<dyn Iterator<Item = StreamElement<V>>>,
}

impl<V: 'static> Pipeline<V> {
    /// Starts from timestamped records, generating watermarks with the
    /// given strategy (plus a final flush watermark).
    pub fn from_records<I, W>(records: I, strategy: W) -> Self
    where
        I: IntoIterator<Item = (Time, V)>,
        I::IntoIter: 'static,
        W: WatermarkStrategy + 'static,
    {
        Pipeline { elements: Box::new(IteratorSource::new(records.into_iter(), strategy)) }
    }

    /// Starts from pre-built stream elements (records, watermarks,
    /// punctuations).
    pub fn from_elements<I>(elements: I) -> Self
    where
        I: IntoIterator<Item = StreamElement<V>>,
        I::IntoIter: 'static,
    {
        Pipeline { elements: Box::new(elements.into_iter()) }
    }

    /// Transforms record payloads; watermarks pass through.
    pub fn map<W: 'static>(self, f: impl FnMut(Time, V) -> W + 'static) -> Pipeline<W> {
        Pipeline { elements: Box::new(map_records(self.elements, f)) }
    }

    /// Drops records failing the predicate; watermarks pass through.
    pub fn filter(self, pred: impl FnMut(Time, &V) -> bool + 'static) -> Pipeline<V> {
        Pipeline { elements: Box::new(filter_records(self.elements, pred)) }
    }

    /// Interleaves stream punctuations every `period` of event time (see
    /// [`punctuate_every`]) so FCF punctuation windows can run end to
    /// end.
    pub fn punctuate_every(self, period: Time) -> Pipeline<V> {
        Pipeline { elements: Box::new(punctuate_every(self.elements, period)) }
    }

    /// Assigns a key to every record, enabling partitioned execution.
    pub fn key_by(self, key: impl FnMut(Time, &V) -> u64 + 'static) -> KeyedPipeline<V> {
        KeyedPipeline { elements: Box::new(key_by(self.elements, key)) }
    }

    /// Runs an **unkeyed** window aggregation through the intra-query
    /// parallel path ([`run_parallel`]): `cfg.parallelism` workers
    /// pre-aggregate disjoint chunks of this one stream into per-slice
    /// partials and a merge stage combines them, falling back to a single
    /// sequential operator when the workload is ineligible (see
    /// [`parallel_eligible`](crate::parallel::parallel_eligible)).
    pub fn aggregate_parallel<A>(
        self,
        cfg: PipelineConfig,
        f: A,
        windows: Vec<Box<dyn WindowFunction>>,
        op_cfg: OperatorConfig,
    ) -> PipelineReport<A::Output>
    where
        A: AggregateFunction<Input = V>,
        A::Output: Send,
    {
        run_parallel(self.elements, cfg, f, windows, op_cfg)
    }

    /// Collects the element stream (for tests and small jobs).
    pub fn collect(self) -> Vec<StreamElement<V>> {
        self.elements.collect()
    }
}

/// A keyed element stream, ready for windowed aggregation.
pub struct KeyedPipeline<V> {
    elements: Box<dyn Iterator<Item = StreamElement<(u64, V)>>>,
}

impl<V: 'static> KeyedPipeline<V> {
    /// Runs a window aggregation with one operator instance per partition
    /// (the `factory` builds each instance).
    pub fn aggregate<A, F>(self, cfg: PipelineConfig, factory: F) -> PipelineReport<A::Output>
    where
        A: AggregateFunction<Input = V>,
        A::Output: Send,
        F: Fn(usize) -> Box<dyn WindowAggregator<A>>,
    {
        run_keyed(self.elements, cfg, factory)
    }

    /// Runs a window aggregation with one **key-aware** operator per
    /// partition (e.g. [`gss_core::KeyedWindowOperator`]); results carry
    /// `(key, aggregate)` pairs. See [`run_per_key`].
    pub fn aggregate_per_key<A, F>(
        self,
        cfg: PipelineConfig,
        factory: F,
    ) -> PipelineReport<(u64, A::Output)>
    where
        A: AggregateFunction<Input = V>,
        A::Output: Send,
        F: Fn(usize) -> Box<dyn WindowAggregator<PerKey<A>>>,
    {
        run_per_key(self.elements, cfg, factory)
    }

    /// Collects the keyed element stream.
    pub fn collect(self) -> Vec<StreamElement<(u64, V)>> {
        self.elements.collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::watermark::AscendingTimestamps;
    use gss_core::operator::{OperatorConfig, WindowOperator};
    use gss_core::testsupport::SumI64;
    use gss_core::window::WindowFunction;
    use gss_core::ContextClass;
    use gss_core::Measure;
    use gss_core::Range;
    use gss_core::StreamOrder;

    #[derive(Clone, Copy)]
    struct Tumble100;
    impl WindowFunction for Tumble100 {
        fn measure(&self) -> Measure {
            Measure::Time
        }
        fn context(&self) -> ContextClass {
            ContextClass::ContextFree
        }
        fn next_edge(&self, ts: Time) -> Option<Time> {
            Some((ts.div_euclid(100) + 1) * 100)
        }
        fn next_window_end(&self, ts: Time) -> Option<Time> {
            self.next_edge(ts)
        }
        fn trigger_windows(&mut self, p: Time, c: Time, out: &mut dyn FnMut(Range)) {
            let mut e = (p.div_euclid(100) + 1) * 100;
            while e <= c {
                out(Range::new(e - 100, e));
                e += 100;
            }
        }
        fn windows_containing(&self, ts: Time, out: &mut dyn FnMut(Range)) {
            let s = ts.div_euclid(100) * 100;
            out(Range::new(s, s + 100));
        }
        fn max_extent(&self) -> i64 {
            100
        }
        fn clone_box(&self) -> Box<dyn WindowFunction> {
            Box::new(*self)
        }
    }

    #[test]
    fn map_filter_key_flow() {
        let records = (0..1_000i64).map(|i| (i, i));
        let report = Pipeline::from_records(records, AscendingTimestamps::default())
            .map(|_, v| v % 10)
            .filter(|_, v| *v != 0)
            .key_by(|_, v| (*v % 4) as u64)
            .aggregate(PipelineConfig::default(), |_| {
                let mut op = WindowOperator::new(
                    SumI64,
                    OperatorConfig {
                        order: StreamOrder::OutOfOrder,
                        allowed_lateness: 0,
                        ..Default::default()
                    },
                );
                op.add_query(Box::new(Tumble100)).unwrap();
                Box::new(op)
            });
        assert_eq!(report.records, 900); // v % 10 == 0 filtered out
        assert!(report.result_count >= 10);
        // Every window sums 1..=9 repeated 10x = 450 split across keys.
        let total: i64 = report.results.iter().map(|(_, r)| r.value).sum();
        assert_eq!(total, 900 / 9 * 45);
    }

    #[test]
    fn punctuate_every_closes_fcf_windows_end_to_end() {
        // Source-driven punctuations: the source emits no punctuation
        // marks itself; `punctuate_every` derives them from record
        // timestamps, and `run_keyed` broadcasts them to every partition
        // where the FCF punctuation window turns them into window edges.
        let records: Vec<(Time, i64)> = (0..200i64).map(|i| (i, 1)).collect();
        let report = Pipeline::from_elements(
            records.into_iter().map(|(ts, value)| StreamElement::Record { ts, value }),
        )
        .punctuate_every(50)
        .key_by(|_, v| (*v % 2) as u64)
        .aggregate(PipelineConfig::with_parallelism(2), |_| {
            let mut op = WindowOperator::new(SumI64, OperatorConfig::in_order());
            op.add_query(Box::new(gss_windows::PunctuationWindow::new())).unwrap();
            Box::new(op) as Box<dyn WindowAggregator<SumI64>>
        });
        assert_eq!(report.records, 200);
        let mut per_window: std::collections::BTreeMap<(i64, i64), i64> =
            std::collections::BTreeMap::new();
        for (_, r) in &report.results {
            *per_window.entry((r.range.start, r.range.end)).or_default() += r.value;
        }
        let windows: Vec<((i64, i64), i64)> = per_window.into_iter().collect();
        assert_eq!(
            windows,
            vec![((0, 50), 50), ((50, 100), 50), ((100, 150), 50), ((150, 200), 50)]
        );
    }

    #[test]
    fn punctuate_every_emits_boundaries_before_crossing_records() {
        let elements = vec![
            StreamElement::Record { ts: 1, value: 1i64 },
            StreamElement::Record { ts: 12, value: 2 },
            StreamElement::Watermark(12),
            StreamElement::Record { ts: 35, value: 3 },
        ];
        let out: Vec<_> = crate::source::punctuate_every(elements.into_iter(), 10).collect();
        let shape: Vec<String> = out
            .iter()
            .map(|e| match e {
                StreamElement::Record { ts, .. } => format!("r{ts}"),
                StreamElement::Watermark(w) => format!("w{w}"),
                StreamElement::Punctuation(p) => format!("p{p}"),
            })
            .collect();
        // p0 before the first record, p10 before ts=12, the watermark
        // untouched, p20 and p30 both before ts=35 (gap spans two
        // boundaries), and a closing p40 past the last record.
        assert_eq!(shape, vec!["p0", "r1", "p10", "r12", "w12", "p20", "p30", "r35", "p40"]);
    }

    #[test]
    fn collect_preserves_structure() {
        let records = vec![(0i64, 1i64), (10, 2)];
        let elements = Pipeline::from_records(records, AscendingTimestamps::default()).collect();
        assert_eq!(elements.iter().filter(|e| e.is_record()).count(), 2);
        assert!(matches!(elements.last(), Some(StreamElement::Watermark(_))));
        let keyed = Pipeline::from_elements(elements).key_by(|_, v| *v as u64).collect();
        assert!(matches!(keyed[0], StreamElement::Record { value: (1, 1), .. }));
    }
}
