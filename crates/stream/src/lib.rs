//! # gss-stream
//!
//! A minimal tuple-at-a-time dataflow substrate: bounded channels, key
//! partitioning, watermark broadcast, and one window-operator instance per
//! partition — the parallelization model of Flink/Storm-style systems that
//! the paper assumes (Section 5.3) and measures in Section 6.4.

pub mod batching;
pub mod builder;
pub mod metrics;
pub mod mutants;
pub mod parallel;
pub mod pipeline;
pub mod sharded;
pub mod source;
pub mod watermark;

pub use batching::{Batching, ChunkBuilder, RecordChunk};
pub use builder::{KeyedPipeline, Pipeline};
pub use metrics::{BatchSizeHistogram, LatencyHistogram};
pub use parallel::{parallel_eligible, run_parallel};
pub use pipeline::{
    partition_of, process_cpu_time, run_keyed, run_per_key, PipelineConfig, PipelineReport,
};
pub use sharded::{run_sharded_keyed, shard_of};
pub use source::{
    filter_records, key_by, map_records, punctuate_every, IteratorSource, PunctuateEvery,
};
pub use watermark::{AscendingTimestamps, BoundedOutOfOrderness, NoWatermarks, WatermarkStrategy};
