//! Sources: turn plain `(timestamp, value)` iterators into element
//! streams with watermarks, ready for [`crate::run_keyed`] or direct
//! operator feeding.

use gss_core::{StreamElement, Time};

use crate::watermark::WatermarkStrategy;

/// Adapts an iterator of timestamped records into a stream of
/// [`StreamElement`]s, interleaving watermarks from a strategy and
/// emitting a final flush watermark when the input ends.
pub struct IteratorSource<I, V, W>
where
    I: Iterator<Item = (Time, V)>,
    W: WatermarkStrategy,
{
    input: I,
    strategy: W,
    pending_wm: Option<Time>,
    closed: bool,
}

impl<I, V, W> IteratorSource<I, V, W>
where
    I: Iterator<Item = (Time, V)>,
    W: WatermarkStrategy,
{
    pub fn new(input: I, strategy: W) -> Self {
        IteratorSource { input, strategy, pending_wm: None, closed: false }
    }
}

impl<I, V, W> Iterator for IteratorSource<I, V, W>
where
    I: Iterator<Item = (Time, V)>,
    W: WatermarkStrategy,
{
    type Item = StreamElement<V>;

    fn next(&mut self) -> Option<StreamElement<V>> {
        if let Some(wm) = self.pending_wm.take() {
            return Some(StreamElement::Watermark(wm));
        }
        match self.input.next() {
            Some((ts, value)) => {
                self.pending_wm = self.strategy.on_record(ts);
                Some(StreamElement::Record { ts, value })
            }
            None if !self.closed => {
                self.closed = true;
                Some(StreamElement::Watermark(self.strategy.on_close()))
            }
            None => None,
        }
    }
}

/// Maps record payloads, passing watermarks and punctuations through.
pub fn map_records<V, W2>(
    elements: impl Iterator<Item = StreamElement<V>>,
    mut f: impl FnMut(Time, V) -> W2,
) -> impl Iterator<Item = StreamElement<W2>> {
    elements.map(move |e| match e {
        StreamElement::Record { ts, value } => StreamElement::Record { ts, value: f(ts, value) },
        StreamElement::Watermark(wm) => StreamElement::Watermark(wm),
        StreamElement::Punctuation(p) => StreamElement::Punctuation(p),
    })
}

/// Filters records by a predicate; watermarks and punctuations always
/// pass (dropping them would stall downstream progress).
pub fn filter_records<V>(
    elements: impl Iterator<Item = StreamElement<V>>,
    mut pred: impl FnMut(Time, &V) -> bool,
) -> impl Iterator<Item = StreamElement<V>> {
    elements.filter(move |e| match e {
        StreamElement::Record { ts, value } => pred(*ts, value),
        _ => true,
    })
}

/// Interleaves stream punctuations every `period` of event time, driven
/// by record timestamps: each boundary `k·period` is emitted *before*
/// the first record at or past it, and one closing punctuation past the
/// last record ends the final window. Watermarks pass through untouched.
/// This is the source-side half of FCF punctuation windows
/// (`gss-windows`' `PunctuationWindow`): the punctuations flow through
/// [`crate::run_keyed`]'s broadcast to every partition.
pub fn punctuate_every<V>(
    elements: impl Iterator<Item = StreamElement<V>>,
    period: Time,
) -> PunctuateEvery<impl Iterator<Item = StreamElement<V>>, V> {
    assert!(period > 0, "punctuation period must be positive");
    PunctuateEvery {
        input: elements,
        period,
        next_boundary: None,
        max_ts: None,
        pending: None,
        closed: false,
    }
}

/// Iterator returned by [`punctuate_every`].
pub struct PunctuateEvery<I, V>
where
    I: Iterator<Item = StreamElement<V>>,
{
    input: I,
    period: Time,
    next_boundary: Option<Time>,
    max_ts: Option<Time>,
    pending: Option<StreamElement<V>>,
    closed: bool,
}

impl<I, V> Iterator for PunctuateEvery<I, V>
where
    I: Iterator<Item = StreamElement<V>>,
{
    type Item = StreamElement<V>;

    fn next(&mut self) -> Option<StreamElement<V>> {
        loop {
            if let Some(e) = self.pending.take() {
                if let StreamElement::Record { ts, .. } = &e {
                    let Some(b) = self.next_boundary else {
                        // A stash without a pending boundary cannot
                        // happen (records are only stashed to let a
                        // boundary overtake them); emit it as-is.
                        return Some(e);
                    };
                    if b <= *ts {
                        // A record crossing one or more boundaries: emit
                        // them one by one ahead of it.
                        self.next_boundary = Some(b + self.period);
                        self.pending = Some(e);
                        return Some(StreamElement::Punctuation(b));
                    }
                }
                return Some(e);
            }
            match self.input.next() {
                Some(StreamElement::Record { ts, value }) => {
                    if self.next_boundary.is_none() {
                        self.next_boundary = Some(ts.div_euclid(self.period) * self.period);
                    }
                    self.max_ts = Some(self.max_ts.map_or(ts, |m| m.max(ts)));
                    self.pending = Some(StreamElement::Record { ts, value });
                }
                Some(other) => return Some(other),
                None => {
                    if self.closed {
                        return None;
                    }
                    self.closed = true;
                    // Close the last open window with one punctuation
                    // strictly past every record.
                    return self.max_ts.map(|m| {
                        StreamElement::Punctuation((m.div_euclid(self.period) + 1) * self.period)
                    });
                }
            }
        }
    }
}

/// Assigns keys to records (for [`crate::run_keyed`]).
pub fn key_by<V>(
    elements: impl Iterator<Item = StreamElement<V>>,
    mut key: impl FnMut(Time, &V) -> u64,
) -> impl Iterator<Item = StreamElement<(u64, V)>> {
    elements.map(move |e| match e {
        StreamElement::Record { ts, value } => {
            let k = key(ts, &value);
            StreamElement::Record { ts, value: (k, value) }
        }
        StreamElement::Watermark(wm) => StreamElement::Watermark(wm),
        StreamElement::Punctuation(p) => StreamElement::Punctuation(p),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::watermark::{AscendingTimestamps, BoundedOutOfOrderness};

    #[test]
    fn source_interleaves_watermarks_and_flushes() {
        let records = vec![(0i64, 1i64), (60, 2), (120, 3)];
        let elements: Vec<_> =
            IteratorSource::new(records.into_iter(), BoundedOutOfOrderness::new(10, 50)).collect();
        // record, record, wm(50), record, wm(110), flush-wm
        assert!(matches!(elements[0], StreamElement::Record { ts: 0, .. }));
        assert!(matches!(elements[1], StreamElement::Record { ts: 60, .. }));
        assert!(matches!(elements[2], StreamElement::Watermark(50)));
        assert!(matches!(elements[3], StreamElement::Record { ts: 120, .. }));
        assert!(matches!(elements[4], StreamElement::Watermark(110)));
        assert!(matches!(elements.last(), Some(StreamElement::Watermark(w)) if *w == i64::MAX - 1));
    }

    #[test]
    fn map_and_filter_preserve_watermarks() {
        let records = vec![(0i64, 1i64), (10, 2), (20, 3)];
        let src = IteratorSource::new(records.into_iter(), AscendingTimestamps::default());
        let mapped = map_records(src, |_, v| v * 10);
        let filtered: Vec<_> = filter_records(mapped, |_, v| *v != 20).collect();
        let records: Vec<i64> = filtered
            .iter()
            .filter_map(|e| match e {
                StreamElement::Record { value, .. } => Some(*value),
                _ => None,
            })
            .collect();
        assert_eq!(records, vec![10, 30]);
        let wms = filtered.iter().filter(|e| matches!(e, StreamElement::Watermark(_))).count();
        assert!(wms >= 3, "watermarks must pass through filters");
    }

    #[test]
    fn key_by_attaches_keys() {
        let records = vec![(0i64, 5i64), (1, 6)];
        let src = IteratorSource::new(records.into_iter(), AscendingTimestamps::default());
        let keyed: Vec<_> = key_by(src, |_, v| (*v % 2) as u64).collect();
        assert!(matches!(keyed[0], StreamElement::Record { value: (1, 5), .. }));
        assert!(matches!(keyed[2], StreamElement::Record { value: (0, 6), .. }));
    }
}
