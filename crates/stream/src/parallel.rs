//! Intra-query parallel slicing: worker-local slice pre-aggregation with
//! a combining merge stage.
//!
//! The paper parallelizes by key (Section 5.3); this module parallelizes
//! *within* one logical stream. N workers consume disjoint chunks of the
//! same stream, fold tuples into worker-local per-slice partials, and a
//! merge stage combines the partials into one authoritative
//! [`WindowOperator`] that triggers and emits exactly as the sequential
//! operator would. The split is sound because for **time-measure,
//! context-free windows with static edges** slice boundaries are a pure
//! function of the query set ([`Timeline`]): every worker derives the
//! same `[start, end)` spans without coordination, and a **commutative**
//! aggregate lets partials combine in any arrival order.
//!
//! ## Two-stage protocol
//!
//! * The driver deals record chunks round-robin to workers and broadcasts
//!   every watermark to all of them, in stream order.
//! * A worker folds each on-time tuple into a per-slice partial keyed by
//!   the slice covering its timestamp, and flushes the accumulated
//!   partials to the merge stage when it sees a watermark (then **acks**
//!   the watermark) or when its timeline grows past a cap. Tuples at or
//!   below the worker's watermark are buffered as individual straggler
//!   partials (one update emission each at the merge stage) and ride the
//!   head of the next flush batch in arrival order — coalescing is at
//!   the message level only, so every straggler still revises its
//!   windows exactly once. Tuples below `watermark - allowed_lateness`
//!   are dropped, mirroring the sequential operator.
//! * The merge stage keeps one FIFO queue per worker. Straggler partials
//!   at queue fronts (at or below the authoritative watermark) apply
//!   immediately via [`WindowOperator::add_parallel_partial`] so their
//!   update emissions land in the right epoch; on-time partials are
//!   *staged* per worker. The global watermark advances — triggering and
//!   emission — only when **every** queue front is a watermark ack (the
//!   *epoch barrier*): the staged lists are first combined pairwise in a
//!   **merge tree** ([`merge_partials_tree`], O(S·log N) combines for S
//!   slices and N workers instead of O(S·N) store touches), applied in
//!   one [`WindowOperator::merge_parallel_partials`] call, and then the
//!   operator advances to the minimum of the acked values, which equals
//!   the broadcast value since acks ride FIFO channels. Staging is
//!   invisible to emissions: an on-time partial's slice lies strictly
//!   above the watermark, so no already-fired window (`end <= wm`) can
//!   query it before the barrier applies it.
//!
//! ## In-order streams
//!
//! In-order configs emit per tuple, not per watermark, so the driver
//! *synthesizes* the missing watermarks: after dealing a full
//! round-robin round of chunks it broadcasts `max_ts - 1` (every future
//! record of a non-decreasing stream has `ts >= max_ts`, so nothing is
//! ever a straggler against a synthesized watermark), and after the last
//! chunk it broadcasts `max_ts`, which fires exactly the windows
//! (`end <= max_ts`) the sequential per-tuple sweep would have fired.
//! Workers hold records with `ts < wm` (strict — a record at exactly the
//! watermark is on time for every unfired window) and never drop them:
//! the in-order eviction horizon is the watermark itself. Explicit
//! watermarks and punctuation (which the in-order operator treats as a
//! trigger sweep) broadcast as watermark rounds too.
//!
//! Final window aggregates are exactly those of a sequential run. Late
//! *update* emissions (`is_update == true`) carry the same multiplicity;
//! their intermediate values can differ from the sequential run only when
//! two stragglers land in the same window within one watermark epoch from
//! different workers (each run reflects a different apply order of the
//! same commutative updates, so the last update of a window per epoch —
//! and every final — agrees).
//!
//! Ineligible workloads — count measures, context-aware windows
//! (sessions, punctuation), non-commutative functions, or forced tuple
//! storage — fall back to one sequential operator on the calling
//! thread; [`PipelineReport::parallel_workers`] reports which path ran.

use std::collections::VecDeque;
use std::time::Instant;

use crossbeam::runtime::{self, bounded, Receiver, Sender, TrySendError};
use crossbeam::sched::ProbeEvent;
use gss_core::{
    merge_partials_tree, AggregateFunction, ContextClass, Measure, OperatorConfig, Query, QueryId,
    SlicePartial, StreamElement, StreamOrder, Time, Timeline, WindowAggregator, WindowFunction,
    WindowOperator, WindowResult, TIME_MAX, TIME_MIN,
};

use crate::batching::{ChunkBuilder, RecordChunk};
use crate::metrics::{BatchSizeHistogram, LatencyHistogram};
use crate::pipeline::{process_cpu_time, PipelineConfig, PipelineReport};

/// Worker-side flush threshold, in timeline slices plus buffered
/// straggler partials. Bounds worker memory between watermarks; each
/// flush ships the accumulated partials and the timeline regrows on
/// demand.
const FLUSH_SLICE_CAP: usize = 4096;

/// Whether a workload can take the two-stage parallel path.
///
/// Requires: at least one query; a commutative aggregate (partials
/// combine in worker-arrival order, not stream order); no forced tuple
/// storage (partials carry no tuples to re-slice); and every window
/// time-measure, context-free, and static-edged (slice boundaries
/// derivable without coordination). Both stream orders qualify:
/// out-of-order configs ship their explicit watermarks through the epoch
/// barrier, and in-order configs (which emit per tuple) get watermarks
/// synthesized by the driver (see the module docs).
pub fn parallel_eligible<A: AggregateFunction>(
    f: &A,
    windows: &[Box<dyn WindowFunction>],
    op_cfg: &OperatorConfig,
) -> bool {
    !windows.is_empty()
        && f.properties().commutative
        && !op_cfg.force_tuple_storage
        && windows.iter().all(|w| {
            w.measure() == Measure::Time
                && w.context() == ContextClass::ContextFree
                && w.has_static_edges()
        })
}

/// Message from a worker to the merge stage.
enum MergeMsg<A: AggregateFunction> {
    /// Pre-aggregated slice partials, disjoint per message.
    Partials(Vec<SlicePartial<A>>),
    /// Ack of a broadcast watermark: everything this worker received
    /// before the watermark has already been shipped.
    Watermark(Time),
}

/// Work sent from the driver to one worker. Records travel as a
/// struct-of-arrays [`RecordChunk`] so the worker can fold same-slice
/// spans straight off the contiguous values column.
enum ParChunk<V> {
    Records(RecordChunk<V>),
    Watermark(Time),
}

/// Sends with backpressure accounting: the fast path is a non-blocking
/// `try_send`; when the merge stage's queue is full the blocking fallback
/// is timed, so the recorded latency *is* the queue wait.
pub(crate) fn send_timed<T>(tx: &Sender<T>, msg: T, wait: &mut LatencyHistogram) {
    match tx.try_send(msg) {
        Ok(()) => wait.record_ns(0),
        Err(TrySendError::Full(v)) => {
            let t0 = Instant::now();
            tx.send(v).expect("merge stage hung up");
            wait.record(t0.elapsed());
        }
        Err(TrySendError::Disconnected(_)) => panic!("merge stage hung up"),
    }
}

/// One in-flight per-slice accumulator on a worker.
struct Acc<A: AggregateFunction> {
    partial: A::Partial,
    t_first: Time,
    t_last: Time,
    n: u64,
}

/// Worker-local slicer: a [`Timeline`] of deterministic slice spans plus
/// an aligned ring of per-slice accumulators.
struct WorkerSlicer<A: AggregateFunction> {
    f: A,
    queries: Vec<Query>,
    lateness: Time,
    /// Declared order of the source stream: decides the straggler rule
    /// (strict `<` for in-order, `<=` for out-of-order) and whether
    /// too-late records drop (never on in-order streams, whose only
    /// sub-watermark records sit at synthesized `max_ts - 1` rounds).
    order: StreamOrder,
    /// Last broadcast watermark this worker acked.
    wm: Time,
    timeline: Timeline,
    /// Accumulator for the slice at the same timeline position; `None`
    /// until a tuple lands there. Kept aligned by mirroring the
    /// timeline's front/back growth.
    accs: VecDeque<Option<Acc<A>>>,
    filled: usize,
    /// Hot-path cache of the last slice hit: `(start, end, global
    /// index)`. The global index survives front growth (which shifts
    /// positions but not `base + pos`).
    cache: Option<(Time, Time, i64)>,
    /// Stragglers (at or below the acked watermark, within lateness)
    /// buffered in arrival order; they ride the next flush as the head of
    /// its `Partials` batch instead of each paying for a message.
    stragglers: Vec<SlicePartial<A>>,
    slices_created: u64,
    dropped_late: u64,
    /// Same-slice spans folded through a hand-written `fold_slice` kernel
    /// vs the default lift/combine loop.
    fold_hits: u64,
    fold_misses: u64,
}

impl<A: AggregateFunction> WorkerSlicer<A> {
    fn new(f: A, windows: &[Box<dyn WindowFunction>], lateness: Time, order: StreamOrder) -> Self {
        let queries = windows
            .iter()
            .enumerate()
            .map(|(id, w)| Query::new(id as QueryId, w.clone_box()))
            .collect();
        WorkerSlicer {
            f,
            queries,
            lateness,
            order,
            wm: TIME_MIN,
            timeline: Timeline::default(),
            accs: VecDeque::new(),
            filled: 0,
            cache: None,
            stragglers: Vec::new(),
            slices_created: 0,
            dropped_late: 0,
            fold_hits: 0,
            fold_misses: 0,
        }
    }

    /// Whether `ts` sits below this worker's acked watermark and must
    /// leave the fold fast path (straggler or drop). Strict for in-order
    /// streams: a record at exactly the watermark is on time for every
    /// window that has not fired (all have `end > wm`), and the
    /// sequential in-order operator adds it without an update emission.
    fn below_watermark(&self, ts: Time) -> bool {
        self.wm != TIME_MIN && if self.order.is_in_order() { ts < self.wm } else { ts <= self.wm }
    }

    fn ingest(&mut self, ts: Time, value: A::Input) {
        if self.wm != TIME_MIN {
            // Same drop rule as the sequential operator. In-order streams
            // never drop: their eviction horizon is the watermark itself,
            // and synthesized watermarks trail every unseen record.
            if !self.order.is_in_order() && ts < self.wm - self.lateness {
                self.dropped_late += 1;
                return;
            }
            if self.below_watermark(ts) {
                // Straggler at or below the acked watermark: buffer it as
                // its own partial (one update emission per straggler at
                // the merge stage) and let it ride the next flush instead
                // of paying for a singleton message. Sound because the
                // relative order of straggler and on-time partials within
                // an epoch is immaterial: on-time tuples only touch
                // windows that have not fired, the aggregate is
                // commutative, and the batch is applied before the next
                // epoch barrier either way.
                let start = Timeline::union_prev_edge(&self.queries, ts);
                let end = Timeline::union_next_edge(&self.queries, ts);
                self.stragglers.push(SlicePartial {
                    start,
                    end,
                    partial: self.f.lift(&value),
                    t_first: ts,
                    t_last: ts,
                    n: 1,
                });
                return;
            }
        }
        self.fold(ts, &value);
    }

    /// Resolves the slice covering `ts` — cache hit or timeline growth —
    /// returning `(start, end, position)` in the accumulator ring.
    fn locate(&mut self, ts: Time) -> (Time, Time, usize) {
        if let Some((start, end, g)) = self.cache {
            if ts >= start && ts < end {
                return (start, end, (g - self.timeline.base()) as usize);
            }
        }
        let old_base = self.timeline.base();
        let old_len = self.timeline.len();
        let pos = self.timeline.ensure_covering(ts, &self.queries, &mut self.slices_created);
        // Mirror the timeline's growth into the accumulator ring so
        // positions stay aligned.
        let front = (old_base - self.timeline.base()) as usize;
        let back = self.timeline.len() - old_len - front;
        for _ in 0..front {
            self.accs.push_front(None);
        }
        for _ in 0..back {
            self.accs.push_back(None);
        }
        let meta = self.timeline.get(pos);
        self.cache = Some((meta.start, meta.end, self.timeline.base() + pos as i64));
        (meta.start, meta.end, pos)
    }

    /// Combines a pre-folded partial covering `n` records into the
    /// accumulator at ring position `pos`.
    fn add_acc(&mut self, pos: usize, partial: A::Partial, t_first: Time, t_last: Time, n: u64) {
        let slot = &mut self.accs[pos];
        match slot.take() {
            None => {
                *slot = Some(Acc { partial, t_first, t_last, n });
                self.filled += 1;
            }
            Some(mut acc) => {
                acc.partial = self.f.combine(acc.partial, &partial);
                acc.t_first = acc.t_first.min(t_first);
                acc.t_last = acc.t_last.max(t_last);
                acc.n += n;
                *slot = Some(acc);
            }
        }
    }

    fn fold(&mut self, ts: Time, value: &A::Input) {
        let (_, _, pos) = self.locate(ts);
        let lifted = self.f.lift(value);
        self.add_acc(pos, lifted, ts, ts, 1);
    }

    /// Ingests a whole SoA chunk, folding each maximal same-slice span of
    /// on-time records through [`AggregateFunction::fold_slice`] on the
    /// contiguous values column — one combine per span instead of one
    /// per record. Stragglers and too-late records take the per-record
    /// [`ingest`](WorkerSlicer::ingest) path. Sound because parallel
    /// eligibility requires a commutative aggregate: slice membership,
    /// not intra-slice order, determines the result.
    fn ingest_chunk(&mut self, chunk: &RecordChunk<A::Input>) {
        chunk.check();
        let times = chunk.times();
        let values = chunk.values();
        let mut i = 0;
        while i < times.len() {
            let ts = times[i];
            if self.below_watermark(ts) {
                self.ingest(ts, values[i].clone());
                i += 1;
                continue;
            }
            let (start, end, pos) = self.locate(ts);
            let (mut t_first, mut t_last) = (ts, ts);
            let mut j = i + 1;
            while j < times.len() {
                let t = times[j];
                // A slice can straddle the watermark, so staying inside
                // `[start, end)` does not imply on-time: stragglers break
                // the span too.
                if t < start || t >= end || self.below_watermark(t) {
                    break;
                }
                t_first = t_first.min(t);
                t_last = t_last.max(t);
                j += 1;
            }
            // Contiguous spans always go through the paired-column hook —
            // the chunk carries both columns, and the default delegates to
            // `fold_slice` for values-kernel and kernel-less functions. A
            // miss means the aggregate has no hand-written kernel of
            // either shape.
            if self.f.has_fold_kernel() || self.f.has_pair_kernel() {
                self.fold_hits += 1;
            } else {
                self.fold_misses += 1;
            }
            let partial = match self.f.fold_slice_pairs(&times[i..j], &values[i..j]) {
                Some(p) => p,
                None => unreachable!("span holds at least one record"),
            };
            self.add_acc(pos, partial, t_first, t_last, (j - i) as u64);
            i = j;
        }
    }

    /// Ships buffered stragglers (arrival order, at the head of the
    /// batch) and every accumulated partial in **one** `Partials`
    /// message, then resets the timeline (boundary math is stateless, so
    /// it regrows exact spans on demand).
    fn flush(&mut self, tx: &Sender<(usize, MergeMsg<A>)>, me: usize, wait: &mut LatencyHistogram) {
        if self.filled > 0 || !self.stragglers.is_empty() {
            let mut parts = Vec::with_capacity(self.stragglers.len() + self.filled);
            parts.append(&mut self.stragglers);
            for (pos, slot) in self.accs.iter_mut().enumerate() {
                if let Some(acc) = slot.take() {
                    let meta = self.timeline.get(pos);
                    parts.push(SlicePartial {
                        start: meta.start,
                        end: meta.end,
                        partial: acc.partial,
                        t_first: acc.t_first,
                        t_last: acc.t_last,
                        n: acc.n,
                    });
                }
            }
            self.filled = 0;
            let shipped = parts.len() as u64;
            send_timed(tx, (me, MergeMsg::Partials(parts)), wait);
            runtime::probe(ProbeEvent::Shipped { src: me, items: shipped });
        }
        self.accs.clear();
        self.timeline.clear();
        self.cache = None;
    }
}

/// One worker thread: fold records into per-slice partials, flush + ack
/// on every watermark. Returns `(records, queue-wait histogram,
/// fold hits, fold misses)`.
fn worker_loop<A: AggregateFunction>(
    rx: Receiver<ParChunk<A::Input>>,
    tx: Sender<(usize, MergeMsg<A>)>,
    me: usize,
    mut slicer: WorkerSlicer<A>,
) -> (u64, LatencyHistogram, u64, u64) {
    let mut wait = LatencyHistogram::new();
    let mut records = 0u64;
    for chunk in rx.iter() {
        match chunk {
            ParChunk::Records(chunk) => {
                records += chunk.len() as u64;
                slicer.ingest_chunk(&chunk);
                if slicer.timeline.len() + slicer.stragglers.len() >= FLUSH_SLICE_CAP {
                    slicer.flush(&tx, me, &mut wait);
                }
            }
            ParChunk::Watermark(wm) => {
                // Flush, then ack: after the ack every pre-watermark
                // tuple this worker received is with the merge stage.
                // Every watermark is acked — even a regressive one, which
                // the operator ignores — so ack sequences align across
                // workers and the merge barrier stays in lockstep.
                slicer.flush(&tx, me, &mut wait);
                send_timed(&tx, (me, MergeMsg::Watermark(wm)), &mut wait);
                slicer.wm = slicer.wm.max(wm);
            }
        }
    }
    // End of stream: ship whatever is still pending.
    slicer.flush(&tx, me, &mut wait);
    (records, wait, slicer.fold_hits, slicer.fold_misses)
}

/// Applies every message that is ready under the epoch barrier.
///
/// Stragglers at queue fronts (at or below the authoritative watermark)
/// apply immediately — their update emissions belong to the current
/// epoch and only fired windows (`end <= wm`) can see them. On-time
/// partials are staged per worker; a watermark round, ready only once
/// all workers have acked, first combines the staged lists through the
/// pairwise [`merge_partials_tree`] — one store touch per slice instead
/// of one per `(worker, slice)` — then applies and triggers. Staging
/// cannot change any emission: an on-time partial's slice lies strictly
/// above the watermark, so no window fired before the barrier covers it.
fn apply_ready<A: AggregateFunction>(
    f: &A,
    queues: &mut [VecDeque<MergeMsg<A>>],
    staged: &mut [Vec<SlicePartial<A>>],
    op: &mut WindowOperator<A>,
    out: &mut Vec<WindowResult<A::Output>>,
) {
    loop {
        let mut progressed = false;
        for (w, q) in queues.iter_mut().enumerate() {
            while matches!(q.front(), Some(MergeMsg::Partials(_))) {
                let Some(MergeMsg::Partials(parts)) = q.pop_front() else { unreachable!() };
                #[cfg(feature = "sched-mutants")]
                let parts =
                    crate::mutants::double_if(crate::mutants::Mutant::ParDoubleApply, parts);
                runtime::probe(ProbeEvent::Applied { src: w, items: parts.len() as u64 });
                let wm = op.current_watermark();
                for p in parts {
                    if wm != TIME_MIN && p.t_first <= wm {
                        // The straggler branch of `add_parallel_partial`
                        // flushes eager repairs itself before emitting.
                        op.add_parallel_partial(p, out);
                    } else {
                        staged[w].push(p);
                    }
                }
                progressed = true;
            }
        }
        let fire = if crate::mutants::is(crate::mutants::Mutant::ParEagerBarrier) {
            queues.iter().any(|q| matches!(q.front(), Some(MergeMsg::Watermark(_))))
        } else {
            queues.iter().all(|q| matches!(q.front(), Some(MergeMsg::Watermark(_))))
        };
        if fire {
            // All acks in: every partial preceding the watermark in any
            // worker's stream has been staged or applied above, so
            // triggering is safe once the staged lists land. Watermarks
            // are broadcast in stream order over FIFO channels, so the
            // fronts agree; min is defensive.
            let mut wm = TIME_MAX;
            let mut acks = 0u64;
            for (src, q) in queues.iter_mut().enumerate() {
                // Healthy runs pop every front (the `all` gate above
                // guarantees they are acks); the eager-barrier mutant
                // skips workers that have not acked yet.
                let w = match q.front() {
                    Some(MergeMsg::Watermark(w)) => *w,
                    _ => continue,
                };
                q.pop_front();
                runtime::probe(ProbeEvent::AckSeen { src, wm: w });
                gss_core::audit_assert!(
                    wm == TIME_MAX || w == wm,
                    "barrier acks disagree: {w} vs {wm} (FIFO broadcast broken)"
                );
                wm = wm.min(w);
                acks += 1;
            }
            runtime::probe(ProbeEvent::Barrier { wm, acks });
            let lists: Vec<Vec<SlicePartial<A>>> = staged.iter_mut().map(std::mem::take).collect();
            op.merge_parallel_partials(merge_partials_tree(f, lists), out);
            op.process_watermark(wm, out);
            progressed = true;
        }
        if !progressed {
            return;
        }
    }
}

/// The merge stage: one FIFO queue per worker, epoch-barrier watermark
/// advancement. Returns `(results, result count)`.
fn merge_loop<A: AggregateFunction>(
    rx: Receiver<(usize, MergeMsg<A>)>,
    mut op: WindowOperator<A>,
    f: &A,
    workers: usize,
    collect: bool,
) -> (Vec<WindowResult<A::Output>>, u64) {
    let mut queues: Vec<VecDeque<MergeMsg<A>>> = (0..workers).map(|_| VecDeque::new()).collect();
    let mut staged: Vec<Vec<SlicePartial<A>>> = (0..workers).map(|_| Vec::new()).collect();
    let mut results = Vec::new();
    let mut scratch: Vec<WindowResult<A::Output>> = Vec::new();
    let mut count = 0u64;
    let account =
        |scratch: &mut Vec<WindowResult<A::Output>>, results: &mut Vec<_>, count: &mut u64| {
            *count += scratch.len() as u64;
            if collect {
                results.append(scratch);
            } else {
                scratch.clear();
            }
        };
    while let Ok((w, msg)) = rx.recv() {
        queues[w].push_back(msg);
        // Drain the burst already queued before doing merge work.
        for (w2, m2) in rx.try_iter() {
            queues[w2].push_back(m2);
        }
        apply_ready(f, &mut queues, &mut staged, &mut op, &mut scratch);
        account(&mut scratch, &mut results, &mut count);
    }
    // Channel closed: every worker has shipped its tail. All watermark
    // rounds complete because workers ack 1:1 with broadcasts; partials
    // flushed after the last watermark stay staged — fold them in for
    // state completeness (above the final watermark, they emit nothing).
    apply_ready(f, &mut queues, &mut staged, &mut op, &mut scratch);
    let tail = merge_partials_tree(f, staged.iter_mut().map(std::mem::take).collect());
    if !tail.is_empty() {
        op.merge_parallel_partials(tail, &mut scratch);
    }
    account(&mut scratch, &mut results, &mut count);
    debug_assert!(queues.iter().all(|q| q.is_empty()), "merge queues must drain at end of stream");
    (results, count)
}

/// Runs one logical window aggregation with intra-query parallelism:
/// worker-local slice pre-aggregation on `cfg.parallelism` threads and a
/// combining merge stage driving one authoritative [`WindowOperator`].
///
/// Eligible workloads (see [`parallel_eligible`]) produce exactly the
/// final window results of a sequential operator with the same config;
/// ineligible ones fall back to that sequential operator on the calling
/// thread (`report.parallel_workers == 0`).
///
/// ```
/// use gss_core::{OperatorConfig, StreamElement};
/// use gss_core::testsupport::SumI64;
/// use gss_stream::{run_parallel, PipelineConfig};
/// use gss_windows::TumblingWindow;
///
/// let elements = (0..100i64)
///     .map(|i| StreamElement::Record { ts: i, value: 1i64 })
///     .chain([StreamElement::Watermark(100)]);
/// let report = run_parallel(
///     elements,
///     PipelineConfig::with_parallelism(2),
///     SumI64,
///     vec![Box::new(TumblingWindow::new(10))],
///     OperatorConfig::out_of_order(0),
/// );
/// assert_eq!(report.parallel_workers, 2);
/// assert_eq!(report.result_count, 10);
/// assert!(report.results.iter().all(|(_, r)| r.value == 10));
/// ```
pub fn run_parallel<A>(
    elements: impl IntoIterator<Item = StreamElement<A::Input>>,
    cfg: PipelineConfig,
    f: A,
    windows: Vec<Box<dyn WindowFunction>>,
    op_cfg: OperatorConfig,
) -> PipelineReport<A::Output>
where
    A: AggregateFunction,
    A::Output: Send,
{
    if !parallel_eligible(&f, &windows, &op_cfg) {
        return run_sequential(elements, cfg, f, windows, op_cfg);
    }
    let workers = cfg.parallelism.max(1);
    let cpu_before = process_cpu_time();
    let start = Instant::now();
    let mut report = PipelineReport::empty();
    report.parallel_workers = workers;

    // The merge operator is the single authority on triggering and
    // eviction. It never sees raw tuples — slices enter pre-aligned to
    // full static-edge intervals via `add_parallel_partial` — so the
    // ablation switches of `op_cfg` (which shape the tuple path) don't
    // apply; order/policy/lateness carry over.
    let merge_cfg = OperatorConfig {
        order: StreamOrder::OutOfOrder,
        policy: op_cfg.policy,
        allowed_lateness: op_cfg.allowed_lateness,
        ..OperatorConfig::default()
    };
    let mut op = WindowOperator::new(f.clone(), merge_cfg);
    for w in &windows {
        op.add_query(w.clone_box()).expect("time-measure queries cannot conflict");
    }

    runtime::scope(|scope| {
        let (mtx, mrx) = bounded::<(usize, MergeMsg<A>)>(cfg.channel_capacity.max(workers));
        let collect = cfg.collect_results;
        let merge_f = f.clone();
        let merge = scope.spawn(move || merge_loop(mrx, op, &merge_f, workers, collect));

        let mut senders: Vec<Sender<ParChunk<A::Input>>> = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = bounded::<ParChunk<A::Input>>(cfg.channel_capacity);
            senders.push(tx);
            let slicer =
                WorkerSlicer::new(f.clone(), &windows, op_cfg.allowed_lateness, op_cfg.order);
            let mtx = mtx.clone();
            handles.push(scope.spawn(move || worker_loop(rx, mtx, i, slicer)));
        }
        // Workers hold the only remaining clones; the merge loop ends
        // when the last worker exits.
        drop(mtx);

        // Driver: deal record chunks round-robin, broadcast watermarks
        // in stream order. O(1) work per chunk keeps the single-threaded
        // driver off the critical path. In-order streams carry no (or
        // few) explicit watermarks — their sequential operator emits per
        // tuple — so the driver synthesizes rounds: `max_ts - 1` after
        // each full deal round (strictly below every unseen record of a
        // non-decreasing stream) and `max_ts` at end of stream, firing
        // exactly the windows the per-tuple sweep would have fired.
        let in_order = op_cfg.order.is_in_order();
        let mut max_ts = TIME_MIN;
        let mut last_wm = TIME_MIN;
        let mut builder: ChunkBuilder<A::Input> = ChunkBuilder::new(cfg.batching);
        let mut sizes = BatchSizeHistogram::new();
        let mut next = 0usize;
        let broadcast = |senders: &[Sender<ParChunk<A::Input>>], wm: Time| {
            for tx in senders {
                tx.send(ParChunk::Watermark(wm)).expect("worker hung up");
            }
        };
        for element in elements {
            match element {
                StreamElement::Record { ts, value } => {
                    if let Some(chunk) = builder.push(ts, value) {
                        sizes.record(chunk.len());
                        if in_order {
                            // In-order ⇒ the chunk's last time is its max.
                            if let Some(&t) = chunk.times().last() {
                                max_ts = max_ts.max(t);
                            }
                        }
                        senders[next].send(ParChunk::Records(chunk)).expect("worker hung up");
                        next = (next + 1) % workers;
                        if in_order && next == 0 && max_ts > TIME_MIN && max_ts - 1 > last_wm {
                            last_wm = max_ts - 1;
                            broadcast(&senders, last_wm);
                        }
                    }
                }
                StreamElement::Watermark(wm) => {
                    if let Some(chunk) = builder.take() {
                        sizes.record(chunk.len());
                        if in_order {
                            if let Some(&t) = chunk.times().last() {
                                max_ts = max_ts.max(t);
                            }
                        }
                        senders[next].send(ParChunk::Records(chunk)).expect("worker hung up");
                        next = (next + 1) % workers;
                    }
                    last_wm = last_wm.max(wm);
                    broadcast(&senders, wm);
                }
                StreamElement::Punctuation(ts) => {
                    // Context-free static-edge windows ignore punctuation
                    // as a *context* event (punctuation-driven windows are
                    // ineligible and take the fallback), but the in-order
                    // operator also treats it as a trigger sweep up to
                    // `ts` — reproduce that as a watermark round.
                    if in_order && ts > last_wm {
                        if let Some(chunk) = builder.take() {
                            sizes.record(chunk.len());
                            if let Some(&t) = chunk.times().last() {
                                max_ts = max_ts.max(t);
                            }
                            senders[next].send(ParChunk::Records(chunk)).expect("worker hung up");
                            next = (next + 1) % workers;
                        }
                        last_wm = ts;
                        broadcast(&senders, ts);
                    }
                }
            }
        }
        if let Some(chunk) = builder.take() {
            sizes.record(chunk.len());
            if in_order {
                if let Some(&t) = chunk.times().last() {
                    max_ts = max_ts.max(t);
                }
            }
            senders[next].send(ParChunk::Records(chunk)).expect("worker hung up");
        }
        if in_order && max_ts > TIME_MIN && max_ts > last_wm {
            // Final synthesized round: the sequential per-tuple sweep has
            // fired every window with `end <= max_ts` by end of stream.
            broadcast(&senders, max_ts);
        }
        drop(senders);
        report.batch_sizes = sizes;

        for h in handles {
            let (records, wait, hits, misses) = h.join().expect("worker panicked");
            report.records += records;
            report.send_wait.merge(&wait);
            report.fold_hits += hits;
            report.fold_misses += misses;
        }
        let (results, count) = merge.join().expect("merge stage panicked");
        report.result_count = count;
        report.results = results.into_iter().map(|r| (0usize, r)).collect();
    });

    report.elapsed = start.elapsed();
    report.cpu_time = process_cpu_time().saturating_sub(cpu_before);
    report
}

/// The fallback: one sequential [`WindowOperator`] on the calling thread,
/// with the exact semantics of the user's `op_cfg` (including in-order
/// emission and context-aware windows). Chunked like the parallel path so
/// throughput numbers compare setup-for-setup.
fn run_sequential<A>(
    elements: impl IntoIterator<Item = StreamElement<A::Input>>,
    cfg: PipelineConfig,
    f: A,
    windows: Vec<Box<dyn WindowFunction>>,
    op_cfg: OperatorConfig,
) -> PipelineReport<A::Output>
where
    A: AggregateFunction,
    A::Output: Send,
{
    let cpu_before = process_cpu_time();
    let start = Instant::now();
    let mut report = PipelineReport::empty();
    let mut op = WindowOperator::new(f, op_cfg);
    for w in &windows {
        op.add_query(w.clone_box()).expect("incompatible query mix");
    }
    let per_tuple = cfg.batching.is_per_tuple();
    let mut builder: ChunkBuilder<A::Input> = ChunkBuilder::new(cfg.batching);
    let mut sizes = BatchSizeHistogram::new();
    let mut scratch: Vec<WindowResult<A::Output>> = Vec::new();

    fn drain_chunk<A: AggregateFunction>(
        op: &mut WindowOperator<A>,
        chunk: RecordChunk<A::Input>,
        per_tuple: bool,
        scratch: &mut Vec<WindowResult<A::Output>>,
    ) {
        // Size-1 chunks take the per-record entry point (run detection is
        // pure overhead on a single record).
        if per_tuple || chunk.len() == 1 {
            for (ts, v) in chunk {
                op.process_tuple(ts, v, scratch);
            }
        } else {
            op.process_batch_columns(chunk.times(), chunk.values(), scratch);
        }
    }

    for element in elements {
        match element {
            StreamElement::Record { ts, value } => {
                report.records += 1;
                if let Some(chunk) = builder.push(ts, value) {
                    sizes.record(chunk.len());
                    drain_chunk(&mut op, chunk, per_tuple, &mut scratch);
                }
            }
            StreamElement::Watermark(wm) => {
                if let Some(chunk) = builder.take() {
                    sizes.record(chunk.len());
                    drain_chunk(&mut op, chunk, per_tuple, &mut scratch);
                }
                op.process_watermark(wm, &mut scratch);
            }
            StreamElement::Punctuation(ts) => {
                if let Some(chunk) = builder.take() {
                    sizes.record(chunk.len());
                    drain_chunk(&mut op, chunk, per_tuple, &mut scratch);
                }
                op.process_punctuation(ts, &mut scratch);
            }
        }
        if !scratch.is_empty() {
            report.result_count += scratch.len() as u64;
            if cfg.collect_results {
                report.results.extend(scratch.drain(..).map(|r| (0usize, r)));
            } else {
                scratch.clear();
            }
        }
    }
    if let Some(chunk) = builder.take() {
        sizes.record(chunk.len());
        drain_chunk(&mut op, chunk, per_tuple, &mut scratch);
    }
    report.result_count += scratch.len() as u64;
    if cfg.collect_results {
        report.results.extend(scratch.drain(..).map(|r| (0usize, r)));
    }
    let (fold_hits, fold_misses) = WindowAggregator::fold_stats(&op);
    report.fold_hits = fold_hits;
    report.fold_misses = fold_misses;
    report.batch_sizes = sizes;

    report.elapsed = start.elapsed();
    report.cpu_time = process_cpu_time().saturating_sub(cpu_before);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_core::testsupport::{Concat, SumI64};
    use gss_core::{Range, StorePolicy};
    use gss_windows::{CountTumblingWindow, SessionWindow, SlidingWindow, TumblingWindow};

    fn tumbling(len: i64) -> Vec<Box<dyn WindowFunction>> {
        vec![Box::new(TumblingWindow::new(len))]
    }

    /// Reference: drive one sequential operator per element.
    fn sequential_finals(
        elements: &[StreamElement<i64>],
        windows: &[Box<dyn WindowFunction>],
        op_cfg: OperatorConfig,
    ) -> Vec<(QueryId, Range, i64)> {
        let mut op = WindowOperator::new(SumI64, op_cfg);
        for w in windows {
            op.add_query(w.clone_box()).unwrap();
        }
        let mut out = Vec::new();
        for e in elements {
            match e {
                StreamElement::Record { ts, value } => op.process_tuple(*ts, *value, &mut out),
                StreamElement::Watermark(wm) => op.process_watermark(*wm, &mut out),
                StreamElement::Punctuation(ts) => op.process_punctuation(*ts, &mut out),
            }
        }
        finals(out.iter())
    }

    /// Last emission per window — the value a downstream consumer keeps.
    fn finals<'a>(
        results: impl Iterator<Item = &'a WindowResult<i64>>,
    ) -> Vec<(QueryId, Range, i64)> {
        let mut map = std::collections::BTreeMap::new();
        for r in results {
            map.insert((r.query, r.range.start, r.range.end), r.value);
        }
        map.into_iter().map(|((q, s, e), v)| (q, Range::new(s, e), v)).collect()
    }

    /// Mostly ascending stream with periodic watermarks, occasional
    /// stragglers (below the watermark but within lateness), and a few
    /// too-late tuples that must be dropped.
    fn stream_with_watermarks(n: i64, every: i64) -> Vec<StreamElement<i64>> {
        let mut v = Vec::new();
        for i in 0..n {
            let ts = match i % 11 {
                7 => (i * 3 - 25).max(0),  // straggler once watermarks start
                9 => (i * 3 - 200).max(0), // far below wm - lateness: dropped
                _ => i * 3,
            };
            v.push(StreamElement::Record { ts, value: i });
            if i % every == every - 1 {
                v.push(StreamElement::Watermark(i * 3 - 20));
            }
        }
        v.push(StreamElement::Watermark(i64::MAX - 1));
        v
    }

    #[test]
    fn eligibility_rules() {
        let ooo = OperatorConfig::out_of_order(10);
        assert!(parallel_eligible(&SumI64, &tumbling(10), &ooo));
        // Sessions are context aware.
        let session: Vec<Box<dyn WindowFunction>> = vec![Box::new(SessionWindow::new(5))];
        assert!(!parallel_eligible(&SumI64, &session, &ooo));
        // Count measure shifts tuples across slices.
        let count: Vec<Box<dyn WindowFunction>> = vec![Box::new(CountTumblingWindow::new(10))];
        assert!(!parallel_eligible(&SumI64, &count, &ooo));
        // Non-commutative functions need stream order.
        assert!(!parallel_eligible(&Concat, &tumbling(10), &ooo));
        // One bad query poisons the mix.
        let mixed: Vec<Box<dyn WindowFunction>> =
            vec![Box::new(TumblingWindow::new(10)), Box::new(SessionWindow::new(5))];
        assert!(!parallel_eligible(&SumI64, &mixed, &ooo));
        // In-order configs are eligible too: the driver synthesizes the
        // watermark rounds their per-tuple emission otherwise provides.
        assert!(parallel_eligible(&SumI64, &tumbling(10), &OperatorConfig::in_order()));
        // Forced tuple storage keeps raw tuples, which partials drop.
        let forced = OperatorConfig { force_tuple_storage: true, ..ooo };
        assert!(!parallel_eligible(&SumI64, &tumbling(10), &forced));
        let none: Vec<Box<dyn WindowFunction>> = Vec::new();
        assert!(!parallel_eligible(&SumI64, &none, &ooo));
    }

    #[test]
    fn matches_sequential_across_workers_and_batches() {
        let elements = stream_with_watermarks(500, 64);
        let windows: Vec<Box<dyn WindowFunction>> =
            vec![Box::new(TumblingWindow::new(50)), Box::new(SlidingWindow::new(100, 30))];
        let cfg = OperatorConfig::out_of_order(30);
        let expect = sequential_finals(&elements, &windows, cfg);
        assert!(!expect.is_empty());
        for workers in [1, 2, 4] {
            for batch in [1, 7, 512] {
                let report = run_parallel(
                    elements.iter().cloned(),
                    PipelineConfig::with_parallelism(workers).with_batch_size(batch),
                    SumI64,
                    windows.iter().map(|w| w.clone_box()).collect(),
                    cfg,
                );
                assert_eq!(report.parallel_workers, workers);
                assert_eq!(report.records, 500);
                let got = finals(report.results.iter().map(|(_, r)| r));
                assert_eq!(got, expect, "workers={workers} batch={batch}");
            }
        }
    }

    #[test]
    fn eager_store_matches_sequential() {
        let elements = stream_with_watermarks(300, 32);
        let cfg = OperatorConfig::out_of_order(20).with_policy(StorePolicy::Eager);
        let expect = sequential_finals(&elements, &tumbling(25), cfg);
        let report = run_parallel(
            elements.iter().cloned(),
            PipelineConfig::with_parallelism(3).with_batch_size(16),
            SumI64,
            tumbling(25),
            cfg,
        );
        assert_eq!(finals(report.results.iter().map(|(_, r)| r)), expect);
    }

    #[test]
    fn straggler_updates_have_exact_multiplicity() {
        // One straggler within lateness must produce exactly one update
        // emission for each affected window, as in the sequential run.
        let elements = vec![
            StreamElement::Record { ts: 5, value: 1 },
            StreamElement::Record { ts: 15, value: 2 },
            StreamElement::Watermark(20),
            StreamElement::Record { ts: 7, value: 10 }, // straggler
            StreamElement::Watermark(40),
        ];
        let cfg = OperatorConfig::out_of_order(100);
        for workers in [1, 2, 4] {
            let report = run_parallel(
                elements.iter().cloned(),
                PipelineConfig::with_parallelism(workers).with_batch_size(1),
                SumI64,
                tumbling(10),
                cfg,
            );
            let updates: Vec<_> =
                report.results.iter().filter(|(_, r)| r.is_update).map(|(_, r)| r).collect();
            assert_eq!(updates.len(), 1, "workers={workers}");
            assert_eq!(updates[0].range, Range::new(0, 10));
            assert_eq!(updates[0].value, 11);
            let got = finals(report.results.iter().map(|(_, r)| r));
            assert_eq!(got, sequential_finals(&elements, &tumbling(10), cfg));
        }
    }

    #[test]
    fn ineligible_workload_falls_back() {
        let elements = [
            StreamElement::Record { ts: 1, value: 4 },
            StreamElement::Record { ts: 3, value: 5 },
            StreamElement::Record { ts: 30, value: 1 },
            StreamElement::Watermark(50),
        ];
        let session: Vec<Box<dyn WindowFunction>> = vec![Box::new(SessionWindow::new(10))];
        let report = run_parallel(
            elements.iter().cloned(),
            PipelineConfig::with_parallelism(4),
            SumI64,
            session,
            OperatorConfig::out_of_order(0),
        );
        assert_eq!(report.parallel_workers, 0, "session windows must fall back");
        assert_eq!(report.records, 3);
        let vals: Vec<i64> = report.results.iter().map(|(_, r)| r.value).collect();
        assert_eq!(vals, vec![9, 1]);
    }

    #[test]
    fn in_order_runs_parallel_with_synthesized_watermarks() {
        let elements: Vec<StreamElement<i64>> =
            (0..40).map(|i| StreamElement::Record { ts: i, value: 1 }).collect();
        for batch in [1, 7, 64] {
            let report = run_parallel(
                elements.iter().cloned(),
                PipelineConfig::with_parallelism(2).with_batch_size(batch),
                SumI64,
                tumbling(10),
                OperatorConfig::in_order(),
            );
            assert_eq!(report.parallel_workers, 2, "batch={batch}");
            // The sequential in-order operator fires exactly the windows
            // with `end <= max_ts = 39`: three tumbling windows, each
            // summing ten ones — and so must the synthesized rounds.
            assert_eq!(report.result_count, 3, "batch={batch}");
            let mut got: Vec<_> = report
                .results
                .iter()
                .map(|(_, r)| (r.range.start, r.range.end, r.value, r.is_update))
                .collect();
            got.sort();
            assert_eq!(
                got,
                vec![(0, 10, 10, false), (10, 20, 10, false), (20, 30, 10, false)],
                "batch={batch}"
            );
        }
    }

    #[test]
    fn in_order_matches_sequential_with_explicit_watermarks_and_punctuation() {
        // Sorted stream with explicit watermarks (at or below the record
        // horizon, as an in-order stream guarantees) and punctuation,
        // which the in-order operator treats as a trigger sweep.
        let mut elements = Vec::new();
        for i in 0..300i64 {
            elements.push(StreamElement::Record { ts: i * 2, value: i });
            if i % 37 == 36 {
                elements.push(StreamElement::Watermark(i * 2));
            }
            if i % 61 == 60 {
                elements.push(StreamElement::Punctuation(i * 2 + 1));
            }
        }
        let windows: Vec<Box<dyn WindowFunction>> =
            vec![Box::new(TumblingWindow::new(50)), Box::new(SlidingWindow::new(100, 30))];
        let cfg = OperatorConfig::in_order();
        let expect = sequential_finals(&elements, &windows, cfg);
        assert!(!expect.is_empty());
        for workers in [1, 2, 4] {
            for batch in [1, 16, 512] {
                let report = run_parallel(
                    elements.iter().cloned(),
                    PipelineConfig::with_parallelism(workers).with_batch_size(batch),
                    SumI64,
                    windows.iter().map(|w| w.clone_box()).collect(),
                    cfg,
                );
                assert_eq!(report.parallel_workers, workers);
                assert!(
                    report.results.iter().all(|(_, r)| !r.is_update),
                    "in-order runs never emit updates (workers={workers} batch={batch})"
                );
                let got = finals(report.results.iter().map(|(_, r)| r));
                assert_eq!(got, expect, "workers={workers} batch={batch}");
            }
        }
    }

    #[test]
    fn fallback_preserves_in_order_emission() {
        // Forced tuple storage is ineligible regardless of order; the
        // fallback must keep the per-tuple in-order emission semantics.
        let elements: Vec<StreamElement<i64>> =
            (0..40).map(|i| StreamElement::Record { ts: i, value: 1 }).collect();
        let report = run_parallel(
            elements,
            PipelineConfig::with_parallelism(2),
            SumI64,
            tumbling(10),
            OperatorConfig { force_tuple_storage: true, ..OperatorConfig::in_order() },
        );
        assert_eq!(report.parallel_workers, 0);
        // In-order streams emit as tuples cross window ends — no
        // watermarks needed.
        assert_eq!(report.result_count, 3);
    }

    #[test]
    fn parallel_report_carries_fold_and_batch_metrics() {
        let elements = stream_with_watermarks(500, 64);
        let report = run_parallel(
            elements.iter().cloned(),
            PipelineConfig::with_parallelism(2).with_batch_size(64),
            SumI64,
            tumbling(10),
            OperatorConfig::out_of_order(30),
        );
        assert_eq!(report.parallel_workers, 2);
        // SumI64 (testsupport) has no fold kernel, so every span is a
        // miss — but spans were folded, and every chunk was recorded.
        assert_eq!(report.fold_hits, 0);
        assert!(report.fold_misses > 0, "spans must be counted");
        assert!(!report.batch_sizes.is_empty());
        assert_eq!(report.batch_sizes.records(), 500);
        assert!(report.batch_sizes.max() <= 64);
    }

    #[test]
    fn throughput_only_counts_without_collecting() {
        let elements = stream_with_watermarks(200, 50);
        let report = run_parallel(
            elements.iter().cloned(),
            PipelineConfig::with_parallelism(2).throughput_only(),
            SumI64,
            tumbling(10),
            OperatorConfig::out_of_order(10),
        );
        assert!(report.results.is_empty());
        assert!(report.result_count > 0);
    }
}
