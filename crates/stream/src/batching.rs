//! Latency-bounded adaptive batching and the struct-of-arrays record
//! chunk.
//!
//! Sources pack records into [`RecordChunk`]s — separate `times` /
//! `values` columns — so a worker can hand the operator's bulk-fold
//! kernel a contiguous primitive value slice without re-materializing
//! `(time, value)` pairs. [`ChunkBuilder`] decides where chunk boundaries
//! fall: accumulate until either a target size or a deadline relative to
//! the chunk's first record, whichever comes first.
//!
//! ## Why a wall-clock deadline is event-time-safe
//!
//! Chunking is pure transport: results are driven by event-time
//! watermarks and punctuations, and every source flushes its pending
//! chunk *before* broadcasting either, so window contents, emission
//! points, and emission order are identical for every possible chunking.
//! The deadline therefore only bounds how long a record can sit in a
//! half-full buffer (ingestion latency); it can never change an answer.
//! That is also why the wall clock lives here in `gss-stream` and not in
//! `gss-core` — the operator itself stays event-time-only (enforced by
//! the `no-wallclock` lint), and the clock is injectable so tests drive
//! the deadline deterministically.

use std::time::{Duration, Instant};

use gss_core::Time;

/// How sources pack records into chunks and how workers feed them to the
/// operator. Replaces the old fixed `batch_size`/`batched` knob pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Batching {
    /// One `process` call per record at the operator (the pre-batching
    /// behavior). Records still ride the channels in chunks of `chunk`
    /// for transport.
    PerTuple { chunk: usize },
    /// Fixed-size chunks fed through the batched ingestion path.
    Fixed(usize),
    /// Accumulate until `target` records or until `max_delay` has passed
    /// since the chunk's first record, whichever comes first. High-rate
    /// streams get full `target`-sized chunks (batched-throughput
    /// regime); low-rate streams get small chunks within `max_delay`
    /// (latency regime) — no tuning knob to misconfigure.
    Adaptive { target: usize, max_delay: Duration },
}

impl Batching {
    /// Default adaptive target: matches the plateau of the batch-size
    /// sweep in `BENCH_batch.json` (throughput is flat past ~4096).
    pub const DEFAULT_TARGET: usize = 4096;
    /// Default adaptive deadline.
    pub const DEFAULT_MAX_DELAY: Duration = Duration::from_millis(1);

    /// The transport chunk-size ceiling of this mode (capacity hint).
    pub fn chunk_target(&self) -> usize {
        match *self {
            Batching::PerTuple { chunk } => chunk,
            Batching::Fixed(n) => n,
            Batching::Adaptive { target, .. } => target,
        }
    }

    /// Whether the operator should ingest per tuple.
    pub fn is_per_tuple(&self) -> bool {
        matches!(self, Batching::PerTuple { .. })
    }
}

impl Default for Batching {
    fn default() -> Self {
        Batching::Adaptive { target: Self::DEFAULT_TARGET, max_delay: Self::DEFAULT_MAX_DELAY }
    }
}

/// A chunk of records in struct-of-arrays layout: parallel `times` /
/// `values` columns of equal length. The values column is contiguous, so
/// in-order runs flow straight into
/// [`AggregateFunction::fold_slice`](gss_core::AggregateFunction::fold_slice)
/// kernels with zero gather.
#[derive(Debug, Clone)]
pub struct RecordChunk<V> {
    times: Vec<Time>,
    values: Vec<V>,
}

impl<V> RecordChunk<V> {
    pub fn with_capacity(n: usize) -> Self {
        RecordChunk { times: Vec::with_capacity(n), values: Vec::with_capacity(n) }
    }

    #[inline]
    pub fn push(&mut self, ts: Time, value: V) {
        self.times.push(ts);
        self.values.push(value);
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    #[inline]
    pub fn times(&self) -> &[Time] {
        &self.times
    }

    #[inline]
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// Audit-build invariant: the columns must stay aligned. Called at
    /// every hand-off point (chunk receipt in workers).
    pub fn check(&self) {
        gss_core::audit_assert!(
            self.times.len() == self.values.len(),
            "SoA chunk columns diverged: {} times vs {} values",
            self.times.len(),
            self.values.len()
        );
    }
}

/// Consuming iteration yields the zipped pairs — the per-tuple path.
impl<V> IntoIterator for RecordChunk<V> {
    type Item = (Time, V);
    type IntoIter = std::iter::Zip<std::vec::IntoIter<Time>, std::vec::IntoIter<V>>;

    fn into_iter(self) -> Self::IntoIter {
        self.times.into_iter().zip(self.values)
    }
}

/// Clock injection point for the adaptive deadline. Production uses
/// `Instant::now`; tests substitute a deterministic clock.
pub type ClockFn = fn() -> Instant;

/// Accumulates records into [`RecordChunk`]s under a [`Batching`] policy.
///
/// [`push`](ChunkBuilder::push) returns a ready chunk when the target
/// size is reached or (adaptive mode) the deadline since the chunk's
/// first record has passed; [`take`](ChunkBuilder::take) flushes whatever
/// is pending — sources call it before broadcasting a watermark or
/// punctuation and at end of stream, which is what keeps chunk boundaries
/// semantically invisible (see the module docs).
pub struct ChunkBuilder<V> {
    mode: Batching,
    target: usize,
    clock: ClockFn,
    chunk: RecordChunk<V>,
    deadline: Option<Instant>,
    /// Chunk length at which the deadline is next polled (adaptive mode).
    next_check: usize,
}

impl<V> ChunkBuilder<V> {
    pub fn new(mode: Batching) -> Self {
        Self::with_clock(mode, Instant::now)
    }

    pub fn with_clock(mode: Batching, clock: ClockFn) -> Self {
        let target = mode.chunk_target().max(1);
        ChunkBuilder {
            mode,
            target,
            clock,
            chunk: RecordChunk::with_capacity(target),
            deadline: None,
            next_check: 0,
        }
    }

    /// While the chunk holds fewer than this many records the deadline is
    /// polled on every push — the low-rate regime, where the latency
    /// bound is the whole point and a clock read per record is noise.
    pub const CLOCK_CHECK_SMALL: usize = 8;
    /// Upper bound on how many pushes a single deadline poll may skip. A
    /// clock read costs tens of nanoseconds — on par with the whole
    /// per-record fold — so polling every push in adaptive mode would
    /// forfeit most of the batching win.
    pub const CLOCK_CHECK_STRIDE: usize = 64;

    /// Adds one record; returns a chunk ready to ship when full or
    /// past-deadline. The deadline poll is rate-amortized: the clock is
    /// read once when a chunk starts (arming the deadline), on every push
    /// while the chunk is small ([`CLOCK_CHECK_SMALL`](Self::CLOCK_CHECK_SMALL)),
    /// and afterwards each read schedules the next one by estimating how
    /// many pushes fit into the time left before the deadline (capped at
    /// [`CLOCK_CHECK_STRIDE`](Self::CLOCK_CHECK_STRIDE)). A slow stream
    /// therefore flushes at the first push past the deadline, while a
    /// full-throttle one pays ~1 clock read per 64 records; if the rate
    /// collapses mid-chunk the overshoot is bounded by the skipped pushes'
    /// inter-arrival gaps, and a pull-driven source has no timer thread to
    /// do better — watermarks and end-of-stream always flush regardless.
    #[inline]
    pub fn push(&mut self, ts: Time, value: V) -> Option<RecordChunk<V>> {
        if self.chunk.is_empty() {
            if let Batching::Adaptive { max_delay, .. } = self.mode {
                self.deadline = Some((self.clock)() + max_delay);
                self.next_check = 2;
            }
        }
        self.chunk.push(ts, value);
        let len = self.chunk.len();
        if len >= self.target {
            return self.take();
        }
        if let Some(deadline) = self.deadline {
            if len < Self::CLOCK_CHECK_SMALL || len >= self.next_check {
                let now = (self.clock)();
                if now >= deadline {
                    return self.take();
                }
                self.next_check = len + self.poll_skip(deadline - now, len);
            }
        }
        None
    }

    /// How many pushes the next deadline poll may skip: the pushes that
    /// fit into `remaining` time at the rate observed so far
    /// (`len` pushes over `max_delay - remaining`), clamped to
    /// [1, [`CLOCK_CHECK_STRIDE`](Self::CLOCK_CHECK_STRIDE)].
    #[inline]
    fn poll_skip(&self, remaining: Duration, len: usize) -> usize {
        let Batching::Adaptive { max_delay, .. } = self.mode else {
            return Self::CLOCK_CHECK_STRIDE;
        };
        let remaining_ns = remaining.as_nanos();
        let elapsed_ns = max_delay.as_nanos().saturating_sub(remaining_ns);
        if elapsed_ns == 0 {
            return Self::CLOCK_CHECK_STRIDE;
        }
        let fit = (len as u128).saturating_mul(remaining_ns) / elapsed_ns;
        (fit as usize).clamp(1, Self::CLOCK_CHECK_STRIDE)
    }

    /// Flushes the pending chunk, if any.
    pub fn take(&mut self) -> Option<RecordChunk<V>> {
        self.deadline = None;
        if self.chunk.is_empty() {
            return None;
        }
        Some(std::mem::replace(&mut self.chunk, RecordChunk::with_capacity(self.target)))
    }

    /// Records currently buffered.
    pub fn pending(&self) -> usize {
        self.chunk.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;

    // A deterministic clock: a process-wide base Instant plus an atomic
    // nanosecond offset the test advances by hand. `ClockFn` is a plain
    // fn pointer, so state has to live in statics — tests that *advance*
    // the shared clock serialize on `CLOCK_MUTEX` to keep each other's
    // deadlines stable.
    static BASE: OnceLock<Instant> = OnceLock::new();
    static OFFSET_NS: AtomicU64 = AtomicU64::new(0);
    static CLOCK_MUTEX: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn fake_now() -> Instant {
        *BASE.get_or_init(Instant::now) + Duration::from_nanos(OFFSET_NS.load(Ordering::SeqCst))
    }

    fn advance(d: Duration) {
        OFFSET_NS.fetch_add(d.as_nanos() as u64, Ordering::SeqCst);
    }

    #[test]
    fn fixed_mode_flushes_at_target() {
        let mut b = ChunkBuilder::with_clock(Batching::Fixed(4), fake_now);
        assert!(b.push(1, 10).is_none());
        assert!(b.push(2, 20).is_none());
        assert!(b.push(3, 30).is_none());
        let chunk = b.push(4, 40).expect("fourth push fills the chunk");
        assert_eq!(chunk.times(), &[1, 2, 3, 4]);
        assert_eq!(chunk.values(), &[10, 20, 30, 40]);
        assert_eq!(b.pending(), 0);
        assert!(b.take().is_none());
    }

    #[test]
    fn per_tuple_mode_still_chunks_transport() {
        let mut b = ChunkBuilder::with_clock(Batching::PerTuple { chunk: 2 }, fake_now);
        assert!(b.push(1, 1).is_none());
        assert_eq!(b.push(2, 2).expect("chunked at 2").len(), 2);
    }

    #[test]
    fn adaptive_flushes_on_target_without_clock_pressure() {
        let mode = Batching::Adaptive { target: 3, max_delay: Duration::from_secs(3600) };
        let mut b = ChunkBuilder::with_clock(mode, fake_now);
        assert!(b.push(1, 1).is_none());
        assert!(b.push(2, 2).is_none());
        assert_eq!(b.push(3, 3).expect("target reached").len(), 3);
    }

    #[test]
    fn adaptive_flushes_on_deadline() {
        let _clock = CLOCK_MUTEX.lock().unwrap_or_else(|e| e.into_inner());
        let mode = Batching::Adaptive { target: 1_000_000, max_delay: Duration::from_millis(5) };
        let mut b = ChunkBuilder::with_clock(mode, fake_now);
        assert!(b.push(1, 1).is_none());
        advance(Duration::from_millis(2));
        assert!(b.push(2, 2).is_none(), "deadline not yet reached");
        advance(Duration::from_millis(4));
        let chunk = b.push(3, 3).expect("deadline passed");
        assert_eq!(chunk.len(), 3, "the tripping record rides the flushed chunk");
        // The next chunk re-arms its deadline from its own first record.
        assert!(b.push(4, 4).is_none());
        advance(Duration::from_millis(6));
        assert_eq!(b.push(5, 5).expect("second deadline").len(), 2);
    }

    #[test]
    fn adaptive_deadline_is_amortized_past_the_small_regime() {
        let _clock = CLOCK_MUTEX.lock().unwrap_or_else(|e| e.into_inner());
        const STRIDE: usize = ChunkBuilder::<i64>::CLOCK_CHECK_STRIDE;
        let mode = Batching::Adaptive { target: 1_000_000, max_delay: Duration::from_millis(5) };
        let mut b = ChunkBuilder::with_clock(mode, fake_now);
        // Fill past the small regime, off stride alignment.
        for i in 0..(STRIDE as i64 + 36) {
            assert!(b.push(i, i).is_none());
        }
        advance(Duration::from_millis(6));
        // Deadline has passed, but the clock is only polled at the next
        // scheduled check: pushes up to there ride along, and the flush
        // comes within one stride of pushes.
        let mut flushed = None;
        let mut extra = 0;
        while flushed.is_none() {
            extra += 1;
            flushed = b.push(1_000 + extra, 0);
            assert!(extra <= STRIDE as i64, "flush must come within one stride");
        }
        let chunk = flushed.expect("deadline flush");
        assert!(chunk.len() > STRIDE + 36, "the skipped pushes ride the flushed chunk");
    }

    #[test]
    fn take_flushes_partial_chunks() {
        let mut b = ChunkBuilder::with_clock(Batching::Fixed(100), fake_now);
        b.push(7, 70);
        let chunk = b.take().expect("partial flush");
        assert_eq!(chunk.len(), 1);
        chunk.check();
    }

    #[test]
    fn default_is_adaptive() {
        assert_eq!(
            Batching::default(),
            Batching::Adaptive {
                target: Batching::DEFAULT_TARGET,
                max_delay: Batching::DEFAULT_MAX_DELAY
            }
        );
        assert_eq!(Batching::default().chunk_target(), 4096);
        assert!(!Batching::default().is_per_tuple());
        assert!(Batching::PerTuple { chunk: 8 }.is_per_tuple());
    }

    #[test]
    fn chunk_iterates_as_pairs() {
        let mut c = RecordChunk::with_capacity(2);
        c.push(1, "a");
        c.push(2, "b");
        let pairs: Vec<(Time, &str)> = c.into_iter().collect();
        assert_eq!(pairs, vec![(1, "a"), (2, "b")]);
    }
}
