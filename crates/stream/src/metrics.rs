//! Runtime metrics: a log-bucketed latency histogram and a throughput
//! meter, the instrumentation a window operator deployment reports.
//!
//! The histogram uses logarithmic buckets (HdrHistogram-style, base-2 with
//! linear sub-buckets), giving ~6 % relative error over nine orders of
//! magnitude at a fixed 2 KiB footprint — enough to report the paper's
//! latency classes (nanoseconds for buckets, microseconds for eager
//! stores, milliseconds for lazy ones) from one structure.

use std::time::Duration;

const SUB_BUCKET_BITS: u32 = 4; // 16 linear sub-buckets per octave
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
const OCTAVES: usize = 40; // covers 1ns .. ~1100s

/// Log bucket index of a value (shared by both histograms).
fn bucket_of(n: u64) -> usize {
    if n < SUB_BUCKETS as u64 {
        return n as usize;
    }
    let octave = 63 - n.leading_zeros() as usize; // floor(log2 n)
    let shift = octave - SUB_BUCKET_BITS as usize;
    let sub = ((n >> shift) as usize) & (SUB_BUCKETS - 1);
    let idx = (octave - SUB_BUCKET_BITS as usize + 1) * SUB_BUCKETS + sub;
    idx.min(OCTAVES * SUB_BUCKETS - 1)
}

/// Representative (lower-bound) value of a bucket.
fn bucket_floor(idx: usize) -> u64 {
    let octave = idx / SUB_BUCKETS;
    let sub = (idx % SUB_BUCKETS) as u64;
    if octave == 0 {
        return sub;
    }
    let shift = octave - 1;
    ((SUB_BUCKETS as u64) + sub) << shift
}

/// Fixed-size log-bucketed histogram of nanosecond values.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    max_ns: u64,
    min_ns: u64,
}

/// Summarized rather than bucket-dumped: the histogram embeds in larger
/// `#[derive(Debug)]` structs (e.g. `PipelineReport`) without printing 640
/// bucket counters.
impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LatencyHistogram({})", self.summary())
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; OCTAVES * SUB_BUCKETS],
            total: 0,
            sum_ns: 0,
            max_ns: 0,
            min_ns: u64::MAX,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let ns = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.record_ns(ns);
    }

    pub fn record_ns(&mut self, ns: u64) {
        self.counts[bucket_of(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
        self.min_ns = self.min_ns.min(ns);
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    pub fn min(&self) -> Duration {
        Duration::from_nanos(if self.total == 0 { 0 } else { self.min_ns })
    }

    pub fn mean(&self) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.sum_ns / self.total as u128) as u64)
    }

    /// Value at quantile `q` in `[0, 1]` (bucket lower bound — a slight
    /// underestimate, bounded by the bucket's ~6 % width).
    pub fn quantile(&self, q: f64) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let v = bucket_floor(idx).clamp(self.min_ns.min(self.max_ns), self.max_ns);
                return Duration::from_nanos(v);
            }
        }
        self.max()
    }

    /// Merges another histogram into this one (for per-partition metrics).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
    }

    /// One-line summary: `n=.. mean=.. p50=.. p99=.. max=..`.
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:?} p50={:?} p99={:?} max={:?}",
            self.total,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.max()
        )
    }
}

/// Log-bucketed histogram of achieved batch sizes: how many records each
/// chunk actually carried when the source flushed it. Under adaptive
/// batching the distribution is the diagnostic — a mode at the target
/// size means the stream is fast enough to fill chunks, a spread of small
/// sizes means the latency deadline (or a watermark) is doing the
/// flushing. Same bucket layout as [`LatencyHistogram`], so the relative
/// error is ~6 % and the footprint fixed.
#[derive(Clone)]
pub struct BatchSizeHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
    min: u64,
}

impl std::fmt::Debug for BatchSizeHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BatchSizeHistogram({})", self.summary())
    }
}

impl Default for BatchSizeHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchSizeHistogram {
    pub fn new() -> Self {
        BatchSizeHistogram {
            counts: vec![0; OCTAVES * SUB_BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    /// Records one flushed chunk of `size` records.
    pub fn record(&mut self, size: usize) {
        let n = gss_core::cast::to_u64(size);
        self.counts[bucket_of(n)] += 1;
        self.total += 1;
        self.sum += n as u128;
        self.max = self.max.max(n);
        self.min = self.min.min(n);
    }

    /// Number of chunks recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Total records across all recorded chunks.
    pub fn records(&self) -> u64 {
        self.sum.min(u64::MAX as u128) as u64
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean chunk size.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// Chunk size at quantile `q` in `[0, 1]` (bucket lower bound).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(idx).clamp(self.min.min(self.max), self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one (for per-partition metrics).
    pub fn merge(&mut self, other: &BatchSizeHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// One-line summary: `chunks=.. mean=.. p50=.. p99=.. max=..`.
    pub fn summary(&self) -> String {
        format!(
            "chunks={} mean={:.1} p50={} p99={} max={}",
            self.total,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn exact_for_small_values() {
        let mut h = LatencyHistogram::new();
        for ns in [1u64, 2, 3, 3, 3, 10, 15] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), Duration::from_nanos(1));
        assert_eq!(h.max(), Duration::from_nanos(15));
        assert_eq!(h.quantile(0.5), Duration::from_nanos(3));
    }

    #[test]
    fn relative_error_bounded() {
        let mut h = LatencyHistogram::new();
        // One sample: every quantile must be within ~6.25% of the value.
        for value in [100u64, 10_000, 1_000_000, 123_456_789] {
            let mut h1 = LatencyHistogram::new();
            h1.record_ns(value);
            let got = h1.quantile(0.5).as_nanos() as f64;
            let rel = (value as f64 - got).abs() / value as f64;
            assert!(rel <= 0.0626, "value {value}: got {got}, rel err {rel}");
            h.record_ns(value);
        }
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        let mut x = 1u64;
        for i in 0..10_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            h.record_ns((x % 1_000_000) + i % 97);
        }
        let mut prev = Duration::ZERO;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let v = h.quantile(q);
            assert!(v >= prev, "quantile {q} regressed: {v:?} < {prev:?}");
            prev = v;
        }
        assert!(h.quantile(1.0) <= h.max());
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut c = LatencyHistogram::new();
        for i in 0..1_000u64 {
            let ns = i * 37 % 10_000;
            if i % 2 == 0 {
                a.record_ns(ns);
            } else {
                b.record_ns(ns);
            }
            c.record_ns(ns);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.mean(), c.mean());
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), c.quantile(q));
        }
    }

    #[test]
    fn summary_is_readable() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(5));
        let s = h.summary();
        assert!(s.contains("n=1"));
        assert!(s.contains("mean="));
    }

    #[test]
    fn batch_size_histogram_tracks_chunks() {
        let mut h = BatchSizeHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        for size in [1usize, 1, 4096, 4096, 4096, 4096] {
            h.record(size);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.records(), 2 + 4 * 4096);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 4096);
        assert!((h.mean() - (2.0 + 4.0 * 4096.0) / 6.0).abs() < 1e-9);
        // Small sizes land in exact buckets; 4096 within ~6 %.
        assert_eq!(h.quantile(0.0), 1);
        let p99 = h.quantile(0.99) as f64;
        assert!((p99 - 4096.0).abs() / 4096.0 <= 0.0626, "p99={p99}");
    }

    #[test]
    fn batch_size_merge_equals_combined() {
        let mut a = BatchSizeHistogram::new();
        let mut b = BatchSizeHistogram::new();
        let mut c = BatchSizeHistogram::new();
        for i in 1..500usize {
            if i % 2 == 0 {
                a.record(i);
            } else {
                b.record(i);
            }
            c.record(i);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.records(), c.records());
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), c.quantile(q));
        }
    }
}
