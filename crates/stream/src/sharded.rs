//! Key-sharded multi-core execution: hash-partitioned keyed operators
//! behind the epoch barrier.
//!
//! This is the paper's Section 5.3 parallelization applied to the keyed
//! operator of PR 3: the key space is hash-partitioned across N shards,
//! each shard owns its own [`KeyedWindowOperator`](gss_core::KeyedWindowOperator)
//! — a private shared slice timeline, per-key partial rings, and due-window
//! heap — and processes its keys' records in arrival order on its own OS
//! thread. Unlike [`run_per_key`](crate::pipeline::run_per_key), whose
//! partitions emit independently in scheduler order, the shards here feed
//! a **merge stage** that reassembles one globally watermark-ordered,
//! deterministic output.
//!
//! ## Protocol
//!
//! * The router assigns each record to [`shard_of`]`(key) =
//!   fx_hash_u64(key) % shards` — all records of one key meet in one
//!   operator — and ships per-shard [`RecordChunk`]s, preserving the
//!   columnar/batching path per shard. Watermarks and punctuations are
//!   broadcast to every shard in stream order.
//! * A shard buffers its key-tagged emissions and ships them to the
//!   merge stage in bulk: when the buffer reaches a cap, and always
//!   before **acking** a broadcast watermark. Acks are 1:1 with
//!   broadcasts (even regressive ones, which the operator ignores), so
//!   ack sequences align across shards.
//! * The merge stage keeps one FIFO queue per shard and stages emission
//!   batches per shard. The output epoch closes only when **every**
//!   queue front is an ack (the epoch barrier, as in
//!   [`run_parallel`](crate::parallel::run_parallel)): the global
//!   watermark advances to the agreed ack value and the epoch's staged
//!   emissions are released in one deterministic order — a stable sort
//!   by key. Keys are disjoint across shards, so the stable sort
//!   preserves each key's emission order while making the interleaving
//!   independent of thread scheduling: the released sequence is a pure
//!   function of the input stream.
//!
//! Per key, the released emissions are exactly those of a
//! single-threaded [`KeyedWindowOperator`](gss_core::KeyedWindowOperator)
//! over the full stream — same windows, same values, same update
//! multiplicity, same per-key order — because each shard's operator sees
//! its keys' records and every watermark/punctuation in the original
//! stream order, and keys do not interact inside the keyed operator.
//! Emissions after the last watermark (tail records, punctuation-driven
//! closes) are released, key-sorted, at end of stream.

use std::collections::VecDeque;
use std::time::Instant;

use crossbeam::runtime::{self, bounded, Receiver, Sender};
use crossbeam::sched::ProbeEvent;
use gss_core::{
    fx_hash_u64, AggregateFunction, PerKey, StreamElement, Time, WindowAggregator, WindowResult,
    TIME_MAX,
};

use crate::batching::{ChunkBuilder, RecordChunk};
use crate::metrics::{BatchSizeHistogram, LatencyHistogram};
use crate::parallel::send_timed;
use crate::pipeline::{process_cpu_time, PipelineConfig, PipelineReport};

/// Shard-side emission ship threshold, in buffered window results.
/// Bounds shard memory between watermarks; the merge stage stages
/// whatever arrives early and still releases it only at the barrier.
const EMIT_SHIP_CAP: usize = 4096;

/// Deterministic key-to-shard assignment over the mixed key hash.
///
/// [`fx_hash_u64`] scrambles low-entropy key spaces (sequential ids,
/// stride patterns) before the modulo, so real-world key sets spread
/// evenly; the same key always lands on the same shard.
#[inline]
pub fn shard_of(key: u64, shards: usize) -> usize {
    debug_assert!(shards > 0, "shard_of requires at least one shard");
    (fx_hash_u64(key) % shards.max(1) as u64) as usize
}

/// Work sent from the router to one shard.
enum ShardChunk<V> {
    Records(RecordChunk<V>),
    Watermark(Time),
    Punctuation(Time),
}

/// Router-side handle to one shard's input queue.
type ShardSender<V> = Sender<ShardChunk<V>>;

/// Message from a shard to the merge stage.
enum ShardMsg<O> {
    /// Key-tagged window results in shard emission order.
    Emits(Vec<WindowResult<O>>),
    /// Ack of a broadcast watermark: every emission this shard produced
    /// before acking has already been shipped.
    Ack(Time),
}

/// Shard-tagged merge-stage payload: which shard sent the message.
type TaggedMsg<O> = (usize, ShardMsg<(u64, O)>);

/// Released output: each result tagged with the shard that produced it.
type TaggedResults<O> = Vec<(usize, WindowResult<(u64, O)>)>;

/// One shard thread: drive the keyed operator over this shard's records
/// plus every broadcast watermark/punctuation, ship emissions in bulk,
/// ack each watermark after shipping. Returns `(records, queue-wait
/// histogram, fold hits, fold misses)`.
fn shard_loop<A: AggregateFunction>(
    rx: Receiver<ShardChunk<(u64, A::Input)>>,
    tx: Sender<TaggedMsg<A::Output>>,
    me: usize,
    mut op: Box<dyn WindowAggregator<PerKey<A>>>,
    per_tuple: bool,
) -> (u64, LatencyHistogram, u64, u64) {
    let mut wait = LatencyHistogram::new();
    let mut records = 0u64;
    let mut pending: Vec<WindowResult<(u64, A::Output)>> = Vec::new();
    let ship = |pending: &mut Vec<WindowResult<(u64, A::Output)>>, wait: &mut LatencyHistogram| {
        if !pending.is_empty() {
            let shipped = pending.len() as u64;
            send_timed(&tx, (me, ShardMsg::Emits(std::mem::take(pending))), wait);
            runtime::probe(ProbeEvent::Shipped { src: me, items: shipped });
        }
    };
    for chunk in rx.iter() {
        match chunk {
            ShardChunk::Records(chunk) => {
                chunk.check();
                records += chunk.len() as u64;
                // Size-1 chunks take the per-record entry point, exactly
                // like `run_keyed` (run detection is pure overhead on a
                // single record).
                if per_tuple || chunk.len() == 1 {
                    for (ts, value) in chunk {
                        op.process(ts, value, &mut pending);
                    }
                } else {
                    op.process_batch_columns(chunk.times(), chunk.values(), &mut pending);
                }
                if pending.len() >= EMIT_SHIP_CAP {
                    ship(&mut pending, &mut wait);
                }
            }
            ShardChunk::Punctuation(ts) => {
                op.on_punctuation(ts, &mut pending);
            }
            ShardChunk::Watermark(wm) => {
                op.on_watermark(wm, &mut pending);
                // Ship, then ack: after the ack every emission this
                // shard produced up to the watermark is with the merge
                // stage, so the barrier can close the epoch.
                ship(&mut pending, &mut wait);
                send_timed(&tx, (me, ShardMsg::Ack(wm)), &mut wait);
            }
        }
    }
    // End of stream: ship the tail (emissions after the last watermark).
    ship(&mut pending, &mut wait);
    let (fold_hits, fold_misses) = op.fold_stats();
    (records, wait, fold_hits, fold_misses)
}

/// Releases one closed epoch: drains every shard's staged emissions and
/// appends them in deterministic order — a stable sort by key, which
/// preserves per-key (= per-shard) emission order because keys are
/// disjoint across shards.
fn release_epoch<O>(
    staged: &mut [Vec<WindowResult<(u64, O)>>],
    results: &mut Vec<(usize, WindowResult<(u64, O)>)>,
    count: &mut u64,
    collect: bool,
) {
    let mut epoch: Vec<(usize, WindowResult<(u64, O)>)> = Vec::new();
    for (shard, list) in staged.iter_mut().enumerate() {
        if shard == 0 && crate::mutants::is(crate::mutants::Mutant::ShardDropStaged) {
            list.clear();
            continue;
        }
        epoch.extend(list.drain(..).map(|r| (shard, r)));
    }
    *count += epoch.len() as u64;
    runtime::probe(ProbeEvent::Released { items: epoch.len() as u64 });
    if collect {
        epoch.sort_by_key(|(_, r)| r.value.0);
        results.append(&mut epoch);
    }
}

/// The merge stage: one FIFO queue per shard, epoch-barrier release.
/// Returns `(results, result count)`.
fn merge_loop<O>(
    rx: Receiver<TaggedMsg<O>>,
    shards: usize,
    collect: bool,
) -> (TaggedResults<O>, u64) {
    let mut queues: Vec<VecDeque<ShardMsg<(u64, O)>>> =
        (0..shards).map(|_| VecDeque::new()).collect();
    let mut staged: Vec<Vec<WindowResult<(u64, O)>>> = (0..shards).map(|_| Vec::new()).collect();
    let mut results = Vec::new();
    let mut count = 0u64;
    let apply_ready = |queues: &mut Vec<VecDeque<ShardMsg<(u64, O)>>>,
                       staged: &mut Vec<Vec<WindowResult<(u64, O)>>>,
                       results: &mut Vec<(usize, WindowResult<(u64, O)>)>,
                       count: &mut u64| {
        loop {
            let mut progressed = false;
            for (shard, q) in queues.iter_mut().enumerate() {
                while matches!(q.front(), Some(ShardMsg::Emits(_))) {
                    let Some(ShardMsg::Emits(batch)) = q.pop_front() else { unreachable!() };
                    runtime::probe(ProbeEvent::Applied { src: shard, items: batch.len() as u64 });
                    staged[shard].extend(batch);
                    progressed = true;
                }
            }
            let fire = if crate::mutants::is(crate::mutants::Mutant::ShardEagerRelease) {
                queues.iter().any(|q| matches!(q.front(), Some(ShardMsg::Ack(_))))
            } else {
                queues.iter().all(|q| matches!(q.front(), Some(ShardMsg::Ack(_))))
            };
            if fire {
                // Epoch barrier: every shard has shipped everything it
                // emitted up to this watermark. Acks ride FIFO channels
                // off a stream-ordered broadcast, so the fronts agree;
                // min is defensive.
                let mut wm = TIME_MAX;
                let mut acks = 0u64;
                for (src, q) in queues.iter_mut().enumerate() {
                    // Healthy runs pop every front (the `all` gate above
                    // guarantees they are acks); the eager-release mutant
                    // skips shards that have not acked yet.
                    let w = match q.front() {
                        Some(ShardMsg::Ack(w)) => *w,
                        _ => continue,
                    };
                    q.pop_front();
                    runtime::probe(ProbeEvent::AckSeen { src, wm: w });
                    gss_core::audit_assert!(
                        wm == TIME_MAX || w == wm,
                        "sharded barrier acks disagree: {w} vs {wm} (FIFO broadcast broken)"
                    );
                    wm = wm.min(w);
                    acks += 1;
                }
                runtime::probe(ProbeEvent::Barrier { wm, acks });
                release_epoch(staged, results, count, collect);
                progressed = true;
            }
            if !progressed {
                return;
            }
        }
    };
    while let Ok((shard, msg)) = rx.recv() {
        queues[shard].push_back(msg);
        // Drain the burst already queued before doing merge work.
        for (s2, m2) in rx.try_iter() {
            queues[s2].push_back(m2);
        }
        apply_ready(&mut queues, &mut staged, &mut results, &mut count);
    }
    // Channel closed: every shard has shipped its tail. All barrier
    // rounds complete because shards ack 1:1 with broadcasts; whatever
    // is still staged was emitted after the final watermark — release it
    // as the closing epoch, in the same deterministic key order.
    apply_ready(&mut queues, &mut staged, &mut results, &mut count);
    release_epoch(&mut staged, &mut results, &mut count, collect);
    debug_assert!(queues.iter().all(|q| q.is_empty()), "merge queues must drain at end of stream");
    (results, count)
}

/// Runs a keyed window aggregation sharded by key hash across
/// `cfg.parallelism` operator instances, with a merge stage that
/// reassembles one globally watermark-ordered, deterministic output
/// (see the module docs for the protocol).
///
/// * `elements` — records carry `(key, value)` pairs; watermarks and
///   punctuations are broadcast to every shard.
/// * `make_operator` — factory building one keyed aggregation operator
///   per shard (called with the shard index); typically
///   [`gss_core::KeyedWindowOperator::new`].
///
/// Per key, the output is exactly that of a single-threaded run of the
/// factory's operator over the whole stream; across keys, each watermark
/// epoch's emissions are released together, stable-sorted by key.
/// `report.shards` records the shard count; results are tagged with the
/// producing shard.
///
/// ```
/// use gss_core::testsupport::SumI64;
/// use gss_core::{KeyedConfig, KeyedWindowOperator, PerKey, StreamElement, WindowAggregator};
/// use gss_stream::{run_sharded_keyed, PipelineConfig};
/// use gss_windows::TumblingWindow;
///
/// let elements = (0..200i64)
///     .map(|i| StreamElement::Record { ts: i, value: (i as u64 % 4, 1i64) })
///     .chain([StreamElement::Watermark(200)]);
/// let report = run_sharded_keyed(
///     elements,
///     PipelineConfig::with_parallelism(2),
///     |_| {
///         Box::new(KeyedWindowOperator::new(
///             SumI64,
///             vec![Box::new(TumblingWindow::new(100))],
///             KeyedConfig::default(),
///         )) as Box<dyn WindowAggregator<PerKey<SumI64>>>
///     },
/// );
/// assert_eq!(report.shards, 2);
/// // 4 keys × 2 complete windows, each summing 25 ones.
/// assert_eq!(report.result_count, 8);
/// assert!(report.results.iter().all(|(_, r)| r.value.1 == 25));
/// ```
pub fn run_sharded_keyed<A, F>(
    elements: impl IntoIterator<Item = StreamElement<(u64, A::Input)>>,
    cfg: PipelineConfig,
    make_operator: F,
) -> PipelineReport<(u64, A::Output)>
where
    A: AggregateFunction,
    A::Output: Send,
    F: Fn(usize) -> Box<dyn WindowAggregator<PerKey<A>>>,
{
    let shards = cfg.parallelism.max(1);
    let cpu_before = process_cpu_time();
    let start = Instant::now();
    let mut report = PipelineReport::empty();
    report.shards = shards;

    runtime::scope(|scope| {
        let (mtx, mrx) =
            bounded::<(usize, ShardMsg<(u64, A::Output)>)>(cfg.channel_capacity.max(shards));
        let collect = cfg.collect_results;
        let merge = scope.spawn(move || merge_loop(mrx, shards, collect));

        let mut senders: Vec<ShardSender<(u64, A::Input)>> = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        let per_tuple = cfg.batching.is_per_tuple();
        for i in 0..shards {
            let (tx, rx) = bounded::<ShardChunk<(u64, A::Input)>>(cfg.channel_capacity);
            senders.push(tx);
            let op = make_operator(i);
            let mtx = mtx.clone();
            handles.push(scope.spawn(move || shard_loop(rx, mtx, i, op, per_tuple)));
        }
        // Shards hold the only remaining clones; the merge loop ends
        // when the last shard exits.
        drop(mtx);

        // Router: per-shard chunk builders preserve the columnar path;
        // watermarks and punctuations flush every builder first so each
        // shard sees its records and the broadcast in stream order.
        let mut builders: Vec<ChunkBuilder<(u64, A::Input)>> =
            (0..shards).map(|_| ChunkBuilder::new(cfg.batching)).collect();
        let mut sizes = BatchSizeHistogram::new();
        let flush_all = |builders: &mut Vec<ChunkBuilder<(u64, A::Input)>>,
                         sizes: &mut BatchSizeHistogram,
                         senders: &[ShardSender<(u64, A::Input)>]| {
            for (builder, tx) in builders.iter_mut().zip(senders) {
                if let Some(chunk) = builder.take() {
                    sizes.record(chunk.len());
                    tx.send(ShardChunk::Records(chunk)).expect("shard hung up");
                }
            }
        };
        for element in elements {
            match element {
                StreamElement::Record { ts, value: (key, v) } => {
                    let dst = shard_of(key, shards);
                    if let Some(chunk) = builders[dst].push(ts, (key, v)) {
                        sizes.record(chunk.len());
                        senders[dst].send(ShardChunk::Records(chunk)).expect("shard hung up");
                    }
                }
                StreamElement::Watermark(wm) => {
                    flush_all(&mut builders, &mut sizes, &senders);
                    for tx in &senders {
                        tx.send(ShardChunk::Watermark(wm)).expect("shard hung up");
                    }
                }
                StreamElement::Punctuation(ts) => {
                    flush_all(&mut builders, &mut sizes, &senders);
                    for tx in &senders {
                        tx.send(ShardChunk::Punctuation(ts)).expect("shard hung up");
                    }
                }
            }
        }
        flush_all(&mut builders, &mut sizes, &senders);
        drop(senders);
        report.batch_sizes = sizes;

        for h in handles {
            let (records, wait, hits, misses) = h.join().expect("shard panicked");
            report.records += records;
            report.send_wait.merge(&wait);
            report.fold_hits += hits;
            report.fold_misses += misses;
        }
        let (results, count) = merge.join().expect("merge stage panicked");
        report.result_count = count;
        report.results = results;
    });

    report.elapsed = start.elapsed();
    report.cpu_time = process_cpu_time().saturating_sub(cpu_before);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_core::testsupport::SumI64;
    use gss_core::{KeyedConfig, KeyedWindowOperator, NaiveKeyedOperator, WindowFunction};
    use gss_windows::{SessionWindow, TumblingWindow};

    type Keyed = Box<dyn WindowAggregator<PerKey<SumI64>>>;

    fn shared_factory(lateness: i64) -> impl Fn(usize) -> Keyed {
        move |_| {
            let op = KeyedWindowOperator::new(
                SumI64,
                vec![Box::new(TumblingWindow::new(100))],
                KeyedConfig::default().with_allowed_lateness(lateness),
            );
            assert!(op.is_shared());
            Box::new(op) as Keyed
        }
    }

    fn make_elements(n: i64, keys: u64) -> Vec<StreamElement<(u64, i64)>> {
        let mut v: Vec<StreamElement<(u64, i64)>> = Vec::new();
        for i in 0..n {
            v.push(StreamElement::Record { ts: i, value: (i as u64 % keys, 1) });
            if i % 50 == 49 {
                v.push(StreamElement::Watermark(i - 10));
            }
        }
        v.push(StreamElement::Watermark(i64::MAX - 1));
        v
    }

    /// Reference: one single-threaded operator over the whole stream,
    /// with emissions canonicalized per watermark epoch (stable-sorted
    /// by key), exactly as the merge stage releases them.
    fn reference(
        elements: &[StreamElement<(u64, i64)>],
        factory: &dyn Fn(usize) -> Keyed,
    ) -> Vec<(u64, i64, i64, i64, bool)> {
        let mut op = factory(0);
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        let mut epoch: Vec<(u64, i64, i64, i64, bool)> = Vec::new();
        for e in elements {
            match e {
                StreamElement::Record { ts, value } => op.process(*ts, *value, &mut scratch),
                StreamElement::Watermark(wm) => {
                    op.on_watermark(*wm, &mut scratch);
                    epoch.extend(
                        scratch.drain(..).map(|r| {
                            (r.value.0, r.range.start, r.range.end, r.value.1, r.is_update)
                        }),
                    );
                    epoch.sort_by_key(|e| e.0);
                    out.append(&mut epoch);
                    continue;
                }
                StreamElement::Punctuation(ts) => op.on_punctuation(*ts, &mut scratch),
            }
            epoch.extend(
                scratch
                    .drain(..)
                    .map(|r| (r.value.0, r.range.start, r.range.end, r.value.1, r.is_update)),
            );
        }
        epoch.sort_by_key(|e| e.0);
        out.append(&mut epoch);
        out
    }

    fn flat(report: &PipelineReport<(u64, i64)>) -> Vec<(u64, i64, i64, i64, bool)> {
        report
            .results
            .iter()
            .map(|(_, r)| (r.value.0, r.range.start, r.range.end, r.value.1, r.is_update))
            .collect()
    }

    #[test]
    fn sharded_output_matches_single_threaded_sequence() {
        let elements = make_elements(2000, 16);
        let factory = shared_factory(100);
        let expect = reference(&elements, &factory);
        assert!(!expect.is_empty());
        for shards in [1, 2, 4, 8] {
            let report = run_sharded_keyed(
                elements.iter().cloned(),
                PipelineConfig::with_parallelism(shards),
                &factory,
            );
            assert_eq!(report.shards, shards);
            assert_eq!(report.records, 2000);
            assert_eq!(flat(&report), expect, "shards={shards}");
        }
    }

    #[test]
    fn sharded_output_is_deterministic_across_runs() {
        let elements = make_elements(1000, 8);
        let factory = shared_factory(100);
        let one = flat(&run_sharded_keyed(
            elements.iter().cloned(),
            PipelineConfig::with_parallelism(4),
            &factory,
        ));
        for _ in 0..3 {
            let again = flat(&run_sharded_keyed(
                elements.iter().cloned(),
                PipelineConfig::with_parallelism(4),
                &factory,
            ));
            assert_eq!(one, again, "released order must not depend on scheduling");
        }
    }

    #[test]
    fn all_records_of_a_key_meet_in_one_shard() {
        for shards in [1, 2, 4, 8] {
            for key in 0..200u64 {
                let a = shard_of(key, shards);
                assert_eq!(a, shard_of(key, shards));
                assert!(a < shards);
            }
        }
        // The mixed hash must actually spread a sequential key space.
        let mut counts = [0usize; 4];
        for key in 0..1000u64 {
            counts[shard_of(key, 4)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 100), "skewed spread: {counts:?}");
    }

    #[test]
    fn naive_fallback_operators_shard_too() {
        // Session windows force the keyed operator's naive fallback; the
        // sharded protocol is agnostic to which inner operator runs.
        let factory = |_: usize| {
            let windows: Vec<Box<dyn WindowFunction>> = vec![Box::new(SessionWindow::new(10))];
            Box::new(NaiveKeyedOperator::new(SumI64, windows, KeyedConfig::default())) as Keyed
        };
        let mut elements: Vec<StreamElement<(u64, i64)>> = Vec::new();
        for i in 0..300i64 {
            elements.push(StreamElement::Record { ts: i * 4, value: (i as u64 % 5, 1) });
            if i % 40 == 39 {
                elements.push(StreamElement::Watermark(i * 4 - 30));
            }
        }
        elements.push(StreamElement::Watermark(i64::MAX - 1));
        let expect = reference(&elements, &factory);
        assert!(!expect.is_empty());
        for shards in [2, 4] {
            let report = run_sharded_keyed(
                elements.iter().cloned(),
                PipelineConfig::with_parallelism(shards),
                factory,
            );
            assert_eq!(flat(&report), expect, "shards={shards}");
        }
    }

    #[test]
    fn punctuation_broadcasts_to_every_shard() {
        let factory = |_: usize| {
            let windows: Vec<Box<dyn WindowFunction>> =
                vec![Box::new(gss_windows::PunctuationWindow::new())];
            Box::new(NaiveKeyedOperator::new(SumI64, windows, KeyedConfig::default())) as Keyed
        };
        let mut elements: Vec<StreamElement<(u64, i64)>> = Vec::new();
        for i in 0..200i64 {
            if i % 50 == 0 {
                elements.push(StreamElement::Punctuation(i));
            }
            elements.push(StreamElement::Record { ts: i, value: (i as u64 % 3, 1) });
            if i % 70 == 69 {
                // The keyed operator's inner ops run out-of-order:
                // punctuation cuts the window edges, watermarks emit.
                elements.push(StreamElement::Watermark(i - 20));
            }
        }
        elements.push(StreamElement::Punctuation(200));
        elements.push(StreamElement::Watermark(i64::MAX - 1));
        let expect = reference(&elements, &factory);
        assert!(!expect.is_empty());
        let report = run_sharded_keyed(
            elements.iter().cloned(),
            PipelineConfig::with_parallelism(3),
            factory,
        );
        assert_eq!(report.records, 200);
        assert_eq!(flat(&report), expect);
    }

    #[test]
    fn batching_modes_agree() {
        let elements = make_elements(1500, 8);
        let factory = shared_factory(100);
        let expect = reference(&elements, &factory);
        for cfg in [
            PipelineConfig::with_parallelism(4).per_tuple(),
            PipelineConfig::with_parallelism(4).with_batch_size(1),
            PipelineConfig::with_parallelism(4).with_batch_size(128),
        ] {
            let report = run_sharded_keyed(elements.iter().cloned(), cfg, &factory);
            assert_eq!(flat(&report), expect);
        }
    }

    #[test]
    fn throughput_only_counts_without_collecting() {
        let elements = make_elements(1000, 8);
        let factory = shared_factory(100);
        let full = run_sharded_keyed(
            elements.iter().cloned(),
            PipelineConfig::with_parallelism(4),
            &factory,
        );
        let counted = run_sharded_keyed(
            elements.iter().cloned(),
            PipelineConfig::with_parallelism(4).throughput_only(),
            &factory,
        );
        assert!(counted.results.is_empty());
        assert_eq!(counted.result_count, full.result_count);
        assert_eq!(counted.records, 1000);
    }

    #[test]
    fn report_carries_shard_count_and_metrics() {
        let elements = make_elements(1000, 8);
        let report = run_sharded_keyed(
            elements.iter().cloned(),
            PipelineConfig::with_parallelism(2).with_batch_size(64),
            shared_factory(100),
        );
        assert_eq!(report.shards, 2);
        assert_eq!(report.parallel_workers, 0);
        assert!(!report.batch_sizes.is_empty());
        assert_eq!(report.batch_sizes.records(), 1000);
        // SumI64 (testsupport) has no fold kernel: batched runs count as
        // misses.
        assert_eq!(report.fold_hits, 0);
        assert!(report.fold_misses > 0);
    }
}
