//! Synthetic football sensor stream, modeled after the DEBS 2013 grand
//! challenge data the paper replays (Section 6.1, [34]).
//!
//! Substitution (documented in DESIGN.md): the original dataset tracks
//! ball positions at 2000 Hz; the paper adds 5 gaps per minute to separate
//! sessions (ball possession changing players) and aggregates a column
//! with 84 232 distinct values. This generator reproduces exactly those
//! workload-relevant properties — rate, session-gap structure, and value
//! cardinality — with a seeded random walk, because the paper itself notes
//! results "depend on workload characteristics rather than data
//! characteristics".

use gss_core::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic football stream.
#[derive(Debug, Clone)]
pub struct FootballConfig {
    /// Tuples per second of event time (original sensors: 2000 Hz; the
    /// paper generates more to simulate higher ingestion rates).
    pub rate_hz: u64,
    /// Session gaps per minute of event time (paper: 5 per minute).
    pub gaps_per_minute: u32,
    /// Gap duration in milliseconds (must exceed the session gap of the
    /// queries for sessions to separate; dashboards use 1 s gaps).
    pub gap_ms: i64,
    /// Number of distinct values in the aggregated column (paper: 84 232).
    pub distinct_values: i64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for FootballConfig {
    fn default() -> Self {
        FootballConfig {
            rate_hz: 2000,
            gaps_per_minute: 5,
            gap_ms: 1500,
            distinct_values: 84_232,
            seed: 0xF00B,
        }
    }
}

/// A ball-velocity tuple stream generator.
pub struct FootballGenerator {
    cfg: FootballConfig,
    rng: StdRng,
    ts: Time,
    period_us: i64,
    until_gap: i64,
    velocity: i64,
}

impl FootballGenerator {
    pub fn new(cfg: FootballConfig) -> Self {
        assert!(cfg.rate_hz > 0, "rate must be positive");
        assert!(cfg.distinct_values > 0, "need at least one distinct value");
        let rng = StdRng::seed_from_u64(cfg.seed);
        let period_us = (1_000_000 / cfg.rate_hz.max(1)) as i64;
        let until_gap = Self::gap_interval(&cfg);
        FootballGenerator { cfg, rng, ts: 0, period_us, until_gap, velocity: 0 }
    }

    fn gap_interval(cfg: &FootballConfig) -> i64 {
        if cfg.gaps_per_minute == 0 {
            i64::MAX
        } else {
            // Tuples between gaps: one minute of tuples / gaps-per-minute.
            (cfg.rate_hz as i64 * 60) / cfg.gaps_per_minute as i64
        }
    }

    /// Generates `n` in-order tuples `(event_time_ms, value)`.
    pub fn take(&mut self, n: usize) -> Vec<(Time, i64)> {
        let mut out = Vec::with_capacity(n);
        let mut us = self.ts * 1000;
        for _ in 0..n {
            self.until_gap -= 1;
            if self.until_gap <= 0 {
                us += self.cfg.gap_ms * 1000;
                self.until_gap = Self::gap_interval(&self.cfg);
            }
            // Smooth random walk over the value domain (ball velocity).
            let step = self.rng.gen_range(-50..=50);
            self.velocity = (self.velocity + step).rem_euclid(self.cfg.distinct_values);
            out.push((us / 1000, self.velocity));
            us += self.period_us;
        }
        self.ts = us / 1000;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuples_are_in_order_and_rate_matches() {
        let mut g = FootballGenerator::new(FootballConfig {
            rate_hz: 1000,
            gaps_per_minute: 0,
            ..Default::default()
        });
        let tuples = g.take(5000);
        assert_eq!(tuples.len(), 5000);
        assert!(tuples.windows(2).all(|w| w[0].0 <= w[1].0), "must be in order");
        // 1000 Hz -> ~1 ms spacing -> ~5 s span.
        let span = tuples.last().unwrap().0 - tuples[0].0;
        assert!((4_500..=5_500).contains(&span), "span {span}");
    }

    #[test]
    fn gaps_separate_sessions() {
        let cfg =
            FootballConfig { rate_hz: 100, gaps_per_minute: 5, gap_ms: 1500, ..Default::default() };
        let mut g = FootballGenerator::new(cfg);
        // Two minutes of data -> ~10 gaps.
        let tuples = g.take(12_000);
        let gaps = tuples.windows(2).filter(|w| w[1].0 - w[0].0 >= 1500).count();
        assert!((8..=12).contains(&gaps), "gaps: {gaps}");
    }

    #[test]
    fn values_stay_in_domain() {
        let mut g = FootballGenerator::new(FootballConfig::default());
        for (_, v) in g.take(10_000) {
            assert!((0..84_232).contains(&v));
        }
    }

    #[test]
    fn seeded_runs_are_deterministic() {
        let mut a = FootballGenerator::new(FootballConfig::default());
        let mut b = FootballGenerator::new(FootballConfig::default());
        assert_eq!(a.take(1000), b.take(1000));
    }

    #[test]
    fn high_cardinality_reached() {
        let mut g = FootballGenerator::new(FootballConfig::default());
        let distinct: std::collections::HashSet<i64> =
            g.take(200_000).into_iter().map(|(_, v)| v).collect();
        assert!(distinct.len() > 1000, "distinct: {}", distinct.len());
    }
}
