//! Synthetic manufacturing-machine stream, modeled after the DEBS 2012
//! grand challenge data the paper replays (Section 6.1, [25]).
//!
//! Substitution (documented in DESIGN.md): the original data reports
//! machine states at 100 Hz with only **37 distinct values** in the
//! aggregated column — the property that makes run-length encoding so
//! effective for holistic aggregates in the paper's Figure 14. This
//! generator reproduces the rate and the 37-value cardinality with a
//! seeded Markov-style state process.

use gss_core::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic machine stream.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Updates per second (original: 100 Hz).
    pub rate_hz: u64,
    /// Number of distinct machine states (original column: 37).
    pub distinct_values: i64,
    /// Probability (percent) of changing state between updates; low values
    /// produce the long runs typical of machine telemetry.
    pub change_percent: u8,
    pub seed: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig { rate_hz: 100, distinct_values: 37, change_percent: 10, seed: 0x3A3A }
    }
}

/// A machine-state tuple generator.
pub struct MachineGenerator {
    cfg: MachineConfig,
    rng: StdRng,
    us: i64,
    period_us: i64,
    state: i64,
}

impl MachineGenerator {
    pub fn new(cfg: MachineConfig) -> Self {
        assert!(cfg.rate_hz > 0);
        assert!(cfg.distinct_values > 0);
        let rng = StdRng::seed_from_u64(cfg.seed);
        let period_us = (1_000_000 / cfg.rate_hz) as i64;
        MachineGenerator { cfg, rng, us: 0, period_us, state: 0 }
    }

    /// Generates `n` in-order tuples `(event_time_ms, state)`.
    pub fn take(&mut self, n: usize) -> Vec<(Time, i64)> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            if self.rng.gen_range(0..100) < self.cfg.change_percent as u32 {
                self.state = self.rng.gen_range(0..self.cfg.distinct_values);
            }
            out.push((self.us / 1000, self.state));
            self.us += self.period_us;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_37_states_at_most() {
        let mut g = MachineGenerator::new(MachineConfig::default());
        let distinct: std::collections::HashSet<i64> =
            g.take(100_000).into_iter().map(|(_, v)| v).collect();
        assert!(distinct.len() <= 37);
        assert!(distinct.len() > 20, "should visit most states: {}", distinct.len());
    }

    #[test]
    fn rate_is_100hz() {
        let mut g = MachineGenerator::new(MachineConfig::default());
        let tuples = g.take(1000);
        let span = tuples.last().unwrap().0 - tuples[0].0;
        assert!((9_000..=10_100).contains(&span), "span {span}");
    }

    #[test]
    fn long_runs_for_rle() {
        let mut g = MachineGenerator::new(MachineConfig::default());
        let tuples = g.take(10_000);
        let changes = tuples.windows(2).filter(|w| w[0].1 != w[1].1).count();
        // ~10% change probability (with self-transitions) -> far fewer
        // changes than tuples.
        assert!(changes < 2000, "changes: {changes}");
    }

    #[test]
    fn deterministic_with_seed() {
        let mut a = MachineGenerator::new(MachineConfig::default());
        let mut b = MachineGenerator::new(MachineConfig::default());
        assert_eq!(a.take(500), b.take(500));
    }
}
