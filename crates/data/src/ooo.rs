//! Out-of-order transformation and watermark generation.
//!
//! The paper's evaluation adds a configurable fraction of out-of-order
//! tuples with equally-distributed random delays (Sections 6.2.2, 6.3.1).
//! [`make_out_of_order`] reproduces that: each tuple is delayed with
//! probability `fraction`, its *arrival* position moves by a uniform delay
//! in `[0, max_delay]`, and the stream is re-emitted in arrival order.
//! [`with_watermarks`] interleaves periodic bounded-out-of-orderness
//! watermarks, the standard strategy of Flink-style systems.

use gss_core::{StreamElement, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the disorder transformation.
#[derive(Debug, Clone, Copy)]
pub struct OooConfig {
    /// Fraction of tuples arriving out of order, in percent (paper: 20).
    pub fraction_percent: u8,
    /// Maximum delay added to a tuple (paper: 0–2 s, delay-robustness
    /// experiment sweeps up to 8 s).
    pub max_delay: Time,
    /// Minimum delay (the delay-robustness ranges are `[lo, hi]`).
    pub min_delay: Time,
    pub seed: u64,
}

impl Default for OooConfig {
    fn default() -> Self {
        OooConfig { fraction_percent: 20, max_delay: 2000, min_delay: 0, seed: 0x0D15 }
    }
}

/// Reorders an in-order stream into an arrival sequence with the requested
/// disorder. Returns tuples in *arrival order*, still carrying their
/// original event timestamps.
pub fn make_out_of_order<V: Clone>(tuples: &[(Time, V)], cfg: OooConfig) -> Vec<(Time, V)> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut keyed: Vec<(Time, usize)> = tuples
        .iter()
        .enumerate()
        .map(|(i, (ts, _))| {
            let arrival = if rng.gen_range(0..100) < cfg.fraction_percent as u32 {
                ts + rng.gen_range(cfg.min_delay..=cfg.max_delay.max(cfg.min_delay))
            } else {
                *ts
            };
            (arrival, i)
        })
        .collect();
    // Stable by construction: ties keep original order via the index key.
    keyed.sort_by_key(|&(arrival, i)| (arrival, i));
    keyed.into_iter().map(|(_, i)| tuples[i].clone()).collect()
}

/// Interleaves periodic watermarks into an arrival-ordered stream:
/// every `period` of arrival progress, a watermark `max_event_ts - bound`
/// is emitted. A final `Watermark(i64::MAX - 1)` flushes all windows.
pub fn with_watermarks<V: Clone>(
    arrivals: &[(Time, V)],
    period: Time,
    bound: Time,
) -> Vec<StreamElement<V>> {
    let mut out = Vec::with_capacity(arrivals.len() + arrivals.len() / 16 + 1);
    let mut max_ts = Time::MIN;
    let mut next_wm_at = Time::MIN;
    for (ts, v) in arrivals {
        if max_ts == Time::MIN {
            next_wm_at = ts + period;
        }
        max_ts = max_ts.max(*ts);
        out.push(StreamElement::Record { ts: *ts, value: v.clone() });
        if max_ts >= next_wm_at {
            out.push(StreamElement::Watermark(max_ts - bound));
            next_wm_at = max_ts + period;
        }
    }
    out.push(StreamElement::Watermark(i64::MAX - 1));
    out
}

/// Fraction (percent) of tuples in `arrivals` that are out-of-order with
/// respect to the tuples before them. Used by tests and benchmarks to
/// validate generated disorder.
pub fn measured_disorder<V>(arrivals: &[(Time, V)]) -> f64 {
    if arrivals.is_empty() {
        return 0.0;
    }
    let mut max_ts = Time::MIN;
    let mut ooo = 0usize;
    for (ts, _) in arrivals {
        if *ts < max_ts {
            ooo += 1;
        }
        max_ts = max_ts.max(*ts);
    }
    100.0 * ooo as f64 / arrivals.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Vec<(Time, i64)> {
        (0..10_000).map(|i| (i, i)).collect()
    }

    #[test]
    fn zero_fraction_keeps_order() {
        let arrivals =
            make_out_of_order(&base(), OooConfig { fraction_percent: 0, ..Default::default() });
        assert_eq!(arrivals, base());
        assert_eq!(measured_disorder(&arrivals), 0.0);
    }

    #[test]
    fn disorder_close_to_requested_fraction() {
        let arrivals = make_out_of_order(
            &base(),
            OooConfig { fraction_percent: 20, max_delay: 200, ..Default::default() },
        );
        let d = measured_disorder(&arrivals);
        assert!((10.0..=30.0).contains(&d), "measured disorder {d}%");
        // Same multiset of tuples.
        let mut sorted = arrivals.clone();
        sorted.sort();
        assert_eq!(sorted, base());
    }

    #[test]
    fn delays_bounded() {
        let cfg = OooConfig { fraction_percent: 50, max_delay: 100, ..Default::default() };
        let arrivals = make_out_of_order(&base(), cfg);
        // A tuple can arrive at most max_delay after its event time: no
        // tuple appears after one whose event time exceeds ts + max_delay.
        let mut max_seen = arrivals[0].0;
        for (ts, _) in &arrivals {
            assert!(max_seen - ts <= cfg.max_delay, "delay exceeded at ts {ts}");
            max_seen = max_seen.max(*ts);
        }
    }

    #[test]
    fn watermarks_trail_by_bound() {
        let arrivals = make_out_of_order(&base(), OooConfig::default());
        let elements = with_watermarks(&arrivals, 500, 2000);
        let mut max_ts = Time::MIN;
        let mut wm_count = 0;
        for e in &elements {
            match e {
                StreamElement::Record { ts, .. } => max_ts = max_ts.max(*ts),
                StreamElement::Watermark(wm) if *wm < i64::MAX - 1 => {
                    wm_count += 1;
                    assert_eq!(*wm, max_ts - 2000);
                }
                _ => {}
            }
        }
        assert!(wm_count > 10, "watermarks: {wm_count}");
        assert!(matches!(elements.last(), Some(StreamElement::Watermark(_))));
    }

    #[test]
    fn watermarks_never_violate_later_records() {
        // Bounded disorder + bound-sized watermark lag => no record ever
        // arrives with ts < the last emitted watermark.
        let cfg = OooConfig { fraction_percent: 40, max_delay: 1000, ..Default::default() };
        let arrivals = make_out_of_order(&base(), cfg);
        let elements = with_watermarks(&arrivals, 300, 1000);
        let mut wm = Time::MIN;
        for e in &elements {
            match e {
                StreamElement::Record { ts, .. } => assert!(*ts >= wm, "late beyond watermark"),
                StreamElement::Watermark(w) if *w < i64::MAX - 1 => wm = *w,
                _ => {}
            }
        }
    }
}
