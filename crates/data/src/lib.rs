//! # gss-data
//!
//! Synthetic workload generators standing in for the datasets the paper
//! replays (Section 6.1):
//!
//! * [`football`] — the DEBS 2013 ball-sensor stream (2000 Hz, 5 session
//!   gaps per minute, 84 232 distinct aggregation values);
//! * [`machine`] — the DEBS 2012 manufacturing stream (100 Hz, 37 distinct
//!   values, long runs — the run-length-encoding sweet spot of Figure 14);
//! * [`ooo`] — the disorder transformation (fraction + uniform delay) and
//!   bounded-out-of-orderness watermark generation used throughout the
//!   evaluation.
//!
//! All generators are seeded and fully deterministic, so every benchmark
//! run sees identical data.

pub mod football;
pub mod machine;
pub mod ooo;

pub use football::{FootballConfig, FootballGenerator};
pub use machine::{MachineConfig, MachineGenerator};
pub use ooo::{make_out_of_order, measured_disorder, with_watermarks, OooConfig};
