//! Test-scope detection: which lines of a file belong to items gated
//! behind `#[cfg(test)]` (or `#[test]` / `#[bench]`).
//!
//! Rules like `no-panic` apply to production code only; a `#[cfg(test)]
//! mod tests { … }` block — wherever it appears, nested included — is
//! test code. Operating on the lexer's code view (comments and literals
//! already blanked), the scanner finds test-gating attributes and marks
//! the whole following item: up to the matching `}` if the item opens a
//! brace block, or the terminating `;` for braceless items.

use crate::lexer::Scan;

/// Returns, for each line (0-based), whether it lies inside a
/// test-gated item.
pub fn test_scoped_lines(scan: &Scan) -> Vec<bool> {
    let code = scan.code.as_bytes();
    let line_count = scan.code.lines().count();
    let mut mask = vec![false; line_count.max(1)];
    let mut i = 0usize;
    while i < code.len() {
        if code[i] == b'#' && peek_is(code, i + 1, b'[') {
            if let Some((inner, attr_end)) = attribute_at(code, i) {
                if is_test_gate(&inner) {
                    let region_end = item_end(code, attr_end);
                    mark(&mut mask, code, i, region_end);
                    i = region_end;
                    continue;
                }
                i = attr_end;
                continue;
            }
        }
        i += 1;
    }
    mask
}

fn peek_is(code: &[u8], i: usize, b: u8) -> bool {
    code.get(i) == Some(&b)
}

/// Parses the attribute starting at `#` (position `start`); returns its
/// inner text and the byte position just past the closing `]`.
fn attribute_at(code: &[u8], start: usize) -> Option<(String, usize)> {
    let mut depth = 0usize;
    let mut inner = String::new();
    for (off, &b) in code[start..].iter().enumerate() {
        match b {
            b'[' => {
                depth += 1;
                if depth > 1 {
                    inner.push('[');
                }
            }
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some((inner, start + off + 1));
                }
                inner.push(']');
            }
            _ if depth >= 1 => inner.push(b as char),
            _ => {}
        }
    }
    None
}

/// Whether an attribute's inner text gates test-only code: `test`,
/// `bench`, or a `cfg(…)` whose predicate mentions the `test` flag.
fn is_test_gate(inner: &str) -> bool {
    let t = inner.trim();
    if t == "test" || t == "bench" {
        return true;
    }
    if let Some(pred) = t.strip_prefix("cfg") {
        // `cfg(test)`, `cfg(all(test, feature = …))`, … — literal
        // strings are blanked by the lexer, so a word-bounded `test`
        // can only be the configuration flag itself.
        return contains_word(pred, "test");
    }
    false
}

fn contains_word(hay: &str, needle: &str) -> bool {
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let end = at + needle.len();
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

fn is_ident(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Finds the end of the item following an attribute: skips any further
/// attributes, then scans to the matching `}` of the first brace block,
/// or to the first `;` if one comes before any `{`.
fn item_end(code: &[u8], mut i: usize) -> usize {
    // Skip whitespace and stacked attributes (`#[cfg(test)] #[allow…]`).
    loop {
        while i < code.len() && (code[i] as char).is_whitespace() {
            i += 1;
        }
        if i < code.len() && code[i] == b'#' && peek_is(code, i + 1, b'[') {
            match attribute_at(code, i) {
                Some((_, end)) => i = end,
                None => return code.len(),
            }
        } else {
            break;
        }
    }
    let mut depth = 0usize;
    while i < code.len() {
        match code[i] {
            b'{' => depth += 1,
            // A closing brace at depth 0 ends the *enclosing* scope: the
            // gated item (an attributed statement or expression) cannot
            // extend past it.
            b'}' if depth == 0 => return i,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            b';' if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    code.len()
}

/// Marks every line overlapping byte range `[from, to)`.
fn mark(mask: &mut [bool], code: &[u8], from: usize, to: usize) {
    let first = line_of(code, from);
    let last = line_of(code, to.saturating_sub(1).max(from));
    let upto = (last + 1).min(mask.len());
    for m in mask.iter_mut().take(upto).skip(first) {
        *m = true;
    }
}

fn line_of(code: &[u8], pos: usize) -> usize {
    code[..pos.min(code.len())].iter().filter(|&&b| b == b'\n').count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn mask(src: &str) -> Vec<bool> {
        test_scoped_lines(&scan(src))
    }

    #[test]
    fn cfg_test_mod_is_scoped() {
        let m = mask(
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn prod2() {}\n",
        );
        assert_eq!(m, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn nested_braces_stay_scoped() {
        let src = "#[cfg(test)]\nmod tests {\n  mod inner {\n    fn f() { if a { b() } }\n  }\n}\nfn after() {}\n";
        let m = mask(src);
        assert!(m[..6].iter().all(|&x| x));
        assert!(!m[6]);
    }

    #[test]
    fn test_fn_attribute_scopes_only_that_fn() {
        let m = mask("#[test]\nfn t() {\n  boom();\n}\nfn prod() {}\n");
        assert_eq!(m, vec![true, true, true, true, false]);
    }

    #[test]
    fn cfg_all_with_test_flag_is_scoped() {
        let m = mask("#[cfg(all(test, unix))]\nfn t() {}\nfn p() {}\n");
        assert_eq!(m, vec![true, true, false]);
    }

    #[test]
    fn cfg_feature_named_like_test_is_not_scoped() {
        // The lexer blanks string contents, so `feature = "test"` cannot
        // leak the word — but `testing`-style idents must not match
        // either.
        let m = mask("#[cfg(feature = \"integration-testing\")]\nfn p() { run(); }\n");
        assert_eq!(m, vec![false, false]);
    }

    #[test]
    fn braceless_item_ends_at_semicolon() {
        let m = mask("#[cfg(test)]\nuse helpers::*;\nfn prod() {}\n");
        assert_eq!(m, vec![true, true, false]);
    }

    #[test]
    fn stacked_attributes_cover_whole_item() {
        let m = mask("#[cfg(test)]\n#[allow(dead_code)]\nfn t() {\n  x();\n}\nfn p() {}\n");
        assert_eq!(m, vec![true, true, true, true, true, false]);
    }
}
