//! An explicit-state model checker for the key-sharded merge protocol
//! (`gss_stream::run_sharded_keyed`, PR 7).
//!
//! Like the intra-query model in [`crate::mc`], this exists because the
//! development container has one core: the sharded protocol's races can
//! never surface at runtime, so its guarantees are checked by exhaustive
//! exploration. The model mirrors the shipped protocol:
//!
//! * **Shards** each produce a fixed FIFO script: per watermark epoch,
//!   zero or more `Emits` batches (key-tagged window results, shipped at
//!   the cap or right before the ack) followed by one `Ack(w)` per
//!   broadcast watermark — ship then ack, every broadcast acked. Tail
//!   emissions (records or punctuation after the last watermark) ship
//!   with no trailing ack.
//! * The **merge stage** keeps one FIFO queue per shard and *stages*
//!   consumed `Emits` per shard. The output epoch closes only when
//!   **every** queue front is an ack (the epoch barrier): the watermark
//!   advances to the agreed value and the staged emissions are
//!   *released* — appended to the output — together. Remaining staged
//!   messages at end of stream are released as the closing epoch.
//!
//! The explored nondeterminism is the arrival interleaving of shard
//! messages and the merge stage's lag behind arrivals, both explored
//! exhaustively with memoization over `(delivered, consumed, released,
//! watermark, output)` states; the merge transition runs the
//! deterministic fixpoint of the real loop.
//!
//! ## Checked invariants
//!
//! 1. **Ack agreement / watermark monotonicity** — at every barrier all
//!    acked fronts agree (FIFO broadcast); regressive watermarks are
//!    acked but ignored and release nothing new.
//! 2. **Epoch-complete release** — when the watermark advances to `W`,
//!    every `Emits` batch that precedes `Ack(W)` in *any* shard's script
//!    has been consumed **and released**: the output epoch is complete.
//! 3. **Epoch-ordered, exactly-once release** — every emission is
//!    released exactly once, at exactly its own epoch's barrier (tail
//!    emissions: exactly at end of stream), so the output is globally
//!    watermark-ordered.
//!
//! To validate that the checker can fail, [`ShardProtocol`] carries
//! three mutants: [`ShardProtocol::AnyAck`] (close the epoch on the
//! first ack — breaks invariant 2), [`ShardProtocol::EagerRelease`]
//! (release emissions on arrival instead of at the barrier — breaks
//! invariant 3), and [`ShardProtocol::DropStaged`] (forget staged
//! emissions at the barrier — breaks exactly-once). All three must be
//! caught; the real [`ShardProtocol::EpochBarrier`] must pass.

use std::collections::HashSet;

/// Model time; watermarks are small integers.
type Wm = i64;
const WM_MIN: Wm = i64::MIN;
/// Epoch marker for tail emissions (after the last watermark): released
/// only by the end-of-stream drain, never at a barrier.
const TAIL: Wm = i64::MAX;

/// One shard→merge message.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Msg {
    /// A shipped batch of emission ids.
    Emits(Vec<u32>),
    /// Watermark ack: everything this shard emitted up to the watermark
    /// has been shipped in earlier messages.
    Ack(Wm),
}

/// Which merge rule to model check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardProtocol {
    /// The shipped rule: release staged emissions and advance only when
    /// every queue front is an ack.
    EpochBarrier,
    /// Mutant: close the epoch as soon as any front acks. A lagging
    /// shard's emissions miss their epoch — breaks completeness.
    AnyAck,
    /// Mutant: release each batch the moment it is consumed instead of
    /// staging until the barrier — breaks watermark ordering.
    EagerRelease,
    /// Mutant: discard staged batches at the barrier — breaks
    /// exactly-once release.
    DropStaged,
}

/// A model configuration: the protocol plus the workload shape.
#[derive(Debug, Clone, Copy)]
pub struct ShardMcConfig {
    pub shards: usize,
    pub epochs: usize,
    /// `Emits` batches each shard ships per epoch (0 = idle shard that
    /// only acks — keys hashed elsewhere).
    pub ships_per_epoch: usize,
    /// Ship one batch after the final ack (records/punctuation past the
    /// last watermark), released by the end-of-stream drain.
    pub tail_emits: bool,
    /// Broadcast a regressive watermark after epoch 0 (acked by every
    /// shard, ignored by the merge stage, releases nothing).
    pub regressive_wm: bool,
    pub protocol: ShardProtocol,
}

impl ShardMcConfig {
    pub fn new(shards: usize, epochs: usize) -> Self {
        ShardMcConfig {
            shards,
            epochs,
            ships_per_epoch: 1,
            tail_emits: false,
            regressive_wm: false,
            protocol: ShardProtocol::EpochBarrier,
        }
    }
}

/// Exploration statistics of a passing run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardMcReport {
    /// Distinct states visited.
    pub states: u64,
    /// Transitions taken (including ones into memoized states).
    pub transitions: u64,
    /// Epochs closed (watermark advances) along any single execution.
    pub epochs_closed: u64,
    /// Total emissions generated by the scripts.
    pub emissions: u64,
}

/// An invariant violation with the interleaving that produced it.
#[derive(Debug, Clone)]
pub struct ShardMcViolation {
    pub invariant: &'static str,
    pub detail: String,
    /// Scheduler choices from the initial state to the violation.
    pub trace: Vec<String>,
}

impl std::fmt::Display for ShardMcViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "invariant violated: {} — {}", self.invariant, self.detail)?;
        writeln!(f, "interleaving:")?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>3}. {step}", i + 1)?;
        }
        Ok(())
    }
}

fn wm_of_epoch(e: usize) -> Wm {
    10 * (e as Wm + 1)
}

/// Builds each shard's message script; returns the scripts and each
/// emission id's epoch watermark ([`TAIL`] for post-final-ack ships).
fn build_scripts(cfg: &ShardMcConfig) -> (Vec<Vec<Msg>>, Vec<Wm>) {
    let mut epoch_of: Vec<Wm> = Vec::new();
    let mut scripts = Vec::with_capacity(cfg.shards);
    for _s in 0..cfg.shards {
        let mut script = Vec::new();
        for e in 0..cfg.epochs {
            for _ in 0..cfg.ships_per_epoch {
                let id = epoch_of.len() as u32;
                epoch_of.push(wm_of_epoch(e));
                script.push(Msg::Emits(vec![id]));
            }
            script.push(Msg::Ack(wm_of_epoch(e)));
            if cfg.regressive_wm && e == 0 {
                // Broadcasts arrive in stream order; a regressive one is
                // still acked (and must release nothing).
                script.push(Msg::Ack(wm_of_epoch(0) - 7));
            }
        }
        if cfg.tail_emits {
            let id = epoch_of.len() as u32;
            epoch_of.push(TAIL);
            script.push(Msg::Emits(vec![id]));
        }
        scripts.push(script);
    }
    (scripts, epoch_of)
}

/// The explored state: per-shard delivery and consumption progress, the
/// per-shard release frontier (consumed index at the last release), the
/// merge watermark, and the released output sequence. The output rides
/// the state because release points are path-dependent — it is exactly
/// what the invariants constrain.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    delivered: Vec<u16>,
    consumed: Vec<u16>,
    released_upto: Vec<u16>,
    wm: Wm,
    out: Vec<u32>,
    epochs_closed: u64,
}

struct Explorer<'a> {
    cfg: &'a ShardMcConfig,
    scripts: &'a [Vec<Msg>],
    /// Epoch watermark of each emission id ([`TAIL`] for tail ships).
    epoch_of: &'a [Wm],
    seen: HashSet<State>,
    trace: Vec<String>,
    report: ShardMcReport,
}

impl<'a> Explorer<'a> {
    fn front(&self, st: &State, s: usize) -> Option<&'a Msg> {
        let (c, d) = (st.consumed[s] as usize, st.delivered[s] as usize);
        (c < d).then(|| &self.scripts[s][c])
    }

    fn violation(&self, invariant: &'static str, detail: String) -> ShardMcViolation {
        ShardMcViolation { invariant, detail, trace: self.trace.clone() }
    }

    /// Releases every staged (consumed but unreleased) batch of every
    /// shard. `barrier_wm` is the watermark of the closing epoch, or
    /// `None` for the end-of-stream drain. Checks epoch-ordered release.
    fn release_staged(
        &mut self,
        st: &mut State,
        barrier_wm: Option<Wm>,
    ) -> Result<(), ShardMcViolation> {
        for s in 0..self.cfg.shards {
            let from = st.released_upto[s] as usize;
            let to = st.consumed[s] as usize;
            for msg in self.scripts[s].iter().take(to).skip(from) {
                let Msg::Emits(ids) = msg else { continue };
                for &id in ids {
                    let own = self.epoch_of[id as usize];
                    let ok = match barrier_wm {
                        // A barrier releases exactly its own epoch.
                        Some(w) => own == w,
                        // The drain releases exactly the tail.
                        None => own == TAIL,
                    };
                    if !(ok || self.cfg.protocol != ShardProtocol::EpochBarrier) {
                        // Structural for the real protocol; reachable
                        // only through a bug in the model itself.
                        return Err(self.violation(
                            "epoch-ordered release",
                            format!("emission {id} (epoch wm {own}) released at {barrier_wm:?}"),
                        ));
                    }
                    if !ok {
                        return Err(self.violation(
                            "epoch-ordered release",
                            format!(
                                "emission {id} (epoch wm {own}) released at {}",
                                barrier_wm.map_or("end of stream".to_string(), |w| w.to_string())
                            ),
                        ));
                    }
                    if self.cfg.protocol != ShardProtocol::DropStaged {
                        st.out.push(id);
                    }
                    self.trace.push(format!("merge: release emission {id} from shard {s}"));
                }
            }
            st.released_upto[s] = st.consumed[s];
        }
        Ok(())
    }

    /// Runs the merge stage to fixpoint: consumes every front `Emits`
    /// (staging, or releasing under the eager mutant), then closes the
    /// epoch while the barrier rule is met. Deterministic given the
    /// queues; invariants are checked along the way.
    fn apply_ready(&mut self, st: &mut State) -> Result<(), ShardMcViolation> {
        loop {
            let mut progressed = false;
            for s in 0..self.cfg.shards {
                while let Some(Msg::Emits(ids)) = self.front(st, s) {
                    let ids = ids.clone();
                    st.consumed[s] += 1;
                    progressed = true;
                    self.trace.push(format!("merge: stage shard {s} batch {ids:?}"));
                    if self.cfg.protocol == ShardProtocol::EagerRelease {
                        // Mutant: skip the barrier and release on arrival.
                        for &id in &ids {
                            let own = self.epoch_of[id as usize];
                            if own != st.wm {
                                return Err(self.violation(
                                    "epoch-ordered release",
                                    format!(
                                        "emission {id} (epoch wm {own}) released eagerly at \
                                         watermark {}",
                                        st.wm
                                    ),
                                ));
                            }
                            st.out.push(id);
                        }
                        st.released_upto[s] = st.consumed[s];
                    }
                }
            }
            // Barrier rule.
            let acked: Vec<(usize, Wm)> = (0..self.cfg.shards)
                .filter_map(|s| match self.front(st, s) {
                    Some(Msg::Ack(v)) => Some((s, *v)),
                    _ => None,
                })
                .collect();
            let fire = match self.cfg.protocol {
                ShardProtocol::AnyAck => !acked.is_empty(),
                _ => acked.len() == self.cfg.shards,
            };
            if fire {
                progressed = true;
                let wm = acked.iter().map(|&(_, v)| v).min().unwrap_or(WM_MIN);
                for &(s, v) in &acked {
                    st.consumed[s] += 1;
                    self.trace.push(format!("merge: pop ack({v}) from shard {s}"));
                    if v != wm && self.cfg.protocol != ShardProtocol::AnyAck {
                        return Err(self.violation(
                            "ack agreement",
                            format!("barrier acks disagree: {v} vs {wm} (FIFO broadcast broken)"),
                        ));
                    }
                }
                if wm > st.wm {
                    st.wm = wm;
                    st.epochs_closed += 1;
                    self.trace.push(format!("merge: barrier — watermark {wm}, release epoch"));
                    self.release_staged(st, Some(wm))?;
                    self.check_epoch_complete(st, wm)?;
                } else {
                    // Regressive/duplicate watermark: acked, ignored; a
                    // correct run has nothing new staged to release.
                    self.release_staged(st, Some(wm))?;
                }
            }
            if !progressed {
                return Ok(());
            }
        }
    }

    /// Invariant 2: when the watermark advances to `wm`, every `Emits`
    /// batch preceding `Ack(wm)` in any shard's script must have been
    /// consumed and released — the output epoch is complete.
    fn check_epoch_complete(&mut self, st: &State, wm: Wm) -> Result<(), ShardMcViolation> {
        for (s, script) in self.scripts.iter().enumerate() {
            let Some(ack_idx) = script.iter().position(|m| *m == Msg::Ack(wm)) else {
                continue;
            };
            if (st.released_upto[s] as usize) < ack_idx {
                return Err(self.violation(
                    "epoch-complete release",
                    format!(
                        "epoch {wm} closed but shard {s} released only \
                         {}/{} messages (ack at index {ack_idx})",
                        st.released_upto[s],
                        script.len()
                    ),
                ));
            }
        }
        Ok(())
    }

    fn check_terminal(&mut self, st: &State) -> Result<(), ShardMcViolation> {
        for s in 0..self.cfg.shards {
            if st.consumed[s] as usize != self.scripts[s].len() {
                return Err(self.violation(
                    "exactly-once release",
                    format!("shard {s}'s queue did not drain at end of stream"),
                ));
            }
        }
        let mut counts = vec![0u8; self.epoch_of.len()];
        for &id in &st.out {
            counts[id as usize] = counts[id as usize].saturating_add(1);
        }
        if let Some(id) = counts.iter().position(|&c| c != 1) {
            return Err(self.violation(
                "exactly-once release",
                format!("emission {id} released {} times by end of stream", counts[id]),
            ));
        }
        // Globally watermark-ordered output: released epochs never
        // interleave or regress.
        let epochs: Vec<Wm> = st.out.iter().map(|&id| self.epoch_of[id as usize]).collect();
        if epochs.windows(2).any(|w| w[0] > w[1]) {
            return Err(self
                .violation("epoch-ordered release", format!("output epochs regress: {epochs:?}")));
        }
        self.report.epochs_closed = self.report.epochs_closed.max(st.epochs_closed);
        Ok(())
    }

    /// DFS over scheduler choices from `st`.
    fn explore(&mut self, st: State) -> Result<(), ShardMcViolation> {
        if !self.seen.insert(st.clone()) {
            return Ok(());
        }
        self.report.states += 1;
        let mut terminal = true;
        for s in 0..self.cfg.shards {
            if (st.delivered[s] as usize) < self.scripts[s].len() {
                terminal = false;
                self.report.transitions += 1;
                let mut next = st.clone();
                next.delivered[s] += 1;
                let depth = self.trace.len();
                self.trace.push(format!("deliver shard {s} message #{}", next.delivered[s]));
                // The merge stage may lag arbitrarily behind arrivals:
                // explore both the eager schedule (apply_ready now) and
                // the lagged one (deliver more first).
                let step = self.trace.len();
                let mut processed = next.clone();
                self.apply_ready(&mut processed)?;
                self.explore(processed)?;
                self.trace.truncate(step);
                self.trace.push("merge lags".to_string());
                self.explore(next)?;
                self.trace.truncate(depth);
            }
        }
        if terminal {
            // Drain: the real merge loop runs apply_ready after the
            // channel closes, then releases the staged tail.
            let mut fin = st.clone();
            let depth = self.trace.len();
            self.apply_ready(&mut fin)?;
            self.release_staged(&mut fin, None)?;
            self.check_terminal(&fin)?;
            self.trace.truncate(depth);
        }
        Ok(())
    }
}

/// Exhaustively explores every interleaving of `cfg`; returns statistics
/// or the first invariant violation found.
pub fn check(cfg: &ShardMcConfig) -> Result<ShardMcReport, ShardMcViolation> {
    let (scripts, epoch_of) = build_scripts(cfg);
    let mut ex = Explorer {
        cfg,
        scripts: &scripts,
        epoch_of: &epoch_of,
        seen: HashSet::new(),
        trace: Vec::new(),
        report: ShardMcReport { emissions: epoch_of.len() as u64, ..ShardMcReport::default() },
    };
    let init = State {
        delivered: vec![0; cfg.shards],
        consumed: vec![0; cfg.shards],
        released_upto: vec![0; cfg.shards],
        wm: WM_MIN,
        out: Vec::new(),
        epochs_closed: 0,
    };
    ex.explore(init)?;
    Ok(ex.report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_barrier_passes_small_configs() {
        for shards in 1..=3 {
            for epochs in 1..=3 {
                let cfg = ShardMcConfig::new(shards, epochs);
                let rep = check(&cfg).unwrap_or_else(|v| panic!("{v}"));
                assert!(rep.states > 0);
                assert_eq!(rep.epochs_closed, epochs as u64);
            }
        }
    }

    #[test]
    fn multi_ship_tail_and_regressive_pass() {
        let mut cfg = ShardMcConfig::new(2, 2);
        cfg.ships_per_epoch = 2;
        cfg.tail_emits = true;
        cfg.regressive_wm = true;
        let rep = check(&cfg).unwrap_or_else(|v| panic!("{v}"));
        // 2 shards × (2 epochs × 2 ships + 1 tail) emissions.
        assert_eq!(rep.emissions, 2 * (2 * 2 + 1));
        assert_eq!(rep.epochs_closed, 2);
    }

    #[test]
    fn idle_shards_only_ack() {
        let mut cfg = ShardMcConfig::new(2, 2);
        cfg.ships_per_epoch = 0;
        let rep = check(&cfg).unwrap_or_else(|v| panic!("{v}"));
        assert_eq!(rep.emissions, 0);
        assert_eq!(rep.epochs_closed, 2);
    }

    #[test]
    fn any_ack_mutant_is_caught() {
        let mut cfg = ShardMcConfig::new(2, 2);
        cfg.protocol = ShardProtocol::AnyAck;
        let v = check(&cfg).expect_err("any-ack epoch close must violate completeness");
        assert_eq!(v.invariant, "epoch-complete release");
        assert!(!v.trace.is_empty(), "violation must carry its interleaving");
    }

    #[test]
    fn eager_release_mutant_is_caught() {
        let mut cfg = ShardMcConfig::new(2, 1);
        cfg.protocol = ShardProtocol::EagerRelease;
        let v = check(&cfg).expect_err("eager release must violate epoch ordering");
        assert_eq!(v.invariant, "epoch-ordered release");
    }

    #[test]
    fn drop_staged_mutant_is_caught() {
        let mut cfg = ShardMcConfig::new(2, 1);
        cfg.protocol = ShardProtocol::DropStaged;
        let v = check(&cfg).expect_err("dropping staged emissions must violate exactly-once");
        assert_eq!(v.invariant, "exactly-once release");
    }
}
