//! The line-level lint rules enforced over the workspace.
//!
//! Every rule operates on the lexer's code view (comments and literal
//! contents blanked — see [`crate::lexer`]) with test-gated lines masked
//! out where the rule targets production code only
//! (see [`crate::scope`]). Paths are workspace-relative with `/`
//! separators.
//!
//! | rule              | scope                                   | requirement |
//! |-------------------|-----------------------------------------|-------------|
//! | `no-panic`        | library code (not tests/benches/bins)   | no `.unwrap()` / `.expect(` / `panic!` / `todo!` / `unimplemented!` |
//! | `unsafe-safety`   | everywhere                              | every `unsafe` is preceded by a `// SAFETY:` comment |
//! | `core-cast`       | `gss-core` library code                 | no bare `as usize` / `as i64` (use `gss_core::cast` helpers) |
//! | `std-hashmap`     | hot crates (core/stream/baselines/aggregates) | no default-hasher `HashMap` (use the `FxHashMap` shim) |
//! | `no-wallclock`    | `gss-core` / `gss-aggregates`           | no `Instant::now` / `SystemTime` (event time only) |
//! | `raw-channel`     | library code (not tests/benches/bins)   | no raw `mpsc` / `channel::bounded` / `thread::spawn` / `thread::scope` — go through `crossbeam::runtime` so `cargo sched` can control the concurrency surface |
//!
//! Audited exceptions live in `analysis/lint.allow` (see
//! [`crate::allowlist`]).

use crate::lexer::{scan, Scan};
use crate::scope::test_scoped_lines;

/// One rule violation at a specific line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (see the module-level table).
    pub rule: &'static str,
    /// Human-readable description of the finding.
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.msg)
    }
}

/// Rule identifiers, for `lint --rules` and allowlist validation.
pub const RULE_IDS: &[&str] =
    &["no-panic", "unsafe-safety", "core-cast", "std-hashmap", "no-wallclock", "raw-channel"];

/// Whether a path is library (production) code for the `no-panic` rule:
/// binaries, benches, examples, test trees, the bench harness crate, and
/// the vendored dependency shims are exempt.
fn is_library_code(path: &str) -> bool {
    let exempt_dirs = ["/tests/", "/benches/", "/examples/", "/src/bin/", "/build/", "/fuzz/"];
    if exempt_dirs.iter().any(|d| path.contains(d)) {
        return false;
    }
    if path.starts_with("tests/") || path.starts_with("examples/") || path.starts_with("benches/") {
        return false;
    }
    // The bench harness crate is measurement tooling end to end.
    !path.starts_with("crates/bench/")
}

/// Crates whose per-tuple paths are hot enough that a randomized default
/// hasher is a measurable regression.
fn is_hot_crate(path: &str) -> bool {
    ["crates/core/src/", "crates/stream/src/", "crates/baselines/src/", "crates/aggregates/src/"]
        .iter()
        .any(|p| path.starts_with(p))
}

fn is_core_lib(path: &str) -> bool {
    path.starts_with("crates/core/src/")
}

fn is_event_time_crate(path: &str) -> bool {
    path.starts_with("crates/core/src/") || path.starts_with("crates/aggregates/src/")
}

/// Runs every applicable rule over one file. `path` must be
/// workspace-relative with `/` separators.
pub fn check_file(path: &str, src: &str) -> Vec<Violation> {
    let scanned = scan(src);
    let test_mask = test_scoped_lines(&scanned);
    let mut out = Vec::new();
    let in_tests = |line0: usize| test_mask.get(line0).copied().unwrap_or(false);

    for (line0, code) in scanned.code_lines().enumerate() {
        let line = line0 + 1;
        if is_library_code(path) && !in_tests(line0) {
            for needle in [".unwrap()", ".expect(", "panic!", "todo!", "unimplemented!"] {
                if find_token(code, needle) {
                    out.push(Violation {
                        path: path.to_string(),
                        line,
                        rule: "no-panic",
                        msg: format!("`{needle}` in library code — return an error, restructure, or allowlist with justification"),
                    });
                }
            }
        }
        if is_core_lib(path) && !in_tests(line0) {
            for needle in ["as usize", "as i64"] {
                if contains_word_seq(code, needle) {
                    out.push(Violation {
                        path: path.to_string(),
                        line,
                        rule: "core-cast",
                        msg: format!("bare `{needle}` cast in slice-index/timestamp arithmetic — use a `gss_core::cast` checked helper"),
                    });
                }
            }
        }
        if is_hot_crate(path) && !in_tests(line0) && contains_word(code, "HashMap") {
            out.push(Violation {
                path: path.to_string(),
                line,
                rule: "std-hashmap",
                msg: "default-hasher `HashMap` in a hot crate — use `gss_core::FxHashMap`".into(),
            });
        }
        if is_library_code(path) && !in_tests(line0) {
            // The concurrency surface must stay behind
            // `crossbeam::runtime` (`runtime::bounded`, `runtime::scope`)
            // so the sched build can interpose on every channel op and
            // spawn. The needles carry their path prefixes, so
            // `runtime::bounded` / `runtime::scope` do not match.
            for needle in ["mpsc", "channel::bounded", "thread::spawn", "thread::scope"] {
                if contains_word(code, needle) {
                    out.push(Violation {
                        path: path.to_string(),
                        line,
                        rule: "raw-channel",
                        msg: format!("raw `{needle}` outside the runtime layer — use `crossbeam::runtime::bounded` / `crossbeam::runtime::scope` so `cargo sched` can control it"),
                    });
                }
            }
        }
        if is_event_time_crate(path) && !in_tests(line0) {
            for needle in ["Instant::now", "SystemTime"] {
                if code.contains(needle) {
                    out.push(Violation {
                        path: path.to_string(),
                        line,
                        rule: "no-wallclock",
                        msg: format!("wall-clock `{needle}` in event-time code — thread times through the data path"),
                    });
                }
            }
        }
        if contains_word(code, "unsafe") && !has_safety_comment(&scanned, line0) {
            out.push(Violation {
                path: path.to_string(),
                line,
                rule: "unsafe-safety",
                msg: "`unsafe` without a preceding `// SAFETY:` comment".into(),
            });
        }
    }
    out
}

/// How many lines above an `unsafe` token a `SAFETY:` comment may sit
/// (attributes or the statement head may intervene).
const SAFETY_LOOKBACK: usize = 5;

fn has_safety_comment(scanned: &Scan, line0: usize) -> bool {
    let from = line0.saturating_sub(SAFETY_LOOKBACK);
    scanned.comments[from..=line0.min(scanned.comments.len() - 1)]
        .iter()
        .any(|c| c.contains("SAFETY:"))
}

/// Substring search for method-call / macro tokens. The needles carry
/// their own delimiters (`.…(`, `…!`), so plain containment is exact —
/// `.expect(` does not match `.expect_tok(` and `FxHashMap` is excluded
/// by [`contains_word`] instead.
fn find_token(code: &str, needle: &str) -> bool {
    match needle.strip_suffix('!') {
        // Macro names additionally need a word boundary on the left
        // (`panic!` must not match `core_panic!`).
        Some(stem) => {
            let mut from = 0;
            while let Some(pos) = code[from..].find(needle) {
                let at = from + pos;
                if at == 0 || !is_ident_byte(code.as_bytes()[at - 1]) {
                    return true;
                }
                from = at + stem.len();
            }
            false
        }
        None => code.contains(needle),
    }
}

/// Word-bounded identifier search.
pub fn contains_word(hay: &str, needle: &str) -> bool {
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + needle.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Word-bounded search for a two-token sequence like `as usize`,
/// tolerant of any interior whitespace.
fn contains_word_seq(hay: &str, needle: &str) -> bool {
    let mut parts = needle.splitn(2, ' ');
    let (Some(first), Some(second)) = (parts.next(), parts.next()) else {
        return contains_word(hay, needle);
    };
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(first) {
        let at = from + pos;
        let end = at + first.len();
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        if before_ok {
            let rest = &hay[end..];
            let trimmed = rest.trim_start();
            if (rest.len() != trimmed.len() || trimmed.is_empty()) && trimmed.starts_with(second) {
                let after = trimmed.as_bytes().get(second.len());
                if after.is_none_or(|&b| !is_ident_byte(b)) {
                    return true;
                }
            }
        }
        from = end;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(path: &str, src: &str) -> Vec<&'static str> {
        check_file(path, src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn unwrap_in_library_code_flagged() {
        let v = check_file("crates/core/src/x.rs", "fn f() { y.unwrap(); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-panic");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn unwrap_in_tests_dir_and_bins_ok() {
        assert!(check_file("crates/core/tests/t.rs", "fn f() { y.unwrap(); }\n").is_empty());
        assert!(check_file("crates/bench/src/bin/b.rs", "fn f() { y.unwrap(); }\n").is_empty());
        assert!(check_file("tests/e2e.rs", "fn f() { panic!(); }\n").is_empty());
    }

    #[test]
    fn unwrap_in_cfg_test_mod_ok() {
        let src = "pub fn prod() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\n";
        assert!(check_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_in_comment_or_string_ok() {
        let src = "// panic! here would be bad\nfn f() { let s = \"panic!\"; }\n";
        assert!(check_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn expect_tok_is_not_expect() {
        assert!(check_file("crates/query/src/sql.rs", "fn f() { p.expect_tok(t); }\n").is_empty());
        assert_eq!(rules_of("crates/query/src/sql.rs", "fn f() { p.expect(t); }\n"), ["no-panic"]);
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let bad = "fn f() { unsafe { go() } }\n";
        assert_eq!(rules_of("crates/stream/src/p.rs", bad), ["unsafe-safety"]);
        let good = "// SAFETY: go has no preconditions.\nfn f() { unsafe { go() } }\n";
        assert!(check_file("crates/stream/src/p.rs", good).is_empty());
    }

    #[test]
    fn unsafe_rule_applies_even_in_tests() {
        let bad = "#[cfg(test)]\nmod tests {\n  fn t() { unsafe { go() } }\n}\n";
        assert_eq!(rules_of("crates/core/src/x.rs", bad), ["unsafe-safety"]);
    }

    #[test]
    fn core_casts_flagged_only_in_core() {
        let src = "fn f(g: i64, b: i64) -> usize { (g - b) as usize }\n";
        assert_eq!(rules_of("crates/core/src/t.rs", src), ["core-cast"]);
        assert!(check_file("crates/stream/src/t.rs", src).is_empty());
        // `as u64` widenings and float casts are out of scope.
        assert!(
            check_file("crates/core/src/t.rs", "fn f(n: usize) -> u64 { n as u64 }\n").is_empty()
        );
    }

    #[test]
    fn hashmap_flagged_but_fxhashmap_ok() {
        let bad = "use std::collections::HashMap;\n";
        assert_eq!(rules_of("crates/core/src/m.rs", bad), ["std-hashmap"]);
        let good = "use crate::hash::FxHashMap;\nfn f() { let m: FxHashMap<u64, u64> = FxHashMap::default(); }\n";
        assert!(check_file("crates/core/src/m.rs", good).is_empty());
        // Cold crates may use the default hasher.
        assert!(check_file("crates/query/src/m.rs", bad).is_empty());
    }

    #[test]
    fn raw_channel_flagged_in_library_code() {
        let mpsc = "use std::sync::mpsc;\n";
        assert_eq!(rules_of("crates/stream/src/p.rs", mpsc), ["raw-channel"]);
        let spawn = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(rules_of("crates/stream/src/p.rs", spawn), ["raw-channel"]);
        let scope = "fn f() { std::thread::scope(|s| {}); }\n";
        assert_eq!(rules_of("crates/stream/src/p.rs", scope), ["raw-channel"]);
        let bounded = "fn f() { let (tx, rx) = channel::bounded(4); }\n";
        assert_eq!(rules_of("crates/stream/src/p.rs", bounded), ["raw-channel"]);
    }

    #[test]
    fn runtime_layer_calls_are_not_raw_channels() {
        let src = "use crossbeam::runtime;\nfn f() { let (tx, rx) = runtime::bounded(4); runtime::scope(|s| { s.spawn(|| {}); }); }\n";
        assert!(check_file("crates/stream/src/p.rs", src).is_empty());
    }

    #[test]
    fn raw_channel_allowed_in_tests_and_bins() {
        let spawn = "fn f() { std::thread::spawn(|| {}); }\n";
        assert!(check_file("crates/stream/tests/t.rs", spawn).is_empty());
        assert!(check_file("crates/bench/src/bin/b.rs", spawn).is_empty());
        let in_test_mod =
            "pub fn prod() {}\n#[cfg(test)]\nmod tests {\n  fn t() { std::thread::spawn(|| {}); }\n}\n";
        assert!(check_file("crates/stream/src/p.rs", in_test_mod).is_empty());
    }

    #[test]
    fn wallclock_flagged_in_core_and_aggregates() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(rules_of("crates/core/src/t.rs", src), ["no-wallclock"]);
        assert_eq!(rules_of("crates/aggregates/src/t.rs", src), ["no-wallclock"]);
        assert!(check_file("crates/stream/src/t.rs", src).is_empty());
    }
}
