//! Workspace source discovery for the lint binary.

use std::path::{Path, PathBuf};

/// The workspace root, resolved relative to this crate's manifest so the
/// binaries work from any working directory.
pub fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = manifest.join("..").join("..");
    root.canonicalize().unwrap_or(root)
}

/// Every `.rs` file under `root` as `(workspace-relative path with '/'
/// separators, absolute path)`, sorted for deterministic output. Build
/// output (`target/`) and dot-directories are skipped.
pub fn rust_files(root: &Path) -> Vec<(String, PathBuf)> {
    let mut out = Vec::new();
    visit(root, root, &mut out);
    out.sort();
    out
}

fn visit(dir: &Path, root: &Path, out: &mut Vec<(String, PathBuf)>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            visit(&path, root, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let Ok(rel) = path.strip_prefix(root) else {
                continue;
            };
            let rel = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
}
