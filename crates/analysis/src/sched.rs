//! Deterministic schedule exploration over the *real* concurrency
//! protocols (`cargo sched`).
//!
//! The model checkers in [`crate::mc`] and [`crate::sharded`] explore
//! hand-written transition systems; this module closes the
//! model–implementation gap by running the actual
//! [`gss_stream::run_parallel`] and [`gss_stream::run_sharded_keyed`]
//! code under `crossbeam::sched::run_controlled`, where every channel
//! operation is a yield point and a [`Strategy`] decides every
//! interleaving.
//!
//! Two exploration modes:
//!
//! * **Bounded-preemption DFS** ([`Explore::Dfs`]): stateless replay of
//!   choice prefixes, CHESS-style. Every multi-choice scheduling
//!   decision is a branch; alternatives that would exceed the
//!   preemption bound (forcing a switch while the token holder is
//!   still runnable) are pruned. `preemption_bound: None` enumerates
//!   every schedule of the yield-point granularity.
//! * **PCT random schedules** ([`Explore::Pct`]): seed-pinned
//!   priority-based probabilistic concurrency testing for configs too
//!   large to enumerate — random initial priorities, `depth - 1`
//!   priority change points, highest-priority runnable task wins.
//!
//! Every explored schedule is checked by an oracle with two halves:
//!
//! * **Conformance**: the run's emissions must be bit-identical to a
//!   sequential reference operator over the same elements (finals,
//!   update emissions, and — for the sharded protocol — the exact
//!   released sequence).
//! * **Protocol invariants** from the mc models, observed through
//!   [`ProbeEvent`]s the protocols record at ship/apply/ack/barrier/
//!   release sites: exactly-once partial application per producer,
//!   epoch barriers releasing only on a full ack set, ack agreement
//!   within an epoch, strictly monotone barrier watermarks, and (for
//!   the sharded merge) every applied emission eventually released.
//!
//! Anti-vacuity: with the `sched-mutants` feature, [`mutant_matrix`]
//! re-runs small cells against each seeded protocol fault in
//! `gss_stream::mutants` and requires the oracle to catch every one.

use std::collections::BTreeMap;

use crossbeam::sched::{run_controlled, ControlledRun, Probe, ProbeEvent, Strategy, TaskId};
use gss_core::testsupport::SumI64;
use gss_core::{
    KeyedConfig, KeyedWindowOperator, OperatorConfig, PerKey, QueryId, StreamElement,
    WindowAggregator, WindowFunction, WindowOperator,
};
use gss_stream::{run_parallel, run_sharded_keyed, shard_of, PipelineConfig};
use gss_windows::TumblingWindow;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// Replays a forced prefix of picks at multi-choice points, then falls
/// back to a deterministic rule: keep the token holder when runnable,
/// else the lowest runnable id. The DFS driver verifies the replayed
/// branches actually match the prefix (divergence means the workload is
/// not deterministic, which voids exploration).
pub struct ReplayStrategy {
    prefix: Vec<TaskId>,
    at: usize,
}

impl ReplayStrategy {
    pub fn new(prefix: Vec<TaskId>) -> Self {
        ReplayStrategy { prefix, at: 0 }
    }
}

impl Strategy for ReplayStrategy {
    fn pick(&mut self, runnable: &[TaskId], current: Option<TaskId>) -> TaskId {
        if self.at < self.prefix.len() {
            let forced = self.prefix[self.at];
            self.at += 1;
            if runnable.contains(&forced) {
                return forced;
            }
            // Forced task not runnable: deterministic replay has already
            // diverged. Fall through; the driver's branch check reports it.
        }
        match current {
            Some(c) if runnable.contains(&c) => c,
            _ => runnable[0],
        }
    }
}

/// SplitMix64: tiny, seed-stable PRNG (public-domain constants). The
/// whole exploration is pinned by the cell seed — no global RNG state.
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Probabilistic concurrency testing (Burckhardt et al.): every task
/// gets a random high priority on first sight; the highest-priority
/// runnable task always runs; at `depth - 1` pre-sampled decision steps
/// the winner's priority drops below all initial ones. Finds any bug of
/// preemption depth `d` with probability ≥ 1/(n·k^(d-1)) per run.
pub struct PctStrategy {
    rng: SplitMix64,
    priorities: BTreeMap<TaskId, u64>,
    change_steps: Vec<u64>,
    step: u64,
    next_low: u64,
}

/// Initial PCT priorities sit at or above this; change points assign
/// strictly lower ones, counting down.
const PCT_HIGH: u64 = 1 << 32;

impl PctStrategy {
    /// `est_steps` is an upper estimate of multi-choice decisions per
    /// run; change points are sampled uniformly below it.
    pub fn new(seed: u64, depth: usize, est_steps: u64) -> Self {
        let mut rng = SplitMix64(seed);
        let k = est_steps.max(1);
        let change_steps = (0..depth.saturating_sub(1)).map(|_| rng.next_u64() % k).collect();
        PctStrategy {
            rng,
            priorities: BTreeMap::new(),
            change_steps,
            step: 0,
            next_low: PCT_HIGH - 1,
        }
    }
}

impl Strategy for PctStrategy {
    fn pick(&mut self, runnable: &[TaskId], _current: Option<TaskId>) -> TaskId {
        for &t in runnable {
            if !self.priorities.contains_key(&t) {
                let p = PCT_HIGH + (self.rng.next_u64() >> 16);
                self.priorities.insert(t, p);
            }
        }
        let mut winner = runnable[0];
        let mut best = 0u64;
        for &t in runnable {
            let p = self.priorities.get(&t).copied().unwrap_or(0);
            if p >= best {
                best = p;
                winner = t;
            }
        }
        if self.change_steps.contains(&self.step) {
            self.priorities.insert(winner, self.next_low);
            self.next_low = self.next_low.saturating_sub(1);
        }
        self.step += 1;
        winner
    }
}

// ---------------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------------

/// How a cell explores the schedule space.
#[derive(Clone, Debug)]
pub enum Explore {
    /// Stateless-replay DFS over choice prefixes. `preemption_bound:
    /// None` is fully exhaustive at yield-point granularity;
    /// `Some(b)` prunes alternatives requiring more than `b`
    /// preemptions. `max_schedules` is a hard safety cap (hitting it
    /// marks the cell truncated).
    Dfs { preemption_bound: Option<usize>, max_schedules: u64 },
    /// `runs` independent PCT schedules derived from `seed`.
    Pct { seed: u64, depth: usize, runs: u64 },
}

/// Outcome of exploring one (protocol, config, workload) cell.
#[derive(Debug)]
pub struct Cell {
    pub name: String,
    /// Distinct complete schedules executed.
    pub schedules: u64,
    /// DFS hit its `max_schedules` cap before exhausting the space.
    pub truncated: bool,
    /// Largest yield-point count seen in a single run.
    pub max_yields: u64,
    /// First oracle violation, with the offending schedule prefix.
    pub violation: Option<String>,
}

impl Cell {
    pub fn passed(&self) -> bool {
        self.violation.is_none()
    }
}

/// A preemption: the token holder was runnable but something else ran.
fn is_preemption(current: Option<TaskId>, picked: TaskId) -> bool {
    matches!(current, Some(c) if c != picked)
}

/// Explores one cell: repeatedly runs `run` under strategy control and
/// applies `oracle` to every completed run. Stops at the first
/// violation (reporting the schedule that produced it).
pub fn explore<R>(
    name: &str,
    mode: &Explore,
    run: &dyn Fn(Box<dyn Strategy>) -> ControlledRun<R>,
    oracle: &dyn Fn(&ControlledRun<R>) -> Result<(), String>,
) -> Cell {
    let mut cell = Cell {
        name: name.to_string(),
        schedules: 0,
        truncated: false,
        max_yields: 0,
        violation: None,
    };
    match *mode {
        Explore::Dfs { preemption_bound, max_schedules } => {
            let mut stack: Vec<Vec<TaskId>> = vec![Vec::new()];
            while let Some(prefix) = stack.pop() {
                if cell.schedules >= max_schedules {
                    cell.truncated = true;
                    break;
                }
                cell.schedules += 1;
                let out = run(Box::new(ReplayStrategy::new(prefix.clone())));
                cell.max_yields = cell.max_yields.max(out.yields);
                for (i, &want) in prefix.iter().enumerate() {
                    let got = out.branches.get(i).map(|b| b.picked);
                    if got != Some(want) {
                        cell.violation = Some(format!(
                            "replay diverged at decision {i}: forced task {want}, run picked \
                             {got:?} — workload is not schedule-deterministic"
                        ));
                        return cell;
                    }
                }
                if let Err(msg) = check_run(&out, oracle) {
                    cell.violation = Some(format!("schedule {prefix:?}: {msg}"));
                    return cell;
                }
                // Cumulative preemptions along this run's actual path.
                let mut preempt = Vec::with_capacity(out.branches.len() + 1);
                preempt.push(0usize);
                for b in &out.branches {
                    let last = preempt[preempt.len() - 1];
                    preempt.push(last + usize::from(is_preemption(b.current, b.picked)));
                }
                // Branch on every decision the fallback rule made: each
                // untried alternative becomes a new prefix. The run just
                // executed covers the default continuation, so every
                // complete schedule is executed exactly once.
                for (i, b) in out.branches.iter().enumerate().skip(prefix.len()) {
                    for &alt in &b.runnable {
                        if alt == b.picked {
                            continue;
                        }
                        if let Some(bound) = preemption_bound {
                            if preempt[i] + usize::from(is_preemption(b.current, alt)) > bound {
                                continue;
                            }
                        }
                        let mut np: Vec<TaskId> =
                            out.branches[..i].iter().map(|x| x.picked).collect();
                        np.push(alt);
                        stack.push(np);
                    }
                }
            }
        }
        Explore::Pct { seed, depth, runs } => {
            // The step estimate adapts to observed run lengths; the
            // chain stays deterministic because run r's estimate only
            // depends on runs 0..r under the same pinned seed.
            let mut est_steps = 64u64;
            for r in 0..runs {
                let s = seed.wrapping_add(r.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let out = run(Box::new(PctStrategy::new(s, depth, est_steps)));
                cell.schedules += 1;
                cell.max_yields = cell.max_yields.max(out.yields);
                est_steps = est_steps.max(out.branches.len() as u64);
                if let Err(msg) = check_run(&out, oracle) {
                    cell.violation = Some(format!("pct seed {s:#x}: {msg}"));
                    return cell;
                }
            }
        }
    }
    cell
}

/// Run-level check shared by both modes: a failed run (panic, deadlock)
/// is itself a violation; otherwise the oracle judges it.
fn check_run<R>(
    out: &ControlledRun<R>,
    oracle: &dyn Fn(&ControlledRun<R>) -> Result<(), String>,
) -> Result<(), String> {
    if let Err(e) = &out.result {
        return Err(format!("run failed: {e}"));
    }
    oracle(out)
}

// ---------------------------------------------------------------------------
// Probe-level protocol invariants (the mc-model obligations)
// ---------------------------------------------------------------------------

/// Checks the protocol invariants observable from probe events:
///
/// * exactly-once: per producer, shipped batch count and item total
///   equal the applied ones;
/// * epoch barrier: every barrier carries a full ack set (`n_src`
///   acks), and exactly the acks seen since the previous barrier;
/// * ack agreement: all acks of an epoch carry the barrier watermark;
/// * monotonicity: barrier watermarks strictly increase;
/// * drain (`releases_match_applies`, sharded merge): items released
///   over the whole run equal items applied — nothing staged is lost.
pub fn check_probes(
    probes: &[Probe],
    n_src: usize,
    releases_match_applies: bool,
) -> Result<(), String> {
    let mut shipped = vec![(0u64, 0u64); n_src]; // (batches, items)
    let mut applied = vec![(0u64, 0u64); n_src];
    let mut released = 0u64;
    let mut pending_acks: Vec<(usize, i64)> = Vec::new();
    let mut last_wm: Option<i64> = None;
    for p in probes {
        match p.event {
            ProbeEvent::Shipped { src, items } => {
                if src >= n_src {
                    return Err(format!("Shipped from unknown producer {src}"));
                }
                shipped[src].0 += 1;
                shipped[src].1 += items;
            }
            ProbeEvent::Applied { src, items } => {
                if src >= n_src {
                    return Err(format!("Applied from unknown producer {src}"));
                }
                applied[src].0 += 1;
                applied[src].1 += items;
            }
            ProbeEvent::AckSeen { src, wm } => pending_acks.push((src, wm)),
            ProbeEvent::Barrier { wm, acks } => {
                if acks != n_src as u64 {
                    return Err(format!(
                        "barrier at wm {wm} fired with {acks}/{n_src} acks (premature epoch \
                         release)"
                    ));
                }
                if pending_acks.len() != n_src {
                    return Err(format!(
                        "barrier at wm {wm} consumed {} acks, expected {n_src}",
                        pending_acks.len()
                    ));
                }
                let mut seen = vec![false; n_src];
                for &(src, awm) in &pending_acks {
                    if awm != wm {
                        return Err(format!(
                            "ack disagreement in epoch {wm}: producer {src} acked {awm}"
                        ));
                    }
                    if src >= n_src || seen[src] {
                        return Err(format!("duplicate or unknown ack from producer {src}"));
                    }
                    seen[src] = true;
                }
                if let Some(prev) = last_wm {
                    if wm <= prev {
                        return Err(format!(
                            "barrier watermark not strictly increasing: {prev} then {wm}"
                        ));
                    }
                }
                last_wm = Some(wm);
                pending_acks.clear();
            }
            ProbeEvent::Released { items } => released += items,
        }
    }
    if !pending_acks.is_empty() {
        return Err(format!("{} acks consumed outside any barrier", pending_acks.len()));
    }
    for src in 0..n_src {
        if shipped[src] != applied[src] {
            return Err(format!(
                "exactly-once violated for producer {src}: shipped {:?} batches/items, applied \
                 {:?}",
                shipped[src], applied[src]
            ));
        }
    }
    if releases_match_applies {
        let total_applied: u64 = applied.iter().map(|a| a.1).sum();
        if released != total_applied {
            return Err(format!(
                "drain violated: {total_applied} emissions applied but {released} released"
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Workload cells
// ---------------------------------------------------------------------------

/// One canonical emission for bitwise comparison.
type Emit = (QueryId, i64, i64, i64, bool);

/// Workload size per cell. Exhaustive DFS needs `Tiny` (one epoch plus
/// a staged tail — the space is complete but enumerable); `Full` adds a
/// second epoch and a within-lateness straggler, exercising the
/// post-barrier repair path (bounded DFS and PCT cells).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    Tiny,
    Full,
}

/// Fixed out-of-order workload for the parallel protocol, tumbling(10)
/// windows. `Full` keeps exactly one straggler so the emission multiset
/// stays schedule-independent.
fn par_elements(w: Workload) -> Vec<StreamElement<i64>> {
    match w {
        Workload::Tiny => vec![
            StreamElement::Record { ts: 1, value: 1 },
            StreamElement::Record { ts: 11, value: 2 },
            StreamElement::Watermark(12),
        ],
        Workload::Full => vec![
            StreamElement::Record { ts: 1, value: 1 },
            StreamElement::Record { ts: 11, value: 2 },
            StreamElement::Watermark(12),
            StreamElement::Record { ts: 5, value: 10 }, // straggler, within lateness
            StreamElement::Record { ts: 21, value: 3 },
            StreamElement::Watermark(30),
        ],
    }
}

fn par_windows() -> Vec<Box<dyn WindowFunction>> {
    vec![Box::new(TumblingWindow::new(10))]
}

fn par_op_cfg() -> OperatorConfig {
    OperatorConfig::out_of_order(20)
}

/// Transport config pinned for determinism: fixed batch size 1 (the
/// default adaptive batching reads the wall clock, which would make the
/// chunking — and thus the schedule tree — nondeterministic) and a
/// small but non-rendezvous channel capacity so backpressure paths get
/// explored.
fn pipe_cfg(parallelism: usize) -> PipelineConfig {
    let mut cfg = PipelineConfig::with_parallelism(parallelism).with_batch_size(1);
    cfg.channel_capacity = 2;
    cfg
}

/// Sorted emission multiset of a parallel run. Finals stay comparable
/// under sorting because each `(query, range)` emits once plus at most
/// one straggler update in this workload.
fn canon_par<'a>(results: impl Iterator<Item = &'a gss_core::WindowResult<i64>>) -> Vec<Emit> {
    let mut v: Vec<Emit> =
        results.map(|r| (r.query, r.range.start, r.range.end, r.value, r.is_update)).collect();
    v.sort_unstable();
    v
}

/// Sequential reference for the parallel cell: one operator, same
/// elements, same config.
fn par_reference(workload: Workload) -> Vec<Emit> {
    let mut op = WindowOperator::new(SumI64, par_op_cfg());
    for w in &par_windows() {
        if op.add_query(w.clone_box()).is_err() {
            unreachable!("time-measure queries cannot conflict");
        }
    }
    let mut out = Vec::new();
    for e in par_elements(workload) {
        match e {
            StreamElement::Record { ts, value } => op.process_tuple(ts, value, &mut out),
            StreamElement::Watermark(wm) => op.process_watermark(wm, &mut out),
            StreamElement::Punctuation(ts) => op.process_punctuation(ts, &mut out),
        }
    }
    canon_par(out.iter())
}

/// Explores the parallel protocol with `workers` workers.
pub fn par_cell(workers: usize, workload: Workload, mode: &Explore) -> Cell {
    let expect = par_reference(workload);
    let elements = par_elements(workload);
    let run = move |strategy: Box<dyn Strategy>| {
        let elements = elements.clone();
        run_controlled(strategy, move || {
            let report =
                run_parallel(elements, pipe_cfg(workers), SumI64, par_windows(), par_op_cfg());
            (canon_par(report.results.iter().map(|(_, r)| r)), report.result_count)
        })
    };
    let oracle = move |out: &ControlledRun<(Vec<Emit>, u64)>| -> Result<(), String> {
        let (got, count) = match &out.result {
            Ok(v) => v,
            Err(e) => return Err(e.clone()),
        };
        if *count != got.len() as u64 {
            return Err(format!("result_count {count} != collected {}", got.len()));
        }
        if *got != expect {
            return Err(format!(
                "emissions diverge from sequential reference:\n  got    \
                 {got:?}\n  expect {expect:?}"
            ));
        }
        check_probes(&out.probes, workers, false)
    };
    explore(&format!("par/workers={workers}/{workload:?}"), mode, &run, &oracle)
}

/// One canonical keyed emission: `(key, start, end, value, is_update)`.
type KeyedEmit = (u64, i64, i64, i64, bool);

/// Two keys guaranteed to land on different shards (same key when only
/// one shard exists).
fn shard_keys(shards: usize) -> (u64, u64) {
    let find = |target: usize| {
        let mut k = 0u64;
        while shard_of(k, shards) != target {
            k += 1;
            assert!(k < 4096, "no key found for shard {target}");
        }
        k
    };
    if shards < 2 {
        (0, 1)
    } else {
        (find(0), find(1))
    }
}

/// Fixed keyed workload: both shards hold state in every epoch, so
/// dropped or early-released staging is always observable.
fn shard_elements(shards: usize, w: Workload) -> Vec<StreamElement<(u64, i64)>> {
    let (ka, kb) = shard_keys(shards);
    match w {
        Workload::Tiny => vec![
            StreamElement::Record { ts: 1, value: (ka, 1) },
            StreamElement::Record { ts: 2, value: (kb, 2) },
            StreamElement::Watermark(12),
        ],
        Workload::Full => vec![
            StreamElement::Record { ts: 1, value: (ka, 1) },
            StreamElement::Record { ts: 2, value: (kb, 2) },
            StreamElement::Record { ts: 11, value: (ka, 3) },
            StreamElement::Watermark(12),
            StreamElement::Record { ts: 15, value: (kb, 4) },
            StreamElement::Watermark(22),
        ],
    }
}

fn keyed_factory() -> impl Fn(usize) -> Box<dyn WindowAggregator<PerKey<SumI64>>> + Clone {
    |_| {
        Box::new(KeyedWindowOperator::new(
            SumI64,
            vec![Box::new(TumblingWindow::new(10))],
            KeyedConfig::default(),
        )) as Box<dyn WindowAggregator<PerKey<SumI64>>>
    }
}

/// Sequential reference for the sharded cell: one keyed operator over
/// the whole stream, emissions canonicalized per epoch (stable-sorted
/// by key) exactly as the merge stage releases them.
fn shard_reference(shards: usize, workload: Workload) -> Vec<KeyedEmit> {
    let factory = keyed_factory();
    let mut op = factory(0);
    let mut out: Vec<KeyedEmit> = Vec::new();
    let mut scratch = Vec::new();
    let mut epoch: Vec<KeyedEmit> = Vec::new();
    let flush = |scratch: &mut Vec<gss_core::WindowResult<(u64, i64)>>,
                 epoch: &mut Vec<KeyedEmit>| {
        epoch.extend(
            scratch
                .drain(..)
                .map(|r| (r.value.0, r.range.start, r.range.end, r.value.1, r.is_update)),
        );
    };
    for e in shard_elements(shards, workload) {
        match e {
            StreamElement::Record { ts, value } => op.process(ts, value, &mut scratch),
            StreamElement::Watermark(wm) => {
                op.on_watermark(wm, &mut scratch);
                flush(&mut scratch, &mut epoch);
                epoch.sort_by_key(|e| e.0);
                out.append(&mut epoch);
                continue;
            }
            StreamElement::Punctuation(ts) => op.on_punctuation(ts, &mut scratch),
        }
        flush(&mut scratch, &mut epoch);
    }
    epoch.sort_by_key(|e| e.0);
    out.append(&mut epoch);
    out
}

/// Explores the sharded keyed protocol with `shards` shards. The
/// released sequence must match the reference *in order* — the
/// protocol's determinism guarantee, not just the multiset.
pub fn shard_cell(shards: usize, workload: Workload, mode: &Explore) -> Cell {
    let expect = shard_reference(shards, workload);
    let elements = shard_elements(shards, workload);
    let run = move |strategy: Box<dyn Strategy>| {
        let elements = elements.clone();
        run_controlled(strategy, move || {
            let report = run_sharded_keyed(elements, pipe_cfg(shards), keyed_factory());
            let seq: Vec<KeyedEmit> = report
                .results
                .iter()
                .map(|(_, r)| (r.value.0, r.range.start, r.range.end, r.value.1, r.is_update))
                .collect();
            (seq, report.result_count)
        })
    };
    let oracle = move |out: &ControlledRun<(Vec<KeyedEmit>, u64)>| -> Result<(), String> {
        let (got, count) = match &out.result {
            Ok(v) => v,
            Err(e) => return Err(e.clone()),
        };
        if *count != got.len() as u64 {
            return Err(format!("result_count {count} != collected {}", got.len()));
        }
        if *got != expect {
            return Err(format!(
                "released sequence diverges from sequential reference:\n  got    \
                 {got:?}\n  expect {expect:?}"
            ));
        }
        check_probes(&out.probes, shards, true)
    };
    explore(&format!("shard/shards={shards}/{workload:?}"), mode, &run, &oracle)
}

// ---------------------------------------------------------------------------
// Anti-vacuity: the mutant matrix
// ---------------------------------------------------------------------------

/// Runs a small bounded-DFS cell against every seeded protocol fault
/// and reports, per mutant, whether the oracle caught it. A harness
/// that lets any mutant survive is vacuous; `cargo sched --mutants`
/// fails on survivors.
#[cfg(feature = "sched-mutants")]
pub fn mutant_matrix() -> Vec<(&'static str, Cell)> {
    use gss_stream::mutants::{set_mutant, Mutant, ALL_MUTANTS};
    let mode = Explore::Dfs { preemption_bound: Some(2), max_schedules: 5_000 };
    let mut out = Vec::new();
    for &m in ALL_MUTANTS {
        set_mutant(m);
        let (name, cell) = match m {
            Mutant::Healthy => continue,
            Mutant::ParEagerBarrier => ("ParEagerBarrier", par_cell(2, Workload::Full, &mode)),
            Mutant::ParDoubleApply => ("ParDoubleApply", par_cell(2, Workload::Full, &mode)),
            Mutant::ShardEagerRelease => {
                ("ShardEagerRelease", shard_cell(2, Workload::Full, &mode))
            }
            Mutant::ShardDropStaged => ("ShardDropStaged", shard_cell(2, Workload::Full, &mode)),
        };
        out.push((name, cell));
    }
    set_mutant(Mutant::Healthy);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A couple of quick cells so `cargo test` exercises the harness
    /// end to end without the full `cargo sched` budget.
    #[test]
    fn single_worker_dfs_cell_passes() {
        let cell = par_cell(
            1,
            Workload::Tiny,
            &Explore::Dfs { preemption_bound: Some(1), max_schedules: 400 },
        );
        assert!(cell.passed(), "{:?}", cell.violation);
        assert!(cell.schedules > 1, "must explore more than the baseline schedule");
    }

    #[test]
    fn single_shard_dfs_cell_passes() {
        let cell = shard_cell(
            1,
            Workload::Tiny,
            &Explore::Dfs { preemption_bound: Some(1), max_schedules: 400 },
        );
        assert!(cell.passed(), "{:?}", cell.violation);
        assert!(cell.schedules > 1);
    }

    #[test]
    fn pct_cell_passes_and_is_seed_stable() {
        let mode = Explore::Pct { seed: 0x5EED, depth: 3, runs: 10 };
        let a = par_cell(2, Workload::Full, &mode);
        assert!(a.passed(), "{:?}", a.violation);
        let b = par_cell(2, Workload::Full, &mode);
        assert_eq!(a.schedules, b.schedules);
        assert_eq!(a.max_yields, b.max_yields, "same seeds must replay the same schedules");
    }

    #[test]
    fn probe_checker_rejects_bad_traces() {
        use crossbeam::sched::Probe;
        let p = |event| Probe { task: 0, event };
        // Premature barrier.
        let t = vec![
            p(ProbeEvent::AckSeen { src: 0, wm: 5 }),
            p(ProbeEvent::Barrier { wm: 5, acks: 1 }),
        ];
        assert!(check_probes(&t, 2, false).is_err());
        // Double apply.
        let t = vec![
            p(ProbeEvent::Shipped { src: 0, items: 3 }),
            p(ProbeEvent::Applied { src: 0, items: 3 }),
            p(ProbeEvent::Applied { src: 0, items: 3 }),
        ];
        assert!(check_probes(&t, 1, false).is_err());
        // Lost release.
        let t = vec![
            p(ProbeEvent::Shipped { src: 0, items: 2 }),
            p(ProbeEvent::Applied { src: 0, items: 2 }),
            p(ProbeEvent::Released { items: 1 }),
        ];
        assert!(check_probes(&t, 1, true).is_err());
        // Healthy trace.
        let t = vec![
            p(ProbeEvent::Shipped { src: 0, items: 2 }),
            p(ProbeEvent::Applied { src: 0, items: 2 }),
            p(ProbeEvent::AckSeen { src: 0, wm: 10 }),
            p(ProbeEvent::Barrier { wm: 10, acks: 1 }),
            p(ProbeEvent::Released { items: 2 }),
        ];
        assert!(check_probes(&t, 1, true).is_ok());
    }
}
