//! Model-checker driver: exhaustively explores the parallel merge
//! protocol and the key-sharded emission protocol over a matrix of
//! workload shapes, then validates checker sensitivity by confirming
//! that deliberately broken protocol mutants are caught.
//!
//! Exit codes: `0` all configs pass and every mutant is caught, `1`
//! a real-protocol violation was found or a mutant slipped through.

use gss_analysis::mc::{check, McConfig, Protocol};
use gss_analysis::sharded::{check as check_sharded, ShardMcConfig, ShardProtocol};

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let intra = run_intra_query();
    if intra != 0 {
        return intra;
    }
    run_sharded()
}

fn run_intra_query() -> i32 {
    let mut configs = 0u64;
    let mut states = 0u64;
    let mut transitions = 0u64;
    for workers in 1..=3 {
        for epochs in 1..=3 {
            for flushes_per_epoch in 0..=2 {
                for stragglers in [false, true] {
                    for regressive_wm in [false, true] {
                        let cfg = McConfig {
                            workers,
                            epochs,
                            flushes_per_epoch,
                            stragglers,
                            regressive_wm,
                            protocol: Protocol::EpochBarrier,
                        };
                        match check(&cfg) {
                            Ok(rep) => {
                                configs += 1;
                                states += rep.states;
                                transitions += rep.transitions;
                                println!(
                                    "mc: ok  w={workers} e={epochs} f={flushes_per_epoch} \
                                     strag={} regr={} — {} states, {} transitions, \
                                     {} partials, {} emissions",
                                    flag(stragglers),
                                    flag(regressive_wm),
                                    rep.states,
                                    rep.transitions,
                                    rep.partials,
                                    rep.emissions
                                );
                            }
                            Err(v) => {
                                eprintln!(
                                    "mc: FAILED  w={workers} e={epochs} f={flushes_per_epoch} \
                                     strag={} regr={}",
                                    flag(stragglers),
                                    flag(regressive_wm)
                                );
                                eprintln!("{v}");
                                return 1;
                            }
                        }
                    }
                }
            }
        }
    }

    // Sensitivity: a checker that cannot fail proves nothing. Both
    // mutants must be rejected.
    for (protocol, name, invariant) in [
        (Protocol::AnyAck, "any-ack barrier", "no emission before all acks"),
        (Protocol::DoubleApply, "double apply", "exactly-once application"),
    ] {
        let mut cfg = McConfig::new(2, 2);
        cfg.protocol = protocol;
        match check(&cfg) {
            Err(v) if v.invariant == invariant => {
                println!("mc: mutant `{name}` caught ({} trace steps)", v.trace.len());
            }
            Err(v) => {
                eprintln!(
                    "mc: FAILED — mutant `{name}` tripped `{}` instead of `{invariant}`",
                    v.invariant
                );
                return 1;
            }
            Ok(_) => {
                eprintln!("mc: FAILED — mutant `{name}` passed; checker is not sensitive");
                return 1;
            }
        }
    }

    println!(
        "mc: OK — {configs} configurations exhaustively explored \
         ({states} states, {transitions} transitions), 2 mutants caught"
    );
    0
}

/// The key-sharded merge protocol (`run_sharded_keyed`): per-shard
/// emission shipping, broadcast watermark acks, and epoch-barrier
/// release at the merge stage.
fn run_sharded() -> i32 {
    let mut configs = 0u64;
    let mut states = 0u64;
    let mut transitions = 0u64;
    for shards in 1..=3 {
        for epochs in 1..=3 {
            for ships_per_epoch in 0..=2 {
                for tail_emits in [false, true] {
                    for regressive_wm in [false, true] {
                        let cfg = ShardMcConfig {
                            shards,
                            epochs,
                            ships_per_epoch,
                            tail_emits,
                            regressive_wm,
                            protocol: ShardProtocol::EpochBarrier,
                        };
                        match check_sharded(&cfg) {
                            Ok(rep) => {
                                configs += 1;
                                states += rep.states;
                                transitions += rep.transitions;
                                println!(
                                    "mc[shard]: ok  s={shards} e={epochs} ship={ships_per_epoch} \
                                     tail={} regr={} — {} states, {} transitions, \
                                     {} emissions, {} epochs closed",
                                    flag(tail_emits),
                                    flag(regressive_wm),
                                    rep.states,
                                    rep.transitions,
                                    rep.emissions,
                                    rep.epochs_closed
                                );
                            }
                            Err(v) => {
                                eprintln!(
                                    "mc[shard]: FAILED  s={shards} e={epochs} \
                                     ship={ships_per_epoch} tail={} regr={}",
                                    flag(tail_emits),
                                    flag(regressive_wm)
                                );
                                eprintln!("{v}");
                                return 1;
                            }
                        }
                    }
                }
            }
        }
    }

    // Sensitivity for the sharded checker: all three mutants must trip
    // the specific invariant they were built to break.
    for (protocol, name, invariant) in [
        (ShardProtocol::AnyAck, "any-ack epoch close", "epoch-complete release"),
        (ShardProtocol::EagerRelease, "eager release", "epoch-ordered release"),
        (ShardProtocol::DropStaged, "drop staged", "exactly-once release"),
    ] {
        let mut cfg = ShardMcConfig::new(2, 2);
        cfg.protocol = protocol;
        match check_sharded(&cfg) {
            Err(v) if v.invariant == invariant => {
                println!("mc[shard]: mutant `{name}` caught ({} trace steps)", v.trace.len());
            }
            Err(v) => {
                eprintln!(
                    "mc[shard]: FAILED — mutant `{name}` tripped `{}` instead of `{invariant}`",
                    v.invariant
                );
                return 1;
            }
            Ok(_) => {
                eprintln!("mc[shard]: FAILED — mutant `{name}` passed; checker is not sensitive");
                return 1;
            }
        }
    }

    println!(
        "mc[shard]: OK — {configs} configurations exhaustively explored \
         ({states} states, {transitions} transitions), 3 mutants caught"
    );
    0
}

fn flag(b: bool) -> char {
    if b {
        'y'
    } else {
        'n'
    }
}
