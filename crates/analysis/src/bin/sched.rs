//! `cargo sched` — deterministic schedule exploration of the real
//! stream protocols (see `gss_analysis::sched` for the machinery).
//!
//! Default mode runs the healthy-protocol cells:
//!
//! * exhaustive DFS (no preemption bound) for the smallest config of
//!   each protocol (1 worker / 1 shard) — every schedule at yield-point
//!   granularity;
//! * bounded-preemption DFS (bound 2, the CHESS sweet spot) for the
//!   2-worker / 2-shard configs;
//! * two seed-pinned PCT cells over the 2-worker / 2-shard configs.
//!
//! Exit status is nonzero on any oracle violation or on a truncated
//! exhaustive cell (the space must actually be covered).
//!
//! `--mutants` (requires the `sched-mutants` feature) instead runs the
//! anti-vacuity matrix: each seeded protocol fault must be caught by
//! some explored schedule; any survivor fails the run.

use gss_analysis::sched::{par_cell, shard_cell, Cell, Explore, Workload};

fn print_cell(mode: &str, cell: &Cell) -> bool {
    let status = match &cell.violation {
        None if cell.truncated => "TRUNCATED",
        None => "ok",
        Some(_) => "VIOLATION",
    };
    println!(
        "  {:<18} {:<26} schedules={:<7} max_yields={:<5} {}",
        cell.name, mode, cell.schedules, cell.max_yields, status
    );
    if let Some(v) = &cell.violation {
        println!("    -> {v}");
    }
    cell.passed() && !cell.truncated
}

fn healthy() -> bool {
    let mut ok = true;
    println!("schedule exploration over the real protocols (healthy build):");

    // Exhaustive: every schedule of the smallest config of each
    // protocol over the one-epoch workload. These must terminate below
    // the cap — truncation fails.
    let exhaustive = Explore::Dfs { preemption_bound: None, max_schedules: 150_000 };
    ok &= print_cell("dfs/exhaustive", &par_cell(1, Workload::Tiny, &exhaustive));
    ok &= print_cell("dfs/exhaustive", &shard_cell(1, Workload::Tiny, &exhaustive));

    // Bounded-preemption DFS for the two-producer configs: complete
    // coverage of every schedule with at most 2 preemptions of the
    // one-epoch workload. (The straggler workload's schedule tree is
    // exponential in voluntary switches even at bound 0 — it belongs to
    // the PCT cells below.)
    let bounded2 = Explore::Dfs { preemption_bound: Some(2), max_schedules: 150_000 };
    ok &= print_cell("dfs/preempt<=2", &par_cell(2, Workload::Tiny, &bounded2));
    ok &= print_cell("dfs/preempt<=2", &shard_cell(2, Workload::Tiny, &bounded2));

    // Seed-pinned PCT sweeps over the full (two-epoch + straggler)
    // workload: depth-3 random schedules, reproducible run to run and
    // machine to machine.
    let pct_a = Explore::Pct { seed: 0xC0FF_EE00, depth: 3, runs: 300 };
    let pct_b = Explore::Pct { seed: 0x5EED_CAFE, depth: 3, runs: 300 };
    ok &= print_cell("pct/seed=0xC0FFEE00", &par_cell(2, Workload::Full, &pct_a));
    ok &= print_cell("pct/seed=0x5EEDCAFE", &shard_cell(2, Workload::Full, &pct_b));

    ok
}

#[cfg(feature = "sched-mutants")]
fn mutants() -> bool {
    let matrix = gss_analysis::sched::mutant_matrix();
    let mut ok = true;
    println!("anti-vacuity mutant matrix (every fault must be caught):");
    for (name, cell) in &matrix {
        let caught = cell.violation.is_some();
        println!(
            "  {:<18} {:<26} schedules={:<7} {}",
            name,
            cell.name,
            cell.schedules,
            if caught { "caught" } else { "SURVIVED" }
        );
        if let Some(v) = &cell.violation {
            let first = v.lines().next().unwrap_or("");
            println!("    -> {first}");
        }
        ok &= caught;
    }
    if ok {
        println!("all {} mutants caught", matrix.len());
    }
    ok
}

#[cfg(not(feature = "sched-mutants"))]
fn mutants() -> bool {
    eprintln!("--mutants requires the sched-mutants feature (use `cargo sched-mutants`)");
    false
}

fn main() {
    let want_mutants = std::env::args().any(|a| a == "--mutants");
    let ok = if want_mutants { mutants() } else { healthy() };
    if !ok {
        std::process::exit(1);
    }
}
