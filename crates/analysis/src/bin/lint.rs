//! Workspace lint driver: scans every `.rs` file, applies the rules in
//! `gss_analysis::rules`, subtracts the audited exceptions in
//! `analysis/lint.allow`, and reports.
//!
//! Exit codes: `0` clean, `1` violations or stale allowlist entries,
//! `2` the allowlist itself is malformed.

use gss_analysis::allowlist::Allowlist;
use gss_analysis::rules::{check_file, RULE_IDS};
use gss_analysis::walk::{rust_files, workspace_root};

fn main() {
    if std::env::args().any(|a| a == "--rules") {
        for r in RULE_IDS {
            println!("{r}");
        }
        return;
    }
    std::process::exit(run());
}

fn run() -> i32 {
    let root = workspace_root();
    let allow_path = root.join("analysis").join("lint.allow");
    let allow_text = std::fs::read_to_string(&allow_path).unwrap_or_default();
    let allow = match Allowlist::parse(&allow_text) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lint: malformed allowlist: {e}");
            return 2;
        }
    };

    let files = rust_files(&root);
    let mut violations = Vec::new();
    for (rel, path) in &files {
        match std::fs::read_to_string(path) {
            Ok(src) => violations.extend(check_file(rel, &src)),
            Err(e) => eprintln!("lint: skipping unreadable {rel}: {e}"),
        }
    }

    let total = violations.len();
    let (live, used) = allow.filter(violations);
    for v in &live {
        println!("{v}");
    }
    let stale = allow.stale(&used);
    for e in &stale {
        eprintln!(
            "lint: stale allowlist entry (waives nothing) at lint.allow:{}: {} {} -- {}",
            e.line, e.rule, e.path_prefix, e.justification
        );
    }

    let waived = total - live.len();
    if live.is_empty() && stale.is_empty() {
        println!(
            "lint: OK — {} files scanned, {} audited exception(s) waived",
            files.len(),
            waived
        );
        // Waiver ages: the PR that introduced each standing exception,
        // so long-lived waivers stay visible at every run instead of
        // silently accumulating.
        for (e, n) in allow.entries.iter().zip(&used) {
            let age = match e.pr {
                Some(pr) => format!("pr{pr}"),
                None => "pr?".to_string(),
            };
            println!("  {age:<5} {:<12} {:<36} waives {n}", e.rule, e.path_prefix);
        }
        0
    } else {
        eprintln!(
            "lint: FAILED — {} violation(s), {} stale allowlist entr(ies) ({} files, {} waived)",
            live.len(),
            stale.len(),
            files.len(),
            waived
        );
        1
    }
}
