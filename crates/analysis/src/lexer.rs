//! A small hand-rolled Rust lexer for line-level lint rules.
//!
//! The rule engine does not need a full token tree — it needs to know,
//! for every source line, *which bytes are code* (as opposed to comment
//! text or literal contents) and *what the comments say* (for
//! `// SAFETY:` detection). [`scan`] produces exactly that: a copy of
//! the source in which comment bodies and string/char-literal contents
//! are blanked out with spaces (newlines and byte positions preserved,
//! so line/column arithmetic carries over), plus the concatenated
//! comment text of every line.
//!
//! Handled syntax: line comments (`//`, `///`, `//!`), nested block
//! comments (`/* /* */ */`), string literals with escapes, byte strings,
//! raw strings (`r"…"`, `r#"…"#`, any hash depth, `br#"…"#`), char
//! literals (including escaped ones), and the lifetime-vs-char-literal
//! ambiguity (`'a` vs `'a'`).

/// The classified view of one source file.
pub struct Scan {
    /// The source with comment bodies and literal contents replaced by
    /// spaces. Delimiters (`//`, `"` …) are blanked too; only genuine
    /// code bytes survive. Newlines are preserved.
    pub code: String,
    /// Concatenated comment text per line (0-based), without the `//`
    /// or `/* */` markers.
    pub comments: Vec<String>,
}

impl Scan {
    /// Code text of line `i` (0-based); empty past the end.
    pub fn code_line(&self, i: usize) -> &str {
        self.code.lines().nth(i).unwrap_or("")
    }

    /// Lines of the code view, in order.
    pub fn code_lines(&self) -> impl Iterator<Item = &str> {
        self.code.lines()
    }
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nesting depth of `/* */`.
    BlockComment(u32),
    /// Inside `"…"`; `true` right after a backslash.
    Str(bool),
    /// Inside `r#…"…"#…`; payload is the hash count.
    RawStr(u32),
    /// Inside `'…'`; `true` right after a backslash.
    CharLit(bool),
}

/// Classifies `src` byte by byte (see module docs).
pub fn scan(src: &str) -> Scan {
    let bytes = src.as_bytes();
    let mut code = Vec::with_capacity(bytes.len());
    let mut comments: Vec<String> = vec![String::new()];
    let mut line = 0usize;
    let mut state = State::Code;
    // Whether the previous code byte continues an identifier — used to
    // tell a raw-string prefix (`r"`, `br#"` …) from an identifier that
    // merely ends in `r` or `b`.
    let mut prev_ident = false;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            code.push(b'\n');
            comments.push(String::new());
            line += 1;
            if state == State::LineComment {
                state = State::Code;
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let rest = &bytes[i..];
                if rest.starts_with(b"//") {
                    state = State::LineComment;
                    code.push(b' ');
                    code.push(b' ');
                    i += 2;
                    prev_ident = false;
                } else if rest.starts_with(b"/*") {
                    state = State::BlockComment(1);
                    code.push(b' ');
                    code.push(b' ');
                    i += 2;
                    prev_ident = false;
                } else if b == b'"' {
                    state = State::Str(false);
                    code.push(b' ');
                    i += 1;
                    prev_ident = false;
                } else if !prev_ident && (b == b'r' || b == b'b') {
                    if let Some((hashes, len)) = raw_string_prefix(rest) {
                        state = State::RawStr(hashes);
                        code.extend(std::iter::repeat_n(b' ', len));
                        i += len;
                        prev_ident = false;
                    } else {
                        code.push(b);
                        prev_ident = true;
                        i += 1;
                    }
                } else if b == b'\'' && !prev_ident {
                    // `'x'` / `'\n'` are char literals; `'a` (no closing
                    // quote) is a lifetime and stays code. After an
                    // identifier (`x'` can't start a literal) the quote
                    // is unreachable in valid Rust anyway.
                    if is_char_literal(rest) {
                        state = State::CharLit(false);
                        code.push(b' ');
                        i += 1;
                    } else {
                        code.push(b);
                        i += 1;
                    }
                } else {
                    code.push(b);
                    prev_ident = b == b'_' || b.is_ascii_alphanumeric();
                    i += 1;
                }
            }
            State::LineComment => {
                comments[line].push(b as char);
                code.push(b' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                let rest = &bytes[i..];
                if rest.starts_with(b"/*") {
                    state = State::BlockComment(depth + 1);
                    code.push(b' ');
                    code.push(b' ');
                    i += 2;
                } else if rest.starts_with(b"*/") {
                    state = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                    code.push(b' ');
                    code.push(b' ');
                    i += 2;
                } else {
                    comments[line].push(b as char);
                    code.push(b' ');
                    i += 1;
                }
            }
            State::Str(escaped) => {
                if escaped {
                    state = State::Str(false);
                } else if b == b'\\' {
                    state = State::Str(true);
                } else if b == b'"' {
                    state = State::Code;
                }
                code.push(b' ');
                i += 1;
            }
            State::RawStr(hashes) => {
                if b == b'"'
                    && bytes[i + 1..].iter().take_while(|&&c| c == b'#').count() as u32 >= hashes
                {
                    code.extend(std::iter::repeat_n(b' ', 1 + hashes as usize));
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    code.push(b' ');
                    i += 1;
                }
            }
            State::CharLit(escaped) => {
                if escaped {
                    state = State::CharLit(false);
                } else if b == b'\\' {
                    state = State::CharLit(true);
                } else if b == b'\'' {
                    state = State::Code;
                }
                code.push(b' ');
                i += 1;
            }
        }
    }
    // The scan only blanks ASCII bytes (all Rust syntax is ASCII);
    // multi-byte UTF-8 sequences pass through or blank byte-for-byte,
    // which keeps the buffer valid only if we never split a sequence.
    // Blanking replaces *every* byte of a multi-byte char inside
    // comments/literals with a space, so the result is valid UTF-8.
    let code = String::from_utf8(code).unwrap_or_default();
    Scan { code, comments }
}

/// If `rest` begins a raw-string literal (`r"`, `r#"`, `br##"` …),
/// returns `(hash_count, prefix_len_including_opening_quote)`.
fn raw_string_prefix(rest: &[u8]) -> Option<(u32, usize)> {
    let mut j = 0;
    if rest.first() == Some(&b'b') {
        j += 1;
    }
    if rest.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let hashes = rest[j..].iter().take_while(|&&c| c == b'#').count();
    j += hashes;
    (rest.get(j) == Some(&b'"')).then_some((hashes as u32, j + 1))
}

/// Whether `rest` (starting at a `'`) is a char literal rather than a
/// lifetime: `'\…'` always is; `'c'` is when a closing quote follows one
/// character (ASCII or multi-byte).
fn is_char_literal(rest: &[u8]) -> bool {
    match rest.get(1) {
        Some(b'\\') => true,
        Some(&c) => {
            // Skip one UTF-8 character, then require a closing quote.
            let len = utf8_len(c);
            rest.get(1 + len) == Some(&b'\'')
        }
        None => false,
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_blanked_and_captured() {
        let s = scan("let x = 1; // panic!(\"no\")\nlet y = 2;\n");
        assert!(!s.code_line(0).contains("panic!"));
        assert!(s.code_line(0).contains("let x = 1;"));
        assert!(s.comments[0].contains("panic!"));
        assert_eq!(s.code_line(1), "let y = 2;");
    }

    #[test]
    fn nested_block_comments() {
        let s = scan("a /* outer /* inner unwrap() */ still */ b\n");
        let code = s.code_line(0);
        assert!(!code.contains("unwrap"));
        assert!(!code.contains("still"));
        assert!(code.starts_with('a') && code.trim_end().ends_with('b'));
        assert!(s.comments[0].contains("inner unwrap()"));
    }

    #[test]
    fn strings_are_blanked_with_escapes() {
        let s = scan(r#"let m = "say \"panic!\" loudly"; call();"#);
        let code = s.code_line(0);
        assert!(!code.contains("panic!"));
        assert!(code.contains("let m ="));
        assert!(code.contains("call();"));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let s = scan("let r = r#\"has \"quotes\" and unwrap()\"# ; next();\n");
        let code = s.code_line(0);
        assert!(!code.contains("unwrap"));
        assert!(code.contains("next();"));
        // A hash short of the closing fence must not terminate it.
        let s2 = scan("let r = r##\"x\"# not closed yet\"## ; after();\n");
        let code2 = s2.code_line(0);
        assert!(!code2.contains("not closed"));
        assert!(code2.contains("after();"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let s = scan("let b = b\"panic!\"; let rb = br#\"todo!\"#; go();\n");
        let code = s.code_line(0);
        assert!(!code.contains("panic!") && !code.contains("todo!"));
        assert!(code.contains("go();"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let s = scan("fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; }\n");
        let code = s.code_line(0);
        // Lifetimes survive as code; char-literal contents are blanked
        // (the quote inside '"' must not open a string).
        assert!(code.contains("'a>"));
        assert!(code.contains("&'a str"));
        assert!(!code.contains('"'));
        let s2 = scan("let c = 'x'; still_code();\n");
        assert!(s2.code_line(0).contains("still_code();"));
    }

    #[test]
    fn identifier_ending_in_r_is_not_raw_string() {
        let s = scan("let var = taker(\"blanked\"); done();\n");
        let code = s.code_line(0);
        assert!(code.contains("taker("));
        assert!(!code.contains("blanked"));
        assert!(code.contains("done();"));
    }

    #[test]
    fn multiline_string_blanks_every_line() {
        let s = scan("let m = \"line one panic!\nline two unwrap()\"; end();\n");
        assert!(!s.code_line(0).contains("panic!"));
        assert!(!s.code_line(1).contains("unwrap"));
        assert!(s.code_line(1).contains("end();"));
    }

    #[test]
    fn positions_are_preserved() {
        let src = "abc /* x */ def\n";
        let s = scan(src);
        assert_eq!(s.code.len(), src.len());
        assert_eq!(&s.code[12..15], "def");
    }
}
