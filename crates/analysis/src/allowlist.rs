//! The audited-exception allowlist for the lint pass.
//!
//! `analysis/lint.allow` holds one entry per line:
//!
//! ```text
//! <rule-id> <path-prefix> pr<N> -- <justification>
//! ```
//!
//! A violation is waived when its rule matches and its path starts with
//! the entry's prefix. Every entry must carry a justification, and every
//! entry must waive at least one live violation — stale entries fail the
//! lint so the list can only shrink as code is fixed. The `pr<N>` token
//! records the PR that introduced the waiver, so the lint driver can
//! report each exception's age; it is optional for compatibility but the
//! driver flags entries without one.

use crate::rules::{Violation, RULE_IDS};

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub rule: String,
    pub path_prefix: String,
    pub justification: String,
    /// The PR that introduced the waiver (`pr<N>` token), if recorded.
    pub pr: Option<u32>,
    /// 1-based line in the allowlist file (for diagnostics).
    pub line: usize,
}

/// A parsed allowlist plus per-entry usage tracking.
#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
}

/// Errors in the allowlist file itself.
#[derive(Debug, PartialEq, Eq)]
pub struct AllowError {
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for AllowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.allow:{}: {}", self.line, self.msg)
    }
}

impl Allowlist {
    /// Parses the allowlist text; comment (`#`) and blank lines are
    /// skipped. Unknown rule ids and missing justifications are errors.
    pub fn parse(text: &str) -> Result<Allowlist, AllowError> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let t = raw.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            let (head, justification) = match t.split_once("--") {
                Some((h, j)) if !j.trim().is_empty() => (h.trim(), j.trim().to_string()),
                _ => {
                    return Err(AllowError {
                        line,
                        msg: "entry needs `<rule> <path-prefix> -- <justification>`".into(),
                    })
                }
            };
            let mut parts = head.split_whitespace();
            let (Some(rule), Some(path_prefix)) = (parts.next(), parts.next()) else {
                return Err(AllowError {
                    line,
                    msg: "entry head must be `<rule> <path-prefix> [pr<N>]`".into(),
                });
            };
            let pr = match (parts.next(), parts.next()) {
                (None, _) => None,
                (Some(tok), None) => match tok.strip_prefix("pr").and_then(|n| n.parse().ok()) {
                    Some(n) => Some(n),
                    None => {
                        return Err(AllowError {
                            line,
                            msg: format!("third head token must be `pr<N>`, got `{tok}`"),
                        })
                    }
                },
                (Some(_), Some(_)) => {
                    return Err(AllowError {
                        line,
                        msg: "entry head must be `<rule> <path-prefix> [pr<N>]`".into(),
                    })
                }
            };
            if !RULE_IDS.contains(&rule) {
                return Err(AllowError { line, msg: format!("unknown rule `{rule}`") });
            }
            entries.push(AllowEntry {
                rule: rule.to_string(),
                path_prefix: path_prefix.to_string(),
                justification,
                pr,
                line,
            });
        }
        Ok(Allowlist { entries })
    }

    /// Splits violations into (unwaived, per-entry match counts).
    pub fn filter(&self, violations: Vec<Violation>) -> (Vec<Violation>, Vec<usize>) {
        let mut used = vec![0usize; self.entries.len()];
        let mut remaining = Vec::new();
        'next: for v in violations {
            for (i, e) in self.entries.iter().enumerate() {
                if e.rule == v.rule && v.path.starts_with(&e.path_prefix) {
                    used[i] += 1;
                    continue 'next;
                }
            }
            remaining.push(v);
        }
        (remaining, used)
    }

    /// Entries that waived nothing — stale, and an error in CI.
    pub fn stale<'a>(&'a self, used: &[usize]) -> Vec<&'a AllowEntry> {
        self.entries
            .iter()
            .enumerate()
            .filter(|&(i, _)| used.get(i).copied().unwrap_or(0) == 0)
            .map(|(_, e)| e)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(path: &str, rule: &'static str) -> Violation {
        Violation { path: path.into(), line: 1, rule, msg: String::new() }
    }

    #[test]
    fn parse_and_filter() {
        let a = Allowlist::parse(
            "# comment\n\nno-panic shims/ -- vendored stand-ins panic by API design\n",
        )
        .expect("well-formed allowlist");
        assert_eq!(a.entries.len(), 1);
        let (rest, used) = a.filter(vec![
            v("shims/proptest/src/lib.rs", "no-panic"),
            v("crates/core/src/x.rs", "no-panic"),
            v("shims/proptest/src/lib.rs", "unsafe-safety"),
        ]);
        assert_eq!(used, vec![1]);
        assert_eq!(rest.len(), 2, "other rule and other path stay live");
    }

    #[test]
    fn pr_token_parsed_and_optional() {
        let a = Allowlist::parse(
            "no-panic shims/ pr3 -- panics by design\nno-panic crates/core/src/x.rs -- legacy\n",
        )
        .expect("well-formed allowlist");
        assert_eq!(a.entries[0].pr, Some(3));
        assert_eq!(a.entries[1].pr, None);
    }

    #[test]
    fn malformed_pr_token_rejected() {
        let err = Allowlist::parse("no-panic shims/ pr -- why\n").expect_err("must reject");
        assert!(err.msg.contains("pr<N>"), "got: {}", err.msg);
        assert!(Allowlist::parse("no-panic shims/ v3 -- why\n").is_err());
        assert!(Allowlist::parse("no-panic shims/ pr3 extra -- why\n").is_err());
    }

    #[test]
    fn justification_is_mandatory() {
        assert!(Allowlist::parse("no-panic shims/\n").is_err());
        assert!(Allowlist::parse("no-panic shims/ --   \n").is_err());
    }

    #[test]
    fn unknown_rule_rejected() {
        let err = Allowlist::parse("no-such-rule shims/ -- why\n").expect_err("must reject");
        assert!(err.msg.contains("unknown rule"));
    }

    #[test]
    fn stale_entries_reported() {
        let a = Allowlist::parse(
            "no-panic shims/ -- used\nno-wallclock crates/core/src/gone.rs -- stale\n",
        )
        .expect("well-formed allowlist");
        let (_, used) = a.filter(vec![v("shims/rand/src/lib.rs", "no-panic")]);
        let stale = a.stale(&used);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].path_prefix, "crates/core/src/gone.rs");
    }
}
