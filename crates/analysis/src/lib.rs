//! In-tree static analysis for the stream-slicing workspace.
//!
//! Three layers, all dependency-free:
//!
//! * **Lint** ([`lexer`] → [`scope`] → [`rules`] → [`allowlist`]): a
//!   hand-rolled Rust scanner plus line-level rules (panic discipline,
//!   `SAFETY:` comments on `unsafe`, checked casts in `gss-core`,
//!   FxHash in hot paths, no wall-clock in event-time code), with an
//!   audited-exception file at `analysis/lint.allow`. Run via the
//!   `lint` binary (`cargo lint`).
//! * **Model checkers** ([`mc`], [`sharded`]): exhaustive explicit-state
//!   exploration of the parallel worker/merge protocol's interleavings
//!   and of the key-sharded emission/epoch-barrier protocol. Run via the
//!   `mc` binary (`cargo mc`).
//! * **Schedule exploration** ([`sched`], behind the `sched` feature):
//!   runs the *real* `gss-stream` protocol implementations under the
//!   deterministic `crossbeam::sched` runtime, exploring interleavings
//!   by bounded-preemption DFS and seed-pinned PCT, checking the mc
//!   models' invariants against probe traces plus bit-identical output
//!   vs a sequential reference. Run via the `sched` binary
//!   (`cargo sched`, `cargo sched-mutants`). This is the only part of
//!   the crate with dependencies, which is why it is feature-gated: the
//!   lint and mc layers stay dependency-free.
//! * The **invariant-audit build** lives in the checked crates
//!   themselves behind the workspace-wide `audit` feature; this crate
//!   only documents it (see `DESIGN.md`).

pub mod allowlist;
pub mod lexer;
pub mod mc;
pub mod rules;
#[cfg(feature = "sched")]
pub mod sched;
pub mod scope;
pub mod sharded;
pub mod walk;

#[cfg(test)]
mod self_test {
    use super::*;

    /// The lint must hold on its own implementation, with no allowlist
    /// help: the analysis crate is ordinary library code.
    #[test]
    fn lint_is_clean_on_own_crate() {
        let root = walk::workspace_root();
        let mut checked = 0;
        for (rel, path) in walk::rust_files(&root) {
            if !rel.starts_with("crates/analysis/") {
                continue;
            }
            let src = std::fs::read_to_string(&path).expect("analysis source readable");
            let violations = rules::check_file(&rel, &src);
            assert!(violations.is_empty(), "self-lint failed:\n{:#?}", violations);
            checked += 1;
        }
        assert!(checked >= 7, "expected to self-lint the whole crate, saw {checked} files");
    }
}
