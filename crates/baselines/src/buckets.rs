//! Bucket-per-window baseline — the WID approach of Li et al. [31–33]
//! adopted by Flink and friends (paper Section 3.3, Table 1 rows 3–4).
//!
//! Every window is an independent bucket; tuples are assigned to **all**
//! buckets whose window contains their event time, with no aggregate
//! sharing. A tuple overlapping `k` concurrent windows costs `k` ⊕ steps —
//! the linear-in-windows slowdown of Figures 8 and 9. In exchange, final
//! aggregates are fully precomputed per bucket, giving the nanosecond
//! output latencies of Figure 11.
//!
//! Two variants mirror Table 1: [`BucketMode::Aggregate`] stores one
//! partial per bucket; [`BucketMode::Tuple`] additionally keeps the
//! bucket's tuples (needed for holistic/non-commutative out-of-order
//! workloads), replicating tuples across overlapping buckets.

use std::collections::BTreeMap;

use gss_core::{
    AggregateFunction, ContextEdges, Count, HeapSize, Measure, QueryId, Range, StreamOrder, Time,
    WindowAggregator, WindowFunction, WindowResult, TIME_MIN,
};

use crate::common::QuerySet;

/// Bucket storage mode (Table 1 rows 3 vs. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BucketMode {
    /// One partial aggregate per bucket, no tuples.
    Aggregate,
    /// Tuples are kept per bucket (replicated across overlapping windows).
    Tuple,
}

struct Bucket<A: AggregateFunction> {
    end: Time,
    partial: Option<A::Partial>,
    tuples: Option<Vec<(Time, A::Input)>>,
}

impl<A: AggregateFunction> Bucket<A> {
    fn new(end: Time, mode: BucketMode) -> Self {
        Bucket { end, partial: None, tuples: matches!(mode, BucketMode::Tuple).then(Vec::new) }
    }

    fn add(&mut self, f: &A, ts: Time, value: &A::Input, in_order: bool) {
        if let Some(tuples) = &mut self.tuples {
            let pos = tuples.partition_point(|(t, _)| *t <= ts);
            tuples.insert(pos, (ts, value.clone()));
            if !in_order && !f.properties().commutative {
                // Retain aggregation order: recompute from tuples.
                self.partial = f.lift_all(tuples.iter().map(|(_, v)| v));
                return;
            }
        }
        let lifted = f.lift(value);
        self.partial = Some(match self.partial.take() {
            None => lifted,
            Some(p) => f.combine(p, &lifted),
        });
    }

    /// Adds a run of in-order tuples whose pre-folded partial is
    /// `run_partial`: one ⊕ into the bucket partial and one bulk tuple
    /// append, replacing `run.len()` individual `add` calls. The caller
    /// guarantees the run is in order (every timestamp at or after the
    /// bucket's stored tuples).
    fn add_run(&mut self, f: &A, run: &[(Time, A::Input)], run_partial: &A::Partial) {
        if let Some(tuples) = &mut self.tuples {
            tuples.extend_from_slice(run);
        }
        self.partial = Some(match self.partial.take() {
            None => run_partial.clone(),
            Some(p) => f.combine(p, run_partial),
        });
    }
}

impl<A: AggregateFunction> HeapSize for Bucket<A> {
    fn heap_bytes(&self) -> usize {
        self.partial.as_ref().map_or(0, |p| p.heap_bytes())
            + self.tuples.as_ref().map_or(0, |t| t.heap_bytes())
    }
}

/// Window aggregation with one bucket per window.
pub struct Buckets<A: AggregateFunction> {
    f: A,
    mode: BucketMode,
    order: StreamOrder,
    allowed_lateness: Time,
    queries: QuerySet,
    /// Per query id: window start -> bucket (starts are unique per query;
    /// session buckets merge).
    buckets: BTreeMap<QueryId, BTreeMap<Time, Bucket<A>>>,
    watermark: Time,
    max_ts: Time,
    first_ts: Time,
    total_count: Count,
    scratch: ContextEdges,
}

impl<A: AggregateFunction> Buckets<A> {
    pub fn new(f: A, mode: BucketMode, order: StreamOrder, allowed_lateness: Time) -> Self {
        Buckets {
            f,
            mode,
            order,
            allowed_lateness,
            queries: QuerySet::new(),
            buckets: BTreeMap::new(),
            watermark: TIME_MIN,
            max_ts: TIME_MIN,
            first_ts: TIME_MIN,
            total_count: 0,
            scratch: ContextEdges::new(),
        }
    }

    /// Registers a query.
    ///
    /// Count-measure windows use **arrival counts** (the Flink semantic):
    /// a bucket-per-window structure cannot repair the count shift that an
    /// out-of-order tuple causes under event-time counting (paper Figure
    /// 6), so late tuples simply take the next arrival position. Event-time
    /// count semantics require slicing or a tuple buffer.
    pub fn add_query(&mut self, w: Box<dyn WindowFunction>) -> QueryId {
        let id = self.queries.add(w);
        self.buckets.insert(id, BTreeMap::new());
        id
    }

    /// Total number of live buckets (for tests and memory experiments).
    pub fn bucket_count(&self) -> usize {
        self.buckets.values().map(|m| m.len()).sum()
    }

    /// Assigns the tuple to every containing window of every query. For
    /// merging window types (sessions), existing buckets covered by the
    /// post-merge window are first absorbed into one — the equivalent of
    /// Flink's `MergingWindowAssigner`.
    fn assign(&mut self, ts: Time, value: &A::Input, in_order: bool) {
        let count_pos = self.total_count;
        let f = &self.f;
        let mode = self.mode;
        let buckets = &mut self.buckets;
        let mut ranges: Vec<Range> = Vec::new();
        for q in self.queries.iter() {
            ranges.clear();
            match q.window.measure() {
                Measure::Time => q.window.windows_containing(ts, &mut |r| ranges.push(r)),
                Measure::Count => {
                    q.window.windows_containing(count_pos as Time, &mut |r| ranges.push(r))
                }
            }
            let Some(per_query) = buckets.get_mut(&q.id) else {
                continue;
            };
            let merging = q.window.is_session();
            for &range in &ranges {
                if merging {
                    // Absorb every pre-merge bucket covered by the merged
                    // window into a single bucket at the merged start.
                    let absorbed: Vec<Time> = per_query
                        .range(range.start..range.end)
                        .filter(|(s, b)| **s != range.start || b.end != range.end)
                        .map(|(s, _)| *s)
                        .collect();
                    if !absorbed.is_empty() {
                        let mut merged = Bucket::new(range.end, mode);
                        let mut partial: Option<A::Partial> = None;
                        let mut tuples: Vec<(Time, A::Input)> = Vec::new();
                        let mut sources = absorbed;
                        if !sources.contains(&range.start) && per_query.contains_key(&range.start) {
                            sources.push(range.start);
                            sources.sort_unstable();
                        }
                        for s in sources {
                            if let Some(b) = per_query.remove(&s) {
                                partial = f.combine_opt(partial, b.partial.as_ref());
                                if let Some(mut t) = b.tuples {
                                    tuples.append(&mut t);
                                }
                            }
                        }
                        if let Some(t) = &mut merged.tuples {
                            tuples.sort_by_key(|(t, _)| *t);
                            *t = tuples;
                            if !f.properties().commutative {
                                partial = f.lift_all(t.iter().map(|(_, v)| v));
                            }
                        }
                        merged.partial = partial;
                        per_query.insert(range.start, merged);
                    }
                }
                let bucket =
                    per_query.entry(range.start).or_insert_with(|| Bucket::new(range.end, mode));
                bucket.end = bucket.end.max(range.end);
                bucket.add(f, ts, value, in_order);
            }
        }
    }

    fn emit(&mut self, wm: Time, out: &mut Vec<WindowResult<A::Output>>) {
        // Arrival counts are final the moment a tuple arrives, regardless
        // of stream order.
        let count_wm = self.total_count;
        let mut windows: Vec<(QueryId, Measure, Range)> = Vec::new();
        self.queries
            .trigger(wm, count_wm, self.first_ts, self.max_ts, |id, m, r| windows.push((id, m, r)));
        for (id, m, r) in windows {
            let key = match m {
                Measure::Time => r.start,
                Measure::Count => r.start,
            };
            if let Some(b) = self.buckets.get(&id).and_then(|per| per.get(&key)) {
                if let Some(p) = &b.partial {
                    out.push(WindowResult::new(id, m, r, self.f.lower(p)));
                }
            }
        }
        self.evict(wm);
    }

    fn emit_updates(&mut self, ts: Time, out: &mut Vec<WindowResult<A::Output>>) {
        let wm = self.watermark;
        let mut windows: Vec<(QueryId, Measure, Range)> = Vec::new();
        self.queries.containing(ts, 0, |id, m, r| {
            if m == Measure::Time && r.end <= wm {
                windows.push((id, m, r));
            }
        });
        for (id, m, r) in windows {
            if let Some(b) = self.buckets.get(&id).and_then(|per| per.get(&r.start)) {
                if let Some(p) = &b.partial {
                    out.push(WindowResult::update(id, m, r, self.f.lower(p)));
                }
            }
        }
    }

    /// Length of the longest prefix of `batch[start..]` whose tuples all
    /// land in the **same** set of buckets (no window edge crossed) and
    /// complete no window, so the whole run costs one bucket-map walk and
    /// one ⊕ per bucket. Count-measure queries advance the count axis per
    /// tuple and are handled per tuple.
    fn run_len(&self, batch: &[(Time, A::Input)], start: usize) -> usize {
        if self.queries.has_context_aware() || self.queries.has_count_measure() {
            return 0;
        }
        let first = batch[start].0;
        if first < self.max_ts {
            return 0;
        }
        // The containing-window set is constant up to the next window
        // start or end edge.
        let mut bound = match self.queries.next_time_edge_after(first) {
            Some(e) => e,
            None => return 0,
        };
        if self.order.is_in_order() {
            if self.queries.last_trigger_time == TIME_MIN {
                return 0;
            }
            match self.queries.next_time_end_after(self.queries.last_trigger_time) {
                Some(e) => bound = bound.min(e),
                None => return 0,
            }
        }
        let mut prev = first;
        let mut n = 0;
        while n < batch.len() - start {
            let ts = batch[start + n].0;
            if ts < prev || ts >= bound {
                break;
            }
            prev = ts;
            n += 1;
        }
        n
    }

    fn evict(&mut self, wm: Time) {
        let lateness = if self.order.is_in_order() { 0 } else { self.allowed_lateness };
        let horizon = wm.saturating_sub(lateness);
        // Count-measure buckets live on the count axis: evict only those
        // whose (count) end has been reached and emitted.
        let count_horizon = self.total_count as Time;
        let buckets = &mut self.buckets;
        for q in self.queries.iter() {
            let Some(per_query) = buckets.get_mut(&q.id) else {
                continue;
            };
            match q.window.measure() {
                Measure::Time => per_query.retain(|_, b| b.end > horizon),
                Measure::Count => per_query.retain(|_, b| b.end > count_horizon),
            }
        }
    }
}

impl<A: AggregateFunction> WindowAggregator<A> for Buckets<A> {
    fn process(&mut self, ts: Time, value: A::Input, out: &mut Vec<WindowResult<A::Output>>) {
        // Track the minimum event time (not the first arrival): stragglers
        // older than the first arrival still anchor the trigger sweep.
        self.first_ts = if self.first_ts == TIME_MIN { ts } else { self.first_ts.min(ts) };
        let mut scratch = std::mem::take(&mut self.scratch);
        self.queries.notify(ts, &mut scratch);
        self.scratch = scratch;
        let in_order = ts >= self.max_ts;
        if !in_order && self.watermark != TIME_MIN && ts < self.watermark - self.allowed_lateness {
            return; // dropped: too late
        }
        self.assign(ts, &value, in_order);
        self.total_count += 1;
        if in_order {
            self.max_ts = ts;
            if self.order.is_in_order() {
                self.watermark = ts;
                self.emit(ts, out);
            }
        } else if self.watermark != TIME_MIN && ts <= self.watermark {
            self.emit_updates(ts, out);
        }
    }

    fn process_batch(
        &mut self,
        batch: &[(Time, A::Input)],
        out: &mut Vec<WindowResult<A::Output>>,
    ) {
        let mut i = 0;
        while i < batch.len() {
            let n = self.run_len(batch, i);
            if n <= 1 {
                let (ts, value) = &batch[i];
                self.process(*ts, value.clone(), out);
                i += 1;
                continue;
            }
            let run = &batch[i..i + n];
            let first = run[0].0;
            let last = run[n - 1].0;
            self.first_ts =
                if self.first_ts == TIME_MIN { first } else { self.first_ts.min(first) };
            // Fold the run once, then pay one ⊕ per containing bucket
            // instead of one per tuple per bucket.
            let f = &self.f;
            let mut p = f.lift(&run[0].1);
            for (_, v) in &run[1..] {
                p = f.combine(p, &f.lift(v));
            }
            let mode = self.mode;
            let buckets = &mut self.buckets;
            let mut ranges: Vec<Range> = Vec::new();
            for q in self.queries.iter() {
                ranges.clear();
                q.window.windows_containing(first, &mut |r| ranges.push(r));
                let Some(per_query) = buckets.get_mut(&q.id) else {
                    continue;
                };
                for &range in &ranges {
                    let bucket = per_query
                        .entry(range.start)
                        .or_insert_with(|| Bucket::new(range.end, mode));
                    bucket.end = bucket.end.max(range.end);
                    bucket.add_run(f, run, &p);
                }
            }
            self.total_count += n as Count;
            self.max_ts = last;
            if self.order.is_in_order() {
                // No window completed inside the run (run_len guarantees
                // that): one sweep replaces the per-tuple sweeps, emitting
                // nothing and advancing bookkeeping and eviction.
                self.watermark = last;
                self.emit(last, out);
            }
            i += n;
        }
    }

    fn on_watermark(&mut self, wm: Time, out: &mut Vec<WindowResult<A::Output>>) {
        if wm <= self.watermark {
            return;
        }
        self.watermark = wm;
        self.emit(wm, out);
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .buckets
                .values()
                .flat_map(|per| per.values())
                .map(|b| {
                    std::mem::size_of::<Bucket<A>>()
                        + 2 * std::mem::size_of::<Time>()
                        + b.heap_bytes()
                })
                .sum::<usize>()
    }

    fn name(&self) -> &'static str {
        match self.mode {
            BucketMode::Aggregate => "Buckets (aggregate)",
            BucketMode::Tuple => "Buckets (tuples)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_core::testsupport::SumI64;
    use gss_windows::{CountTumblingWindow, SessionWindow, SlidingWindow, TumblingWindow};

    fn agg_buckets(order: StreamOrder, lateness: Time) -> Buckets<SumI64> {
        Buckets::new(SumI64, BucketMode::Aggregate, order, lateness)
    }

    #[test]
    fn tumbling_in_order() {
        let mut b = agg_buckets(StreamOrder::InOrder, 0);
        b.add_query(Box::new(TumblingWindow::new(10)));
        let mut out = Vec::new();
        for ts in [1, 5, 9, 11, 15, 21] {
            b.process(ts, ts, &mut out);
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value, 15);
        assert_eq!(out[1].value, 26);
    }

    #[test]
    fn sliding_assigns_to_all_overlapping_buckets() {
        let mut b = agg_buckets(StreamOrder::InOrder, 0);
        b.add_query(Box::new(SlidingWindow::new(10, 2)));
        let mut out = Vec::new();
        b.process(9, 1, &mut out);
        // Tuple 9 lies in windows starting at 0, 2, 4, 6, 8: 5 buckets.
        assert_eq!(b.bucket_count(), 5);
    }

    #[test]
    fn sliding_results_match_scan() {
        let mut b = agg_buckets(StreamOrder::InOrder, 0);
        b.add_query(Box::new(SlidingWindow::new(10, 4)));
        let mut out = Vec::new();
        for i in 0..60 {
            b.process(i, 1, &mut out);
        }
        for r in &out {
            let expect = r.range.len().min(r.range.end).max(0);
            assert_eq!(r.value, expect, "window {}", r.range);
        }
    }

    #[test]
    fn session_buckets_merge() {
        let mut b = agg_buckets(StreamOrder::InOrder, 0);
        b.add_query(Box::new(SessionWindow::new(10)));
        let mut out = Vec::new();
        for (ts, v) in [(0, 1), (5, 2), (40, 5), (60, 9)] {
            b.process(ts, v, &mut out);
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].range, Range::new(0, 15));
        assert_eq!(out[0].value, 3);
        assert_eq!(out[1].range, Range::new(40, 50));
        assert_eq!(out[1].value, 5);
    }

    #[test]
    fn ooo_session_bridging_merges_buckets() {
        let mut b = Buckets::new(SumI64, BucketMode::Aggregate, StreamOrder::OutOfOrder, 1000);
        b.add_query(Box::new(SessionWindow::new(10).with_retention(100_000)));
        let mut out = Vec::new();
        b.process(0, 1, &mut out);
        b.process(15, 2, &mut out);
        assert_eq!(b.bucket_count(), 2);
        // Bridge: 8 is within gap of 0 (8 < 10) and 15 < 8 + 10.
        b.process(8, 4, &mut out);
        assert_eq!(b.bucket_count(), 1);
        b.on_watermark(100, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].range, Range::new(0, 25));
        assert_eq!(out[0].value, 7);
    }

    #[test]
    fn ooo_update_reemits_bucket() {
        let mut b = Buckets::new(SumI64, BucketMode::Aggregate, StreamOrder::OutOfOrder, 100);
        b.add_query(Box::new(TumblingWindow::new(10)));
        let mut out = Vec::new();
        b.process(5, 5, &mut out);
        b.process(15, 15, &mut out);
        b.on_watermark(10, &mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        b.process(7, 7, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].is_update);
        assert_eq!(out[0].value, 12);
    }

    #[test]
    fn tuple_mode_replicates_tuples() {
        let mut agg = Buckets::new(SumI64, BucketMode::Aggregate, StreamOrder::InOrder, 0);
        let mut tup = Buckets::new(SumI64, BucketMode::Tuple, StreamOrder::InOrder, 0);
        agg.add_query(Box::new(SlidingWindow::new(20, 2)));
        tup.add_query(Box::new(SlidingWindow::new(20, 2)));
        let mut out = Vec::new();
        for i in 0..100 {
            agg.process(i, 1, &mut out);
            tup.process(i, 1, &mut out);
        }
        // Tuple buckets replicate every tuple into ~10 buckets.
        assert!(tup.memory_bytes() > 2 * agg.memory_bytes());
    }

    #[test]
    fn count_windows_in_order() {
        let mut b = agg_buckets(StreamOrder::InOrder, 0);
        b.add_query(Box::new(CountTumblingWindow::new(3)));
        let mut out = Vec::new();
        for i in 0..10i64 {
            b.process(i * 2, i, &mut out);
        }
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].value, 3);
        assert_eq!(out[1].value, 12);
        assert_eq!(out[2].value, 21);
    }

    #[test]
    fn count_windows_on_ooo_use_arrival_counts() {
        let mut b = agg_buckets(StreamOrder::OutOfOrder, 1_000);
        b.add_query(Box::new(CountTumblingWindow::new(3)));
        let mut out = Vec::new();
        // Arrival order defines count positions: 0,20,10 form window 1.
        for (ts, v) in [(0, 1), (20, 2), (10, 4), (30, 8), (40, 16), (50, 32)] {
            b.process(ts, v, &mut out);
        }
        b.on_watermark(60, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value, 7); // 1 + 2 + 4 by arrival
        assert_eq!(out[1].value, 56);
    }

    #[test]
    fn eviction_drops_expired_buckets() {
        let mut b = agg_buckets(StreamOrder::InOrder, 0);
        b.add_query(Box::new(SlidingWindow::new(10, 2)));
        let mut out = Vec::new();
        for i in 0..10_000 {
            b.process(i, 1, &mut out);
        }
        assert!(b.bucket_count() < 20, "buckets must be evicted: {}", b.bucket_count());
    }
}
