//! Cutty baseline (Carbone et al. [10], paper Sections 3.4 / 6.2.1).
//!
//! Cutty generalizes slicing to user-defined **context-free** windows: it
//! slices only at window *start* edges and aggregates eagerly with a
//! FlatFAT tree over slices. Its limitation — and the gap general stream
//! slicing closes — is the lack of out-of-order support: windows are
//! triggered tuple-at-a-time on an in-order stream, relying on the
//! first-tuple-past-the-end trick for end alignment.

use std::collections::VecDeque;

use gss_core::{
    in_order_run_len, AggregateFunction, FlatFat, HeapSize, Measure, Query, QueryId, Range, Time,
    WindowAggregator, WindowFunction, WindowResult, TIME_MAX, TIME_MIN,
};

/// Eager slicing for user-defined context-free windows, in-order only.
pub struct Cutty<A: AggregateFunction> {
    f: A,
    queries: Vec<Query>,
    next_id: QueryId,
    /// Ranges of closed slices; leaf `i` of `tree` holds slice `i`'s
    /// partial.
    ranges: VecDeque<Range>,
    tree: FlatFat<A>,
    open_start: Time,
    open_edge: Time,
    open_partial: Option<A::Partial>,
    last_trigger: Time,
    next_end: Time,
    started: bool,
    max_extent: i64,
}

impl<A: AggregateFunction> Cutty<A> {
    pub fn new(f: A) -> Self {
        Cutty {
            tree: FlatFat::new(f.clone()),
            f,
            queries: Vec::new(),
            next_id: 0,
            ranges: VecDeque::new(),
            open_start: TIME_MIN,
            open_edge: TIME_MAX,
            open_partial: None,
            last_trigger: TIME_MIN,
            next_end: TIME_MAX,
            started: false,
            max_extent: 0,
        }
    }

    /// Registers a context-free time window (tumbling, sliding, or any
    /// user-defined CF type).
    pub fn add_query(&mut self, w: Box<dyn WindowFunction>) -> QueryId {
        assert_eq!(
            w.context(),
            gss_core::ContextClass::ContextFree,
            "Cutty supports context-free windows only"
        );
        assert_eq!(w.measure(), Measure::Time, "this Cutty implementation slices on time");
        self.max_extent = self.max_extent.max(w.max_extent());
        let id = self.next_id;
        self.next_id += 1;
        self.queries.push(Query::new(id, w));
        id
    }

    pub fn slice_count(&self) -> usize {
        self.ranges.len() + 1
    }

    fn next_start_edge(&self, ts: Time) -> Time {
        self.queries.iter().filter_map(|q| q.window.next_start_edge(ts)).min().unwrap_or(TIME_MAX)
    }

    fn next_window_end(&self, ts: Time) -> Time {
        self.queries.iter().filter_map(|q| q.window.next_window_end(ts)).min().unwrap_or(TIME_MAX)
    }

    /// Eager aggregation: `O(log s)` tree query plus the open slice.
    fn aggregate(&self, range: Range) -> Option<A::Partial> {
        let l = self.ranges.partition_point(|r| r.end <= range.start);
        let r = self.ranges.partition_point(|r| r.start < range.end);
        let mut acc = if l < r { self.tree.query(l, r) } else { None };
        if self.open_start < range.end && self.open_start >= range.start {
            acc = self.f.combine_opt(acc, self.open_partial.as_ref());
        }
        acc
    }

    fn evict(&mut self, now: Time) {
        let boundary = now.saturating_sub(self.max_extent);
        let k = self.ranges.partition_point(|r| r.end <= boundary);
        if k > 0 {
            self.ranges.drain(..k);
            self.tree.remove_prefix(k);
        }
    }
}

impl<A: AggregateFunction> WindowAggregator<A> for Cutty<A> {
    fn process(&mut self, ts: Time, value: A::Input, out: &mut Vec<WindowResult<A::Output>>) {
        debug_assert!(!self.started || ts >= self.open_start, "Cutty requires in-order streams");
        if !self.started {
            self.started = true;
            self.open_start = ts;
            self.open_edge = self.next_start_edge(ts);
            self.last_trigger = ts;
            self.next_end = self.next_window_end(ts);
        }
        // Slice only at window starts (Cutty's minimal edge set).
        while ts >= self.open_edge {
            self.ranges.push_back(Range::new(self.open_start, self.open_edge));
            self.tree.push(self.open_partial.take());
            self.open_start = self.open_edge;
            self.open_edge = self.next_start_edge(self.open_start);
        }
        // Trigger before inserting the tuple (first-tuple-past-the-end).
        if ts >= self.next_end {
            let mut windows: Vec<(QueryId, Range)> = Vec::new();
            for q in &mut self.queries {
                let id = q.id;
                q.window.trigger_windows(self.last_trigger, ts, &mut |r| windows.push((id, r)));
            }
            for (id, r) in windows {
                if let Some(p) = self.aggregate(r) {
                    out.push(WindowResult::new(id, Measure::Time, r, self.f.lower(&p)));
                }
            }
            self.last_trigger = ts;
            self.next_end = self.next_window_end(ts);
            self.evict(ts);
        }
        let lifted = self.f.lift(&value);
        self.open_partial = Some(match self.open_partial.take() {
            None => lifted,
            Some(p) => self.f.combine(p, &lifted),
        });
    }

    fn process_batch(
        &mut self,
        batch: &[(Time, A::Input)],
        out: &mut Vec<WindowResult<A::Output>>,
    ) {
        let mut i = 0;
        while i < batch.len() {
            // Tuples strictly below the open slice's start edge and the next
            // window end neither cut a slice nor trigger: fold the run into
            // the open partial with one combine (associativity).
            let n = if self.started {
                let bound = self.open_edge.min(self.next_end);
                in_order_run_len(batch, i, self.open_start, bound, usize::MAX)
            } else {
                0
            };
            if n <= 1 {
                let (ts, value) = &batch[i];
                self.process(*ts, value.clone(), out);
                i += 1;
                continue;
            }
            let run = &batch[i..i + n];
            let mut acc = self.f.lift(&run[0].1);
            for (_, v) in &run[1..] {
                acc = self.f.combine(acc, &self.f.lift(v));
            }
            self.open_partial = Some(match self.open_partial.take() {
                None => acc,
                Some(p) => self.f.combine(p, &acc),
            });
            i += n;
        }
    }

    fn on_watermark(&mut self, _wm: Time, _out: &mut Vec<WindowResult<A::Output>>) {
        // Cutty is in-order only; every tuple acts as its own watermark.
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.ranges.heap_bytes()
            + self.tree.heap_bytes()
            + self.open_partial.as_ref().map_or(0, |p| p.heap_bytes())
    }

    fn name(&self) -> &'static str {
        "Cutty"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_core::testsupport::SumI64;
    use gss_windows::{SessionWindow, SlidingWindow, TumblingWindow};

    #[test]
    fn tumbling_matches_expected() {
        let mut c = Cutty::new(SumI64);
        c.add_query(Box::new(TumblingWindow::new(10)));
        let mut out = Vec::new();
        for ts in [1, 5, 9, 11, 15, 21] {
            c.process(ts, ts, &mut out);
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value, 15);
        assert_eq!(out[1].value, 26);
    }

    #[test]
    fn unaligned_sliding_ends_handled_by_trigger_rule() {
        let mut c = Cutty::new(SumI64);
        c.add_query(Box::new(SlidingWindow::new(10, 4)));
        let mut out = Vec::new();
        for i in 0..100 {
            c.process(i, 1, &mut out);
        }
        for r in &out {
            let expect = r.range.len().min(r.range.end).max(0);
            assert_eq!(r.value, expect, "window {}", r.range);
        }
        // Start-only slicing: fewer slices than Pairs would cut.
        assert!(c.slice_count() <= 5, "slices: {}", c.slice_count());
    }

    #[test]
    fn multi_query_sharing() {
        let mut c = Cutty::new(SumI64);
        c.add_query(Box::new(TumblingWindow::new(10)));
        c.add_query(Box::new(SlidingWindow::new(20, 5)));
        let mut out = Vec::new();
        for i in 0..80 {
            c.process(i, 1, &mut out);
        }
        for r in &out {
            let expect = r.range.len().min(r.range.end).max(0);
            assert_eq!(r.value, expect, "query {} window {}", r.query, r.range);
        }
    }

    #[test]
    #[should_panic(expected = "context-free")]
    fn context_aware_windows_rejected() {
        let mut c = Cutty::new(SumI64);
        c.add_query(Box::new(SessionWindow::new(10)));
    }
}
