//! SlickDeque-style sliding extremum aggregation (Shein et al. [40]).
//!
//! For *selection* functions (min/max), a monotonic deque gives amortized
//! O(1) inserts, O(1) evictions, and O(1) queries over a FIFO sliding
//! window: elements that can never become the extremum again are discarded
//! on insert. Specialized to one query and one function class — another
//! point in the related-work trade-off space that general slicing covers
//! uniformly.

use std::collections::VecDeque;

use gss_core::{
    HeapSize, Measure, Range, Time, WindowAggregator, WindowResult, TIME_MAX, TIME_MIN,
};
use gss_windows::PeriodicEdges;

/// Monotonic deque maintaining the window extremum.
pub struct MonotonicDeque {
    /// `(ts, value)`; values are monotone from front to back such that
    /// the front is always the current extremum.
    deque: VecDeque<(Time, i64)>,
    /// `true` for max semantics, `false` for min.
    is_max: bool,
}

impl MonotonicDeque {
    pub fn new_max() -> Self {
        MonotonicDeque { deque: VecDeque::new(), is_max: true }
    }

    pub fn new_min() -> Self {
        MonotonicDeque { deque: VecDeque::new(), is_max: false }
    }

    fn dominates(&self, new: i64, old: i64) -> bool {
        if self.is_max {
            new >= old
        } else {
            new <= old
        }
    }

    /// Inserts a new element, discarding dominated tail elements.
    pub fn push(&mut self, ts: Time, value: i64) {
        while self.deque.back().is_some_and(|&(_, v)| self.dominates(value, v)) {
            self.deque.pop_back();
        }
        self.deque.push_back((ts, value));
    }

    /// Evicts elements with timestamps before `start`.
    pub fn evict_before(&mut self, start: Time) {
        while self.deque.front().is_some_and(|&(t, _)| t < start) {
            self.deque.pop_front();
        }
    }

    /// Current extremum, if any element remains.
    pub fn extremum(&self) -> Option<i64> {
        self.deque.front().map(|&(_, v)| v)
    }

    pub fn len(&self) -> usize {
        self.deque.len()
    }

    pub fn is_empty(&self) -> bool {
        self.deque.is_empty()
    }
}

impl HeapSize for MonotonicDeque {
    fn heap_bytes(&self) -> usize {
        self.deque.heap_bytes()
    }
}

/// One sliding time window computing min or max via a monotonic deque.
///
/// Implements `WindowAggregator<gss_aggregates::Max>`-compatible output
/// shape generically over the extremum direction by emitting `i64`.
pub struct SlickDequeSliding {
    deque: MonotonicDeque,
    edges: PeriodicEdges,
    last_trigger: Time,
    next_end: Time,
    started: bool,
    /// Tuples seen but not yet evictable: the deque alone under-counts
    /// memory (dominated elements are discarded); expose its true size.
    max_seen: Time,
}

impl SlickDequeSliding {
    pub fn new_max(length: i64, slide: i64) -> Self {
        Self::new(MonotonicDeque::new_max(), length, slide)
    }

    pub fn new_min(length: i64, slide: i64) -> Self {
        Self::new(MonotonicDeque::new_min(), length, slide)
    }

    fn new(deque: MonotonicDeque, length: i64, slide: i64) -> Self {
        SlickDequeSliding {
            deque,
            edges: PeriodicEdges::new(length, slide),
            last_trigger: TIME_MIN,
            next_end: TIME_MAX,
            started: false,
            max_seen: TIME_MIN,
        }
    }

    pub fn deque_len(&self) -> usize {
        self.deque.len()
    }
}

impl WindowAggregator<gss_aggregates::Max> for SlickDequeSliding {
    fn process(&mut self, ts: Time, value: i64, out: &mut Vec<WindowResult<i64>>) {
        debug_assert!(ts >= self.max_seen || !self.started, "SlickDeque requires in-order streams");
        self.max_seen = self.max_seen.max(ts);
        if !self.started {
            self.started = true;
            self.last_trigger = ts;
            self.next_end = self.edges.next_end(ts);
        }
        if ts >= self.next_end {
            let mut ends: Vec<Range> = Vec::new();
            self.edges.ends_in(self.last_trigger, ts, &mut |r| ends.push(r));
            for r in ends {
                self.deque.evict_before(r.start);
                if let Some(v) = self.deque.extremum() {
                    out.push(WindowResult::new(0, Measure::Time, r, v));
                }
            }
            self.last_trigger = ts;
            self.next_end = self.edges.next_end(ts);
        }
        self.deque.push(ts, value);
    }

    fn on_watermark(&mut self, _wm: Time, _out: &mut Vec<WindowResult<i64>>) {}

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.deque.heap_bytes()
    }

    fn name(&self) -> &'static str {
        "SlickDeque"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deque_tracks_max() {
        let mut d = MonotonicDeque::new_max();
        d.push(1, 5);
        d.push(2, 3);
        d.push(3, 4); // discards 3
        assert_eq!(d.extremum(), Some(5));
        assert_eq!(d.len(), 2); // 5 and 4
        d.evict_before(2);
        assert_eq!(d.extremum(), Some(4));
    }

    #[test]
    fn deque_tracks_min() {
        let mut d = MonotonicDeque::new_min();
        for (ts, v) in [(1, 5), (2, 3), (3, 4), (4, 1)] {
            d.push(ts, v);
        }
        // 1 dominates everything before it; the deque holds only (4, 1).
        assert_eq!(d.extremum(), Some(1));
        assert_eq!(d.len(), 1);
        d.evict_before(5);
        assert_eq!(d.extremum(), None);
    }

    #[test]
    fn sliding_max_matches_scan() {
        let values: Vec<i64> = (0..200).map(|i| (i * 37) % 101).collect();
        let mut sd = SlickDequeSliding::new_max(20, 5);
        let mut out = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            sd.process(i as Time, v, &mut out);
        }
        assert!(out.len() > 20);
        for r in &out {
            let expect = values[(r.range.start.max(0) as usize)..(r.range.end.min(200) as usize)]
                .iter()
                .max()
                .copied()
                .unwrap();
            assert_eq!(r.value, expect, "window {}", r.range);
        }
    }

    #[test]
    fn deque_stays_small_on_monotone_input() {
        // Increasing values: each push discards the whole tail.
        let mut sd = SlickDequeSliding::new_max(1_000, 100);
        let mut out = Vec::new();
        for i in 0..10_000 {
            sd.process(i, i, &mut out);
        }
        assert!(sd.deque_len() <= 2, "deque: {}", sd.deque_len());
    }
}
