//! DABA Lite: worst-case O(1) FIFO aggregation (Tangwongsan, Hirzel,
//! Schneider — "In-order sliding-window aggregation in worst-case
//! constant time", the de-amortized successor of [`Two-Stacks`]).
//!
//! Two-Stacks ([`FifoAggregator`]) pays for evictions in bursts: when its
//! front stack runs dry the whole back stack is flipped at once, an O(n)
//! hiccup. DABA Lite spreads that flip across the operations that follow
//! it, so every insert and evict performs **at most three combines** —
//! worst case, not amortized — while still needing no inverse and only
//! one aggregate slot per stored element (the "Lite" layout; original
//! DABA kept two).
//!
//! # Structure
//!
//! One deque of `(timestamp, partial)` slots split into five contiguous
//! regions by positions `l ≤ r ≤ a ≤ b` (measured from the queue front,
//! position 0; `e` is the queue length):
//!
//! ```text
//!     F = [0, l)   L = [l, r)   R = [r, a)   A = [a, b)   B = [b, e)
//! ```
//!
//! with two scalar aggregates `midSum = Σ v[r..b)` and `backSum =
//! Σ v[b..e)`, and the per-region slot invariants
//!
//! * `F`: `slot[i] = Σ v[i..b)` — finished suffixes (ready to evict);
//! * `L`: `slot[i] = Σ v[i..r)` — suffixes of the *previous* front,
//!   finished by appending the constant `midSum`;
//! * `R`: `slot[i] = v[i]` — raw lifted values awaiting conversion;
//! * `A`: `slot[i] = Σ v[i..b)` — suffixes built right-to-left out of `R`;
//! * `B`: `slot[i] = v[i]` — raw arrivals, summarized by `backSum`.
//!
//! The queue aggregate is `alpha ⊕ backSum`, where `alpha` covers
//! `[0, b)` in O(1): the head slot is finished (`F`/`A`) or one `midSum`
//! away from finished (`L`).
//!
//! After every operation a `fixup` performs one unit of repair work on
//! each side — one `R → A` conversion and one `L → F` promotion (or a
//! region slide once both are exhausted). When the repair pointers meet
//! the back boundary (`l == b`), the *flip* is a pure relabeling: the old
//! front becomes `L`, the old back becomes `R`, `midSum := backSum` — no
//! combines at all. Since a flip starts with `|L| = |R|` (both sides grew
//! in lockstep during the previous phase), promotions and conversions
//! finish together and evictions never catch a raw `R` slot at the head.
//!
//! [`Two-Stacks`]: crate::FifoAggregator

use std::collections::VecDeque;

use gss_core::{
    AggregateFunction, HeapSize, Measure, Range, Time, WindowAggregator, WindowResult, TIME_MAX,
    TIME_MIN,
};
use gss_windows::PeriodicEdges;

/// FIFO aggregation queue with worst-case O(1) operations (≤ 3 combines
/// per insert/evict, ≤ 2 per query), no inverse required.
pub struct DabaLite<A: AggregateFunction> {
    f: A,
    /// Slots: `(timestamp, partial)`; the partial's meaning depends on the
    /// region the slot currently sits in (see module docs).
    q: VecDeque<(Time, A::Partial)>,
    /// Region boundaries, measured from the queue front (position 0).
    l: usize,
    r: usize,
    a: usize,
    b: usize,
    /// `Σ v[r..b)`, fixed at the flip that created the current `L`. Live
    /// (read by promotions and head queries) only while `L` is nonempty;
    /// cleared once the slide phase begins.
    mid_sum: Option<A::Partial>,
    /// `Σ v[b..e)` — grows with each insert; `None` when `B` is empty.
    back_sum: Option<A::Partial>,
}

impl<A: AggregateFunction> DabaLite<A> {
    pub fn new(f: A) -> Self {
        DabaLite { f, q: VecDeque::new(), l: 0, r: 0, a: 0, b: 0, mid_sum: None, back_sum: None }
    }

    pub fn len(&self) -> usize {
        self.q.len()
    }

    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Timestamp of the oldest element, if any.
    pub fn front_ts(&self) -> Option<Time> {
        self.q.front().map(|(t, _)| *t)
    }

    /// Appends a new element (FIFO order: timestamps must not decrease).
    pub fn push(&mut self, ts: Time, value: &A::Input) {
        let lifted = self.f.lift(value);
        self.back_sum = self.f.combine_opt(self.back_sum.take(), Some(&lifted));
        self.q.push_back((ts, lifted));
        self.fixup();
    }

    /// Removes the oldest element. Worst-case O(1): the repair work that
    /// keeps the head slot finished was already spread over earlier ops.
    pub fn pop(&mut self) -> Option<Time> {
        let (ts, _) = self.q.pop_front()?;
        // Every region shifts one slot toward the front; a boundary
        // already at 0 means its region just lost its head element.
        self.l = self.l.saturating_sub(1);
        self.r = self.r.saturating_sub(1);
        self.a = self.a.saturating_sub(1);
        self.b = self.b.saturating_sub(1);
        self.fixup();
        Some(ts)
    }

    /// The aggregate of the whole queue in FIFO order: ≤ 2 combines.
    pub fn query(&self) -> Option<A::Partial> {
        let alpha = self.alpha();
        self.f.combine_opt(alpha, self.back_sum.as_ref())
    }

    /// `Σ v[0..b)`, read off the head slot: finished if it sits in `F` or
    /// `A`, one `midSum` short if it sits in `L`. The fixup discipline
    /// guarantees the head is never a raw `R` slot.
    fn alpha(&self) -> Option<A::Partial> {
        if self.b == 0 {
            return None;
        }
        debug_assert!(
            self.l > 0 || self.r == self.a,
            "head slot may not be raw (l={} r={} a={} b={})",
            self.l,
            self.r,
            self.a,
            self.b
        );
        let head = self.q.front().map(|(_, p)| p.clone());
        if self.l == 0 && self.r > 0 {
            // Head is in L: Σ v[0..r) ⊕ Σ v[r..b).
            self.f.combine_opt(head, self.mid_sum.as_ref())
        } else {
            head
        }
    }

    /// One unit of repair per side, plus the (combine-free) flip. This is
    /// the whole de-amortization: called after every push and pop.
    fn fixup(&mut self) {
        if self.l == self.b {
            // Front repair finished and fully consumed: relabel. The old
            // front [0, b) becomes L (its suffixes end at b == new r), the
            // old back [b, e) becomes R with midSum taking over backSum.
            debug_assert!(self.l == self.r && self.r == self.a);
            self.r = self.b;
            self.l = 0;
            self.a = self.q.len();
            self.b = self.q.len();
            self.mid_sum = self.back_sum.take();
        }
        // Conversion: R's rightmost raw slot becomes A's leftmost suffix,
        // `v[a] ⊕ Σ v[a+1..b)`. When A is still empty the raw value
        // already equals Σ v[a..b).
        if self.a > self.r {
            self.a -= 1;
            if self.a + 1 < self.b {
                let suffix = self.q[self.a + 1].1.clone();
                let v = self.q[self.a].1.clone();
                self.q[self.a].1 = self.f.combine(v, &suffix);
            }
        }
        if self.l < self.r {
            // Promotion: L's head suffix Σ v[l..r) is finished by the
            // constant midSum = Σ v[r..b).
            if let Some(m) = self.mid_sum.as_ref() {
                let p = self.q[self.l].1.clone();
                self.q[self.l].1 = self.f.combine(p, m);
            }
            self.l += 1;
        } else if self.r == self.a && self.l < self.b {
            // Both repair streams exhausted: slide the (empty) L and R
            // over the finished A slots; they are already F-shaped. With
            // L gone midSum is dead until the next flip rewrites it.
            self.mid_sum = None;
            self.l += 1;
            self.r += 1;
            self.a += 1;
        }
    }
}

impl<A: AggregateFunction> HeapSize for DabaLite<A> {
    fn heap_bytes(&self) -> usize {
        self.q.heap_bytes()
            + self.mid_sum.as_ref().map_or(0, |p| p.heap_bytes())
            + self.back_sum.as_ref().map_or(0, |p| p.heap_bytes())
    }
}

/// A single sliding time window served by a [`DabaLite`] queue — the
/// worst-case-constant-time entry in the related-work table, same facade
/// and trigger discipline as [`TwoStacksSliding`].
///
/// [`TwoStacksSliding`]: crate::TwoStacksSliding
pub struct DabaLiteSliding<A: AggregateFunction> {
    fifo: DabaLite<A>,
    f: A,
    edges: PeriodicEdges,
    last_trigger: Time,
    next_end: Time,
    started: bool,
}

impl<A: AggregateFunction> DabaLiteSliding<A> {
    pub fn new(f: A, length: i64, slide: i64) -> Self {
        DabaLiteSliding {
            fifo: DabaLite::new(f.clone()),
            f,
            edges: PeriodicEdges::new(length, slide),
            last_trigger: TIME_MIN,
            next_end: TIME_MAX,
            started: false,
        }
    }
}

impl<A: AggregateFunction> WindowAggregator<A> for DabaLiteSliding<A> {
    fn process(&mut self, ts: Time, value: A::Input, out: &mut Vec<WindowResult<A::Output>>) {
        debug_assert!(
            self.fifo.front_ts().is_none_or(|t| ts >= t),
            "DABA Lite requires in-order streams"
        );
        if !self.started {
            self.started = true;
            self.last_trigger = ts;
            self.next_end = self.edges.next_end(ts);
        }
        if ts >= self.next_end {
            let mut ends: Vec<Range> = Vec::new();
            self.edges.ends_in(self.last_trigger, ts, &mut |r| ends.push(r));
            for r in ends {
                while self.fifo.front_ts().is_some_and(|t| t < r.start) {
                    self.fifo.pop();
                }
                if let Some(p) = self.fifo.query() {
                    out.push(WindowResult::new(0, Measure::Time, r, self.f.lower(&p)));
                }
            }
            self.last_trigger = ts;
            self.next_end = self.edges.next_end(ts);
        }
        self.fifo.push(ts, &value);
    }

    fn on_watermark(&mut self, _wm: Time, _out: &mut Vec<WindowResult<A::Output>>) {}

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.fifo.heap_bytes()
    }

    fn name(&self) -> &'static str {
        "DABA Lite"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_stacks::{FifoAggregator, TwoStacksSliding};
    use gss_core::testsupport::{Concat, SumI64, SumNoInvert};

    /// Recomputes every slot, boundary sum, and pointer relation from a
    /// mirror of the raw input values. With `Concat` the partials are the
    /// literal value sequences, so this pins the exact region invariants,
    /// not just the query result.
    fn check_invariants(q: &DabaLite<Concat>, vals: &[i64]) {
        let (l, r, a, b, e) = (q.l, q.r, q.a, q.b, q.q.len());
        assert!(l <= r && r <= a && a <= b && b <= e, "order l={l} r={r} a={a} b={b} e={e}");
        assert!(l > 0 || r == a, "head slot raw: l={l} r={r} a={a} b={b}");
        assert_eq!(vals.len(), e);
        let span = |from: usize, to: usize| vals[from..to].to_vec();
        for i in 0..e {
            let expect = if i < l || (i >= a && i < b) {
                span(i, b) // F and A: finished suffixes
            } else if i < r {
                span(i, r) // L: suffixes of the previous front
            } else {
                span(i, i + 1) // R and B: raw lifted values
            };
            assert_eq!(q.q[i].1, expect, "slot {i} (l={l} r={r} a={a} b={b})");
        }
        if l < r {
            // midSum is only live (and only read) while L is nonempty.
            assert_eq!(q.mid_sum.clone().unwrap_or_default(), span(r, b), "midSum");
        }
        assert_eq!(q.back_sum.clone().unwrap_or_default(), span(b, e), "backSum");
    }

    #[test]
    fn query_matches_running_content() {
        let mut q = DabaLite::new(SumI64);
        assert_eq!(q.query(), None);
        q.push(1, &10);
        q.push(2, &20);
        q.push(3, &30);
        assert_eq!(q.query(), Some(60));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.query(), Some(50));
        q.push(4, &40);
        assert_eq!(q.query(), Some(90));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.query(), Some(40));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.query(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn invariants_hold_under_randomized_ops() {
        // Deterministic xorshift mix of pushes and pops, heavy on both
        // sides at different phases so flips happen at many queue sizes.
        let mut q = DabaLite::new(Concat);
        let mut vals: Vec<i64> = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut ts = 0i64;
        for step in 0..6_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Phase-dependent push bias: grow, churn, then drain.
            let bias = match step / 2_000 {
                0 => 200,
                1 => 128,
                _ => 56,
            };
            if (state & 0xff) < bias || vals.is_empty() {
                ts += 1;
                q.push(ts, &ts);
                vals.push(ts);
            } else {
                assert_eq!(q.pop(), Some(vals[0]));
                vals.remove(0);
            }
            check_invariants(&q, &vals);
            assert_eq!(q.query().unwrap_or_default(), vals, "step {step}");
        }
        while !vals.is_empty() {
            q.pop();
            vals.remove(0);
            check_invariants(&q, &vals);
            assert_eq!(q.query().unwrap_or_default(), vals);
        }
    }

    #[test]
    fn matches_two_stacks_reference() {
        // Same operation sequence through DABA Lite and the reference
        // two-stacks queue; Concat pins content and order exactly.
        let mut daba = DabaLite::new(Concat);
        let mut two_stacks = FifoAggregator::new(Concat);
        let mut state = 42u64;
        let mut ts = 0i64;
        let mut len = 0usize;
        for step in 0..4_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if !(state >> 33).is_multiple_of(3) || len == 0 {
                ts += 1;
                daba.push(ts, &ts);
                two_stacks.push(ts, &ts);
                len += 1;
            } else {
                assert_eq!(daba.pop(), two_stacks.pop(), "step {step}");
                len -= 1;
            }
            assert_eq!(daba.query(), two_stacks.query(), "step {step}");
            assert_eq!(daba.front_ts(), two_stacks.front_ts(), "step {step}");
            assert_eq!(daba.len(), two_stacks.len());
        }
    }

    #[test]
    fn worst_case_three_combines_per_operation() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        #[derive(Clone)]
        struct CountingSum(Arc<AtomicUsize>);
        impl AggregateFunction for CountingSum {
            type Input = i64;
            type Partial = i64;
            type Output = i64;
            fn lift(&self, v: &i64) -> i64 {
                *v
            }
            fn combine(&self, a: i64, b: &i64) -> i64 {
                self.0.fetch_add(1, Ordering::Relaxed);
                a + b
            }
            fn lower(&self, p: &i64) -> i64 {
                *p
            }
            fn properties(&self) -> gss_core::FunctionProperties {
                gss_core::FunctionProperties {
                    commutative: true,
                    invertible: false,
                    kind: gss_core::FunctionKind::Distributive,
                }
            }
        }

        let combines = Arc::new(AtomicUsize::new(0));
        let mut q = DabaLite::new(CountingSum(Arc::clone(&combines)));
        let mut state = 7u64;
        let mut len = 0usize;
        for _ in 0..4_000 {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let before = combines.load(Ordering::Relaxed);
            if (state >> 60).is_multiple_of(2) || len == 0 {
                q.push(len as i64, &1);
                len += 1;
            } else {
                q.pop();
                len -= 1;
            }
            let op = combines.load(Ordering::Relaxed) - before;
            assert!(op <= 3, "{op} combines in one operation (worst case is 3)");
            let before = combines.load(Ordering::Relaxed);
            q.query();
            let qc = combines.load(Ordering::Relaxed) - before;
            assert!(qc <= 2, "{qc} combines in one query (worst case is 2)");
        }
    }

    #[test]
    fn sliding_window_matches_two_stacks_sliding() {
        let mut daba = DabaLiteSliding::new(SumNoInvert, 10, 4);
        let mut two_stacks = TwoStacksSliding::new(SumNoInvert, 10, 4);
        let mut out_d = Vec::new();
        let mut out_t = Vec::new();
        for i in 0..300 {
            let v = (i * 31) % 17;
            daba.process(i, v, &mut out_d);
            two_stacks.process(i, v, &mut out_t);
        }
        assert!(out_d.len() > 50);
        assert_eq!(out_d.len(), out_t.len());
        for (d, t) in out_d.iter().zip(&out_t) {
            assert_eq!(d.range, t.range);
            assert_eq!(d.value, t.value, "window {}", d.range);
        }
    }
}
