//! Pairs baseline (Krishnamurthy et al. [28], paper Sections 3.4 / 6.2.1).
//!
//! The original on-the-fly slicing technique: for periodic windows, the
//! stream is cut into two alternating slice lengths per query — `l mod l_s`
//! and `l_s − (l mod l_s)` — which is exactly the union of all window start
//! and end edges. Pairs is limited to **in-order streams** and **periodic
//! (tumbling/sliding) time windows**; those are the assumptions general
//! stream slicing removes.

use std::collections::VecDeque;

use gss_core::{
    in_order_run_len, AggregateFunction, HeapSize, Measure, QueryId, Range, Time, WindowAggregator,
    WindowResult, TIME_MAX, TIME_MIN,
};
use gss_windows::PeriodicEdges;

/// Specialized slicing for periodic in-order window aggregation.
pub struct Pairs<A: AggregateFunction> {
    f: A,
    queries: Vec<(QueryId, PeriodicEdges)>,
    next_id: QueryId,
    /// Closed slices: range plus partial.
    slices: VecDeque<(Range, Option<A::Partial>)>,
    /// Open slice.
    open_start: Time,
    open_end: Time,
    open_partial: Option<A::Partial>,
    last_trigger: Time,
    /// Earliest upcoming window end; the per-tuple hot path compares one
    /// timestamp against it instead of sweeping all queries.
    next_end: Time,
    started: bool,
    max_extent: i64,
}

impl<A: AggregateFunction> Pairs<A> {
    pub fn new(f: A) -> Self {
        Pairs {
            f,
            queries: Vec::new(),
            next_id: 0,
            slices: VecDeque::new(),
            open_start: TIME_MIN,
            open_end: TIME_MAX,
            open_partial: None,
            last_trigger: TIME_MIN,
            next_end: TIME_MAX,
            started: false,
            max_extent: 0,
        }
    }

    /// Registers a periodic window (`length`, `slide`). Tumbling windows
    /// use `slide == length`.
    pub fn add_query(&mut self, length: i64, slide: i64) -> QueryId {
        let id = self.next_id;
        self.next_id += 1;
        self.queries.push((id, PeriodicEdges::new(length, slide)));
        self.max_extent = self.max_extent.max(length);
        id
    }

    pub fn slice_count(&self) -> usize {
        self.slices.len() + 1
    }

    /// Union of all queries' next start/end edges after `ts` — the pairs
    /// edge set.
    fn next_edge(&self, ts: Time) -> Time {
        self.queries.iter().map(|(_, e)| e.next_edge(ts)).min().unwrap_or(TIME_MAX)
    }

    /// Earliest window end strictly after `ts`.
    fn next_window_end(&self, ts: Time) -> Time {
        self.queries.iter().map(|(_, e)| e.next_end(ts)).min().unwrap_or(TIME_MAX)
    }

    fn aggregate(&self, range: Range) -> Option<A::Partial> {
        let l = self.slices.partition_point(|(r, _)| r.end <= range.start);
        let r = self.slices.partition_point(|(r, _)| r.start < range.end);
        let mut acc: Option<A::Partial> = None;
        for (_, p) in self.slices.iter().skip(l).take(r.saturating_sub(l)) {
            acc = self.f.combine_opt(acc, p.as_ref());
        }
        // The open slice participates when it overlaps; its tuples are all
        // strictly before any window end being triggered (in-order).
        if self.open_start < range.end && self.open_start >= range.start {
            acc = self.f.combine_opt(acc, self.open_partial.as_ref());
        }
        acc
    }

    fn evict(&mut self, now: Time) {
        let boundary = now.saturating_sub(self.max_extent);
        let k = self.slices.partition_point(|(r, _)| r.end <= boundary);
        self.slices.drain(..k);
    }
}

impl<A: AggregateFunction> WindowAggregator<A> for Pairs<A> {
    fn process(&mut self, ts: Time, value: A::Input, out: &mut Vec<WindowResult<A::Output>>) {
        debug_assert!(!self.started || ts >= self.open_start, "Pairs requires in-order streams");
        if !self.started {
            self.started = true;
            self.open_start = ts;
            self.open_end = self.next_edge(ts);
            self.last_trigger = ts;
            self.next_end = self.next_window_end(ts);
        }
        // On-the-fly slicing: one timestamp comparison per tuple.
        while ts >= self.open_end {
            let closed = Range::new(self.open_start, self.open_end);
            self.slices.push_back((closed, self.open_partial.take()));
            self.open_start = self.open_end;
            self.open_end = self.next_edge(self.open_start);
        }
        // Trigger windows ending in (last_trigger, ts] *before* adding the
        // tuple (windows ending at or before ts never contain it).
        if ts >= self.next_end {
            let mut windows: Vec<(QueryId, Range)> = Vec::new();
            for (id, e) in &self.queries {
                e.ends_in(self.last_trigger, ts, &mut |r| windows.push((*id, r)));
            }
            for (id, r) in windows {
                if let Some(p) = self.aggregate(r) {
                    out.push(WindowResult::new(id, Measure::Time, r, self.f.lower(&p)));
                }
            }
            self.last_trigger = ts;
            self.next_end = self.next_window_end(ts);
            self.evict(ts);
        }
        let lifted = self.f.lift(&value);
        self.open_partial = Some(match self.open_partial.take() {
            None => lifted,
            Some(p) => self.f.combine(p, &lifted),
        });
    }

    fn process_batch(
        &mut self,
        batch: &[(Time, A::Input)],
        out: &mut Vec<WindowResult<A::Output>>,
    ) {
        let mut i = 0;
        while i < batch.len() {
            // Tuples strictly below both the open slice's end and the next
            // window end neither close a slice nor trigger: the whole run
            // folds into the open partial with one combine (associativity).
            let n = if self.started {
                let bound = self.open_end.min(self.next_end);
                in_order_run_len(batch, i, self.open_start, bound, usize::MAX)
            } else {
                0
            };
            if n <= 1 {
                let (ts, value) = &batch[i];
                self.process(*ts, value.clone(), out);
                i += 1;
                continue;
            }
            let run = &batch[i..i + n];
            let mut acc = self.f.lift(&run[0].1);
            for (_, v) in &run[1..] {
                acc = self.f.combine(acc, &self.f.lift(v));
            }
            self.open_partial = Some(match self.open_partial.take() {
                None => acc,
                Some(p) => self.f.combine(p, &acc),
            });
            i += n;
        }
    }

    fn on_watermark(&mut self, _wm: Time, _out: &mut Vec<WindowResult<A::Output>>) {
        // Pairs is in-order only; every tuple is its own watermark.
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.slices.heap_bytes()
            + self.open_partial.as_ref().map_or(0, |p| p.heap_bytes())
    }

    fn name(&self) -> &'static str {
        "Pairs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_core::testsupport::SumI64;

    #[test]
    fn tumbling_matches_expected() {
        let mut p = Pairs::new(SumI64);
        p.add_query(10, 10);
        let mut out = Vec::new();
        for ts in [1, 5, 9, 11, 15, 21] {
            p.process(ts, ts, &mut out);
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value, 15);
        assert_eq!(out[1].value, 26);
    }

    #[test]
    fn sliding_pairs_cut_two_lengths() {
        // l = 10, slide = 4: slice edges at 0,2,4,6,8,10,12,... (starts at
        // multiples of 4, ends at 4k + 10 ≡ 2 mod 4).
        let mut p = Pairs::new(SumI64);
        p.add_query(10, 4);
        let mut out = Vec::new();
        for i in 0..100 {
            p.process(i, 1, &mut out);
        }
        for r in &out {
            let expect = r.range.len().min(r.range.end).max(0);
            assert_eq!(r.value, expect, "window {}", r.range);
        }
        // Eviction keeps the slice count bounded.
        assert!(p.slice_count() < 12, "slices: {}", p.slice_count());
    }

    #[test]
    fn multi_query_edge_union() {
        let mut p = Pairs::new(SumI64);
        p.add_query(10, 10);
        p.add_query(15, 15);
        let mut out = Vec::new();
        for i in 0..60 {
            p.process(i, 1, &mut out);
        }
        for r in &out {
            let expect = r.range.len().min(r.range.end).max(0);
            assert_eq!(r.value, expect, "window {}", r.range);
        }
        // Both queries fire.
        assert!(out.iter().any(|r| r.query == 0));
        assert!(out.iter().any(|r| r.query == 1));
    }
}
