//! Tuple buffer baseline (paper Section 3.1, Table 1 row 1).
//!
//! A sorted ring buffer of raw tuples with **no aggregate sharing**: every
//! window is computed independently by scanning its tuple range. In-order
//! tuples append at the tail; out-of-order tuples require a memory-copying
//! insert in the middle of the buffer — the costs the paper's Figures 9
//! and 12 attribute to this technique.

use std::collections::VecDeque;

use gss_core::{
    AggregateFunction, ContextEdges, Count, HeapSize, Measure, Range, StreamOrder, Time,
    WindowAggregator, WindowFunction, WindowResult, TIME_MIN,
};

use crate::common::QuerySet;

/// Window aggregation over a sorted tuple ring buffer.
pub struct TupleBuffer<A: AggregateFunction> {
    f: A,
    order: StreamOrder,
    allowed_lateness: Time,
    queries: QuerySet,
    /// Tuples sorted by timestamp (stable for ties).
    buffer: VecDeque<(Time, A::Input)>,
    /// Count-measure offset of `buffer[0]`.
    evicted: Count,
    watermark: Time,
    max_ts: Time,
    first_ts: Time,
    scratch: ContextEdges,
}

impl<A: AggregateFunction> TupleBuffer<A> {
    pub fn new(f: A, order: StreamOrder, allowed_lateness: Time) -> Self {
        TupleBuffer {
            f,
            order,
            allowed_lateness,
            queries: QuerySet::new(),
            buffer: VecDeque::new(),
            evicted: 0,
            watermark: TIME_MIN,
            max_ts: TIME_MIN,
            first_ts: TIME_MIN,
            scratch: ContextEdges::new(),
        }
    }

    pub fn add_query(&mut self, w: Box<dyn WindowFunction>) -> gss_core::QueryId {
        self.queries.add(w)
    }

    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Aggregates tuples in `[range.start, range.end)` by a full scan —
    /// the repeated computation that stream slicing avoids.
    fn aggregate_time(&self, range: Range) -> Option<A::Partial> {
        let l = self.buffer.partition_point(|(t, _)| *t < range.start);
        let r = self.buffer.partition_point(|(t, _)| *t < range.end);
        self.f.lift_all(self.buffer.iter().skip(l).take(r - l).map(|(_, v)| v))
    }

    /// Aggregates tuples at absolute counts `[c1, c2)`.
    fn aggregate_count(&self, c1: Count, c2: Count) -> Option<A::Partial> {
        let l = c1.saturating_sub(self.evicted) as usize;
        let r = (c2.saturating_sub(self.evicted) as usize).min(self.buffer.len());
        if l >= r {
            return None;
        }
        self.f.lift_all(self.buffer.iter().skip(l).take(r - l).map(|(_, v)| v))
    }

    fn emit(&mut self, wm: Time, out: &mut Vec<WindowResult<A::Output>>) {
        let count_wm = if self.queries.has_count_measure() {
            if self.order.is_in_order() {
                self.evicted + self.buffer.len() as Count
            } else {
                self.evicted + self.buffer.partition_point(|(t, _)| *t <= wm) as Count
            }
        } else {
            0
        };
        let mut windows: Vec<(gss_core::QueryId, Measure, Range)> = Vec::new();
        self.queries
            .trigger(wm, count_wm, self.first_ts, self.max_ts, |id, m, r| windows.push((id, m, r)));
        for (id, m, r) in windows {
            let p = match m {
                Measure::Time => self.aggregate_time(r),
                Measure::Count => self.aggregate_count(r.start as Count, r.end as Count),
            };
            if let Some(p) = p {
                out.push(WindowResult::new(id, m, r, self.f.lower(&p)));
            }
        }
        self.evict(wm);
    }

    fn emit_updates(&mut self, ts: Time, out: &mut Vec<WindowResult<A::Output>>) {
        let wm = self.watermark;
        let count_pos = self.evicted + self.buffer.partition_point(|(t, _)| *t <= ts) as Count - 1;
        let count_wm = self.evicted + self.buffer.partition_point(|(t, _)| *t <= wm) as Count;
        let mut windows: Vec<(gss_core::QueryId, Measure, Range)> = Vec::new();
        self.queries.containing(ts, count_pos, |id, m, r| windows.push((id, m, r)));
        for (id, m, r) in windows {
            let (p, fresh) = match m {
                Measure::Time => (self.aggregate_time(r), r.end <= wm),
                Measure::Count => (
                    self.aggregate_count(r.start as Count, r.end as Count),
                    (r.end as Count) <= count_wm,
                ),
            };
            if !fresh {
                continue;
            }
            if let Some(p) = p {
                out.push(WindowResult::update(id, m, r, self.f.lower(&p)));
            }
        }
    }

    /// Length of the longest prefix of `batch[start..]` that can be bulk
    /// appended: consecutive in-order tuples that complete no window, so
    /// the per-tuple trigger sweep can run once at the end of the run
    /// (emitting nothing) instead of once per tuple.
    fn run_len(&self, batch: &[(Time, A::Input)], start: usize) -> usize {
        if self.queries.has_context_aware() {
            return 0;
        }
        let mut cap = batch.len() - start;
        let mut bound = gss_core::TIME_MAX;
        if self.order.is_in_order() {
            // The first tuple always sweeps; afterwards the sweep position
            // bounds which window ends can still fire.
            if self.queries.last_trigger_time == TIME_MIN {
                return 0;
            }
            match self.queries.next_time_end_after(self.queries.last_trigger_time) {
                Some(e) => bound = e,
                None => return 0,
            }
            if self.queries.has_count_measure() {
                let c0 = self.evicted + self.buffer.len() as Count;
                match self.queries.next_count_end_after(self.queries.last_trigger_count) {
                    Some(e) if e > c0 + 1 => cap = cap.min((e - 1 - c0) as usize),
                    _ => return 0,
                }
            }
        }
        let mut prev = self.max_ts;
        let mut n = 0;
        while n < cap {
            let ts = batch[start + n].0;
            if ts < prev || ts >= bound {
                break;
            }
            prev = ts;
            n += 1;
        }
        n
    }

    fn evict(&mut self, wm: Time) {
        let lateness = if self.order.is_in_order() { 0 } else { self.allowed_lateness };
        let mut boundary =
            wm.saturating_sub(lateness).saturating_sub(self.queries.max_time_extent());
        for q in self.queries.iter() {
            if let Some(p) = q.window.earliest_pending_start() {
                boundary = boundary.min(p);
            }
        }
        let mut k = self.buffer.partition_point(|(t, _)| *t < boundary);
        if self.queries.has_count_measure() {
            let keep = self.queries.max_count_extent() as usize;
            k = k.min(self.buffer.len().saturating_sub(keep));
        }
        self.buffer.drain(..k);
        self.evicted += k as Count;
    }
}

impl<A: AggregateFunction> WindowAggregator<A> for TupleBuffer<A> {
    fn process(&mut self, ts: Time, value: A::Input, out: &mut Vec<WindowResult<A::Output>>) {
        // Track the minimum event time (not the first arrival): stragglers
        // older than the first arrival still anchor the trigger sweep.
        self.first_ts = if self.first_ts == TIME_MIN { ts } else { self.first_ts.min(ts) };
        let mut scratch = std::mem::take(&mut self.scratch);
        self.queries.notify(ts, &mut scratch);
        self.scratch = scratch;
        if ts >= self.max_ts {
            self.buffer.push_back((ts, value));
            self.max_ts = ts;
            if self.order.is_in_order() {
                self.watermark = ts;
                self.emit(ts, out);
            }
        } else {
            if self.watermark != TIME_MIN && ts < self.watermark - self.allowed_lateness {
                return; // dropped: too late
            }
            // The costly path: shift the tail to make room (sorted insert).
            let pos = self.buffer.partition_point(|(t, _)| *t <= ts);
            self.buffer.insert(pos, (ts, value));
            if self.watermark != TIME_MIN && ts <= self.watermark {
                self.emit_updates(ts, out);
            }
        }
    }

    fn process_batch(
        &mut self,
        batch: &[(Time, A::Input)],
        out: &mut Vec<WindowResult<A::Output>>,
    ) {
        let mut i = 0;
        while i < batch.len() {
            let n = self.run_len(batch, i);
            if n <= 1 {
                let (ts, value) = &batch[i];
                self.process(*ts, value.clone(), out);
                i += 1;
                continue;
            }
            let run = &batch[i..i + n];
            let first = run[0].0;
            let last = run[n - 1].0;
            self.first_ts =
                if self.first_ts == TIME_MIN { first } else { self.first_ts.min(first) };
            self.buffer.extend(run.iter().cloned());
            self.max_ts = last;
            if self.order.is_in_order() {
                // One sweep for the whole run: no window completed inside
                // it (run_len guarantees that), so this emits nothing and
                // only advances trigger bookkeeping and eviction — exactly
                // the net effect of the per-tuple sweeps it replaces.
                self.watermark = last;
                self.emit(last, out);
            }
            i += n;
        }
    }

    fn on_watermark(&mut self, wm: Time, out: &mut Vec<WindowResult<A::Output>>) {
        if wm <= self.watermark {
            return;
        }
        self.watermark = wm;
        self.emit(wm, out);
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.buffer.heap_bytes()
    }

    fn name(&self) -> &'static str {
        "Tuple Buffer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_core::testsupport::{Concat, SumI64};
    use gss_windows::{CountTumblingWindow, SessionWindow, SlidingWindow, TumblingWindow};

    #[test]
    fn tumbling_in_order() {
        let mut tb = TupleBuffer::new(SumI64, StreamOrder::InOrder, 0);
        tb.add_query(Box::new(TumblingWindow::new(10)));
        let mut out = Vec::new();
        for ts in [1, 5, 9, 11, 15, 21] {
            tb.process(ts, ts, &mut out);
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value, 15);
        assert_eq!(out[1].value, 26);
    }

    #[test]
    fn sliding_matches_scan_semantics() {
        let mut tb = TupleBuffer::new(SumI64, StreamOrder::InOrder, 0);
        tb.add_query(Box::new(SlidingWindow::new(10, 4)));
        let mut out = Vec::new();
        for i in 0..50 {
            tb.process(i, 1, &mut out);
        }
        for r in &out {
            assert_eq!(r.value, r.range.len().min(r.range.end).max(0), "window {}", r.range);
        }
    }

    #[test]
    fn ooo_insert_and_update() {
        let mut tb = TupleBuffer::new(SumI64, StreamOrder::OutOfOrder, 100);
        tb.add_query(Box::new(TumblingWindow::new(10)));
        let mut out = Vec::new();
        tb.process(5, 5, &mut out);
        tb.process(15, 15, &mut out);
        tb.on_watermark(10, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, 5);
        out.clear();
        tb.process(7, 7, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].is_update);
        assert_eq!(out[0].value, 12);
    }

    #[test]
    fn non_commutative_scan_preserves_order() {
        let mut tb = TupleBuffer::new(Concat, StreamOrder::OutOfOrder, 1000);
        tb.add_query(Box::new(TumblingWindow::new(100)));
        let mut out = Vec::new();
        tb.process(10, 1, &mut out);
        tb.process(50, 5, &mut out);
        tb.process(30, 3, &mut out);
        tb.on_watermark(100, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, vec![1, 3, 5]);
    }

    #[test]
    fn count_windows_over_buffer() {
        let mut tb = TupleBuffer::new(SumI64, StreamOrder::InOrder, 0);
        tb.add_query(Box::new(CountTumblingWindow::new(3)));
        let mut out = Vec::new();
        for i in 0..10i64 {
            tb.process(i * 2, i, &mut out);
        }
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].value, 1 + 2);
        assert_eq!(out[1].value, 3 + 4 + 5);
        assert_eq!(out[2].value, 6 + 7 + 8);
    }

    #[test]
    fn sessions_supported_via_window_function() {
        let mut tb = TupleBuffer::new(SumI64, StreamOrder::InOrder, 0);
        tb.add_query(Box::new(SessionWindow::new(10)));
        let mut out = Vec::new();
        for (ts, v) in [(0, 1), (4, 2), (30, 5), (60, 9)] {
            tb.process(ts, v, &mut out);
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].range, Range::new(0, 14));
        assert_eq!(out[0].value, 3);
        assert_eq!(out[1].range, Range::new(30, 40));
        assert_eq!(out[1].value, 5);
    }

    #[test]
    fn eviction_bounds_buffer() {
        let mut tb = TupleBuffer::new(SumI64, StreamOrder::InOrder, 0);
        tb.add_query(Box::new(TumblingWindow::new(10)));
        let mut out = Vec::new();
        for i in 0..10_000 {
            tb.process(i, 1, &mut out);
        }
        assert!(tb.len() < 50, "buffer must be evicted: {}", tb.len());
    }

    #[test]
    fn memory_grows_with_tuples() {
        let mut tb = TupleBuffer::new(SumI64, StreamOrder::OutOfOrder, 1_000_000);
        tb.add_query(Box::new(TumblingWindow::new(1_000_000)));
        let m0 = tb.memory_bytes();
        let mut out = Vec::new();
        for i in 0..1000 {
            tb.process(i, 1, &mut out);
        }
        assert!(tb.memory_bytes() > m0 + 1000 * 8);
    }
}
