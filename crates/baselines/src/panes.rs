//! Panes baseline (Li et al., "No pane, no gain" [30]).
//!
//! The earliest slicing technique: a sliding window (`l`, `l_s`) is split
//! into uniform *panes* of length `gcd(l, l_s)`; each window aggregates
//! `l / gcd` panes. For multiple queries the pane size is the gcd across
//! all window parameters — which is panes' weakness: unlike Pairs or
//! general slicing, badly-aligned queries force tiny panes (down to one
//! unit), multiplying the final-aggregation work. In-order, periodic time
//! windows only.

use std::collections::VecDeque;

use gss_core::{
    in_order_run_len, AggregateFunction, HeapSize, Measure, QueryId, Range, Time, WindowAggregator,
    WindowResult, TIME_MAX, TIME_MIN,
};
use gss_windows::PeriodicEdges;

fn gcd(a: i64, b: i64) -> i64 {
    if b == 0 {
        a.abs()
    } else {
        gcd(b, a % b)
    }
}

/// Uniform-pane slicing for periodic in-order window aggregation.
pub struct Panes<A: AggregateFunction> {
    f: A,
    queries: Vec<(QueryId, PeriodicEdges)>,
    next_id: QueryId,
    /// Pane length: gcd over all window lengths and slides.
    pane: i64,
    /// Closed panes (start, partial); pane `i` covers
    /// `[start, start + pane)`.
    panes: VecDeque<(Time, Option<A::Partial>)>,
    open_start: Time,
    open_partial: Option<A::Partial>,
    last_trigger: Time,
    next_end: Time,
    started: bool,
    max_extent: i64,
}

impl<A: AggregateFunction> Panes<A> {
    pub fn new(f: A) -> Self {
        Panes {
            f,
            queries: Vec::new(),
            next_id: 0,
            pane: 0,
            panes: VecDeque::new(),
            open_start: TIME_MIN,
            open_partial: None,
            last_trigger: TIME_MIN,
            next_end: TIME_MAX,
            started: false,
            max_extent: 0,
        }
    }

    /// Registers a periodic window; recomputes the global pane size.
    /// Must be called before the first tuple (panes are fixed-size).
    pub fn add_query(&mut self, length: i64, slide: i64) -> QueryId {
        assert!(!self.started, "Panes queries must be registered before data");
        let id = self.next_id;
        self.next_id += 1;
        self.queries.push((id, PeriodicEdges::new(length, slide)));
        self.max_extent = self.max_extent.max(length);
        let g = gcd(length, slide);
        self.pane = if self.pane == 0 { g } else { gcd(self.pane, g) };
        id
    }

    /// The computed pane length (for tests).
    pub fn pane_length(&self) -> i64 {
        self.pane
    }

    pub fn pane_count(&self) -> usize {
        self.panes.len() + 1
    }

    fn next_window_end(&self, ts: Time) -> Time {
        self.queries.iter().map(|(_, e)| e.next_end(ts)).min().unwrap_or(TIME_MAX)
    }

    /// Window aggregate = ⊕ of the panes it covers (always aligned: every
    /// window edge is a multiple of the pane size).
    fn aggregate(&self, range: Range) -> Option<A::Partial> {
        let mut acc: Option<A::Partial> = None;
        for (start, p) in &self.panes {
            if *start >= range.start && *start < range.end {
                acc = self.f.combine_opt(acc, p.as_ref());
            }
        }
        if self.open_start >= range.start && self.open_start < range.end {
            acc = self.f.combine_opt(acc, self.open_partial.as_ref());
        }
        acc
    }

    fn evict(&mut self, now: Time) {
        let boundary = now.saturating_sub(self.max_extent).saturating_sub(self.pane);
        while self.panes.front().is_some_and(|(s, _)| *s + self.pane <= boundary) {
            self.panes.pop_front();
        }
    }
}

impl<A: AggregateFunction> WindowAggregator<A> for Panes<A> {
    fn process(&mut self, ts: Time, value: A::Input, out: &mut Vec<WindowResult<A::Output>>) {
        debug_assert!(!self.started || ts >= self.open_start, "Panes requires in-order streams");
        if !self.started {
            assert!(self.pane > 0, "register queries before data");
            self.started = true;
            self.open_start = ts.div_euclid(self.pane) * self.pane;
            self.last_trigger = ts;
            self.next_end = self.next_window_end(ts);
        }
        // Close every pane the stream has passed.
        while ts >= self.open_start + self.pane {
            self.panes.push_back((self.open_start, self.open_partial.take()));
            self.open_start += self.pane;
        }
        // Trigger before inserting (windows ending at or before ts never
        // contain the tuple).
        if ts >= self.next_end {
            let mut windows: Vec<(QueryId, Range)> = Vec::new();
            for (id, e) in &self.queries {
                e.ends_in(self.last_trigger, ts, &mut |r| windows.push((*id, r)));
            }
            for (id, r) in windows {
                if let Some(p) = self.aggregate(r) {
                    out.push(WindowResult::new(id, Measure::Time, r, self.f.lower(&p)));
                }
            }
            self.last_trigger = ts;
            self.next_end = self.next_window_end(ts);
            self.evict(ts);
        }
        let lifted = self.f.lift(&value);
        self.open_partial = Some(match self.open_partial.take() {
            None => lifted,
            Some(p) => self.f.combine(p, &lifted),
        });
    }

    fn process_batch(
        &mut self,
        batch: &[(Time, A::Input)],
        out: &mut Vec<WindowResult<A::Output>>,
    ) {
        let mut i = 0;
        while i < batch.len() {
            // Tuples strictly inside the open pane and below the next window
            // end neither close a pane nor trigger: one pane touch per run.
            let n = if self.started {
                let bound = (self.open_start + self.pane).min(self.next_end);
                in_order_run_len(batch, i, self.open_start, bound, usize::MAX)
            } else {
                0
            };
            if n <= 1 {
                let (ts, value) = &batch[i];
                self.process(*ts, value.clone(), out);
                i += 1;
                continue;
            }
            let run = &batch[i..i + n];
            let mut acc = self.f.lift(&run[0].1);
            for (_, v) in &run[1..] {
                acc = self.f.combine(acc, &self.f.lift(v));
            }
            self.open_partial = Some(match self.open_partial.take() {
                None => acc,
                Some(p) => self.f.combine(p, &acc),
            });
            i += n;
        }
    }

    fn on_watermark(&mut self, _wm: Time, _out: &mut Vec<WindowResult<A::Output>>) {
        // In-order only; every tuple is its own watermark.
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.panes.heap_bytes()
            + self.open_partial.as_ref().map_or(0, |p| p.heap_bytes())
    }

    fn name(&self) -> &'static str {
        "Panes"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_core::testsupport::SumI64;

    #[test]
    fn gcd_pane_size() {
        let mut p = Panes::new(SumI64);
        p.add_query(10, 4);
        assert_eq!(p.pane_length(), 2);
        p.add_query(15, 15);
        assert_eq!(p.pane_length(), 1);
    }

    #[test]
    fn tumbling_results_match() {
        let mut p = Panes::new(SumI64);
        p.add_query(10, 10);
        let mut out = Vec::new();
        for ts in [1, 5, 9, 11, 15, 21] {
            p.process(ts, ts, &mut out);
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value, 15);
        assert_eq!(out[1].value, 26);
    }

    #[test]
    fn sliding_results_match_scan() {
        let mut p = Panes::new(SumI64);
        p.add_query(10, 4);
        let mut out = Vec::new();
        for i in 0..100 {
            p.process(i, 1, &mut out);
        }
        for r in &out {
            let expect = r.range.len().min(r.range.end).max(0);
            assert_eq!(r.value, expect, "window {}", r.range);
        }
        // Eviction bounds pane count: window 10 / pane 2 + slack.
        assert!(p.pane_count() < 12, "panes: {}", p.pane_count());
    }

    #[test]
    fn misaligned_queries_degrade_to_unit_panes() {
        let mut p = Panes::new(SumI64);
        p.add_query(10, 3);
        p.add_query(7, 7);
        assert_eq!(p.pane_length(), 1);
        let mut out = Vec::new();
        for i in 0..50 {
            p.process(i, 1, &mut out);
        }
        for r in &out {
            let expect = r.range.len().min(r.range.end).max(0);
            assert_eq!(r.value, expect, "window {}", r.range);
        }
    }

    #[test]
    #[should_panic(expected = "before data")]
    fn late_registration_rejected() {
        let mut p = Panes::new(SumI64);
        p.add_query(10, 10);
        let mut out = Vec::new();
        p.process(1, 1, &mut out);
        p.add_query(20, 20);
    }
}
