//! Two-Stacks FIFO aggregation (the classic queue-from-two-stacks trick,
//! the basis of Tangwongsan et al.'s DABA line of work [42, 43]).
//!
//! A sliding-window aggregator over a FIFO stream with **amortized O(1)**
//! inserts/evicts and **O(1)** queries, for any associative function — no
//! invertibility needed. It serves one sliding window per instance
//! (no aggregate sharing), which is exactly the restriction the paper's
//! related work notes and general slicing removes.
//!
//! The structure: a *back* stack accumulates new tuples with a running
//! prefix aggregate; a *front* stack holds suffix aggregates of older
//! tuples. The window aggregate is `front.top ⊕ back.agg`. When the front
//! empties, the back stack is flipped into it (the amortized step).

use std::collections::VecDeque;

use gss_core::{
    AggregateFunction, HeapSize, Measure, Range, Time, WindowAggregator, WindowResult, TIME_MAX,
    TIME_MIN,
};
use gss_windows::PeriodicEdges;

/// FIFO aggregation queue with amortized O(1) operations.
pub struct FifoAggregator<A: AggregateFunction> {
    f: A,
    /// Front: (timestamp, suffix aggregate from this element to the front
    /// end of the original back stack).
    front: Vec<(Time, A::Partial)>,
    /// Back: raw lifted values with timestamps.
    back: VecDeque<(Time, A::Partial)>,
    /// Running aggregate of the whole back stack.
    back_agg: Option<A::Partial>,
}

impl<A: AggregateFunction> FifoAggregator<A> {
    pub fn new(f: A) -> Self {
        FifoAggregator { f, front: Vec::new(), back: VecDeque::new(), back_agg: None }
    }

    pub fn len(&self) -> usize {
        self.front.len() + self.back.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Timestamp of the oldest element, if any.
    pub fn front_ts(&self) -> Option<Time> {
        self.front.last().map(|(t, _)| *t).or_else(|| self.back.front().map(|(t, _)| *t))
    }

    /// Appends a new element (FIFO order: timestamps must not decrease).
    pub fn push(&mut self, ts: Time, value: &A::Input) {
        let lifted = self.f.lift(value);
        self.back_agg = Some(match self.back_agg.take() {
            None => lifted.clone(),
            Some(a) => self.f.combine(a, &lifted),
        });
        self.back.push_back((ts, lifted));
    }

    /// Removes the oldest element. Amortized O(1): flips the back stack
    /// into suffix aggregates when the front runs dry.
    pub fn pop(&mut self) -> Option<Time> {
        if self.front.is_empty() {
            // Flip: build suffix aggregates in reverse order so that
            // front.last() aggregates the whole former back content.
            let mut suffix: Option<A::Partial> = None;
            while let Some((ts, lifted)) = self.back.pop_back() {
                let s = match suffix.take() {
                    None => lifted,
                    // `lifted` precedes the current suffix in stream order.
                    Some(s) => self.f.combine(lifted, &s),
                };
                self.front.push((ts, s.clone()));
                suffix = Some(s);
            }
            self.back_agg = None;
        }
        self.front.pop().map(|(ts, _)| ts)
    }

    /// The aggregate of the whole queue in FIFO order: O(1) combines.
    pub fn query(&self) -> Option<A::Partial> {
        let front = self.front.last().map(|(_, p)| p.clone());
        self.f.combine_opt(front, self.back_agg.as_ref())
    }
}

impl<A: AggregateFunction> HeapSize for FifoAggregator<A> {
    fn heap_bytes(&self) -> usize {
        self.front.heap_bytes()
            + self.back.heap_bytes()
            + self.back_agg.as_ref().map_or(0, |p| p.heap_bytes())
    }
}

/// A single sliding time window served by a [`FifoAggregator`] — the
/// specialized single-query competitor from the related work.
pub struct TwoStacksSliding<A: AggregateFunction> {
    fifo: FifoAggregator<A>,
    f: A,
    edges: PeriodicEdges,
    last_trigger: Time,
    next_end: Time,
    started: bool,
}

impl<A: AggregateFunction> TwoStacksSliding<A> {
    pub fn new(f: A, length: i64, slide: i64) -> Self {
        TwoStacksSliding {
            fifo: FifoAggregator::new(f.clone()),
            f,
            edges: PeriodicEdges::new(length, slide),
            last_trigger: TIME_MIN,
            next_end: TIME_MAX,
            started: false,
        }
    }
}

impl<A: AggregateFunction> WindowAggregator<A> for TwoStacksSliding<A> {
    fn process(&mut self, ts: Time, value: A::Input, out: &mut Vec<WindowResult<A::Output>>) {
        debug_assert!(
            self.fifo.front_ts().is_none_or(|t| ts >= t),
            "TwoStacks requires in-order streams"
        );
        if !self.started {
            self.started = true;
            self.last_trigger = ts;
            self.next_end = self.edges.next_end(ts);
        }
        // Trigger every window ending in (last_trigger, ts] before adding
        // the tuple; for each, evict elements before the window start and
        // read the queue aggregate.
        if ts >= self.next_end {
            let mut ends: Vec<Range> = Vec::new();
            self.edges.ends_in(self.last_trigger, ts, &mut |r| ends.push(r));
            for r in ends {
                while self.fifo.front_ts().is_some_and(|t| t < r.start) {
                    self.fifo.pop();
                }
                if let Some(p) = self.fifo.query() {
                    out.push(WindowResult::new(0, Measure::Time, r, self.f.lower(&p)));
                }
            }
            self.last_trigger = ts;
            self.next_end = self.edges.next_end(ts);
        }
        self.fifo.push(ts, &value);
    }

    fn on_watermark(&mut self, _wm: Time, _out: &mut Vec<WindowResult<A::Output>>) {}

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.fifo.heap_bytes()
    }

    fn name(&self) -> &'static str {
        "Two-Stacks"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_core::testsupport::{Concat, SumI64};

    #[test]
    fn fifo_query_matches_running_content() {
        let mut q = FifoAggregator::new(SumI64);
        assert_eq!(q.query(), None);
        q.push(1, &10);
        q.push(2, &20);
        q.push(3, &30);
        assert_eq!(q.query(), Some(60));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.query(), Some(50));
        q.push(4, &40);
        assert_eq!(q.query(), Some(90));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.query(), Some(40));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.query(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_preserves_order_for_non_commutative() {
        let mut q = FifoAggregator::new(Concat);
        for (ts, v) in [(1, 1), (2, 2), (3, 3), (4, 4)] {
            q.push(ts, &v);
        }
        q.pop();
        q.push(5, &5);
        // Content 2,3,4,5 in stream order despite the flip.
        assert_eq!(q.query(), Some(vec![2, 3, 4, 5]));
    }

    #[test]
    fn fifo_randomized_against_model() {
        let mut q = FifoAggregator::new(Concat);
        let mut model: std::collections::VecDeque<i64> = Default::default();
        let mut ts = 0i64;
        for step in 0..2_000 {
            if step % 3 != 0 || model.is_empty() {
                ts += 1;
                q.push(ts, &ts);
                model.push_back(ts);
            } else {
                q.pop();
                model.pop_front();
            }
            let expect: Vec<i64> = model.iter().copied().collect();
            let got = q.query().unwrap_or_default();
            assert_eq!(got, expect, "step {step}");
            assert_eq!(q.len(), model.len());
        }
    }

    #[test]
    fn sliding_window_matches_scan() {
        let mut ts2 = TwoStacksSliding::new(SumI64, 10, 4);
        let mut out = Vec::new();
        for i in 0..100 {
            ts2.process(i, 1, &mut out);
        }
        assert!(out.len() > 20);
        for r in &out {
            let expect = r.range.len().min(r.range.end).max(0);
            assert_eq!(r.value, expect, "window {}", r.range);
        }
    }

    #[test]
    fn works_without_invertibility() {
        use gss_core::testsupport::SumNoInvert;
        let mut ts2 = TwoStacksSliding::new(SumNoInvert, 20, 5);
        let mut out = Vec::new();
        for i in 0..200 {
            ts2.process(i, i % 7, &mut out);
        }
        for r in &out {
            let expect: i64 = (r.range.start.max(0)..r.range.end.min(200)).map(|i| i % 7).sum();
            assert_eq!(r.value, expect, "window {}", r.range);
        }
    }
}
