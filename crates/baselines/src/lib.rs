//! # gss-baselines
//!
//! The alternative window-aggregation techniques the paper compares
//! against (Section 3, Table 1, Section 6), implemented from scratch
//! behind the same [`gss_core::WindowAggregator`] facade as the general
//! slicing operator:
//!
//! * [`TupleBuffer`] — sorted ring buffer, no aggregate sharing (row 1);
//! * [`AggregateTree`] — FlatFAT over tuples (row 2, FlatFAT [42]);
//! * [`Buckets`] — bucket per window, WID-style (rows 3–4, Flink's
//!   operator), with [`BucketMode::Aggregate`] and [`BucketMode::Tuple`];
//! * [`Pairs`] — specialized slicing for periodic in-order windows [28];
//! * [`Panes`] — uniform gcd-sized panes, the earliest slicing [30];
//! * [`Cutty`] — slicing for user-defined context-free windows, eager
//!   aggregation, in-order only [10];
//! * [`TwoStacksSliding`], [`DabaLiteSliding`] and [`SlickDequeSliding`]
//!   — the related-work single-query sliding aggregators (amortized-O(1)
//!   FIFO aggregation [42], its worst-case-O(1) de-amortization DABA
//!   Lite [43], and monotonic-deque extremum tracking [40]).
//!
//! All techniques reuse the same `WindowFunction` query definitions, so a
//! benchmark swaps the technique without touching window semantics.

pub mod aggregate_tree;
pub mod buckets;
pub mod common;
pub mod cutty;
pub mod daba;
pub mod pairs;
pub mod panes;
pub mod slick_deque;
pub mod tuple_buffer;
pub mod two_stacks;

pub use aggregate_tree::AggregateTree;
pub use buckets::{BucketMode, Buckets};
pub use common::QuerySet;
pub use cutty::Cutty;
pub use daba::{DabaLite, DabaLiteSliding};
pub use pairs::Pairs;
pub use panes::Panes;
pub use slick_deque::{MonotonicDeque, SlickDequeSliding};
pub use tuple_buffer::TupleBuffer;
pub use two_stacks::{FifoAggregator, TwoStacksSliding};
