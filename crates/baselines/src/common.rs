//! Shared query bookkeeping for the baseline techniques.
//!
//! Every baseline manages the same set of [`gss_core::WindowFunction`]
//! queries as the general slicing operator, so comparisons across
//! techniques exercise identical window semantics.

use gss_core::{Count, Measure, Query, QueryId, Range, Time, WindowFunction, TIME_MIN};

/// Query set plus trigger bookkeeping shared by all baselines.
pub struct QuerySet {
    queries: Vec<Query>,
    next_id: QueryId,
    pub last_trigger_time: Time,
    pub last_trigger_count: Count,
}

impl Default for QuerySet {
    fn default() -> Self {
        Self::new()
    }
}

impl QuerySet {
    pub fn new() -> Self {
        QuerySet {
            queries: Vec::new(),
            next_id: 0,
            last_trigger_time: TIME_MIN,
            last_trigger_count: 0,
        }
    }

    pub fn add(&mut self, window: Box<dyn WindowFunction>) -> QueryId {
        let id = self.next_id;
        self.next_id += 1;
        self.queries.push(Query::new(id, window));
        id
    }

    pub fn remove(&mut self, id: QueryId) -> bool {
        let before = self.queries.len();
        self.queries.retain(|q| q.id != id);
        self.queries.len() != before
    }

    pub fn iter(&self) -> impl Iterator<Item = &Query> {
        self.queries.iter()
    }

    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Query> {
        self.queries.iter_mut()
    }

    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    pub fn has_count_measure(&self) -> bool {
        self.queries.iter().any(|q| q.window.measure() == Measure::Count)
    }

    pub fn has_context_aware(&self) -> bool {
        self.queries.iter().any(|q| q.window.context().is_context_aware())
    }

    /// Longest extent among time-measure queries.
    pub fn max_time_extent(&self) -> i64 {
        self.queries
            .iter()
            .filter(|q| q.window.measure() == Measure::Time)
            .map(|q| q.window.max_extent())
            .max()
            .unwrap_or(0)
    }

    /// Longest extent among count-measure queries.
    pub fn max_count_extent(&self) -> i64 {
        self.queries
            .iter()
            .filter(|q| q.window.measure() == Measure::Count)
            .map(|q| q.window.max_extent())
            .max()
            .unwrap_or(0)
    }

    /// Earliest time at which a time-measure window can end strictly after
    /// `t`. `None` when some query cannot tell (unknown window ends force
    /// per-tuple sweeps); `TIME_MAX` when no time-measure query exists.
    pub fn next_time_end_after(&self, t: Time) -> Option<Time> {
        let mut next = gss_core::TIME_MAX;
        for q in self.queries.iter().filter(|q| q.window.measure() == Measure::Time) {
            match q.window.next_window_end(t) {
                Some(e) => next = next.min(e),
                None => return None,
            }
        }
        Some(next)
    }

    /// Earliest count at which a count-measure window can end strictly
    /// after count position `c`. Same conventions as
    /// [`next_time_end_after`](QuerySet::next_time_end_after).
    pub fn next_count_end_after(&self, c: Count) -> Option<Count> {
        let mut next = Count::MAX;
        for q in self.queries.iter().filter(|q| q.window.measure() == Measure::Count) {
            match q.window.next_window_end(c as Time) {
                Some(e) => next = next.min(e as Count),
                None => return None,
            }
        }
        Some(next)
    }

    /// Earliest window edge — start or end — strictly after `t` among
    /// time-measure queries: the set of windows containing a timestamp is
    /// constant on `[t, edge)`. `None` when some query cannot tell.
    pub fn next_time_edge_after(&self, t: Time) -> Option<Time> {
        let mut next = gss_core::TIME_MAX;
        for q in self.queries.iter().filter(|q| q.window.measure() == Measure::Time) {
            match q.window.next_edge(t) {
                Some(e) => next = next.min(e),
                None => return None,
            }
        }
        Some(next)
    }

    /// Lets context-aware queries observe a tuple (edge changes are
    /// irrelevant to non-slicing baselines and discarded).
    pub fn notify(&mut self, ts: Time, scratch: &mut gss_core::ContextEdges) {
        for q in &mut self.queries {
            if q.window.context().is_context_aware() {
                scratch.clear();
                q.window.notify_context(ts, scratch);
            }
        }
    }

    /// Sweeps all queries for windows completing in `(last_trigger, wm]` /
    /// `(last_count, count_wm]`, invoking `f(query, measure, range)` for
    /// each. Advances the bookkeeping. `max_ts` is the highest event time
    /// seen — the sweep clamps to `max_ts + max_extent` so a flush
    /// watermark cannot enumerate empty windows across the time axis.
    pub fn trigger(
        &mut self,
        wm: Time,
        count_wm: Count,
        first_data: Time,
        max_ts: Time,
        mut f: impl FnMut(QueryId, Measure, Range),
    ) {
        if max_ts == TIME_MIN {
            return;
        }
        let wm = wm.min(max_ts.saturating_add(self.max_time_extent()).saturating_add(1));
        let time_prev = if self.last_trigger_time == TIME_MIN {
            first_data.min(wm)
        } else {
            self.last_trigger_time
        };
        let count_prev = self.last_trigger_count;
        for q in &mut self.queries {
            let id = q.id;
            match q.window.measure() {
                Measure::Time => {
                    q.window.trigger_windows(time_prev, wm, &mut |r| f(id, Measure::Time, r));
                }
                Measure::Count => {
                    q.window.trigger_windows(count_prev as Time, count_wm as Time, &mut |r| {
                        f(id, Measure::Count, r)
                    });
                }
            }
        }
        self.last_trigger_time = self.last_trigger_time.max(wm);
        self.last_trigger_count = self.last_trigger_count.max(count_wm);
    }

    /// Enumerates all currently known windows containing a position, per
    /// query: `f(query, measure, range)`.
    pub fn containing(
        &self,
        ts: Time,
        count_pos: Count,
        mut f: impl FnMut(QueryId, Measure, Range),
    ) {
        for q in &self.queries {
            let id = q.id;
            match q.window.measure() {
                Measure::Time => {
                    q.window.windows_containing(ts, &mut |r| f(id, Measure::Time, r));
                }
                Measure::Count => {
                    q.window
                        .windows_containing(count_pos as Time, &mut |r| f(id, Measure::Count, r));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_windows::{SessionWindow, TumblingWindow};

    #[test]
    fn add_remove_and_ids() {
        let mut qs = QuerySet::new();
        let a = qs.add(Box::new(TumblingWindow::new(10)));
        let b = qs.add(Box::new(TumblingWindow::new(20)));
        assert_ne!(a, b);
        assert!(qs.remove(a));
        assert!(!qs.remove(a));
        assert_eq!(qs.iter().count(), 1);
    }

    #[test]
    fn trigger_sweeps_all_queries() {
        let mut qs = QuerySet::new();
        qs.add(Box::new(TumblingWindow::new(10)));
        qs.add(Box::new(TumblingWindow::new(5)));
        let mut got = Vec::new();
        qs.trigger(20, 0, 0, 20, |id, _, r| got.push((id, r)));
        // Tumbling 10: [0,10), [10,20). Tumbling 5: [0,5)..[15,20).
        assert_eq!(got.iter().filter(|(id, _)| *id == 0).count(), 2);
        assert_eq!(got.iter().filter(|(id, _)| *id == 1).count(), 4);
        // Second sweep starts where the first ended.
        got.clear();
        qs.trigger(25, 0, 0, 25, |id, _, r| got.push((id, r)));
        assert_eq!(got.len(), 1); // only tumbling-5 [20, 25)
    }

    #[test]
    fn extents_and_flags() {
        let mut qs = QuerySet::new();
        qs.add(Box::new(TumblingWindow::new(10)));
        assert!(!qs.has_context_aware());
        qs.add(Box::new(SessionWindow::new(7)));
        assert!(qs.has_context_aware());
        assert!(qs.max_time_extent() >= 10);
    }
}
