//! Aggregate tree baseline: FlatFAT over individual tuples (paper Section
//! 3.2, Table 1 row 2).
//!
//! Leaves are lifted tuples, inner nodes combine children, so final window
//! aggregates need only `O(log n)` combine steps — low latency. The price:
//! every in-order tuple updates `log n` tree nodes, and an out-of-order
//! tuple inserts a leaf in the middle, shifting the tail and recomputing
//! inner nodes (`O(n)`) — the "rebalancing" cost the paper measures in
//! Figures 9 and 12.

use std::collections::VecDeque;

use gss_core::{
    in_order_run_len, AggregateFunction, ContextEdges, Count, FlatFat, HeapSize, Measure, Range,
    StreamOrder, Time, WindowAggregator, WindowFunction, WindowResult, TIME_MAX, TIME_MIN,
};

use crate::common::QuerySet;

/// Window aggregation over a FlatFAT tree of tuples.
pub struct AggregateTree<A: AggregateFunction> {
    f: A,
    order: StreamOrder,
    allowed_lateness: Time,
    queries: QuerySet,
    /// Leaf `i` = lift(tuple `i`), tuples in event-time order.
    tree: FlatFat<A>,
    /// Leaf timestamps, parallel to the tree's leaves.
    times: VecDeque<Time>,
    evicted: Count,
    watermark: Time,
    max_ts: Time,
    first_ts: Time,
    scratch: ContextEdges,
}

impl<A: AggregateFunction> AggregateTree<A> {
    pub fn new(f: A, order: StreamOrder, allowed_lateness: Time) -> Self {
        AggregateTree {
            tree: FlatFat::new(f.clone()),
            f,
            order,
            allowed_lateness,
            queries: QuerySet::new(),
            times: VecDeque::new(),
            evicted: 0,
            watermark: TIME_MIN,
            max_ts: TIME_MIN,
            first_ts: TIME_MIN,
            scratch: ContextEdges::new(),
        }
    }

    pub fn add_query(&mut self, w: Box<dyn WindowFunction>) -> gss_core::QueryId {
        self.queries.add(w)
    }

    pub fn len(&self) -> usize {
        self.times.len()
    }

    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    fn aggregate_time(&self, range: Range) -> Option<A::Partial> {
        let l = self.times.partition_point(|t| *t < range.start);
        let r = self.times.partition_point(|t| *t < range.end);
        if l >= r {
            None
        } else {
            self.tree.query(l, r)
        }
    }

    fn aggregate_count(&self, c1: Count, c2: Count) -> Option<A::Partial> {
        let l = c1.saturating_sub(self.evicted) as usize;
        let r = (c2.saturating_sub(self.evicted) as usize).min(self.times.len());
        if l >= r {
            None
        } else {
            self.tree.query(l, r)
        }
    }

    fn emit(&mut self, wm: Time, out: &mut Vec<WindowResult<A::Output>>) {
        let count_wm = if self.queries.has_count_measure() {
            if self.order.is_in_order() {
                self.evicted + self.times.len() as Count
            } else {
                self.evicted + self.times.partition_point(|t| *t <= wm) as Count
            }
        } else {
            0
        };
        let mut windows: Vec<(gss_core::QueryId, Measure, Range)> = Vec::new();
        self.queries
            .trigger(wm, count_wm, self.first_ts, self.max_ts, |id, m, r| windows.push((id, m, r)));
        for (id, m, r) in windows {
            let p = match m {
                Measure::Time => self.aggregate_time(r),
                Measure::Count => self.aggregate_count(r.start as Count, r.end as Count),
            };
            if let Some(p) = p {
                out.push(WindowResult::new(id, m, r, self.f.lower(&p)));
            }
        }
        self.evict(wm);
    }

    fn emit_updates(&mut self, ts: Time, out: &mut Vec<WindowResult<A::Output>>) {
        let wm = self.watermark;
        let count_pos = self.evicted + self.times.partition_point(|t| *t <= ts) as Count - 1;
        let count_wm = self.evicted + self.times.partition_point(|t| *t <= wm) as Count;
        let mut windows: Vec<(gss_core::QueryId, Measure, Range)> = Vec::new();
        self.queries.containing(ts, count_pos, |id, m, r| windows.push((id, m, r)));
        for (id, m, r) in windows {
            let fresh = match m {
                Measure::Time => r.end <= wm,
                Measure::Count => (r.end as Count) <= count_wm,
            };
            if !fresh {
                continue;
            }
            let p = match m {
                Measure::Time => self.aggregate_time(r),
                Measure::Count => self.aggregate_count(r.start as Count, r.end as Count),
            };
            if let Some(p) = p {
                out.push(WindowResult::update(id, m, r, self.f.lower(&p)));
            }
        }
    }

    /// Longest prefix of `batch[start..]` that can be bulk-appended:
    /// in-order appends (`ts >= max_ts`) with no window end — time or
    /// count — inside the swept interval, so one deferred trigger sweep at
    /// the run's last tuple emits exactly what the per-tuple sweeps would
    /// (nothing) while advancing the same bookkeeping. On out-of-order
    /// streams appends never emit, so any in-order stretch qualifies.
    fn append_run_len(&self, batch: &[(Time, A::Input)], start: usize) -> usize {
        if self.first_ts == TIME_MIN || self.queries.has_context_aware() {
            return 0; // first tuple initializes; notify() is per-tuple
        }
        let (bound, cap) = if self.order.is_in_order() {
            let anchor = if self.queries.last_trigger_time == TIME_MIN {
                self.first_ts
            } else {
                self.queries.last_trigger_time
            };
            let Some(next_t) = self.queries.next_time_end_after(anchor) else {
                return 0;
            };
            let cap = if self.queries.has_count_measure() {
                let c0 = self.evicted + self.times.len() as Count;
                let Some(next_c) =
                    self.queries.next_count_end_after(self.queries.last_trigger_count)
                else {
                    return 0;
                };
                next_c.saturating_sub(c0 + 1) as usize
            } else {
                usize::MAX
            };
            (next_t, cap)
        } else {
            (TIME_MAX, usize::MAX)
        };
        in_order_run_len(batch, start, self.max_ts, bound, cap)
    }

    fn evict(&mut self, wm: Time) {
        let lateness = if self.order.is_in_order() { 0 } else { self.allowed_lateness };
        let mut boundary =
            wm.saturating_sub(lateness).saturating_sub(self.queries.max_time_extent());
        for q in self.queries.iter() {
            if let Some(p) = q.window.earliest_pending_start() {
                boundary = boundary.min(p);
            }
        }
        let mut k = self.times.partition_point(|t| *t < boundary);
        if self.queries.has_count_measure() {
            let keep = self.queries.max_count_extent() as usize;
            k = k.min(self.times.len().saturating_sub(keep));
        }
        if k > 0 {
            self.times.drain(..k);
            self.tree.remove_prefix(k);
            self.evicted += k as Count;
        }
    }
}

impl<A: AggregateFunction> WindowAggregator<A> for AggregateTree<A> {
    fn process(&mut self, ts: Time, value: A::Input, out: &mut Vec<WindowResult<A::Output>>) {
        // Track the minimum event time (not the first arrival): stragglers
        // older than the first arrival still anchor the trigger sweep.
        self.first_ts = if self.first_ts == TIME_MIN { ts } else { self.first_ts.min(ts) };
        let mut scratch = std::mem::take(&mut self.scratch);
        self.queries.notify(ts, &mut scratch);
        self.scratch = scratch;
        let lifted = self.f.lift(&value);
        if ts >= self.max_ts {
            // In-order append: O(log n) ancestor updates.
            self.times.push_back(ts);
            self.tree.push(Some(lifted));
            self.max_ts = ts;
            if self.order.is_in_order() {
                self.watermark = ts;
                self.emit(ts, out);
            }
        } else {
            if self.watermark != TIME_MIN && ts < self.watermark - self.allowed_lateness {
                return;
            }
            // The expensive path: leaf insert in the middle shifts the tail
            // and rebuilds inner nodes.
            let pos = self.times.partition_point(|t| *t <= ts);
            self.times.insert(pos, ts);
            self.tree.insert(pos, Some(lifted));
            if self.watermark != TIME_MIN && ts <= self.watermark {
                self.emit_updates(ts, out);
            }
        }
    }

    fn process_batch(
        &mut self,
        batch: &[(Time, A::Input)],
        out: &mut Vec<WindowResult<A::Output>>,
    ) {
        let mut i = 0;
        while i < batch.len() {
            let n = self.append_run_len(batch, i);
            if n <= 1 {
                let (ts, value) = &batch[i];
                self.process(*ts, value.clone(), out);
                i += 1;
                continue;
            }
            // One tree touch per run: deferred leaf appends, one repair.
            let run = &batch[i..i + n];
            for (ts, v) in run {
                self.times.push_back(*ts);
                self.tree.push_deferred(Some(self.f.lift(v)));
            }
            self.tree.repair_dirty();
            self.max_ts = run[n - 1].0;
            if self.order.is_in_order() {
                // No window ends inside the run (append_run_len's bound), so
                // this emits nothing — it advances trigger bookkeeping and
                // evicts exactly as the per-tuple sweeps would have.
                self.watermark = self.max_ts;
                self.emit(self.max_ts, out);
            }
            i += n;
        }
    }

    fn on_watermark(&mut self, wm: Time, out: &mut Vec<WindowResult<A::Output>>) {
        if wm <= self.watermark {
            return;
        }
        self.watermark = wm;
        self.emit(wm, out);
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.tree.heap_bytes() + self.times.heap_bytes()
    }

    fn name(&self) -> &'static str {
        "Aggregate Tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_core::testsupport::{Concat, SumI64};
    use gss_windows::{SlidingWindow, TumblingWindow};

    #[test]
    fn tumbling_in_order() {
        let mut at = AggregateTree::new(SumI64, StreamOrder::InOrder, 0);
        at.add_query(Box::new(TumblingWindow::new(10)));
        let mut out = Vec::new();
        for ts in [1, 5, 9, 11, 15, 21] {
            at.process(ts, ts, &mut out);
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value, 15);
        assert_eq!(out[1].value, 26);
    }

    #[test]
    fn sliding_overlap_shares_tree() {
        let mut at = AggregateTree::new(SumI64, StreamOrder::InOrder, 0);
        at.add_query(Box::new(SlidingWindow::new(10, 5)));
        let mut out = Vec::new();
        for i in 0..40 {
            at.process(i, 1, &mut out);
        }
        for r in &out {
            let expect = r.range.len().min(r.range.end).max(0);
            assert_eq!(r.value, expect, "window {}", r.range);
        }
    }

    #[test]
    fn ooo_leaf_insert_keeps_order() {
        let mut at = AggregateTree::new(Concat, StreamOrder::OutOfOrder, 1000);
        at.add_query(Box::new(TumblingWindow::new(100)));
        let mut out = Vec::new();
        at.process(10, 1, &mut out);
        at.process(50, 5, &mut out);
        at.process(30, 3, &mut out);
        at.process(70, 7, &mut out);
        at.on_watermark(100, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, vec![1, 3, 5, 7]);
    }

    #[test]
    fn late_update_emitted() {
        let mut at = AggregateTree::new(SumI64, StreamOrder::OutOfOrder, 100);
        at.add_query(Box::new(TumblingWindow::new(10)));
        let mut out = Vec::new();
        at.process(5, 5, &mut out);
        at.process(15, 15, &mut out);
        at.on_watermark(10, &mut out);
        out.clear();
        at.process(7, 7, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].is_update);
        assert_eq!(out[0].value, 12);
    }

    #[test]
    fn eviction_bounds_tree() {
        let mut at = AggregateTree::new(SumI64, StreamOrder::InOrder, 0);
        at.add_query(Box::new(TumblingWindow::new(10)));
        let mut out = Vec::new();
        for i in 0..5_000 {
            at.process(i, 1, &mut out);
        }
        assert!(at.len() < 50, "tree must be evicted: {}", at.len());
    }

    #[test]
    fn agrees_with_tuple_buffer_on_random_ooo_stream() {
        use crate::tuple_buffer::TupleBuffer;
        let mut tuples: Vec<(i64, i64)> = (0..400).map(|i| (i, (i * 17) % 23)).collect();
        for i in (0..tuples.len()).step_by(3) {
            let j = (i + (i % 11)).min(tuples.len() - 1);
            tuples.swap(i, j);
        }
        let mut at = AggregateTree::new(SumI64, StreamOrder::OutOfOrder, 10_000);
        at.add_query(Box::new(SlidingWindow::new(20, 5)));
        let mut tb = TupleBuffer::new(SumI64, StreamOrder::OutOfOrder, 10_000);
        tb.add_query(Box::new(SlidingWindow::new(20, 5)));
        let (mut o1, mut o2) = (Vec::new(), Vec::new());
        for &(ts, v) in &tuples {
            at.process(ts, v, &mut o1);
            tb.process(ts, v, &mut o2);
        }
        at.on_watermark(500, &mut o1);
        tb.on_watermark(500, &mut o2);
        let f1: std::collections::BTreeMap<(i64, i64), i64> =
            o1.iter().map(|r| ((r.range.start, r.range.end), r.value)).collect();
        let f2: std::collections::BTreeMap<(i64, i64), i64> =
            o2.iter().map(|r| ((r.range.start, r.range.end), r.value)).collect();
        assert_eq!(f1, f2);
    }
}
