//! Runtime-chosen aggregation: one [`AggregateFunction`] dispatching over
//! the library's `i64`-input functions, so query layers (SQL frontends,
//! config files) can pick the aggregation at runtime and still share one
//! operator type.
//!
//! The cost of dynamism is an enum tag per partial — the statically-typed
//! functions in `gss-aggregates` stay the fast path for compiled-in
//! queries.

use gss_aggregates::{Avg, AvgPartial, Max, Median, Min, Percentile, SortedRle, Sum};
use gss_core::{AggregateFunction, FunctionKind, FunctionProperties, HeapSize};

/// Which aggregation an [`AnyAggregate`] performs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggKind {
    Count,
    Sum,
    Avg,
    Min,
    Max,
    Median,
    /// Nearest-rank percentile, `0 < p <= 1`.
    Percentile(f64),
}

impl AggKind {
    pub fn name(&self) -> String {
        match self {
            AggKind::Count => "COUNT".into(),
            AggKind::Sum => "SUM".into(),
            AggKind::Avg => "AVG".into(),
            AggKind::Min => "MIN".into(),
            AggKind::Max => "MAX".into(),
            AggKind::Median => "MEDIAN".into(),
            AggKind::Percentile(p) => format!("P{:.0}", p * 100.0),
        }
    }
}

/// Partial aggregate of an [`AnyAggregate`].
#[derive(Debug, Clone, PartialEq)]
pub enum AnyPartial {
    Count(u64),
    Sum(i64),
    Avg(AvgPartial),
    Min(i64),
    Max(i64),
    Holistic(SortedRle),
}

impl HeapSize for AnyPartial {
    fn heap_bytes(&self) -> usize {
        match self {
            AnyPartial::Holistic(rle) => rle.heap_bytes(),
            _ => 0,
        }
    }
}

/// Final aggregate of an [`AnyAggregate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    Int(i64),
    Float(f64),
}

impl Value {
    pub fn as_i64(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            Value::Float(f) => *f as i64,
        }
    }

    pub fn as_f64(&self) -> f64 {
        match self {
            Value::Int(v) => *v as f64,
            Value::Float(f) => *f,
        }
    }
}

/// A runtime-selected aggregation over `i64` inputs.
#[derive(Debug, Clone, Copy)]
pub struct AnyAggregate {
    kind: AggKind,
}

impl AnyAggregate {
    pub fn new(kind: AggKind) -> Self {
        AnyAggregate { kind }
    }

    pub fn kind(&self) -> AggKind {
        self.kind
    }

    fn mismatch(&self) -> ! {
        panic!("AnyAggregate({:?}): mixed partial variants", self.kind)
    }
}

impl AggregateFunction for AnyAggregate {
    type Input = i64;
    type Partial = AnyPartial;
    type Output = Value;

    fn lift(&self, v: &i64) -> AnyPartial {
        match self.kind {
            AggKind::Count => AnyPartial::Count(1),
            AggKind::Sum => AnyPartial::Sum(*v),
            AggKind::Avg => AnyPartial::Avg(Avg.lift(v)),
            AggKind::Min => AnyPartial::Min(*v),
            AggKind::Max => AnyPartial::Max(*v),
            AggKind::Median | AggKind::Percentile(_) => {
                AnyPartial::Holistic(SortedRle::singleton(*v))
            }
        }
    }

    fn combine(&self, a: AnyPartial, b: &AnyPartial) -> AnyPartial {
        match (a, b) {
            (AnyPartial::Count(x), AnyPartial::Count(y)) => AnyPartial::Count(x + y),
            (AnyPartial::Sum(x), AnyPartial::Sum(y)) => AnyPartial::Sum(x + y),
            (AnyPartial::Avg(x), AnyPartial::Avg(y)) => AnyPartial::Avg(Avg.combine(x, y)),
            (AnyPartial::Min(x), AnyPartial::Min(y)) => AnyPartial::Min(x.min(*y)),
            (AnyPartial::Max(x), AnyPartial::Max(y)) => AnyPartial::Max(x.max(*y)),
            (AnyPartial::Holistic(x), AnyPartial::Holistic(y)) => AnyPartial::Holistic(x.merge(y)),
            _ => self.mismatch(),
        }
    }

    fn lower(&self, p: &AnyPartial) -> Value {
        match (self.kind, p) {
            (AggKind::Count, AnyPartial::Count(c)) => Value::Int(*c as i64),
            (AggKind::Sum, AnyPartial::Sum(s)) => Value::Int(*s),
            (AggKind::Avg, AnyPartial::Avg(a)) => Value::Float(Avg.lower(a)),
            (AggKind::Min, AnyPartial::Min(m)) => Value::Int(Min.lower(m)),
            (AggKind::Max, AnyPartial::Max(m)) => Value::Int(Max.lower(m)),
            (AggKind::Median, AnyPartial::Holistic(r)) => Value::Int(Median.lower(r)),
            (AggKind::Percentile(p100), AnyPartial::Holistic(r)) => {
                Value::Int(Percentile::new(p100).lower(r))
            }
            _ => self.mismatch(),
        }
    }

    fn invert(&self, a: AnyPartial, b: &AnyPartial) -> Option<AnyPartial> {
        match (a, b) {
            (AnyPartial::Count(x), AnyPartial::Count(y)) => Some(AnyPartial::Count(x - y)),
            (AnyPartial::Sum(x), AnyPartial::Sum(y)) => Sum.invert(x, y).map(AnyPartial::Sum),
            (AnyPartial::Avg(x), AnyPartial::Avg(y)) => Avg.invert(x, y).map(AnyPartial::Avg),
            (AnyPartial::Min(x), AnyPartial::Min(y)) => Min.invert(x, y).map(AnyPartial::Min),
            (AnyPartial::Max(x), AnyPartial::Max(y)) => Max.invert(x, y).map(AnyPartial::Max),
            _ => None,
        }
    }

    fn properties(&self) -> FunctionProperties {
        match self.kind {
            AggKind::Count | AggKind::Sum | AggKind::Avg => FunctionProperties {
                commutative: true,
                invertible: true,
                kind: FunctionKind::Algebraic,
            },
            AggKind::Min | AggKind::Max => FunctionProperties {
                commutative: true,
                invertible: false,
                kind: FunctionKind::Distributive,
            },
            AggKind::Median | AggKind::Percentile(_) => FunctionProperties {
                commutative: true,
                invertible: false,
                kind: FunctionKind::Holistic,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fold(kind: AggKind, vs: &[i64]) -> Value {
        let f = AnyAggregate::new(kind);
        f.lower(&f.lift_all(vs.iter()).unwrap())
    }

    #[test]
    fn every_kind_computes() {
        let vs = [5i64, 1, 9, 3, 3];
        assert_eq!(fold(AggKind::Count, &vs), Value::Int(5));
        assert_eq!(fold(AggKind::Sum, &vs), Value::Int(21));
        assert_eq!(fold(AggKind::Avg, &vs).as_f64(), 4.2);
        assert_eq!(fold(AggKind::Min, &vs), Value::Int(1));
        assert_eq!(fold(AggKind::Max, &vs), Value::Int(9));
        assert_eq!(fold(AggKind::Median, &vs), Value::Int(3));
        assert_eq!(fold(AggKind::Percentile(0.99), &vs), Value::Int(9));
    }

    #[test]
    fn invert_only_where_sound() {
        let f = AnyAggregate::new(AggKind::Sum);
        assert_eq!(f.invert(AnyPartial::Sum(5), &AnyPartial::Sum(3)), Some(AnyPartial::Sum(2)));
        let m = AnyAggregate::new(AggKind::Min);
        assert_eq!(m.invert(AnyPartial::Min(1), &AnyPartial::Min(1)), None);
        assert_eq!(m.invert(AnyPartial::Min(1), &AnyPartial::Min(7)), Some(AnyPartial::Min(1)));
    }

    #[test]
    fn holistic_partials_report_heap() {
        let f = AnyAggregate::new(AggKind::Median);
        let p = f.lift_all([&1, &2, &3]).unwrap();
        assert!(p.heap_bytes() > 0);
        assert_eq!(AnyPartial::Sum(5).heap_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "mixed partial variants")]
    fn mixed_variants_panic() {
        let f = AnyAggregate::new(AggKind::Sum);
        f.combine(AnyPartial::Sum(1), &AnyPartial::Count(1));
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::Int(3).as_f64(), 3.0);
        assert_eq!(Value::Float(3.9).as_i64(), 3);
    }
}
