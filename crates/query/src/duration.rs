//! Human-friendly duration literals for the query DSL: `250ms`, `5s`,
//! `2m`, `1h`. All durations resolve to milliseconds — the unit the rest
//! of the workspace uses for time-measure timestamps.

use gss_core::Time;

/// Parses a duration literal into milliseconds.
///
/// Accepted suffixes: `ms`, `s`, `m`, `h`. A bare integer is milliseconds.
pub fn parse_duration(input: &str) -> Result<Time, String> {
    let s = input.trim();
    if s.is_empty() {
        return Err("empty duration".into());
    }
    let (digits, unit): (&str, &str) = match s.find(|c: char| !c.is_ascii_digit()) {
        None => (s, "ms"),
        Some(split) => (&s[..split], s[split..].trim()),
    };
    if digits.is_empty() {
        return Err(format!("duration '{input}' has no numeric part"));
    }
    let value: Time = digits.parse().map_err(|e| format!("duration '{input}': bad number: {e}"))?;
    let factor: Time = match unit {
        "ms" => 1,
        "s" => 1_000,
        "m" => 60_000,
        "h" => 3_600_000,
        other => return Err(format!("duration '{input}': unknown unit '{other}'")),
    };
    value.checked_mul(factor).ok_or_else(|| format!("duration '{input}' overflows"))
}

/// Formats milliseconds back into the shortest exact literal.
pub fn format_duration(ms: Time) -> String {
    for (factor, unit) in [(3_600_000, "h"), (60_000, "m"), (1_000, "s")] {
        if ms != 0 && ms % factor == 0 {
            return format!("{}{}", ms / factor, unit);
        }
    }
    format!("{ms}ms")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_units() {
        assert_eq!(parse_duration("250ms"), Ok(250));
        assert_eq!(parse_duration("5s"), Ok(5_000));
        assert_eq!(parse_duration("2m"), Ok(120_000));
        assert_eq!(parse_duration("1h"), Ok(3_600_000));
        assert_eq!(parse_duration("42"), Ok(42));
        assert_eq!(parse_duration(" 7s "), Ok(7_000));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_duration("").is_err());
        assert!(parse_duration("s").is_err());
        assert!(parse_duration("5d").is_err());
        assert!(parse_duration("5.5s").is_err());
        assert!(parse_duration("99999999999999999999s").is_err());
    }

    #[test]
    fn formats_shortest_exact() {
        assert_eq!(format_duration(250), "250ms");
        assert_eq!(format_duration(5_000), "5s");
        assert_eq!(format_duration(90_000), "90s");
        assert_eq!(format_duration(120_000), "2m");
        assert_eq!(format_duration(3_600_000), "1h");
    }

    #[test]
    fn roundtrip() {
        for ms in [1, 999, 1_000, 61_000, 3_600_000, 7_200_000] {
            assert_eq!(parse_duration(&format_duration(ms)), Ok(ms));
        }
    }
}
