//! # gss-query
//!
//! The query-translation layer of paper Figure 3: users describe queries
//! in a compact textual DSL (or the typed [`QueryDsl`]/[`WindowDsl`] API);
//! the translator derives workload characteristics and configures general
//! slicing operators.
//!
//! ```
//! use gss_core::{StorePolicy, StreamOrder};
//! use gss_query::{translate, QueryDsl};
//!
//! let queries = [
//!     QueryDsl::parse("SUM OVER SLIDE 10s 2s").unwrap(),
//!     QueryDsl::parse("SUM OVER TUMBLE 5s").unwrap(),
//!     QueryDsl::parse("P95 OVER SESSION 30s").unwrap(),
//! ];
//! let translated = translate(&queries, StreamOrder::InOrder, 0, StorePolicy::Lazy).unwrap();
//! // Both SUM queries share one slice store; P95 gets its own operator.
//! assert_eq!(translated.operator_count(), 2);
//! ```

pub mod any;
pub mod duration;
pub mod spec;
pub mod sql;
pub mod translate;

pub use any::{AggKind, AnyAggregate, AnyPartial, Value};
pub use duration::{format_duration, parse_duration};
pub use spec::{parse_agg, WindowDsl};
pub use sql::{parse_sql, SqlStatement};
pub use translate::{translate, QueryDsl, Translated};
