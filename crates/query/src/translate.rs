//! The query translator (paper Figure 3): takes user-level query
//! descriptions, derives the workload characteristics, and configures a
//! general slicing operator accordingly.

use gss_core::operator::{OperatorConfig, WindowOperator};
use gss_core::{QueryError, QueryId, StorePolicy, StreamOrder, Time};

use crate::any::{AggKind, AnyAggregate};
use crate::spec::{parse_agg, WindowDsl};

/// A user-level query: one aggregation over one window definition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryDsl {
    pub window: WindowDsl,
    pub agg: AggKind,
}

impl QueryDsl {
    /// Parses `"<AGG> OVER <WINDOW>"`, e.g. `"SUM OVER SLIDE 10s 2s"` or
    /// `"P95 OVER SESSION 30s"`.
    pub fn parse(input: &str) -> Result<Self, String> {
        let upper = input.to_ascii_uppercase();
        let Some(split) = upper.find(" OVER ") else {
            return Err(format!("query '{input}': expected '<AGG> OVER <WINDOW>'"));
        };
        let agg = parse_agg(&input[..split])?;
        let window = WindowDsl::parse(&input[split + " OVER ".len()..])?;
        Ok(QueryDsl { window, agg })
    }
}

impl std::fmt::Display for QueryDsl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} OVER {}", self.agg.name(), self.window)
    }
}

/// A translated query set: one operator per aggregation kind (windows
/// share slices *within* an operator; different aggregations need
/// different partials, exactly like in the reference implementation where
/// an aggregate store is typed by its aggregation).
pub struct Translated {
    operators: Vec<(AggKind, WindowOperator<AnyAggregate>, Vec<QueryId>)>,
}

/// Translates parsed queries into configured slicing operators.
///
/// Queries with the same aggregation kind share one operator — and thus
/// one slice store — which is the paper's multi-query sharing. Different
/// aggregation kinds get separate operators.
pub fn translate(
    queries: &[QueryDsl],
    order: StreamOrder,
    allowed_lateness: Time,
    policy: StorePolicy,
) -> Result<Translated, QueryError> {
    let mut operators: Vec<(AggKind, WindowOperator<AnyAggregate>, Vec<QueryId>)> = Vec::new();
    for q in queries {
        let idx = match operators.iter().position(|(k, _, _)| *k == q.agg) {
            Some(i) => i,
            None => {
                let cfg = OperatorConfig { order, policy, allowed_lateness, ..Default::default() };
                operators.push((
                    q.agg,
                    WindowOperator::new(AnyAggregate::new(q.agg), cfg),
                    Vec::new(),
                ));
                operators.len() - 1
            }
        };
        let (_, op, ids) = &mut operators[idx];
        let id = op.add_query(q.window.build())?;
        ids.push(id);
    }
    Ok(Translated { operators })
}

impl Translated {
    /// Number of underlying operators (one per distinct aggregation kind).
    pub fn operator_count(&self) -> usize {
        self.operators.len()
    }

    /// Iterates over the operators for processing.
    pub fn operators_mut(&mut self) -> impl Iterator<Item = &mut WindowOperator<AnyAggregate>> {
        self.operators.iter_mut().map(|(_, op, _)| op)
    }

    /// Processes one tuple through every operator, collecting results
    /// tagged with their aggregation kind.
    pub fn process_tuple(
        &mut self,
        ts: Time,
        value: i64,
        out: &mut Vec<(AggKind, gss_core::WindowResult<crate::any::Value>)>,
    ) {
        let mut scratch = Vec::new();
        for (kind, op, _) in &mut self.operators {
            op.process_tuple(ts, value, &mut scratch);
            out.extend(scratch.drain(..).map(|r| (*kind, r)));
        }
    }

    /// Processes a watermark through every operator.
    pub fn process_watermark(
        &mut self,
        wm: Time,
        out: &mut Vec<(AggKind, gss_core::WindowResult<crate::any::Value>)>,
    ) {
        let mut scratch = Vec::new();
        for (kind, op, _) in &mut self.operators {
            op.process_watermark(wm, &mut scratch);
            out.extend(scratch.drain(..).map(|r| (*kind, r)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any::Value;

    #[test]
    fn parse_full_queries() {
        let q = QueryDsl::parse("SUM OVER SLIDE 10s 2s").unwrap();
        assert_eq!(q.agg, AggKind::Sum);
        assert_eq!(q.window, WindowDsl::Slide { length: 10_000, slide: 2_000 });
        assert_eq!(q.to_string(), "SUM OVER SLIDE 10s 2s");
        let q = QueryDsl::parse("p95 over session 30s").unwrap();
        assert_eq!(q.agg, AggKind::Percentile(0.95));
        assert!(QueryDsl::parse("SUM SLIDE 10s 2s").is_err());
        assert!(QueryDsl::parse("MODE OVER TUMBLE 5s").is_err());
    }

    #[test]
    fn same_agg_queries_share_one_operator() {
        let queries = [
            QueryDsl::parse("SUM OVER TUMBLE 1s").unwrap(),
            QueryDsl::parse("SUM OVER TUMBLE 2s").unwrap(),
            QueryDsl::parse("AVG OVER TUMBLE 1s").unwrap(),
        ];
        let t = translate(&queries, StreamOrder::InOrder, 0, StorePolicy::Lazy).unwrap();
        assert_eq!(t.operator_count(), 2);
    }

    #[test]
    fn end_to_end_dsl_execution() {
        let queries = [
            QueryDsl::parse("SUM OVER TUMBLE 1s").unwrap(),
            QueryDsl::parse("MEDIAN OVER TUMBLE 1s").unwrap(),
        ];
        let mut t = translate(&queries, StreamOrder::InOrder, 0, StorePolicy::Lazy).unwrap();
        let mut out = Vec::new();
        for i in 0..2_500i64 {
            t.process_tuple(i, i % 10, &mut out);
        }
        let sums: Vec<&(AggKind, _)> = out.iter().filter(|(k, _)| *k == AggKind::Sum).collect();
        assert_eq!(sums.len(), 2);
        assert_eq!(sums[0].1.value, Value::Int((0..1000).map(|i| i % 10).sum()));
        let medians: Vec<&(AggKind, _)> =
            out.iter().filter(|(k, _)| *k == AggKind::Median).collect();
        assert_eq!(medians.len(), 2);
        assert_eq!(medians[0].1.value, Value::Int(4));
    }

    #[test]
    fn mixed_measures_rejected_on_ooo() {
        let queries = [
            QueryDsl::parse("SUM OVER TUMBLE 1s").unwrap(),
            QueryDsl::parse("SUM OVER COUNT_TUMBLE 10").unwrap(),
        ];
        let err = translate(&queries, StreamOrder::OutOfOrder, 1_000, StorePolicy::Lazy);
        assert!(err.is_err());
    }
}
