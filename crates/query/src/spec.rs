//! Typed query specifications and the textual mini-DSL.
//!
//! The paper's architecture (Figure 3) places a *query translator* above
//! the aggregator: users write stream SQL or a functional API, the
//! translator derives the workload characteristics and forwards them. This
//! module is that layer: a [`WindowDsl`] spec with a compact textual form
//!
//! ```text
//! TUMBLE 5s | SLIDE 10s 2s | SESSION 30s | COUNT_TUMBLE 100 | COUNT_SLIDE 100 10
//! ```
//!
//! plus an aggregation chosen from [`AggKind`]'s textual names
//! (`SUM`, `AVG`, `MEDIAN`, `P95`, …).

use gss_core::WindowFunction;
use gss_windows::{
    CountSlidingWindow, CountTumblingWindow, SessionWindow, SlidingWindow, TumblingWindow,
};

use crate::any::AggKind;
use crate::duration::{format_duration, parse_duration};

/// A window specification, parseable from and printable to the DSL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowDsl {
    /// `TUMBLE <len>`
    Tumble { length: i64 },
    /// `SLIDE <len> <slide>`
    Slide { length: i64, slide: i64 },
    /// `SESSION <gap>`
    Session { gap: i64 },
    /// `COUNT_TUMBLE <n>`
    CountTumble { length: u64 },
    /// `COUNT_SLIDE <n> <m>`
    CountSlide { length: u64, slide: u64 },
}

impl WindowDsl {
    /// Parses one window clause, e.g. `"SLIDE 10s 2s"`.
    pub fn parse(input: &str) -> Result<Self, String> {
        let mut parts = input.split_whitespace();
        let keyword = parts.next().ok_or("empty window spec")?.to_ascii_uppercase();
        let mut next_dur = |what: &str| -> Result<i64, String> {
            let token =
                parts.next().ok_or_else(|| format!("window spec '{input}': missing {what}"))?;
            parse_duration(token)
        };
        let spec = match keyword.as_str() {
            "TUMBLE" => WindowDsl::Tumble { length: next_dur("length")? },
            "SLIDE" => WindowDsl::Slide { length: next_dur("length")?, slide: next_dur("slide")? },
            "SESSION" => WindowDsl::Session { gap: next_dur("gap")? },
            "COUNT_TUMBLE" => {
                let n = parts
                    .next()
                    .ok_or_else(|| format!("window spec '{input}': missing count"))?
                    .parse::<u64>()
                    .map_err(|e| format!("window spec '{input}': {e}"))?;
                WindowDsl::CountTumble { length: n }
            }
            "COUNT_SLIDE" => {
                let n = parts
                    .next()
                    .ok_or_else(|| format!("window spec '{input}': missing count"))?
                    .parse::<u64>()
                    .map_err(|e| format!("window spec '{input}': {e}"))?;
                let m = parts
                    .next()
                    .ok_or_else(|| format!("window spec '{input}': missing slide count"))?
                    .parse::<u64>()
                    .map_err(|e| format!("window spec '{input}': {e}"))?;
                WindowDsl::CountSlide { length: n, slide: m }
            }
            other => return Err(format!("unknown window type '{other}'")),
        };
        if let Some(extra) = parts.next() {
            return Err(format!("window spec '{input}': unexpected token '{extra}'"));
        }
        spec.validate()?;
        Ok(spec)
    }

    fn validate(self) -> Result<(), String> {
        let ok = match self {
            WindowDsl::Tumble { length } => length > 0,
            WindowDsl::Slide { length, slide } => length > 0 && slide > 0,
            WindowDsl::Session { gap } => gap > 0,
            WindowDsl::CountTumble { length } => length > 0,
            WindowDsl::CountSlide { length, slide } => length > 0 && slide > 0,
        };
        if ok {
            Ok(())
        } else {
            Err(format!("window spec {self:?}: parameters must be positive"))
        }
    }

    /// Instantiates the window function.
    pub fn build(self) -> Box<dyn WindowFunction> {
        match self {
            WindowDsl::Tumble { length } => Box::new(TumblingWindow::new(length)),
            WindowDsl::Slide { length, slide } => Box::new(SlidingWindow::new(length, slide)),
            WindowDsl::Session { gap } => Box::new(SessionWindow::new(gap)),
            WindowDsl::CountTumble { length } => Box::new(CountTumblingWindow::new(length)),
            WindowDsl::CountSlide { length, slide } => {
                Box::new(CountSlidingWindow::new(length, slide))
            }
        }
    }
}

impl std::fmt::Display for WindowDsl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WindowDsl::Tumble { length } => write!(f, "TUMBLE {}", format_duration(*length)),
            WindowDsl::Slide { length, slide } => {
                write!(f, "SLIDE {} {}", format_duration(*length), format_duration(*slide))
            }
            WindowDsl::Session { gap } => write!(f, "SESSION {}", format_duration(*gap)),
            WindowDsl::CountTumble { length } => write!(f, "COUNT_TUMBLE {length}"),
            WindowDsl::CountSlide { length, slide } => write!(f, "COUNT_SLIDE {length} {slide}"),
        }
    }
}

/// Parses an aggregation name: `COUNT`, `SUM`, `AVG`, `MIN`, `MAX`,
/// `MEDIAN`, or `P<1..=100>`.
pub fn parse_agg(input: &str) -> Result<AggKind, String> {
    let s = input.trim().to_ascii_uppercase();
    Ok(match s.as_str() {
        "COUNT" => AggKind::Count,
        "SUM" => AggKind::Sum,
        "AVG" | "MEAN" => AggKind::Avg,
        "MIN" => AggKind::Min,
        "MAX" => AggKind::Max,
        "MEDIAN" => AggKind::Median,
        _ => {
            if let Some(pct) = s.strip_prefix('P') {
                let p: u32 = pct.parse().map_err(|e| format!("aggregation '{input}': {e}"))?;
                if !(1..=100).contains(&p) {
                    return Err(format!("aggregation '{input}': percentile out of range"));
                }
                AggKind::Percentile(p as f64 / 100.0)
            } else {
                return Err(format!("unknown aggregation '{input}'"));
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_core::{ContextClass, Measure};

    #[test]
    fn parses_every_window_form() {
        assert_eq!(WindowDsl::parse("TUMBLE 5s"), Ok(WindowDsl::Tumble { length: 5_000 }));
        assert_eq!(
            WindowDsl::parse("slide 10s 2s"),
            Ok(WindowDsl::Slide { length: 10_000, slide: 2_000 })
        );
        assert_eq!(WindowDsl::parse("SESSION 30s"), Ok(WindowDsl::Session { gap: 30_000 }));
        assert_eq!(
            WindowDsl::parse("COUNT_TUMBLE 100"),
            Ok(WindowDsl::CountTumble { length: 100 })
        );
        assert_eq!(
            WindowDsl::parse("COUNT_SLIDE 100 10"),
            Ok(WindowDsl::CountSlide { length: 100, slide: 10 })
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(WindowDsl::parse("").is_err());
        assert!(WindowDsl::parse("TUMBLE").is_err());
        assert!(WindowDsl::parse("TUMBLE 5s 6s").is_err());
        assert!(WindowDsl::parse("HOP 5s 1s").is_err());
        assert!(WindowDsl::parse("TUMBLE 0s").is_err());
        assert!(WindowDsl::parse("COUNT_TUMBLE -3").is_err());
        assert!(WindowDsl::parse("COUNT_SLIDE 10").is_err());
    }

    #[test]
    fn display_roundtrips() {
        for text in
            ["TUMBLE 5s", "SLIDE 10s 2s", "SESSION 30s", "COUNT_TUMBLE 100", "COUNT_SLIDE 100 10"]
        {
            let spec = WindowDsl::parse(text).unwrap();
            assert_eq!(spec.to_string(), text);
            assert_eq!(WindowDsl::parse(&spec.to_string()), Ok(spec));
        }
    }

    #[test]
    fn build_produces_matching_window_functions() {
        let w = WindowDsl::parse("SESSION 30s").unwrap().build();
        assert!(w.is_session());
        assert_eq!(w.context(), ContextClass::ForwardContextAware);
        let w = WindowDsl::parse("COUNT_TUMBLE 100").unwrap().build();
        assert_eq!(w.measure(), Measure::Count);
        let w = WindowDsl::parse("SLIDE 10s 2s").unwrap().build();
        assert_eq!(w.measure(), Measure::Time);
        assert_eq!(w.context(), ContextClass::ContextFree);
    }

    #[test]
    fn parses_aggregations() {
        assert_eq!(parse_agg("sum"), Ok(AggKind::Sum));
        assert_eq!(parse_agg("MEAN"), Ok(AggKind::Avg));
        assert_eq!(parse_agg("median"), Ok(AggKind::Median));
        assert_eq!(parse_agg("P95"), Ok(AggKind::Percentile(0.95)));
        assert!(parse_agg("P0").is_err());
        assert!(parse_agg("P101").is_err());
        assert!(parse_agg("MODE").is_err());
    }
}
