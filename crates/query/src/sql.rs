//! A miniature windowed-SQL frontend — the "flavor of stream SQL" entry
//! point of paper Figure 3.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! statement := SELECT agg (',' agg)* FROM ident GROUP BY window
//! agg       := NAME '(' (ident | '*') ')'
//! window    := TUMBLE '(' dur [',' dur] ')'         -- length [, offset]
//!            | SLIDE '(' dur ',' dur ')'            -- length, slide
//!            | SESSION '(' dur ')'                   -- gap
//!            | COUNT_TUMBLE '(' int ')'
//!            | COUNT_SLIDE '(' int ',' int ')'
//! dur       := INT ('ms' | 's' | 'm' | 'h')?
//! ```
//!
//! Example: `SELECT SUM(v), MAX(v) FROM sensors GROUP BY SLIDE(10s, 2s)`.

use crate::duration::parse_duration;
use crate::spec::{parse_agg, WindowDsl};
use crate::translate::QueryDsl;

/// A parsed statement: the source stream name plus one [`QueryDsl`] per
/// selected aggregation (they all share the statement's window).
#[derive(Debug, Clone, PartialEq)]
pub struct SqlStatement {
    pub stream: String,
    pub queries: Vec<QueryDsl>,
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(String),
    Comma,
    LParen,
    RParen,
    Star,
}

fn tokenize(input: &str) -> Result<Vec<Token>, String> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            ',' => {
                chars.next();
                tokens.push(Token::Comma);
            }
            '(' => {
                chars.next();
                tokens.push(Token::LParen);
            }
            ')' => {
                chars.next();
                tokens.push(Token::RParen);
            }
            '*' => {
                chars.next();
                tokens.push(Token::Star);
            }
            c if c.is_ascii_digit() => {
                // A number with an optional unit suffix (e.g. `10s`).
                let mut lit = String::new();
                while let Some(d) = chars.next_if(|c| c.is_ascii_digit()) {
                    lit.push(d);
                }
                while let Some(u) = chars.next_if(|c| c.is_ascii_alphabetic()) {
                    lit.push(u);
                }
                tokens.push(Token::Number(lit));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(c) = chars.next_if(|c| c.is_ascii_alphanumeric() || *c == '_') {
                    ident.push(c);
                }
                tokens.push(Token::Ident(ident));
            }
            other => return Err(format!("unexpected character '{other}'")),
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token, String> {
        let t = self.tokens.get(self.pos).cloned().ok_or("unexpected end of statement")?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), String> {
        match self.next()? {
            Token::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(format!("expected '{kw}', found {other:?}")),
        }
    }

    fn expect_tok(&mut self, t: Token) -> Result<(), String> {
        let got = self.next()?;
        if got == t {
            Ok(())
        } else {
            Err(format!("expected {t:?}, found {got:?}"))
        }
    }

    fn ident(&mut self) -> Result<String, String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// `NAME '(' (ident | '*') ')'`
    fn agg(&mut self) -> Result<crate::any::AggKind, String> {
        let name = self.ident()?;
        let kind = parse_agg(&name)?;
        self.expect_tok(Token::LParen)?;
        match self.next()? {
            Token::Ident(_) | Token::Star => {}
            other => return Err(format!("expected column or '*', found {other:?}")),
        }
        self.expect_tok(Token::RParen)?;
        Ok(kind)
    }

    fn duration_arg(&mut self) -> Result<i64, String> {
        match self.next()? {
            Token::Number(lit) => parse_duration(&lit),
            other => Err(format!("expected duration, found {other:?}")),
        }
    }

    fn int_arg(&mut self) -> Result<u64, String> {
        match self.next()? {
            Token::Number(lit) => {
                lit.parse::<u64>().map_err(|e| format!("expected integer, got '{lit}': {e}"))
            }
            other => Err(format!("expected integer, found {other:?}")),
        }
    }

    fn window(&mut self) -> Result<WindowDsl, String> {
        let kw = self.ident()?.to_ascii_uppercase();
        self.expect_tok(Token::LParen)?;
        let w = match kw.as_str() {
            "TUMBLE" => {
                let length = self.duration_arg()?;
                if matches!(self.peek(), Some(Token::Comma)) {
                    // Offset variant maps onto a sliding window with
                    // slide == length and shifted phase — represented in
                    // the DSL as plain TUMBLE (offsets are a window-type
                    // concern; keep the typed spec simple).
                    return Err("TUMBLE offsets: use the typed API \
                                (TumblingWindow::with_offset)"
                        .into());
                }
                WindowDsl::Tumble { length }
            }
            "SLIDE" => {
                let length = self.duration_arg()?;
                self.expect_tok(Token::Comma)?;
                let slide = self.duration_arg()?;
                WindowDsl::Slide { length, slide }
            }
            "SESSION" => WindowDsl::Session { gap: self.duration_arg()? },
            "COUNT_TUMBLE" => WindowDsl::CountTumble { length: self.int_arg()? },
            "COUNT_SLIDE" => {
                let length = self.int_arg()?;
                self.expect_tok(Token::Comma)?;
                let slide = self.int_arg()?;
                WindowDsl::CountSlide { length, slide }
            }
            other => return Err(format!("unknown window function '{other}'")),
        };
        self.expect_tok(Token::RParen)?;
        Ok(w)
    }
}

/// Parses one windowed-SQL statement.
pub fn parse_sql(input: &str) -> Result<SqlStatement, String> {
    let mut p = Parser { tokens: tokenize(input)?, pos: 0 };
    p.expect_keyword("SELECT")?;
    let mut aggs = vec![p.agg()?];
    while matches!(p.peek(), Some(Token::Comma)) {
        p.expect_tok(Token::Comma)?;
        aggs.push(p.agg()?);
    }
    p.expect_keyword("FROM")?;
    let stream = p.ident()?;
    p.expect_keyword("GROUP")?;
    p.expect_keyword("BY")?;
    let window = p.window()?;
    if p.peek().is_some() {
        return Err(format!("trailing tokens after window clause: {:?}", p.peek()));
    }
    Ok(SqlStatement {
        stream,
        queries: aggs.into_iter().map(|agg| QueryDsl { window, agg }).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any::AggKind;

    #[test]
    fn parses_single_aggregation() {
        let s = parse_sql("SELECT SUM(v) FROM sensors GROUP BY TUMBLE(5s)").unwrap();
        assert_eq!(s.stream, "sensors");
        assert_eq!(s.queries.len(), 1);
        assert_eq!(s.queries[0].agg, AggKind::Sum);
        assert_eq!(s.queries[0].window, WindowDsl::Tumble { length: 5_000 });
    }

    #[test]
    fn parses_multiple_aggregations_sharing_the_window() {
        let s = parse_sql("select sum(v), max(v), p95(v) from s group by slide(10s, 2s)").unwrap();
        assert_eq!(s.queries.len(), 3);
        assert!(s
            .queries
            .iter()
            .all(|q| q.window == WindowDsl::Slide { length: 10_000, slide: 2_000 }));
        assert_eq!(s.queries[2].agg, AggKind::Percentile(0.95));
    }

    #[test]
    fn parses_count_star_and_count_windows() {
        let s = parse_sql("SELECT COUNT(*) FROM s GROUP BY COUNT_TUMBLE(100)").unwrap();
        assert_eq!(s.queries[0].agg, AggKind::Count);
        assert_eq!(s.queries[0].window, WindowDsl::CountTumble { length: 100 });
        let s = parse_sql("SELECT AVG(x) FROM s GROUP BY COUNT_SLIDE(100, 10)").unwrap();
        assert_eq!(s.queries[0].window, WindowDsl::CountSlide { length: 100, slide: 10 });
    }

    #[test]
    fn parses_sessions() {
        let s = parse_sql("SELECT MEDIAN(v) FROM trips GROUP BY SESSION(30s)").unwrap();
        assert_eq!(s.queries[0].window, WindowDsl::Session { gap: 30_000 });
    }

    #[test]
    fn rejects_malformed_statements() {
        for bad in [
            "",
            "SELECT FROM s GROUP BY TUMBLE(5s)",
            "SELECT SUM(v) FROM s",
            "SELECT SUM(v) FROM s GROUP BY HOP(5s)",
            "SELECT SUM(v) FROM s GROUP BY TUMBLE(5s) EXTRA",
            "SELECT SUM(v) GROUP BY TUMBLE(5s)",
            "SELECT SUM(v,w) FROM s GROUP BY TUMBLE(5s)",
            "SELECT MODE(v) FROM s GROUP BY TUMBLE(5s)",
            "SELECT SUM(v) FROM s GROUP BY TUMBLE(5x)",
            "SELECT SUM(v) FROM s GROUP BY SLIDE(10s)",
        ] {
            assert!(parse_sql(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn sql_round_trips_into_execution() {
        use gss_core::{StorePolicy, StreamOrder};
        let s = parse_sql("SELECT SUM(v), MIN(v) FROM s GROUP BY TUMBLE(1s)").unwrap();
        let mut t =
            crate::translate(&s.queries, StreamOrder::InOrder, 0, StorePolicy::Lazy).unwrap();
        let mut out = Vec::new();
        for i in 0..2_500i64 {
            t.process_tuple(i, i % 10, &mut out);
        }
        assert!(out.iter().any(|(k, _)| *k == AggKind::Sum));
        assert!(out.iter().any(|(k, _)| *k == AggKind::Min));
        let min = out.iter().find(|(k, _)| *k == AggKind::Min).unwrap();
        assert_eq!(min.1.value, crate::any::Value::Int(0));
    }
}
