//! # gss-windows
//!
//! Window-type implementations for general stream slicing, covering the
//! paper's full context classification (Section 4.4):
//!
//! * **Context free (CF)** — [`TumblingWindow`], [`SlidingWindow`],
//!   [`CountTumblingWindow`], [`CountSlidingWindow`]: all edges are known
//!   a priori.
//! * **Forward context free (FCF)** — [`PunctuationWindow`]: edges are
//!   marked by stream punctuations.
//! * **Forward context aware (FCA)** — [`SessionWindow`] (the special case
//!   that never needs recomputation) and [`MultiMeasureWindow`] ("last N
//!   tuples every S seconds", which genuinely splits slices through stored
//!   tuples).
//!
//! New window types plug in by implementing
//! [`gss_core::WindowFunction`] — no change to the slicing core is needed
//! (paper Section 5.4.2).

pub mod multimeasure;
pub mod periodic;
pub mod punctuation;
pub mod session;

pub use multimeasure::MultiMeasureWindow;
pub use periodic::{
    CountSlidingWindow, CountTumblingWindow, PeriodicEdges, SlidingWindow, TumblingWindow,
};
pub use punctuation::PunctuationWindow;
pub use session::SessionWindow;
