//! Context-free periodic windows: tumbling and sliding, on time and count
//! measures (paper Section 2 / Figure 1).
//!
//! All edge arithmetic lives in [`PeriodicEdges`]; the four public window
//! types are thin wrappers choosing a measure and a slide. Windows are
//! `[k·slide, k·slide + length)` for every integer `k` — start and end
//! timestamps are known a priori, the definition of context freedom.

use gss_core::{ContextClass, Measure, Range, Time, WindowFunction};

/// Edge arithmetic for periodic windows
/// `[k·slide + offset, k·slide + offset + length)`.
///
/// `offset` shifts the window phase — e.g. hourly windows aligned to a
/// timezone, or daily windows starting at 09:00.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeriodicEdges {
    pub length: i64,
    pub slide: i64,
    pub offset: i64,
}

impl PeriodicEdges {
    pub fn new(length: i64, slide: i64) -> Self {
        Self::with_offset(length, slide, 0)
    }

    pub fn with_offset(length: i64, slide: i64, offset: i64) -> Self {
        assert!(length > 0, "window length must be positive");
        assert!(slide > 0, "window slide must be positive");
        PeriodicEdges { length, slide, offset: offset.rem_euclid(slide) }
    }

    /// Smallest window start strictly after `ts`.
    #[inline]
    pub fn next_start(&self, ts: Time) -> Time {
        ((ts - self.offset).div_euclid(self.slide) + 1) * self.slide + self.offset
    }

    /// Smallest window end strictly after `ts`.
    #[inline]
    pub fn next_end(&self, ts: Time) -> Time {
        ((ts - self.offset - self.length).div_euclid(self.slide) + 1) * self.slide
            + self.offset
            + self.length
    }

    /// Smallest window edge (start or end) strictly after `ts`.
    #[inline]
    pub fn next_edge(&self, ts: Time) -> Time {
        self.next_start(ts).min(self.next_end(ts))
    }

    /// Largest window start at or before `ts`.
    #[inline]
    pub fn prev_start(&self, ts: Time) -> Time {
        (ts - self.offset).div_euclid(self.slide) * self.slide + self.offset
    }

    /// Largest window end at or before `ts`.
    #[inline]
    pub fn prev_end(&self, ts: Time) -> Time {
        (ts - self.offset - self.length).div_euclid(self.slide) * self.slide
            + self.offset
            + self.length
    }

    /// Largest window edge (start or end) at or before `ts`.
    #[inline]
    pub fn prev_edge(&self, ts: Time) -> Time {
        self.prev_start(ts).max(self.prev_end(ts))
    }

    /// Is there a window start or end exactly at `e`?
    #[inline]
    pub fn edge_at(&self, e: Time) -> bool {
        (e - self.offset).rem_euclid(self.slide) == 0
            || (e - self.offset - self.length).rem_euclid(self.slide) == 0
    }

    /// All windows whose end lies in `(prev, cur]`.
    pub fn ends_in(&self, prev: Time, cur: Time, out: &mut dyn FnMut(Range)) {
        let mut k = (prev - self.offset - self.length).div_euclid(self.slide) + 1;
        loop {
            let start = k * self.slide + self.offset;
            let end = start + self.length;
            if end > cur {
                break;
            }
            debug_assert!(end > prev);
            out(Range::new(start, end));
            k += 1;
        }
    }

    /// All windows containing position `ts`.
    pub fn containing(&self, ts: Time, out: &mut dyn FnMut(Range)) {
        let k_lo = (ts - self.offset - self.length).div_euclid(self.slide) + 1;
        let k_hi = (ts - self.offset).div_euclid(self.slide);
        for k in k_lo..=k_hi {
            let start = k * self.slide + self.offset;
            out(Range::new(start, start + self.length));
        }
    }
}

macro_rules! periodic_window {
    ($(#[$doc:meta])* $name:ident, $measure:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy)]
        pub struct $name {
            edges: PeriodicEdges,
        }

        impl WindowFunction for $name {
            fn measure(&self) -> Measure {
                $measure
            }
            fn context(&self) -> ContextClass {
                ContextClass::ContextFree
            }
            fn next_edge(&self, ts: Time) -> Option<Time> {
                Some(self.edges.next_edge(ts))
            }
            fn next_start_edge(&self, ts: Time) -> Option<Time> {
                Some(self.edges.next_start(ts))
            }
            fn next_window_end(&self, ts: Time) -> Option<Time> {
                Some(self.edges.next_end(ts))
            }
            fn prev_edge(&self, ts: Time) -> Option<Time> {
                Some(self.edges.prev_edge(ts))
            }
            fn has_static_edges(&self) -> bool {
                true
            }
            fn requires_edge_at(&self, e: Time) -> bool {
                self.edges.edge_at(e)
            }
            fn trigger_windows(&mut self, prev: Time, cur: Time, out: &mut dyn FnMut(Range)) {
                self.edges.ends_in(prev, cur, out);
            }
            fn windows_containing(&self, ts: Time, out: &mut dyn FnMut(Range)) {
                self.edges.containing(ts, out);
            }
            fn max_extent(&self) -> i64 {
                self.edges.length
            }
            fn clone_box(&self) -> Box<dyn WindowFunction> {
                Box::new(*self)
            }
        }
    };
}

periodic_window!(
    /// Time-measure tumbling window of fixed `length`: `[k·l, (k+1)·l)`.
    TumblingWindow,
    Measure::Time
);

impl TumblingWindow {
    pub fn new(length: i64) -> Self {
        TumblingWindow { edges: PeriodicEdges::new(length, length) }
    }

    /// Tumbling windows phase-shifted by `offset` (e.g. hourly windows
    /// aligned to a timezone).
    pub fn with_offset(length: i64, offset: i64) -> Self {
        TumblingWindow { edges: PeriodicEdges::with_offset(length, length, offset) }
    }

    pub fn length(&self) -> i64 {
        self.edges.length
    }
}

periodic_window!(
    /// Time-measure sliding window: length `l`, new window every `l_s`.
    /// Consecutive windows overlap when `l_s < l` (paper Figure 1).
    SlidingWindow,
    Measure::Time
);

impl SlidingWindow {
    pub fn new(length: i64, slide: i64) -> Self {
        SlidingWindow { edges: PeriodicEdges::new(length, slide) }
    }

    /// Sliding windows phase-shifted by `offset`.
    pub fn with_offset(length: i64, slide: i64, offset: i64) -> Self {
        SlidingWindow { edges: PeriodicEdges::with_offset(length, slide, offset) }
    }

    pub fn length(&self) -> i64 {
        self.edges.length
    }

    pub fn slide(&self) -> i64 {
        self.edges.slide
    }
}

periodic_window!(
    /// Count-measure tumbling window: every `length` tuples.
    CountTumblingWindow,
    Measure::Count
);

impl CountTumblingWindow {
    pub fn new(length: u64) -> Self {
        let l = length as i64;
        CountTumblingWindow { edges: PeriodicEdges::new(l, l) }
    }
}

periodic_window!(
    /// Count-measure sliding window: `length` tuples, advancing every
    /// `slide` tuples.
    CountSlidingWindow,
    Measure::Count
);

impl CountSlidingWindow {
    pub fn new(length: u64, slide: u64) -> Self {
        CountSlidingWindow { edges: PeriodicEdges::new(length as i64, slide as i64) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tumbling_edges() {
        let w = TumblingWindow::new(10);
        assert_eq!(w.next_edge(0), Some(10));
        assert_eq!(w.next_edge(9), Some(10));
        assert_eq!(w.next_edge(10), Some(20));
        assert_eq!(w.next_edge(-1), Some(0));
        assert_eq!(w.next_edge(-11), Some(-10));
    }

    #[test]
    fn sliding_edges_include_starts_and_ends() {
        // length 10, slide 4: starts at 0,4,8,...; ends at 10,14,18,...
        let w = SlidingWindow::new(10, 4);
        assert_eq!(w.next_start_edge(0), Some(4));
        // Ends exist at k*slide + length for every integer k, so the next
        // end after 0 is 2 (the end of window [-8, 2)).
        assert_eq!(w.next_window_end(0), Some(2));
        assert_eq!(w.next_window_end(2), Some(6));
        assert_eq!(w.next_edge(8), Some(10)); // end of [0,10) before start 12
        assert_eq!(w.next_edge(10), Some(12));
        assert!(w.requires_edge_at(4)); // start
        assert!(w.requires_edge_at(14)); // end of [4,14)
        assert!(!w.requires_edge_at(5));
    }

    #[test]
    fn trigger_enumerates_ends_in_range() {
        let mut w = SlidingWindow::new(10, 4);
        let mut got = Vec::new();
        w.trigger_windows(10, 18, &mut |r| got.push(r));
        assert_eq!(got, vec![Range::new(4, 14), Range::new(8, 18)]);
        got.clear();
        w.trigger_windows(18, 18, &mut |r| got.push(r));
        assert!(got.is_empty());
    }

    #[test]
    fn containing_lists_all_overlapping_windows() {
        let w = SlidingWindow::new(10, 4);
        let mut got = Vec::new();
        w.windows_containing(9, &mut |r| got.push(r));
        assert_eq!(got, vec![Range::new(0, 10), Range::new(4, 14), Range::new(8, 18)]);
    }

    #[test]
    fn tumbling_contains_exactly_one_window() {
        let w = TumblingWindow::new(10);
        let mut got = Vec::new();
        w.windows_containing(25, &mut |r| got.push(r));
        assert_eq!(got, vec![Range::new(20, 30)]);
    }

    #[test]
    fn negative_timestamps_are_handled() {
        let w = SlidingWindow::new(10, 4);
        let mut got = Vec::new();
        w.windows_containing(-3, &mut |r| got.push(r));
        assert!(got.iter().all(|r| r.contains(-3)));
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn slide_larger_than_length_gives_gaps() {
        // Sampling window: 5 long, every 20.
        let w = SlidingWindow::new(5, 20);
        let mut got = Vec::new();
        w.windows_containing(10, &mut |r| got.push(r));
        assert!(got.is_empty());
        got.clear();
        w.windows_containing(3, &mut |r| got.push(r));
        assert_eq!(got, vec![Range::new(0, 5)]);
    }

    #[test]
    fn count_windows_use_count_measure() {
        let w = CountTumblingWindow::new(100);
        assert_eq!(w.measure(), Measure::Count);
        assert_eq!(w.next_edge(0), Some(100));
        let w = CountSlidingWindow::new(10, 2);
        assert_eq!(w.measure(), Measure::Count);
        assert_eq!(w.next_window_end(10), Some(12));
    }

    #[test]
    fn ends_in_never_reports_outside_range() {
        let e = PeriodicEdges::new(7, 3);
        for prev in 0..40 {
            for cur in prev..40 {
                e.ends_in(prev, cur, &mut |r| {
                    assert!(r.end > prev && r.end <= cur);
                    assert_eq!(r.len(), 7);
                    assert_eq!(r.start.rem_euclid(3), 0);
                });
            }
        }
    }

    #[test]
    fn offset_shifts_window_phase() {
        let w = TumblingWindow::with_offset(10, 3);
        // Windows: [3,13), [13,23), ...
        assert_eq!(w.next_edge(0), Some(3));
        assert_eq!(w.next_edge(3), Some(13));
        let mut got = Vec::new();
        w.windows_containing(5, &mut |r| got.push(r));
        assert_eq!(got, vec![Range::new(3, 13)]);
        assert!(w.requires_edge_at(13));
        assert!(!w.requires_edge_at(10));
        let mut w = SlidingWindow::with_offset(10, 5, 2);
        let mut ends = Vec::new();
        w.trigger_windows(0, 20, &mut |r| ends.push(r));
        // Ends at 5k + 12 for all k: 2, 7, 12, 17 within (0, 20].
        assert_eq!(
            ends,
            vec![Range::new(-8, 2), Range::new(-3, 7), Range::new(2, 12), Range::new(7, 17)]
        );
    }

    #[test]
    fn offset_normalizes_modulo_slide() {
        let a = PeriodicEdges::with_offset(10, 5, 7);
        let b = PeriodicEdges::with_offset(10, 5, 2);
        assert_eq!(a, b);
        let c = PeriodicEdges::with_offset(10, 5, -3);
        assert_eq!(c.offset, 2);
    }

    #[test]
    fn offset_windows_work_through_the_operator() {
        use gss_core::operator::{OperatorConfig, WindowOperator};
        use gss_core::testsupport::SumI64;
        let mut op = WindowOperator::new(SumI64, OperatorConfig::in_order());
        op.add_query(Box::new(TumblingWindow::with_offset(10, 4))).unwrap();
        let mut out = Vec::new();
        for ts in 0..40 {
            op.process_tuple(ts, 1, &mut out);
        }
        // Windows [-6,4), [4,14), [14,24), [24,34) complete; the first
        // holds only the tuples 0..3.
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].range, Range::new(-6, 4));
        assert_eq!(out[0].value, 4);
        for r in &out[1..] {
            assert_eq!(r.value, 10, "window {}", r.range);
            assert_eq!(r.range.start.rem_euclid(10), 4);
        }
    }

    #[test]
    fn next_end_matches_brute_force() {
        let e = PeriodicEdges::new(10, 4);
        for ts in -30..30 {
            let brute = (-20..60).map(|k| k * 4 + 10).find(|&end| end > ts).unwrap();
            assert_eq!(e.next_end(ts), brute, "ts={ts}");
        }
    }
}
