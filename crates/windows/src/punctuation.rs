//! Punctuation-based windows (forward context free, paper Section 4.4).
//!
//! Window punctuations embedded in the stream mark window boundaries
//! [14, 20]: each window spans from one punctuation to the next. Once all
//! tuples (and thus punctuations) up to time `t` are processed, every
//! window edge up to `t` is known — the definition of FCF.

use gss_core::{ContextClass, ContextEdges, Measure, Range, Time, WindowFunction};

/// Windows delimited by consecutive stream punctuations.
#[derive(Debug, Clone, Default)]
pub struct PunctuationWindow {
    /// Received boundaries, ascending. `boundaries[i]..boundaries[i+1]` is
    /// a window.
    boundaries: Vec<Time>,
    /// Everything at or before this has been reported.
    triggered_up_to: Time,
}

impl PunctuationWindow {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of boundaries currently tracked.
    pub fn boundary_count(&self) -> usize {
        self.boundaries.len()
    }

    /// Drops boundaries whose windows have been fully reported, keeping the
    /// last one (it starts the next window).
    fn trim(&mut self) {
        let keep_from =
            self.boundaries.partition_point(|&b| b < self.triggered_up_to).saturating_sub(1);
        self.boundaries.drain(..keep_from);
    }
}

impl WindowFunction for PunctuationWindow {
    fn measure(&self) -> Measure {
        Measure::Time
    }

    fn context(&self) -> ContextClass {
        ContextClass::ForwardContextFree
    }

    /// Edges are known only up to the latest received punctuation.
    fn next_edge(&self, ts: Time) -> Option<Time> {
        let idx = self.boundaries.partition_point(|&b| b <= ts);
        self.boundaries.get(idx).copied()
    }

    fn requires_edge_at(&self, e: Time) -> bool {
        self.boundaries.binary_search(&e).is_ok()
    }

    fn on_punctuation(&mut self, ts: Time, edges: &mut ContextEdges) {
        // Punctuations may arrive out of order on out-of-order streams.
        match self.boundaries.binary_search(&ts) {
            Ok(_) => {} // duplicate punctuation, idempotent
            Err(pos) => {
                self.boundaries.insert(pos, ts);
                edges.add_edge(ts);
            }
        }
    }

    fn trigger_windows(&mut self, prev: Time, cur: Time, out: &mut dyn FnMut(Range)) {
        for pair in self.boundaries.windows(2) {
            let (start, end) = (pair[0], pair[1]);
            if end > prev && end <= cur {
                out(Range::new(start, end));
            }
        }
        self.triggered_up_to = self.triggered_up_to.max(cur);
        self.trim();
    }

    fn windows_containing(&self, ts: Time, out: &mut dyn FnMut(Range)) {
        let idx = self.boundaries.partition_point(|&b| b <= ts);
        if idx > 0 && idx < self.boundaries.len() {
            out(Range::new(self.boundaries[idx - 1], self.boundaries[idx]));
        }
    }

    fn max_extent(&self) -> i64 {
        // Window spans are data-driven; eviction safety comes from
        // `earliest_pending_start` instead.
        0
    }

    /// The last boundary starts a window that has not closed yet; pin it.
    fn earliest_pending_start(&self) -> Option<Time> {
        self.boundaries.last().copied()
    }

    fn clone_box(&self) -> Box<dyn WindowFunction> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn punct(w: &mut PunctuationWindow, ts: Time) -> Vec<Time> {
        let mut e = ContextEdges::new();
        w.on_punctuation(ts, &mut e);
        e.added().to_vec()
    }

    #[test]
    fn punctuations_define_windows() {
        let mut w = PunctuationWindow::new();
        assert_eq!(punct(&mut w, 10), vec![10]);
        assert_eq!(punct(&mut w, 25), vec![25]);
        assert_eq!(punct(&mut w, 40), vec![40]);
        let mut got = Vec::new();
        w.trigger_windows(0, 30, &mut |r| got.push(r));
        assert_eq!(got, vec![Range::new(10, 25)]);
        got.clear();
        w.trigger_windows(30, 40, &mut |r| got.push(r));
        assert_eq!(got, vec![Range::new(25, 40)]);
    }

    #[test]
    fn duplicate_punctuation_is_idempotent() {
        let mut w = PunctuationWindow::new();
        punct(&mut w, 10);
        assert!(punct(&mut w, 10).is_empty());
        assert_eq!(w.boundary_count(), 1);
    }

    #[test]
    fn out_of_order_punctuation_inserts_edge() {
        let mut w = PunctuationWindow::new();
        punct(&mut w, 10);
        punct(&mut w, 40);
        assert_eq!(punct(&mut w, 25), vec![25]);
        let mut got = Vec::new();
        w.trigger_windows(0, 100, &mut |r| got.push(r));
        assert_eq!(got, vec![Range::new(10, 25), Range::new(25, 40)]);
    }

    #[test]
    fn next_edge_known_only_up_to_context() {
        let mut w = PunctuationWindow::new();
        punct(&mut w, 10);
        punct(&mut w, 25);
        assert_eq!(w.next_edge(5), Some(10));
        assert_eq!(w.next_edge(10), Some(25));
        assert_eq!(w.next_edge(25), None); // forward context missing
    }

    #[test]
    fn windows_containing_finds_enclosing_window() {
        let mut w = PunctuationWindow::new();
        punct(&mut w, 10);
        punct(&mut w, 25);
        let mut got = Vec::new();
        w.windows_containing(15, &mut |r| got.push(r));
        assert_eq!(got, vec![Range::new(10, 25)]);
        got.clear();
        w.windows_containing(5, &mut |r| got.push(r));
        assert!(got.is_empty());
        w.windows_containing(30, &mut |r| got.push(r));
        assert!(got.is_empty());
    }

    #[test]
    fn trim_keeps_open_window_start() {
        let mut w = PunctuationWindow::new();
        for ts in [10, 20, 30, 40] {
            punct(&mut w, ts);
        }
        let mut sink = Vec::new();
        w.trigger_windows(0, 100, &mut |r| sink.push(r));
        assert_eq!(sink.len(), 3);
        // Only the last boundary (start of the open window) is kept.
        assert_eq!(w.boundary_count(), 1);
        assert_eq!(w.earliest_pending_start(), Some(40));
    }
}
