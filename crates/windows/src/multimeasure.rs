//! Multi-measure windows — the paper's forward-context-aware exemplar
//! (Section 4.4): *"output the last N tuples (count-measure) every S time
//! units (time-measure)"*. The window **end** is a time edge known a
//! priori; the window **start** is the timestamp of the N-th most recent
//! tuple, known only once all tuples up to the end have been processed —
//! forward context.

use gss_core::{ContextClass, ContextEdges, Measure, Range, Time, WindowFunction};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Resolved {
    start: Time,
    end: Time,
    reported: bool,
}

/// "Last `count` tuples, evaluated every `every` time units."
#[derive(Debug, Clone)]
pub struct MultiMeasureWindow {
    count: usize,
    every: i64,
    /// Timestamps of retained tuples, ascending.
    buffer: Vec<Time>,
    /// Windows whose end has been crossed; start already derived.
    resolved: Vec<Resolved>,
    /// Ends at or before this are resolved.
    resolved_up_to: Option<Time>,
    /// Retention horizon for reported windows (late-update support).
    retention: i64,
    max_seen: Time,
}

impl MultiMeasureWindow {
    pub fn new(count: usize, every: i64) -> Self {
        assert!(count > 0, "tuple count must be positive");
        assert!(every > 0, "evaluation period must be positive");
        MultiMeasureWindow {
            count,
            every,
            buffer: Vec::new(),
            resolved: Vec::new(),
            resolved_up_to: None,
            retention: every.saturating_mul(16),
            max_seen: gss_core::TIME_MIN,
        }
    }

    /// Sets how long reported windows stay updatable by late tuples.
    pub fn with_retention(mut self, retention: i64) -> Self {
        self.retention = retention.max(self.every);
        self
    }

    /// The derived start of the window ending at `end`: the timestamp of
    /// the `count`-th most recent tuple before `end` (or of the earliest
    /// tuple when fewer exist). `None` when no tuple precedes `end`.
    fn derive_start(&self, end: Time) -> Option<Time> {
        let n_before = self.buffer.partition_point(|&t| t < end);
        if n_before == 0 {
            return None;
        }
        Some(self.buffer[n_before.saturating_sub(self.count)])
    }

    /// Resolves every end edge in `(resolved_up_to, up_to]`.
    fn resolve_ends(&mut self, up_to: Time, edges: &mut ContextEdges) {
        let Some(mut at) = self.resolved_up_to else {
            return;
        };
        loop {
            let end = (at.div_euclid(self.every) + 1) * self.every;
            if end > up_to {
                break;
            }
            if let Some(start) = self.derive_start(end) {
                self.resolved.push(Resolved { start, end, reported: false });
                edges.add_edge(start);
            }
            at = end;
            self.resolved_up_to = Some(end);
        }
    }

    /// Re-derives starts of resolved windows whose content shifted because
    /// a tuple at `ts` arrived out of order.
    fn reresolve_after(&mut self, ts: Time, edges: &mut ContextEdges) {
        for i in 0..self.resolved.len() {
            let w = self.resolved[i];
            if w.end <= ts {
                continue;
            }
            let Some(new_start) = self.derive_start(w.end) else {
                continue;
            };
            if new_start != w.start {
                let old = w.start;
                self.resolved[i].start = new_start;
                edges.add_edge(new_start);
                // Remove the old edge only if no other retained window
                // still starts there.
                if !self.resolved.iter().any(|r| r.start == old) {
                    edges.remove_edge(old);
                }
            }
        }
    }

    fn trim(&mut self) {
        if self.max_seen == gss_core::TIME_MIN {
            return;
        }
        let horizon = self.max_seen.saturating_sub(self.retention);
        self.resolved.retain(|w| !w.reported || w.end > horizon);
        // Tuples needed: the last `count` (future windows) and everything
        // from the earliest retained window start on (re-resolution).
        let mut floor = self.buffer.get(self.buffer.len().saturating_sub(self.count)).copied();
        for w in &self.resolved {
            floor = Some(floor.map_or(w.start, |f: Time| f.min(w.start)));
        }
        if let Some(f) = floor {
            let cut = self.buffer.partition_point(|&t| t < f);
            self.buffer.drain(..cut);
        }
    }

    /// Number of retained resolved windows (for tests).
    pub fn resolved_count(&self) -> usize {
        self.resolved.len()
    }
}

impl WindowFunction for MultiMeasureWindow {
    fn measure(&self) -> Measure {
        Measure::Time
    }

    fn context(&self) -> ContextClass {
        ContextClass::ForwardContextAware
    }

    /// Ends are periodic time edges; starts only emerge from context, so
    /// they are *not* part of `next_edge`.
    fn next_edge(&self, ts: Time) -> Option<Time> {
        Some((ts.div_euclid(self.every) + 1) * self.every)
    }

    /// Starts are unknown a priori: in-order slicing relies purely on
    /// context-driven splits (plus the trigger-before-insert rule for
    /// ends).
    fn next_start_edge(&self, _ts: Time) -> Option<Time> {
        None
    }

    fn requires_edge_at(&self, e: Time) -> bool {
        e.rem_euclid(self.every) == 0 || self.resolved.iter().any(|w| w.start == e)
    }

    fn notify_context(&mut self, ts: Time, edges: &mut ContextEdges) {
        if self.resolved_up_to.is_none() {
            // No window ends before the first tuple's period.
            self.resolved_up_to = Some(ts.div_euclid(self.every) * self.every);
        }
        let in_order = ts >= self.max_seen;
        self.max_seen = self.max_seen.max(ts);
        let pos = self.buffer.partition_point(|&t| t <= ts);
        self.buffer.insert(pos, ts);
        if in_order {
            // Resolve every end the stream has now passed. The current
            // tuple itself lies after those ends, so it never belongs to
            // them.
            self.resolve_ends(ts, edges);
        } else {
            self.reresolve_after(ts, edges);
        }
        self.trim();
    }

    fn trigger_windows(&mut self, _prev: Time, cur: Time, out: &mut dyn FnMut(Range)) {
        for w in &mut self.resolved {
            if !w.reported && w.end <= cur {
                w.reported = true;
                out(Range::new(w.start, w.end));
            }
        }
    }

    fn windows_containing(&self, ts: Time, out: &mut dyn FnMut(Range)) {
        for w in &self.resolved {
            if w.start <= ts && ts < w.end {
                out(Range::new(w.start, w.end));
            }
        }
    }

    fn max_extent(&self) -> i64 {
        self.retention
    }

    fn earliest_pending_start(&self) -> Option<Time> {
        // The retained buffer's first tuple bounds every start we may still
        // derive or re-derive.
        self.buffer.first().copied()
    }

    fn clone_box(&self) -> Box<dyn WindowFunction> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn notify(w: &mut MultiMeasureWindow, ts: Time) -> (Vec<Time>, Vec<Time>) {
        let mut e = ContextEdges::new();
        w.notify_context(ts, &mut e);
        (e.added().to_vec(), e.removed().to_vec())
    }

    fn triggered(w: &mut MultiMeasureWindow, cur: Time) -> Vec<Range> {
        let mut got = Vec::new();
        w.trigger_windows(0, cur, &mut |r| got.push(r));
        got
    }

    #[test]
    fn start_is_nth_most_recent_tuple() {
        // Last 3 tuples, every 10.
        let mut w = MultiMeasureWindow::new(3, 10);
        for ts in [1, 3, 5, 8] {
            notify(&mut w, ts);
        }
        // Crossing end 10: window should cover last 3 tuples: 3, 5, 8.
        let (added, _) = notify(&mut w, 12);
        assert_eq!(added, vec![3]);
        assert_eq!(triggered(&mut w, 12), vec![Range::new(3, 10)]);
    }

    #[test]
    fn fewer_tuples_than_count_start_at_first() {
        let mut w = MultiMeasureWindow::new(10, 10);
        notify(&mut w, 2);
        notify(&mut w, 7);
        let (added, _) = notify(&mut w, 11);
        assert_eq!(added, vec![2]);
        assert_eq!(triggered(&mut w, 11), vec![Range::new(2, 10)]);
    }

    #[test]
    fn empty_period_produces_no_window() {
        let mut w = MultiMeasureWindow::new(3, 10);
        notify(&mut w, 25);
        // Ends 30, 40 pass without any tuple before them except 25.
        let (added, _) = notify(&mut w, 45);
        // Both ends (30 and 40) derive the same start; the duplicate edge
        // request is harmless (splitting at an existing edge is a no-op).
        assert_eq!(added, vec![25, 25]);
        // Window ending 40 also covers tuple 25 (last 3 tuples before 40).
        assert_eq!(triggered(&mut w, 45), vec![Range::new(25, 30), Range::new(25, 40)]);
    }

    #[test]
    fn consecutive_windows_resolve_each_period() {
        let mut w = MultiMeasureWindow::new(2, 10);
        for ts in [1, 5, 12, 15, 23] {
            notify(&mut w, ts);
        }
        // Tuple 12 resolved end 10 -> start = buffer[..][n-2] among {1,5} = 1.
        // Tuple 23 resolved end 20 -> last 2 tuples before 20: {12, 15} -> 12.
        let wins = triggered(&mut w, 23);
        assert_eq!(wins, vec![Range::new(1, 10), Range::new(12, 20)]);
    }

    #[test]
    fn ooo_tuple_shifts_resolved_start() {
        let mut w = MultiMeasureWindow::new(2, 10);
        for ts in [1, 5, 12] {
            notify(&mut w, ts);
        }
        assert_eq!(triggered(&mut w, 12), vec![Range::new(1, 10)]);
        // An out-of-order tuple at 7 makes the last-2-before-10 set {5, 7}.
        let (added, removed) = notify(&mut w, 7);
        assert_eq!(added, vec![5]);
        assert_eq!(removed, vec![1]);
        let mut got = Vec::new();
        w.windows_containing(7, &mut |r| got.push(r));
        assert_eq!(got, vec![Range::new(5, 10)]);
    }

    #[test]
    fn shared_start_edge_not_removed() {
        let mut w = MultiMeasureWindow::new(5, 10);
        for ts in [1, 2, 12, 22] {
            notify(&mut w, ts);
        }
        // Windows ending 10 and 20 both start at 1 (fewer than 5 tuples).
        let wins = triggered(&mut w, 22);
        assert_eq!(wins, vec![Range::new(1, 10), Range::new(1, 20)]);
        // An ooo tuple at 4 keeps window-10's start at 1 (still < 5 tuples
        // before 10) — no edge churn.
        let (added, removed) = notify(&mut w, 4);
        assert!(added.is_empty());
        assert!(removed.is_empty());
    }

    #[test]
    fn next_edge_is_periodic_ends_only() {
        let w = MultiMeasureWindow::new(3, 10);
        assert_eq!(w.next_edge(0), Some(10));
        assert_eq!(w.next_edge(10), Some(20));
        assert_eq!(w.next_start_edge(0), None);
        assert!(w.requires_edge_at(20));
    }

    #[test]
    fn trim_respects_retention() {
        let mut w = MultiMeasureWindow::new(2, 10).with_retention(20);
        for ts in [1, 5, 12, 15] {
            notify(&mut w, ts);
        }
        triggered(&mut w, 15);
        notify(&mut w, 100);
        // Window [1, 10) reported and far past retention: dropped.
        assert!(w.resolved.iter().all(|r| r.end > 100 - 20 || !r.reported));
    }
}
