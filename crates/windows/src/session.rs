//! Session windows (paper Sections 2, 4.4, 5.1).
//!
//! A session covers a period of activity followed by a period of
//! inactivity: it times out when no tuple arrives for `gap` units. Sessions
//! are context aware — out-of-order tuples can extend sessions backwards or
//! bridge two sessions into one — but they are the special case of Figure 4
//! that never requires recomputing aggregates: every split they cause lands
//! in a tuple-free region, and every merge is a plain ⊕.

use gss_core::{ContextClass, ContextEdges, Measure, Range, Time, WindowFunction};

/// One tracked session: tuples in `[start, last]`, window `[start,
/// last + gap)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Session {
    start: Time,
    last: Time,
}

/// Time-measure session window with inactivity gap `gap`.
///
/// Two tuples belong to the same session iff their timestamps differ by
/// less than `gap` (transitively). The session's window is
/// `[first, last + gap)`.
#[derive(Debug, Clone)]
pub struct SessionWindow {
    gap: i64,
    /// Sessions ordered by start; non-overlapping with at least `gap`
    /// between one session's end and the next session's start.
    sessions: Vec<Session>,
    /// Everything at or before this has been reported by `trigger_windows`.
    triggered_up_to: Time,
    /// Sessions whose window closed before `max_seen - retention` are
    /// dropped. Must exceed the allowed lateness of the stream for late
    /// tuples to keep updating old sessions.
    retention: i64,
    max_seen: Time,
}

impl SessionWindow {
    /// Creates a session window. `retention` defaults to `16 * gap`.
    pub fn new(gap: i64) -> Self {
        assert!(gap > 0, "session gap must be positive");
        SessionWindow {
            gap,
            sessions: Vec::new(),
            triggered_up_to: gss_core::TIME_MIN,
            retention: gap.saturating_mul(16),
            max_seen: gss_core::TIME_MIN,
        }
    }

    /// Sets how long closed sessions stay available for late updates.
    pub fn with_retention(mut self, retention: i64) -> Self {
        self.retention = retention.max(self.gap);
        self
    }

    pub fn gap(&self) -> i64 {
        self.gap
    }

    /// Number of currently tracked sessions (closed-but-retained included).
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Drops sessions that can no longer be extended or updated.
    fn trim(&mut self) {
        if self.max_seen == gss_core::TIME_MIN {
            return;
        }
        let horizon = self.max_seen.saturating_sub(self.retention);
        let triggered = self.triggered_up_to;
        let gap = self.gap;
        self.sessions.retain(|s| s.last + gap > horizon || s.last + gap > triggered);
    }
}

impl WindowFunction for SessionWindow {
    fn measure(&self) -> Measure {
        Measure::Time
    }

    fn context(&self) -> ContextClass {
        ContextClass::ForwardContextAware
    }

    fn is_session(&self) -> bool {
        true
    }

    /// Sessions have no precomputable edges; all slicing is driven by
    /// `notify_context`.
    fn next_edge(&self, _ts: Time) -> Option<Time> {
        None
    }

    fn requires_edge_at(&self, e: Time) -> bool {
        self.sessions.binary_search_by(|s| s.start.cmp(&e)).is_ok()
    }

    fn notify_context(&mut self, ts: Time, edges: &mut ContextEdges) {
        self.max_seen = self.max_seen.max(ts);
        // First session with start > ts.
        let idx = self.sessions.partition_point(|s| s.start <= ts);
        let joins_left = idx > 0 && ts < self.sessions[idx - 1].last + self.gap;
        let joins_right = idx < self.sessions.len() && self.sessions[idx].start < ts + self.gap;
        match (joins_left, joins_right) {
            (true, true) => {
                // Bridges the two sessions: the right session's start edge
                // disappears (slice merge), the left session absorbs it.
                let right = self.sessions.remove(idx);
                let left = &mut self.sessions[idx - 1];
                left.last = left.last.max(ts).max(right.last);
                edges.remove_edge(right.start);
            }
            (true, false) => {
                // Inside or extending the left session; its start (the only
                // edge) is unchanged.
                let left = &mut self.sessions[idx - 1];
                left.last = left.last.max(ts);
            }
            (false, true) => {
                // Backwards-extends the right session: its start edge moves
                // from `old` to `ts`. The region in between is tuple-free,
                // so the split is free and the merge is a plain ⊕.
                let right = &mut self.sessions[idx];
                let old = right.start;
                right.start = ts;
                edges.add_edge(ts);
                edges.remove_edge(old);
            }
            (false, false) => {
                // A brand-new session.
                self.sessions.insert(idx, Session { start: ts, last: ts });
                edges.add_edge(ts);
            }
        }
        self.trim();
    }

    fn trigger_windows(&mut self, prev: Time, cur: Time, out: &mut dyn FnMut(Range)) {
        for s in &self.sessions {
            let end = s.last + self.gap;
            if end > prev && end <= cur {
                out(Range::new(s.start, end));
            }
        }
        self.triggered_up_to = self.triggered_up_to.max(cur);
    }

    fn windows_containing(&self, ts: Time, out: &mut dyn FnMut(Range)) {
        let idx = self.sessions.partition_point(|s| s.start <= ts);
        if idx > 0 {
            let s = &self.sessions[idx - 1];
            if ts < s.last + self.gap {
                out(Range::new(s.start, s.last + self.gap));
            }
        }
    }

    /// Eviction margin for lateness-based eviction.
    fn max_extent(&self) -> i64 {
        self.retention
    }

    /// Pin slices of sessions that have not been finally emitted yet.
    fn earliest_pending_start(&self) -> Option<Time> {
        self.sessions
            .iter()
            .filter(|s| s.last + self.gap > self.triggered_up_to)
            .map(|s| s.start)
            .min()
    }

    fn clone_box(&self) -> Box<dyn WindowFunction> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn notify(w: &mut SessionWindow, ts: Time) -> (Vec<Time>, Vec<Time>) {
        let mut e = ContextEdges::new();
        w.notify_context(ts, &mut e);
        (e.added().to_vec(), e.removed().to_vec())
    }

    #[test]
    fn first_tuple_opens_session() {
        let mut w = SessionWindow::new(10);
        let (added, removed) = notify(&mut w, 100);
        assert_eq!(added, vec![100]);
        assert!(removed.is_empty());
        assert_eq!(w.session_count(), 1);
    }

    #[test]
    fn tuple_within_gap_extends_without_edges() {
        let mut w = SessionWindow::new(10);
        notify(&mut w, 100);
        let (added, removed) = notify(&mut w, 105);
        assert!(added.is_empty());
        assert!(removed.is_empty());
        let mut got = Vec::new();
        w.windows_containing(105, &mut |r| got.push(r));
        assert_eq!(got, vec![Range::new(100, 115)]);
    }

    #[test]
    fn gap_elapsed_starts_new_session() {
        let mut w = SessionWindow::new(10);
        notify(&mut w, 100);
        let (added, _) = notify(&mut w, 115); // 115 >= 100 + 10 + 5
        assert_eq!(added, vec![115]);
        assert_eq!(w.session_count(), 2);
    }

    #[test]
    fn boundary_tuple_at_exact_gap_starts_new_session() {
        let mut w = SessionWindow::new(10);
        notify(&mut w, 100);
        // Window is [100, 110); a tuple at exactly 110 is outside.
        let (added, _) = notify(&mut w, 110);
        assert_eq!(added, vec![110]);
        assert_eq!(w.session_count(), 2);
    }

    #[test]
    fn ooo_tuple_bridges_sessions() {
        let mut w = SessionWindow::new(10);
        notify(&mut w, 100);
        notify(&mut w, 130);
        assert_eq!(w.session_count(), 2);
        // 107 is within gap of session 1's last (100) ... and 130 - 107 < ...
        // 107 + 10 = 117 < 130, so it does NOT bridge; extends session 1.
        notify(&mut w, 107);
        assert_eq!(w.session_count(), 2);
        // 122 is within gap of 130 (backwards) and of 107+10=117? No:
        // 122 >= 117, so it backwards-extends session 2 only.
        let (added, removed) = notify(&mut w, 122);
        assert_eq!(added, vec![122]);
        assert_eq!(removed, vec![130]);
        assert_eq!(w.session_count(), 2);
        // 113 bridges: 113 < 107 + 10 = 117 and 122 < 113 + 10 = 123.
        let (added, removed) = notify(&mut w, 113);
        assert!(added.is_empty());
        assert_eq!(removed, vec![122]);
        assert_eq!(w.session_count(), 1);
        let mut got = Vec::new();
        w.windows_containing(100, &mut |r| got.push(r));
        assert_eq!(got, vec![Range::new(100, 140)]);
    }

    #[test]
    fn trigger_reports_closed_sessions_once_range_passes() {
        let mut w = SessionWindow::new(10);
        notify(&mut w, 100);
        notify(&mut w, 105);
        notify(&mut w, 200);
        let mut got = Vec::new();
        w.trigger_windows(100, 114, &mut |r| got.push(r));
        assert!(got.is_empty());
        w.trigger_windows(114, 116, &mut |r| got.push(r));
        assert_eq!(got, vec![Range::new(100, 115)]);
        got.clear();
        // Already triggered; later sweeps skip it.
        w.trigger_windows(116, 300, &mut |r| got.push(r));
        assert_eq!(got, vec![Range::new(200, 210)]);
    }

    #[test]
    fn requires_edge_at_tracks_session_starts() {
        let mut w = SessionWindow::new(10);
        notify(&mut w, 100);
        notify(&mut w, 130);
        assert!(w.requires_edge_at(100));
        assert!(w.requires_edge_at(130));
        assert!(!w.requires_edge_at(105));
        // After a backwards extension, the old start is no longer required —
        // this is what lets the operator merge the slices at the old edge.
        notify(&mut w, 121); // 121 + 10 > 130: backwards-extends session 2.
        assert!(!w.requires_edge_at(130));
        assert!(w.requires_edge_at(121));
    }

    #[test]
    fn earliest_pending_start_pins_open_sessions() {
        let mut w = SessionWindow::new(10);
        notify(&mut w, 100);
        notify(&mut w, 200);
        assert_eq!(w.earliest_pending_start(), Some(100));
        let mut sink = Vec::new();
        w.trigger_windows(0, 150, &mut |r| sink.push(r));
        // Session 1 (ends 110) is triggered; only session 2 pins now.
        assert_eq!(w.earliest_pending_start(), Some(200));
    }

    #[test]
    fn trim_drops_old_closed_sessions() {
        let mut w = SessionWindow::new(10).with_retention(50);
        notify(&mut w, 100);
        let mut sink = Vec::new();
        w.trigger_windows(0, 120, &mut |r| sink.push(r));
        // Far in the future: session 1 is beyond retention and triggered.
        notify(&mut w, 1000);
        assert_eq!(w.session_count(), 1);
    }

    #[test]
    fn interior_ooo_tuple_changes_nothing() {
        let mut w = SessionWindow::new(10);
        notify(&mut w, 100);
        notify(&mut w, 108);
        let (added, removed) = notify(&mut w, 104);
        assert!(added.is_empty() && removed.is_empty());
        assert_eq!(w.session_count(), 1);
    }
}
