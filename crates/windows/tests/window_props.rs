//! Property tests for the window-type implementations themselves:
//! edge/trigger/containment consistency for periodic windows (with and
//! without offsets) and session-state invariants under random tuples.

use gss_core::{ContextEdges, Range, WindowFunction};
use gss_windows::{PeriodicEdges, SessionWindow, SlidingWindow, TumblingWindow};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `next_edge` returns the smallest edge strictly after `ts`, where an
    /// edge is any window start or end.
    #[test]
    fn periodic_next_edge_is_minimal(
        length in 1i64..100,
        slide in 1i64..100,
        offset in -200i64..200,
        ts in -1_000i64..1_000,
    ) {
        let e = PeriodicEdges::with_offset(length, slide, offset);
        let next = e.next_edge(ts);
        prop_assert!(next > ts);
        prop_assert!(e.edge_at(next), "next_edge {next} is not an edge");
        // Nothing strictly between ts and next is an edge.
        for candidate in (ts + 1)..next.min(ts + 200) {
            prop_assert!(!e.edge_at(candidate), "missed edge {candidate}");
        }
    }

    /// Windows reported by `containing` contain the point; windows
    /// reported by `ends_in` end inside the interval; both agree with the
    /// closed-form definition.
    #[test]
    fn periodic_trigger_and_containment_consistent(
        length in 1i64..60,
        slide in 1i64..60,
        offset in -100i64..100,
        ts in -500i64..500,
    ) {
        let e = PeriodicEdges::with_offset(length, slide, offset);
        let mut containing = Vec::new();
        e.containing(ts, &mut |r| containing.push(r));
        // Count matches the overlap factor ceil(length/slide) within 1.
        let expect = length / slide;
        prop_assert!(
            (containing.len() as i64 - expect).abs() <= 1,
            "{} windows for l={length} s={slide}",
            containing.len()
        );
        for r in &containing {
            prop_assert!(r.contains(ts), "window {r} misses ts {ts}");
            prop_assert_eq!(r.len(), length);
        }
        // Every window ending in (ts, ts + 3*slide] is reported once.
        let mut ends = Vec::new();
        e.ends_in(ts, ts + 3 * slide, &mut |r| ends.push(r));
        for w in ends.windows(2) {
            prop_assert!(w[0].end < w[1].end, "ends not strictly increasing");
        }
        for r in &ends {
            prop_assert!(r.end > ts && r.end <= ts + 3 * slide);
        }
    }

    /// The sliding WindowFunction wrapper is consistent with its edge
    /// helper (start edges ⊂ all edges, window ends are edges).
    #[test]
    fn sliding_window_function_consistency(
        length in 1i64..60,
        slide in 1i64..60,
        ts in 0i64..500,
    ) {
        let w = SlidingWindow::new(length, slide);
        let start = w.next_start_edge(ts).unwrap();
        let any = w.next_edge(ts).unwrap();
        prop_assert!(any <= start);
        prop_assert!(w.requires_edge_at(start));
        prop_assert!(w.requires_edge_at(any));
        let end = w.next_window_end(ts).unwrap();
        prop_assert!(w.requires_edge_at(end));
        prop_assert!(end > ts);
    }

    /// Session state invariants under arbitrary tuple sequences: sessions
    /// stay sorted, non-overlapping, separated by at least the gap, and
    /// every notified timestamp is covered by some session.
    #[test]
    fn session_state_invariants(
        gap in 1i64..50,
        tss in prop::collection::vec(0i64..2_000, 1..150),
    ) {
        let mut w = SessionWindow::new(gap).with_retention(1_000_000);
        let mut edges = ContextEdges::new();
        for &ts in &tss {
            edges.clear();
            w.notify_context(ts, &mut edges);
            // The notified tuple is inside a session.
            let mut hit = Vec::new();
            w.windows_containing(ts, &mut |r| hit.push(r));
            prop_assert_eq!(hit.len(), 1, "ts {} not covered", ts);
            prop_assert!(hit[0].contains(ts));
        }
        // Reconstruct all sessions via containment probes and check
        // separation.
        let mut sessions: Vec<Range> = Vec::new();
        for &ts in &tss {
            let mut hit = Vec::new();
            w.windows_containing(ts, &mut |r| hit.push(r));
            let r = hit[0];
            if !sessions.contains(&r) {
                sessions.push(r);
            }
        }
        sessions.sort_by_key(|r| r.start);
        for pair in sessions.windows(2) {
            prop_assert!(
                pair[0].end <= pair[1].start,
                "sessions overlap: {} and {}",
                pair[0],
                pair[1]
            );
        }
        // Oracle session count from the sorted timestamps.
        let mut sorted = tss.clone();
        sorted.sort();
        sorted.dedup();
        let mut oracle = 1;
        for w2 in sorted.windows(2) {
            if w2[1] - w2[0] >= gap {
                oracle += 1;
            }
        }
        prop_assert_eq!(sessions.len(), oracle, "session count");
    }

    /// Tumbling with offset: every emitted window has the right phase.
    #[test]
    fn tumbling_offset_phase(
        length in 1i64..100,
        offset in -300i64..300,
        prev in 0i64..500,
        span in 1i64..500,
    ) {
        let mut w = TumblingWindow::with_offset(length, offset);
        let mut got = Vec::new();
        w.trigger_windows(prev, prev + span, &mut |r| got.push(r));
        for r in &got {
            prop_assert_eq!(r.len(), length);
            prop_assert_eq!(
                (r.start - offset).rem_euclid(length),
                0,
                "window {} has wrong phase",
                r
            );
            prop_assert!(r.end > prev && r.end <= prev + span);
        }
        // Adjacent windows tile.
        for pair in got.windows(2) {
            prop_assert_eq!(pair[0].end, pair[1].start);
        }
    }
}
