//! End-to-end tests: the general slicing operator driving real window
//! types, cross-checked against a brute-force oracle.

use gss_core::operator::{OperatorConfig, QueryError, WindowOperator};
use gss_core::testsupport::{Concat, SumI64, SumNoInvert};
use gss_core::{Measure, Range, StorePolicy, WindowResult};
use gss_windows::{
    CountSlidingWindow, CountTumblingWindow, MultiMeasureWindow, PunctuationWindow, SessionWindow,
    SlidingWindow, TumblingWindow,
};

type Res = WindowResult<i64>;

/// Brute-force sum of tuples with `start <= ts < end`.
fn oracle_sum(tuples: &[(i64, i64)], range: Range) -> Option<i64> {
    let vs: Vec<i64> = tuples.iter().filter(|(t, _)| range.contains(*t)).map(|(_, v)| *v).collect();
    if vs.is_empty() {
        None
    } else {
        Some(vs.iter().sum())
    }
}

fn run_in_order(op: &mut WindowOperator<SumI64>, tuples: &[(i64, i64)]) -> Vec<Res> {
    let mut out = Vec::new();
    for &(ts, v) in tuples {
        op.process_tuple(ts, v, &mut out);
    }
    out
}

#[test]
fn tumbling_in_order_matches_oracle() {
    let mut op = WindowOperator::new(SumI64, OperatorConfig::in_order());
    op.add_query(Box::new(TumblingWindow::new(10))).unwrap();
    let tuples: Vec<(i64, i64)> = (0..100).map(|i| (i * 3, i)).collect();
    let results = run_in_order(&mut op, &tuples);
    assert!(!results.is_empty());
    for r in &results {
        assert_eq!(Some(r.value), oracle_sum(&tuples, r.range), "window {}", r.range);
        assert_eq!(r.range.len(), 10);
        assert_eq!(r.range.start.rem_euclid(10), 0);
    }
    // Every full window in the data range must have been emitted.
    let emitted: Vec<Range> = results.iter().map(|r| r.range).collect();
    for k in 1..29 {
        let w = Range::new(k * 10, (k + 1) * 10);
        if w.end <= 297 {
            assert!(emitted.contains(&w), "missing window {w}");
        }
    }
}

#[test]
fn sliding_with_unaligned_ends_matches_oracle() {
    // length 10, slide 4: ends do not coincide with starts — exercises the
    // trigger-before-insert rule.
    let mut op = WindowOperator::new(SumI64, OperatorConfig::in_order());
    op.add_query(Box::new(SlidingWindow::new(10, 4))).unwrap();
    let tuples: Vec<(i64, i64)> = (0..200).map(|i| (i, i * i % 97)).collect();
    let results = run_in_order(&mut op, &tuples);
    assert!(results.len() > 40);
    for r in &results {
        assert_eq!(Some(r.value), oracle_sum(&tuples, r.range), "window {}", r.range);
    }
}

#[test]
fn multiple_queries_share_slices() {
    let mut op = WindowOperator::new(SumI64, OperatorConfig::in_order());
    let q1 = op.add_query(Box::new(TumblingWindow::new(10))).unwrap();
    let q2 = op.add_query(Box::new(TumblingWindow::new(15))).unwrap();
    let q3 = op.add_query(Box::new(SlidingWindow::new(20, 5))).unwrap();
    let tuples: Vec<(i64, i64)> = (0..300).map(|i| (i, 1)).collect();
    let results = run_in_order(&mut op, &tuples);
    for r in &results {
        assert_eq!(Some(r.value), oracle_sum(&tuples, r.range), "query {} {}", r.query, r.range);
    }
    for q in [q1, q2, q3] {
        assert!(results.iter().any(|r| r.query == q), "query {q} never fired");
    }
    // Slice sharing: edges are the union of all query edges; far fewer
    // slices than 3x the single-query count. With eviction the live slice
    // count stays bounded by the longest window.
    assert!(op.slice_count() < 40, "slices not shared/evicted: {}", op.slice_count());
}

#[test]
fn sessions_in_order_emit_on_gap() {
    let mut op = WindowOperator::new(SumI64, OperatorConfig::in_order());
    op.add_query(Box::new(SessionWindow::new(10))).unwrap();
    // Sessions: [0..4], [30..32], single tuple at 60.
    let tuples = [(0, 1), (2, 2), (4, 4), (30, 10), (32, 20), (60, 100)];
    let results = run_in_order(&mut op, &tuples);
    // First session [0, 14) triggered by tuple at 30; second [30, 42) by 60.
    assert_eq!(results.len(), 2);
    assert_eq!(results[0].range, Range::new(0, 14));
    assert_eq!(results[0].value, 7);
    assert_eq!(results[1].range, Range::new(30, 42));
    assert_eq!(results[1].value, 30);
}

#[test]
fn session_plus_sliding_share_one_operator() {
    let mut op = WindowOperator::new(SumI64, OperatorConfig::in_order());
    let qs = op.add_query(Box::new(SessionWindow::new(5))).unwrap();
    let qw = op.add_query(Box::new(SlidingWindow::new(10, 2))).unwrap();
    let tuples: Vec<(i64, i64)> = vec![(0, 1), (1, 2), (3, 3), (20, 4), (21, 5), (40, 6)];
    let results = run_in_order(&mut op, &tuples);
    for r in results.iter().filter(|r| r.query == qw) {
        assert_eq!(Some(r.value), oracle_sum(&tuples, r.range), "sliding {}", r.range);
    }
    let sessions: Vec<&Res> = results.iter().filter(|r| r.query == qs).collect();
    assert_eq!(sessions.len(), 2);
    assert_eq!(sessions[0].range, Range::new(0, 8));
    assert_eq!(sessions[0].value, 6);
    assert_eq!(sessions[1].range, Range::new(20, 26));
    assert_eq!(sessions[1].value, 9);
}

#[test]
fn out_of_order_stream_waits_for_watermark() {
    let mut op = WindowOperator::new(SumI64, OperatorConfig::out_of_order(100));
    op.add_query(Box::new(TumblingWindow::new(10))).unwrap();
    let mut out = Vec::new();
    op.process_tuple(5, 5, &mut out);
    op.process_tuple(12, 12, &mut out);
    op.process_tuple(3, 3, &mut out); // out-of-order, before watermark
    assert!(out.is_empty(), "no output before watermark");
    op.process_watermark(10, &mut out);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].range, Range::new(0, 10));
    assert_eq!(out[0].value, 8);
    assert!(!out[0].is_update);
}

#[test]
fn late_tuple_within_lateness_emits_update() {
    let mut op = WindowOperator::new(SumI64, OperatorConfig::out_of_order(100));
    op.add_query(Box::new(TumblingWindow::new(10))).unwrap();
    let mut out = Vec::new();
    op.process_tuple(5, 5, &mut out);
    op.process_tuple(15, 15, &mut out);
    op.process_watermark(10, &mut out);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].value, 5);
    out.clear();
    // Late tuple into the already-emitted window [0, 10).
    op.process_tuple(7, 7, &mut out);
    assert_eq!(out.len(), 1);
    assert!(out[0].is_update);
    assert_eq!(out[0].range, Range::new(0, 10));
    assert_eq!(out[0].value, 12);
    assert_eq!(op.stats().updates_emitted, 1);
}

#[test]
fn too_late_tuple_is_dropped() {
    let mut op = WindowOperator::new(SumI64, OperatorConfig::out_of_order(5));
    op.add_query(Box::new(TumblingWindow::new(10))).unwrap();
    let mut out = Vec::new();
    op.process_tuple(5, 5, &mut out);
    op.process_tuple(50, 50, &mut out);
    op.process_watermark(40, &mut out);
    out.clear();
    op.process_tuple(3, 3, &mut out); // watermark 40, lateness 5 -> dropped
    assert!(out.is_empty());
    assert_eq!(op.stats().dropped_late, 1);
}

#[test]
fn ooo_sliding_matches_oracle_after_watermarks() {
    // Deterministic pseudo-random shuffle of arrival order.
    let mut tuples: Vec<(i64, i64)> = (0..300).map(|i| (i, (i * 7) % 13)).collect();
    // Delay every 5th tuple by up to 40 time units in arrival order.
    let mut arrivals = tuples.clone();
    let n = arrivals.len();
    for i in (0..n).step_by(5) {
        let j = (i + (i * 13) % 37 + 1).min(n - 1);
        arrivals.swap(i, j);
    }
    tuples.sort();

    let mut op = WindowOperator::new(SumI64, OperatorConfig::out_of_order(1000));
    op.add_query(Box::new(SlidingWindow::new(20, 5))).unwrap();
    let mut out = Vec::new();
    for &(ts, v) in &arrivals {
        op.process_tuple(ts, v, &mut out);
    }
    op.process_watermark(300, &mut out);
    // Keep only the latest emission per window (updates supersede).
    let mut finals: std::collections::HashMap<Range, i64> = std::collections::HashMap::new();
    for r in &out {
        finals.insert(r.range, r.value);
    }
    assert!(finals.len() > 50);
    for (range, value) in finals {
        assert_eq!(Some(value), oracle_sum(&tuples, range), "window {range}");
    }
}

#[test]
fn ooo_sessions_merge_and_update() {
    let mut op = WindowOperator::new(SumI64, OperatorConfig::out_of_order(1000));
    op.add_query(Box::new(SessionWindow::new(10).with_retention(10_000))).unwrap();
    let mut out = Vec::new();
    op.process_tuple(0, 1, &mut out);
    op.process_tuple(30, 2, &mut out);
    op.process_tuple(100, 4, &mut out);
    // Bridge the two sessions: 15 is within gap of 0..? no (0+10=10 <= 15)
    // but 15+10=25 < 30, so it is its own session... use 22: 22 < 30 + ...
    // 22 + 10 > 30 bridges backwards into session at 30; 22 >= 10 so it
    // does not extend session 1.
    op.process_tuple(22, 8, &mut out);
    op.process_watermark(200, &mut out);
    let sessions: Vec<&Res> = out.iter().collect();
    // Expected final sessions: [0,10)=1, [22,40)=10, [100,110)=4.
    let finals: Vec<(Range, i64)> = sessions.iter().map(|r| (r.range, r.value)).collect();
    assert!(finals.contains(&(Range::new(0, 10), 1)));
    assert!(finals.contains(&(Range::new(22, 40), 10)));
    assert!(finals.contains(&(Range::new(100, 110), 4)));
    assert!(op.stats().merges >= 1, "bridging should merge slices");
}

#[test]
fn count_tumbling_in_order() {
    let mut op = WindowOperator::new(SumI64, OperatorConfig::in_order());
    op.add_query(Box::new(CountTumblingWindow::new(5))).unwrap();
    let tuples: Vec<(i64, i64)> = (0..23).map(|i| (i * 2, 1)).collect();
    let results = run_in_order(&mut op, &tuples);
    // Windows of exactly 5 tuples each: counts [0,5), [5,10), ...
    assert_eq!(results.len(), 4);
    for r in &results {
        assert_eq!(r.measure, Measure::Count);
        assert_eq!(r.value, 5);
        assert_eq!(r.range.len(), 5);
    }
    assert_eq!(results[0].range, Range::new(0, 5));
    assert_eq!(results[3].range, Range::new(15, 20));
}

#[test]
fn count_sliding_in_order_matches_counts() {
    let mut op = WindowOperator::new(SumI64, OperatorConfig::in_order());
    op.add_query(Box::new(CountSlidingWindow::new(4, 2))).unwrap();
    // Values equal their index so window sums identify the contents.
    let tuples: Vec<(i64, i64)> = (0..10).map(|i| (i * 10, i)).collect();
    let results = run_in_order(&mut op, &tuples);
    for r in &results {
        let c1 = r.range.start;
        let c2 = r.range.end;
        let expect: i64 = (c1..c2).sum();
        assert_eq!(r.value, expect, "count window {}", r.range);
        assert_eq!(c2 - c1, 4);
    }
    assert!(results.len() >= 3);
}

#[test]
fn count_tumbling_ooo_shifts_tuples() {
    let mut op = WindowOperator::new(SumI64, OperatorConfig::out_of_order(1000));
    op.add_query(Box::new(CountTumblingWindow::new(3))).unwrap();
    let mut out = Vec::new();
    // Arrivals: 0, 10, 20, 30, 40 then an out-of-order 15.
    for ts in [0, 10, 20, 30, 40] {
        op.process_tuple(ts, ts, &mut out);
    }
    op.process_tuple(15, 15, &mut out);
    // Event-time order: 0, 10, 15, 20, 30, 40 -> windows of 3 tuples:
    // [0,3) = 0+10+15 = 25; [3,6) = 20+30+40 = 90.
    op.process_watermark(100, &mut out);
    let mut finals: std::collections::HashMap<Range, i64> = std::collections::HashMap::new();
    for r in &out {
        finals.insert(r.range, r.value);
    }
    assert_eq!(finals.get(&Range::new(0, 3)), Some(&25));
    assert_eq!(finals.get(&Range::new(3, 6)), Some(&90));
    assert!(op.stats().shifts >= 1);
}

#[test]
fn count_ooo_non_invertible_recomputes() {
    let mut op = WindowOperator::new(SumNoInvert, OperatorConfig::out_of_order(1000));
    op.add_query(Box::new(CountTumblingWindow::new(3))).unwrap();
    let mut out = Vec::new();
    for ts in [0, 10, 20, 30, 40] {
        op.process_tuple(ts, ts, &mut out);
    }
    op.process_tuple(15, 15, &mut out);
    op.process_watermark(100, &mut out);
    let mut finals: std::collections::HashMap<Range, i64> = std::collections::HashMap::new();
    for r in &out {
        finals.insert(r.range, r.value);
    }
    assert_eq!(finals.get(&Range::new(0, 3)), Some(&25));
    assert_eq!(finals.get(&Range::new(3, 6)), Some(&90));
}

#[test]
fn mixed_measures_rejected_on_ooo_streams() {
    let mut op = WindowOperator::new(SumI64, OperatorConfig::out_of_order(100));
    op.add_query(Box::new(TumblingWindow::new(10))).unwrap();
    let err = op.add_query(Box::new(CountTumblingWindow::new(5))).unwrap_err();
    assert_eq!(err, QueryError::MixedMeasuresOutOfOrder);
    // In-order streams may mix measures freely.
    let mut op = WindowOperator::new(SumI64, OperatorConfig::in_order());
    op.add_query(Box::new(TumblingWindow::new(10))).unwrap();
    op.add_query(Box::new(CountTumblingWindow::new(5))).unwrap();
}

#[test]
fn mixed_measures_in_order_both_correct() {
    let mut op = WindowOperator::new(SumI64, OperatorConfig::in_order());
    let qt = op.add_query(Box::new(TumblingWindow::new(10))).unwrap();
    let qc = op.add_query(Box::new(CountTumblingWindow::new(4))).unwrap();
    let tuples: Vec<(i64, i64)> = (0..40).map(|i| (i * 3, 1)).collect();
    let results = run_in_order(&mut op, &tuples);
    for r in results.iter().filter(|r| r.query == qt) {
        assert_eq!(Some(r.value), oracle_sum(&tuples, r.range), "time window {}", r.range);
    }
    for r in results.iter().filter(|r| r.query == qc) {
        assert_eq!(r.value, 4, "count window {}", r.range);
    }
}

#[test]
fn non_commutative_ooo_preserves_event_time_order() {
    let mut op: WindowOperator<Concat> =
        WindowOperator::new(Concat, OperatorConfig::out_of_order(1000));
    op.add_query(Box::new(TumblingWindow::new(100))).unwrap();
    assert!(op.characteristics().requires_tuple_storage());
    let mut out = Vec::new();
    op.process_tuple(10, 1, &mut out);
    op.process_tuple(50, 5, &mut out);
    op.process_tuple(30, 3, &mut out); // out of order
    op.process_tuple(70, 7, &mut out);
    op.process_watermark(100, &mut out);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].value, vec![1, 3, 5, 7]);
}

#[test]
fn multimeasure_last_n_every_s() {
    let mut op = WindowOperator::new(SumI64, OperatorConfig::in_order());
    op.add_query(Box::new(MultiMeasureWindow::new(3, 10))).unwrap();
    assert!(op.characteristics().requires_tuple_storage(), "FCA keeps tuples in order too");
    let tuples = [(1, 1), (3, 3), (5, 5), (8, 8), (12, 12), (15, 15), (22, 22)];
    let results = run_in_order(&mut op, &tuples);
    // End 10 (resolved at tuple 12): last 3 tuples before 10 = 3,5,8 -> [3,10) = 16.
    // End 20 (resolved at tuple 22): last 3 before 20 = 8,12,15 -> [8,20) = 35.
    assert_eq!(results.len(), 2);
    assert_eq!(results[0].range, Range::new(3, 10));
    assert_eq!(results[0].value, 16);
    assert_eq!(results[1].range, Range::new(8, 20));
    assert_eq!(results[1].value, 35);
    assert!(op.stats().splits >= 1, "FCA windows split slices");
}

#[test]
fn punctuation_windows_in_order() {
    let mut op = WindowOperator::new(SumI64, OperatorConfig::in_order());
    op.add_query(Box::new(PunctuationWindow::new())).unwrap();
    let mut out = Vec::new();
    op.process_punctuation(0, &mut out);
    op.process_tuple(1, 1, &mut out);
    op.process_tuple(5, 5, &mut out);
    op.process_punctuation(10, &mut out);
    op.process_tuple(12, 12, &mut out);
    op.process_punctuation(20, &mut out);
    assert_eq!(out.len(), 2);
    assert_eq!(out[0].range, Range::new(0, 10));
    assert_eq!(out[0].value, 6);
    assert_eq!(out[1].range, Range::new(10, 20));
    assert_eq!(out[1].value, 12);
}

#[test]
fn eager_and_lazy_agree() {
    let tuples: Vec<(i64, i64)> = (0..500).map(|i| (i, (i * 31) % 101)).collect();
    let mut arrivals = tuples.clone();
    for i in (0..arrivals.len()).step_by(7) {
        let j = (i + 3).min(arrivals.len() - 1);
        arrivals.swap(i, j);
    }
    let mut results = Vec::new();
    for policy in [StorePolicy::Lazy, StorePolicy::Eager] {
        let mut op =
            WindowOperator::new(SumI64, OperatorConfig::out_of_order(10_000).with_policy(policy));
        op.add_query(Box::new(SlidingWindow::new(20, 5))).unwrap();
        op.add_query(Box::new(SessionWindow::new(3))).unwrap();
        let mut out = Vec::new();
        for &(ts, v) in &arrivals {
            op.process_tuple(ts, v, &mut out);
        }
        op.process_watermark(600, &mut out);
        let mut finals: std::collections::BTreeMap<(u32, i64, i64), i64> =
            std::collections::BTreeMap::new();
        for r in &out {
            finals.insert((r.query, r.range.start, r.range.end), r.value);
        }
        results.push(finals);
    }
    assert_eq!(results[0], results[1], "lazy and eager stores must agree");
}

#[test]
fn characteristics_adapt_on_query_changes() {
    let mut op = WindowOperator::new(SumI64, OperatorConfig::out_of_order(100));
    let q = op.add_query(Box::new(TumblingWindow::new(10))).unwrap();
    assert!(!op.characteristics().requires_tuple_storage());
    let q2 = op.add_query(Box::new(PunctuationWindow::new())).unwrap();
    // FCF on out-of-order streams: non-session context aware -> tuples.
    assert!(op.characteristics().requires_tuple_storage());
    op.remove_query(q2);
    assert!(!op.characteristics().requires_tuple_storage());
    assert!(op.remove_query(q));
    assert!(!op.remove_query(q));
}

#[test]
fn in_order_stream_never_stores_tuples_for_cf_windows() {
    let mut op = WindowOperator::new(SumI64, OperatorConfig::in_order());
    op.add_query(Box::new(SlidingWindow::new(60, 1))).unwrap();
    let tuples: Vec<(i64, i64)> = (0..1000).map(|i| (i, 1)).collect();
    run_in_order(&mut op, &tuples);
    assert!(!op.store().keeps_tuples());
    for s in op.store().slices() {
        assert!(!s.keeps_tuples());
    }
}

#[test]
fn eviction_bounds_slice_count() {
    let mut op = WindowOperator::new(SumI64, OperatorConfig::in_order());
    op.add_query(Box::new(TumblingWindow::new(10))).unwrap();
    let tuples: Vec<(i64, i64)> = (0..100_000).map(|i| (i, 1)).collect();
    run_in_order(&mut op, &tuples);
    assert!(op.slice_count() < 10, "slices must be evicted: {}", op.slice_count());
}

#[test]
fn ooo_eviction_respects_allowed_lateness() {
    let mut op = WindowOperator::new(SumI64, OperatorConfig::out_of_order(50));
    op.add_query(Box::new(TumblingWindow::new(10))).unwrap();
    let mut out = Vec::new();
    for i in 0..1000 {
        op.process_tuple(i, 1, &mut out);
        if i % 100 == 99 {
            op.process_watermark(i - 20, &mut out);
        }
    }
    // Slices older than watermark - lateness - window length are gone.
    assert!(op.slice_count() < 20, "slice count: {}", op.slice_count());
    // A late-but-allowed tuple still lands correctly.
    out.clear();
    op.process_tuple(940, 5, &mut out);
    assert!(out.iter().any(|r| r.is_update && r.range.contains(940)));
}

#[test]
fn checkpoint_clone_resumes_identically() {
    // Flink-style recovery: a cloned operator is a checkpoint; replaying
    // the same input suffix on the original and the checkpoint yields
    // identical outputs.
    let tuples: Vec<(i64, i64)> = (0..400).map(|i| (i, (i * 13) % 29)).collect();
    let mut arrivals = tuples.clone();
    for i in (0..arrivals.len()).step_by(4) {
        let j = (i + 2).min(arrivals.len() - 1);
        arrivals.swap(i, j);
    }
    let mut op = WindowOperator::new(SumI64, OperatorConfig::out_of_order(1_000));
    op.add_query(Box::new(SlidingWindow::new(50, 10))).unwrap();
    op.add_query(Box::new(SessionWindow::new(5))).unwrap();
    let mut sink = Vec::new();
    let (first, rest) = arrivals.split_at(arrivals.len() / 2);
    for &(ts, v) in first {
        op.process_tuple(ts, v, &mut sink);
    }
    op.process_watermark(150, &mut sink);

    let mut checkpoint = op.clone();
    let mut out_a = Vec::new();
    let mut out_b = Vec::new();
    for &(ts, v) in rest {
        op.process_tuple(ts, v, &mut out_a);
        checkpoint.process_tuple(ts, v, &mut out_b);
    }
    op.process_watermark(i64::MAX - 1, &mut out_a);
    checkpoint.process_watermark(i64::MAX - 1, &mut out_b);
    assert_eq!(out_a, out_b);
    assert!(!out_a.is_empty());
    assert_eq!(op.stats().tuples, checkpoint.stats().tuples);
}

#[test]
fn punctuation_windows_out_of_order() {
    // FCF on an out-of-order stream: punctuations and tuples arrive late;
    // the decision logic must keep tuples (splits at late punctuations
    // recompute from them).
    let mut op = WindowOperator::new(SumI64, OperatorConfig::out_of_order(1_000));
    op.add_query(Box::new(PunctuationWindow::new())).unwrap();
    assert!(op.characteristics().requires_tuple_storage());
    let mut out = Vec::new();
    op.process_punctuation(0, &mut out);
    op.process_tuple(5, 5, &mut out);
    op.process_tuple(25, 25, &mut out);
    op.process_punctuation(30, &mut out);
    // The punctuation at 10 arrives late: it splits the region [0, 30)
    // into [0, 10) and [10, 30), recomputing from stored tuples.
    op.process_punctuation(10, &mut out);
    op.process_watermark(40, &mut out);
    let finals: std::collections::BTreeMap<(i64, i64), i64> =
        out.iter().map(|r| ((r.range.start, r.range.end), r.value)).collect();
    assert_eq!(finals.get(&(0, 10)), Some(&5));
    assert_eq!(finals.get(&(10, 30)), Some(&25));
    assert!(op.stats().splits >= 1, "late punctuation must split a slice");
}

#[test]
fn multimeasure_out_of_order_reresolves_starts() {
    // FCA + out-of-order: a late tuple shifts which N tuples are "last"
    // before a resolved end; the window start moves and an update is
    // emitted for the already-reported window.
    let mut op = WindowOperator::new(SumI64, OperatorConfig::out_of_order(1_000));
    op.add_query(Box::new(MultiMeasureWindow::new(2, 10).with_retention(1_000))).unwrap();
    let mut out = Vec::new();
    op.process_tuple(1, 1, &mut out);
    op.process_tuple(5, 5, &mut out);
    op.process_tuple(12, 12, &mut out);
    op.process_watermark(11, &mut out);
    // Window ending 10 covers the last 2 tuples before 10: {1, 5}.
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].range, Range::new(1, 10));
    assert_eq!(out[0].value, 6);
    out.clear();
    // Late tuple at 7: last-2-before-10 becomes {5, 7}, start moves to 5.
    op.process_tuple(7, 7, &mut out);
    assert!(
        out.iter().any(|r| r.is_update && r.range == Range::new(5, 10) && r.value == 12),
        "expected update [5, 10) = 12, got {out:?}"
    );
}

#[test]
fn sliding_and_multimeasure_share_one_store() {
    // CF + FCA in one operator, in order: the FCA splits cut through
    // slices the sliding query also reads; both stay correct.
    let mut op = WindowOperator::new(SumI64, OperatorConfig::in_order());
    let q_slide = op.add_query(Box::new(SlidingWindow::new(20, 5))).unwrap();
    let q_mm = op.add_query(Box::new(MultiMeasureWindow::new(3, 10))).unwrap();
    let tuples: Vec<(i64, i64)> = (0..60).map(|i| (i, 1)).collect();
    let results = run_in_order(&mut op, &tuples);
    for r in results.iter().filter(|r| r.query == q_slide) {
        assert_eq!(Some(r.value), oracle_sum(&tuples, r.range), "sliding {}", r.range);
    }
    let mm: Vec<&Res> = results.iter().filter(|r| r.query == q_mm).collect();
    assert!(!mm.is_empty());
    for r in &mm {
        // "Last 3 tuples every 10": every window sums exactly 3 tuples
        // (one per time unit).
        assert_eq!(r.value, 3, "multi-measure {}", r.range);
    }
}

#[test]
fn count_sliding_ooo_converges() {
    let tuples: Vec<(i64, i64)> = (0..200).map(|i| (i, i)).collect();
    let mut arrivals = tuples.clone();
    for i in (0..arrivals.len()).step_by(6) {
        let j = (i + 3).min(arrivals.len() - 1);
        arrivals.swap(i, j);
    }
    let mut op = WindowOperator::new(SumI64, OperatorConfig::out_of_order(10_000));
    op.add_query(Box::new(CountSlidingWindow::new(20, 5))).unwrap();
    let mut out = Vec::new();
    for &(ts, v) in &arrivals {
        op.process_tuple(ts, v, &mut out);
    }
    op.process_watermark(i64::MAX - 1, &mut out);
    let mut finals: std::collections::BTreeMap<(i64, i64), i64> = Default::default();
    for r in &out {
        finals.insert((r.range.start, r.range.end), r.value);
    }
    assert!(finals.len() > 30);
    for ((c1, c2), v) in finals {
        let expect: i64 = (c1..c2).sum(); // value == event-time index
        assert_eq!(v, expect, "count window [{c1}, {c2})");
    }
}
